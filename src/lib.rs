//! dcat-suite: umbrella crate tying the dCat reproduction together.
//!
//! The real functionality lives in the workspace crates; this crate
//! re-exports the pieces a downstream user touches first and hosts the
//! runnable examples (`examples/`) and the cross-crate integration tests
//! (`tests/`).
//!
//! * [`llc_sim`] — the cache-hierarchy simulator (CAT semantics, paging,
//!   counters, latency model).
//! * [`perf_events`] — counter snapshots and derived metrics.
//! * [`resctrl`] — classes of service, capacity bitmasks, layout planning,
//!   and the resctrl-filesystem backend.
//! * [`workloads`] — MLR/MLOAD/lookbusy, SPEC-like profiles, and the
//!   Redis/PostgreSQL/Elasticsearch service models.
//! * [`host`] — the multi-VM socket engine.
//! * [`dcat`] — the controller itself plus the shared-cache and static-CAT
//!   baselines.
//!
//! # Examples
//!
//! ```
//! use dcat_suite::prelude::*;
//!
//! let cfg = EngineConfig::xeon_e5_v4();
//! let vms = vec![
//!     VmSpec::new("tenant-a", vec![0, 1], 3),
//!     VmSpec::new("tenant-b", vec![2, 3], 3),
//! ];
//! let mut engine = Engine::new(cfg, vms).unwrap();
//! engine.start_workload(0, Box::new(Mlr::new(8 * 1024 * 1024, 42)));
//! let stats = engine.run_epoch();
//! assert!(stats[0].instructions > 0);
//! ```

/// The most commonly used types, importable in one line.
pub mod prelude {
    pub use dcat::{
        AllocationPolicy, CachePolicy, DcatConfig, DcatController, SharedCachePolicy,
        StaticCatPolicy, WorkloadClass, WorkloadHandle,
    };
    pub use host::{Engine, EngineConfig, VmEpochStats, VmSpec};
    pub use llc_sim::{CacheGeometry, Hierarchy, HierarchyConfig, LatencyModel, WayMask};
    pub use perf_events::{CounterSnapshot, IntervalMetrics, TelemetrySource};
    pub use resctrl::{CacheController, CatCapabilities, Cbm, CosId, InMemoryController};
    pub use workloads::{
        AccessStream, ElasticsearchModel, Lookbusy, Mload, Mlr, PostgresModel, RedisModel,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn prelude_types_compose() {
        let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
        let handles = vec![WorkloadHandle::new("t", vec![0, 1], 4)];
        let ctl = DcatController::new(DcatConfig::default(), handles, &mut cat).unwrap();
        assert_eq!(ctl.num_domains(), 1);
    }
}
