//! Quickstart: dCat managing two tenants on a simulated Xeon-E5 socket.
//!
//! One tenant runs a cache-hungry random-access workload (MLR-8MB), the
//! other a CPU burner. Watch dCat donate the burner's ways to the hungry
//! tenant while both keep at least their contracted baseline performance.
//!
//! Run with: `cargo run --release --example quickstart`

use dcat_suite::prelude::*;

fn main() {
    // A socket modeled after the paper's testbed: 18 cores, 20-way 45 MiB
    // LLC. Each VM owns two pinned cores and a 4-way contracted baseline.
    let engine_cfg = EngineConfig::xeon_e5_v4();
    let vms = vec![
        VmSpec::new("tenant-hungry", vec![0, 1], 4),
        VmSpec::new("tenant-burner", vec![2, 3], 4),
    ];
    let mut engine = Engine::new(engine_cfg, vms.clone()).expect("socket hosts both VMs");

    // The dCat controller drives the socket through the same trait a real
    // deployment would implement over /sys/fs/resctrl.
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut controller = DcatController::new(DcatConfig::default(), handles, &mut engine.cat())
        .expect("valid configuration");

    // Start the workloads: tenants are black boxes to the controller.
    engine.start_workload(0, Box::new(Mlr::new(8 * 1024 * 1024, 1)));
    engine.start_workload(1, Box::new(Lookbusy::new()));

    println!("epoch  tenant-hungry                 tenant-burner");
    println!("       class      ways  norm-IPC     class      ways");
    for epoch in 0..24 {
        engine.run_epoch();
        let snapshots = engine.snapshots();
        let reports = controller
            .tick(&snapshots, &mut engine.cat())
            .expect("tick succeeds");
        println!(
            "{epoch:>5}  {:<9} {:>4}  {:>7}     {:<9} {:>4}",
            reports[0].class.to_string(),
            reports[0].ways,
            reports[0]
                .norm_ipc
                .map_or("-".to_string(), |v| format!("{v:.2}x")),
            reports[1].class.to_string(),
            reports[1].ways,
        );
    }

    println!();
    println!(
        "Final allocation: hungry={} ways, burner={} ways (of 20).",
        engine.vm_ways(0),
        engine.vm_ways(1)
    );
    println!("The burner donated its unused ways; the hungry tenant grew beyond its baseline.");
}
