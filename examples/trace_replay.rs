//! Trace record/replay: capture a workload's access stream, replay it
//! deterministically, and verify the replay behaves identically against
//! the cache.
//!
//! The same format accepts externally captured traces (`perf mem`, PIN),
//! so real applications can drive the simulated socket.
//!
//! Run with: `cargo run --release --example trace_replay`

use dcat_suite::prelude::*;
use workloads::{AccessStream, Trace, TraceRecorder};

fn run_against_cache(stream: &mut dyn AccessStream, accesses: u64) -> (u64, u64) {
    let mut hierarchy = Hierarchy::new(HierarchyConfig::xeon_d());
    let mut frames = llc_sim::FrameAllocator::new(
        1 << 30,
        llc_sim::FramePolicy::Randomized,
        42, // same frame placement for both runs
    );
    let mut mapper = llc_sim::PageMapper::new(llc_sim::PageSize::Small);
    for _ in 0..accesses {
        let r = stream.next_access();
        let p = mapper.translate(r.vaddr, &mut frames).expect("pool");
        hierarchy.access(0, p.0, r.kind);
    }
    let c = hierarchy.counters(0);
    (c.llc_ref, c.llc_miss)
}

fn main() {
    // Record 200k references of an MLR-4MB run.
    let mut recorder = TraceRecorder::new(Mlr::new(4 * 1024 * 1024, 7), 200_000);
    let (live_refs, live_misses) = run_against_cache(&mut recorder, 200_000);
    println!(
        "live run:   {} LLC refs, {} LLC misses ({} references recorded)",
        live_refs,
        live_misses,
        recorder.recorded()
    );

    // Replay the captured trace against a fresh, identical hierarchy.
    let trace = Trace::parse(recorder.text()).expect("recorder output parses");
    println!(
        "trace:      {} references, profile {:.2} refs/instr",
        trace.len(),
        trace.profile().mem_refs_per_instr
    );
    let mut replay = trace.stream();
    let (replay_refs, replay_misses) = run_against_cache(&mut replay, 200_000);
    println!("replay run: {replay_refs} LLC refs, {replay_misses} LLC misses");

    assert_eq!(live_refs, replay_refs, "replay must match the live run");
    assert_eq!(live_misses, replay_misses);
    println!("replay matches the live run exactly.");
}
