//! Noisy neighbor: why isolation needs to be dynamic.
//!
//! A latency-sensitive tenant (MLR-8MB) shares the socket with two
//! streaming bullies (MLOAD-60MB). The example compares the three policies
//! of the paper — unmanaged sharing, static CAT, and dCat — on the same
//! scenario, reporting the victim's steady-state IPC and data-access
//! latency.
//!
//! Run with: `cargo run --release --example noisy_neighbor`

use dcat_suite::prelude::*;

const MB: u64 = 1024 * 1024;
const EPOCHS: usize = 30;

/// Runs the scenario under one policy; returns (victim IPC, victim latency).
fn run_policy(policy_name: &str) -> (f64, f64) {
    let vms = vec![
        VmSpec::new("victim", vec![0, 1], 4),
        VmSpec::new("bully-1", vec![2, 3], 4),
        VmSpec::new("bully-2", vec![4, 5], 4),
    ];
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut engine = Engine::new(EngineConfig::xeon_e5_v4(), vms).expect("fits socket");

    let mut policy: Box<dyn CachePolicy> = match policy_name {
        "shared" => Box::new(SharedCachePolicy::new(handles, &mut engine.cat())),
        "static" => Box::new(StaticCatPolicy::new(handles, &mut engine.cat()).expect("layout")),
        "dcat" => Box::new(
            DcatController::new(DcatConfig::default(), handles, &mut engine.cat()).expect("config"),
        ),
        other => panic!("unknown policy {other}"),
    };

    engine.start_workload(0, Box::new(Mlr::new(8 * MB, 7)));
    engine.start_workload(1, Box::new(Mload::new(60 * MB)));
    engine.start_workload(2, Box::new(Mload::new(60 * MB)));

    let mut ipc_sum = 0.0;
    let mut lat_sum = 0.0;
    let mut samples = 0;
    for epoch in 0..EPOCHS {
        let stats = engine.run_epoch();
        let snapshots = engine.snapshots();
        policy.tick(&snapshots, &mut engine.cat()).expect("tick");
        // Average over the steady tail.
        if epoch >= 3 * EPOCHS / 4 {
            ipc_sum += stats[0].ipc;
            lat_sum += stats[0].avg_access_latency;
            samples += 1;
        }
    }
    (ipc_sum / samples as f64, lat_sum / samples as f64)
}

fn main() {
    println!("Victim: MLR-8MB (4-way baseline). Neighbors: 2x MLOAD-60MB.");
    println!();
    println!("policy      victim IPC   victim latency (cycles)");
    let mut results = Vec::new();
    for policy in ["shared", "static", "dcat"] {
        let (ipc, lat) = run_policy(policy);
        println!("{policy:<10}  {ipc:>10.3}   {lat:>10.1}");
        results.push((policy, ipc));
    }
    println!();
    let shared_ipc = results[0].1;
    let static_ipc = results[1].1;
    let dcat_ipc = results[2].1;
    println!(
        "dCat vs shared: {:+.1}%   dCat vs static: {:+.1}%",
        100.0 * (dcat_ipc / shared_ipc - 1.0),
        100.0 * (dcat_ipc / static_ipc - 1.0)
    );
    println!("Static CAT protects the victim; dCat additionally hands it the ways");
    println!("the streaming bullies cannot use.");
}
