//! Cloud consolidation: a full rack-slice of heterogeneous tenants.
//!
//! Six tenants share one socket: a Redis cache, a PostgreSQL database, a
//! batch job with SPEC-like behavior, a streaming analytics scan, a CPU
//! burner, and a VM that sits idle then wakes up mid-run. dCat
//! continuously reshapes the LLC while honoring every tenant's baseline.
//!
//! Run with: `cargo run --release --example cloud_consolidation`

use dcat_suite::prelude::*;
use workloads::spec_catalog;

const MB: u64 = 1024 * 1024;

fn main() {
    let vms = vec![
        VmSpec::new("redis", vec![0, 1], 4),
        VmSpec::new("postgres", vec![2, 3], 4),
        VmSpec::new("batch-omnetpp", vec![4, 5], 3),
        VmSpec::new("analytics-scan", vec![6, 7], 3),
        VmSpec::new("ci-runner", vec![8, 9], 3),
        VmSpec::new("late-riser", vec![10, 11], 3),
    ];
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut engine = Engine::new(EngineConfig::xeon_e5_v4(), vms).expect("fits socket");
    let mut controller =
        DcatController::new(DcatConfig::default(), handles, &mut engine.cat()).expect("config");

    let omnetpp = spec_catalog()
        .into_iter()
        .find(|b| b.name == "omnetpp")
        .expect("catalog has omnetpp");

    engine.start_workload(0, Box::new(RedisModel::paper_default(1)));
    engine.start_workload(1, Box::new(PostgresModel::new(2_000_000, 2)));
    engine.start_workload(2, Box::new(omnetpp.stream(3)));
    engine.start_workload(3, Box::new(Mload::new(60 * MB)));
    engine.start_workload(4, Box::new(Lookbusy::new()));
    // VM 5 stays idle for the first half.

    println!("Way allocation over time (20 ways total):");
    println!("epoch  redis  postgres  omnetpp  scan  ci  late-riser  free");
    for epoch in 0..32 {
        if epoch == 16 {
            // The sleeping tenant wakes with a memory-hungry workload.
            engine.start_workload(5, Box::new(Mlr::new(10 * MB, 5)));
            println!("       --- late-riser starts MLR-10MB ---");
        }
        engine.run_epoch();
        let snapshots = engine.snapshots();
        let reports = controller
            .tick(&snapshots, &mut engine.cat())
            .expect("tick");
        let used: u32 = reports.iter().map(|r| r.ways).sum();
        println!(
            "{epoch:>5}  {:>5}  {:>8}  {:>7}  {:>4}  {:>2}  {:>10}  {:>4}",
            reports[0].ways,
            reports[1].ways,
            reports[2].ways,
            reports[3].ways,
            reports[4].ways,
            reports[5].ways,
            20u32.saturating_sub(used),
        );
    }

    println!();
    println!("Final classes:");
    for i in 0..engine.num_vms() {
        println!(
            "  {:<14} {:<9} {} ways",
            engine.vm_spec(i).name,
            controller.class_of(i).to_string(),
            controller.ways_of(i)
        );
    }
    println!();
    println!("The scan was defunded as Streaming, the burner donated, and the");
    println!("cache-sensitive tenants split the reclaimed capacity — including");
    println!("the late riser, which was made whole from its baseline on arrival.");
}
