//! Threshold tuning: how an operator picks dCat's two key knobs.
//!
//! Reproduces the methodology of the paper's Section 5.1 on a small
//! scenario: sweep the LLC-miss threshold and the IPC-improvement
//! threshold, observe allocated ways and achieved performance, and pick
//! the knee (the paper selects 3% and 5%).
//!
//! Run with: `cargo run --release --example threshold_tuning`

use dcat_suite::prelude::*;

const MB: u64 = 1024 * 1024;
const EPOCHS: usize = 26;

/// Runs MLR-8MB (2-way baseline) next to five CPU burners under the given
/// configuration; returns (final ways, steady IPC).
fn run_config(cfg: DcatConfig) -> (u32, f64) {
    let mut vms = vec![VmSpec::new("target", vec![0, 1], 2)];
    for i in 0..5 {
        vms.push(VmSpec::new(
            format!("burner-{i}"),
            vec![2 + 2 * i, 3 + 2 * i],
            2,
        ));
    }
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut engine = Engine::new(EngineConfig::xeon_e5_v4(), vms).expect("fits");
    let mut controller =
        DcatController::new(cfg, handles, &mut engine.cat()).expect("valid config");

    engine.start_workload(0, Box::new(Mlr::new(8 * MB, 11)));
    for vm in 1..6 {
        engine.start_workload(vm, Box::new(Lookbusy::new()));
    }

    let mut ipc_tail = 0.0;
    let mut samples = 0;
    for epoch in 0..EPOCHS {
        let stats = engine.run_epoch();
        let snapshots = engine.snapshots();
        controller
            .tick(&snapshots, &mut engine.cat())
            .expect("tick");
        if epoch >= 3 * EPOCHS / 4 {
            ipc_tail += stats[0].ipc;
            samples += 1;
        }
    }
    (engine.vm_ways(0), ipc_tail / samples as f64)
}

fn main() {
    println!("Target: MLR-8MB with a 2-way baseline, five polite neighbors.");
    println!();

    println!("Sweep 1: llc_miss_rate_thr (paper Figure 8; pick the knee)");
    println!("  threshold   ways   steady IPC");
    for thr in [0.01, 0.03, 0.05, 0.10, 0.20] {
        let cfg = DcatConfig {
            llc_miss_rate_thr: thr,
            ..DcatConfig::default()
        };
        let (ways, ipc) = run_config(cfg);
        println!("  {:>8.0}%   {ways:>4}   {ipc:>9.3}", thr * 100.0);
    }

    println!();
    println!("Sweep 2: ipc_imp_thr (paper Figure 9)");
    println!("  threshold   ways   steady IPC");
    for thr in [0.03, 0.05, 0.10, 0.20, 0.40] {
        let cfg = DcatConfig {
            ipc_imp_thr: thr,
            ..DcatConfig::default()
        };
        let (ways, ipc) = run_config(cfg);
        println!("  {:>8.0}%   {ways:>4}   {ipc:>9.3}", thr * 100.0);
    }

    println!();
    println!("Lower thresholds chase cache harder (more ways, better IPC) at the");
    println!("price of draining the free pool sooner; the paper settles on 3%/5%.");
}
