//! Cross-crate integration tests for the paper's central guarantees:
//! performance isolation and the baseline-performance floor.

use dcat_suite::prelude::*;

const MB: u64 = 1024 * 1024;

/// A small socket that keeps test runtimes low while preserving the
/// capacity relationships (victim working set vs. partition vs. LLC).
fn small_engine() -> EngineConfig {
    let mut cfg = EngineConfig::xeon_e5_v4();
    cfg.socket.hierarchy = HierarchyConfig {
        cores: 8,
        l1: CacheGeometry::new(64, 8, 64),
        l2: CacheGeometry::new(128, 8, 64),
        llc: CacheGeometry::from_capacity(4 * MB, 16),
        llc_policy: Default::default(),
    };
    cfg.cycles_per_epoch = 600_000;
    cfg.memory_bytes = 256 * MB;
    cfg
}

fn vms() -> Vec<VmSpec> {
    vec![
        VmSpec::new("victim", vec![0, 1], 4),
        VmSpec::new("bully-1", vec![2, 3], 4),
        VmSpec::new("bully-2", vec![4, 5], 4),
    ]
}

fn handles(vms: &[VmSpec]) -> Vec<WorkloadHandle> {
    vms.iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect()
}

/// Runs the victim+bullies scenario; returns the victim's steady IPC.
fn run_victim(policy: &str, epochs: usize) -> f64 {
    let vms = vms();
    let h = handles(&vms);
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut policy: Box<dyn CachePolicy> = match policy {
        "shared" => Box::new(SharedCachePolicy::new(h, &mut engine.cat())),
        "static" => Box::new(StaticCatPolicy::new(h, &mut engine.cat()).unwrap()),
        "dcat" => {
            Box::new(DcatController::new(DcatConfig::default(), h, &mut engine.cat()).unwrap())
        }
        _ => unreachable!(),
    };
    engine.start_workload(0, Box::new(Mlr::new(MB / 2, 3)));
    engine.start_workload(1, Box::new(Mload::new(16 * MB)));
    engine.start_workload(2, Box::new(Mload::new(16 * MB)));
    let mut tail = 0.0;
    let mut n = 0;
    for e in 0..epochs {
        let stats = engine.run_epoch();
        let snaps = engine.snapshots();
        policy.tick(&snaps, &mut engine.cat()).unwrap();
        if e >= 3 * epochs / 4 {
            tail += stats[0].ipc;
            n += 1;
        }
    }
    tail / n as f64
}

#[test]
fn static_cat_isolates_the_victim_from_streaming_bullies() {
    let shared = run_victim("shared", 16);
    let static_cat = run_victim("static", 16);
    assert!(
        static_cat > 1.3 * shared,
        "static CAT should beat shared under noise: {static_cat} vs {shared}"
    );
}

#[test]
fn dcat_matches_or_beats_static_cat() {
    let static_cat = run_victim("static", 20);
    let dcat = run_victim("dcat", 20);
    assert!(
        dcat > 0.95 * static_cat,
        "dCat must preserve the static baseline: {dcat} vs {static_cat}"
    );
}

#[test]
fn dcat_expands_a_hungry_victim_beyond_its_baseline() {
    // Victim whose working set exceeds its 4-way (1MB) partition.
    let vms = vms();
    let h = handles(&vms);
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), h, &mut engine.cat()).unwrap();
    engine.start_workload(0, Box::new(Mlr::new(2 * MB, 3)));
    engine.start_workload(1, Box::new(Lookbusy::new()));
    engine.start_workload(2, Box::new(Lookbusy::new()));
    for _ in 0..24 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        ctl.tick(&snaps, &mut engine.cat()).unwrap();
    }
    assert!(
        engine.vm_ways(0) > 4,
        "hungry victim stuck at {} ways",
        engine.vm_ways(0)
    );
    assert_eq!(engine.vm_ways(1), 1, "burner should donate to the minimum");
}

#[test]
fn total_allocated_ways_never_exceed_the_cache() {
    let vms = vms();
    let h = handles(&vms);
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), h, &mut engine.cat()).unwrap();
    engine.start_workload(0, Box::new(Mlr::new(2 * MB, 3)));
    engine.start_workload(1, Box::new(Mlr::new(2 * MB, 4)));
    engine.start_workload(2, Box::new(Mload::new(16 * MB)));
    for _ in 0..20 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        let reports = ctl.tick(&snaps, &mut engine.cat()).unwrap();
        let total: u32 = reports.iter().map(|r| r.ways).sum();
        assert!(total <= 16, "allocated {total} of 16 ways");
        assert!(reports.iter().all(|r| r.ways >= 1), "zero-way allocation");
    }
}

#[test]
fn late_arriving_tenant_is_made_whole_from_its_baseline() {
    let vms = vms();
    let h = handles(&vms);
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), h, &mut engine.cat()).unwrap();
    // Tenant 0 grows while the others sleep.
    engine.start_workload(0, Box::new(Mlr::new(2 * MB, 3)));
    for _ in 0..16 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        ctl.tick(&snaps, &mut engine.cat()).unwrap();
    }
    let grown = engine.vm_ways(0);
    assert!(grown > 4, "tenant 0 should have grown, has {grown}");
    // Tenant 1 wakes: it must get its reserved 4 ways promptly.
    engine.start_workload(1, Box::new(Mlr::new(2 * MB, 9)));
    for _ in 0..6 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        ctl.tick(&snaps, &mut engine.cat()).unwrap();
    }
    assert!(
        engine.vm_ways(1) >= 4,
        "woken tenant only has {} ways",
        engine.vm_ways(1)
    );
}
