//! Occupancy attribution and the reallocation flush, end to end.

use dcat_suite::prelude::*;

const MB: u64 = 1024 * 1024;

fn small_engine() -> EngineConfig {
    let mut cfg = EngineConfig::xeon_e5_v4();
    cfg.socket.hierarchy = HierarchyConfig {
        cores: 6,
        l1: CacheGeometry::new(64, 8, 64),
        l2: CacheGeometry::new(128, 8, 64),
        llc: CacheGeometry::from_capacity(4 * MB, 16),
        llc_policy: Default::default(),
    };
    cfg.cycles_per_epoch = 700_000;
    cfg.memory_bytes = 256 * MB;
    cfg
}

/// Golden counter trace for the packed-set refactor: the full-fidelity
/// simulator must produce exactly these Table-2 counter values on this
/// fixture, epoch by epoch. The values were recorded from the seed
/// `Vec<Option<LineEntry>>` implementation; the packed bitmask/SoA set
/// representation is decision-identical, so any drift here means the
/// refactor changed a replacement decision somewhere.
#[test]
fn full_fidelity_counter_trace_matches_seed() {
    let vms = vec![
        VmSpec::new("mlr", vec![0, 1], 5),
        VmSpec::new("mload", vec![2, 3], 5),
        VmSpec::new("lookbusy", vec![4, 5], 5),
    ];
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    engine.start_workload(0, Box::new(Mlr::new(2 * MB, 1)));
    engine.start_workload(1, Box::new(Mload::new(16 * MB)));
    engine.start_workload(2, Box::new(Lookbusy::new()));

    let mut trace: Vec<(u64, u64, u64, u64)> = Vec::new();
    for _ in 0..4 {
        let stats = engine.run_epoch();
        for s in &stats {
            trace.push((s.l1_ref, s.llc_ref, s.llc_miss, s.llc_occupancy_lines));
        }
    }
    let golden: Vec<(u64, u64, u64, u64)> = vec![
        (4080, 3990, 3847, 3846),
        (28000, 28000, 28000, 28000),
        (27000, 128, 128, 128),
        (4760, 4622, 3913, 6656),
        (28000, 28000, 28000, 51132),
        (27960, 6, 6, 128),
        (4760, 4613, 3585, 6820),
        (28000, 28000, 28000, 57954),
        (27080, 122, 122, 128),
        (4760, 4607, 3523, 7030),
        (28000, 28000, 28000, 58377),
        (28000, 2, 2, 128),
    ];
    assert_eq!(trace, golden, "counter trace diverged from the seed");
}

#[test]
fn occupancy_attribution_is_bounded_by_the_cache() {
    let vms = vec![
        VmSpec::new("a", vec![0, 1], 5),
        VmSpec::new("b", vec![2, 3], 5),
        VmSpec::new("c", vec![4, 5], 5),
    ];
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut engine.cat()).unwrap();
    engine.start_workload(0, Box::new(Mlr::new(2 * MB, 1)));
    engine.start_workload(1, Box::new(Mload::new(16 * MB)));
    engine.start_workload(2, Box::new(Lookbusy::new()));

    let total_lines = 4 * MB / 64;
    for _ in 0..20 {
        let stats = engine.run_epoch();
        let snaps = engine.snapshots();
        ctl.tick(&snaps, &mut engine.cat()).unwrap();
        let attributed: u64 = stats.iter().map(|s| s.llc_occupancy_lines).sum();
        assert!(
            attributed <= total_lines,
            "attributed {attributed} lines exceed the {total_lines}-line LLC"
        );
    }
}

#[test]
fn reallocation_flush_prevents_squatting_on_lost_ways() {
    // One tenant fills a large allocation, then goes idle: dCat shrinks it
    // to the minimum and flushes the released ways, so its residual
    // occupancy must collapse to roughly its remaining share.
    let vms = vec![
        VmSpec::new("greedy", vec![0, 1], 8),
        VmSpec::new("late", vec![2, 3], 8),
    ];
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut engine.cat()).unwrap();

    engine.start_workload(0, Box::new(Mload::new(8 * MB)));
    for _ in 0..10 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        ctl.tick(&snaps, &mut engine.cat()).unwrap();
    }
    let filled = engine.vm_llc_occupancy(0);
    assert!(filled > 0, "the scan should occupy cache");

    // The tenant stops; dCat donates its ways and flushes them.
    engine.stop_workload(0);
    for _ in 0..4 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        ctl.tick(&snaps, &mut engine.cat()).unwrap();
    }
    assert_eq!(ctl.ways_of(0), 1, "idle tenant donates to the minimum");
    let residual = engine.vm_llc_occupancy(0);
    // One way of a 16-way, 4 MiB LLC is 4096 lines; the flush must have
    // dropped everything outside the remaining way.
    let one_way_lines = 4 * MB / 64 / 16;
    assert!(
        residual <= one_way_lines,
        "residual occupancy {residual} exceeds one way ({one_way_lines} lines): lost ways were not flushed"
    );
}
