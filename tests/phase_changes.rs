//! End-to-end phase-change behavior: a workload that switches between a
//! random-access phase and a streaming phase must be re-baselined at each
//! switch, and its stale allocation must be reclaimed.

use dcat_suite::prelude::*;
use workloads::{phased::Phase, PhasedStream};

const MB: u64 = 1024 * 1024;

fn small_engine() -> EngineConfig {
    let mut cfg = EngineConfig::xeon_e5_v4();
    cfg.socket.hierarchy = HierarchyConfig {
        cores: 4,
        l1: CacheGeometry::new(64, 8, 64),
        l2: CacheGeometry::new(128, 8, 64),
        llc: CacheGeometry::from_capacity(4 * MB, 16),
        llc_policy: Default::default(),
    };
    cfg.cycles_per_epoch = 800_000;
    cfg.memory_bytes = 256 * MB;
    cfg
}

#[test]
fn phase_switches_trigger_reclaim_and_rebaseline() {
    let vms = vec![
        VmSpec::new("phased", vec![0, 1], 4),
        VmSpec::new("burner", vec![2, 3], 4),
    ];
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut engine.cat()).unwrap();

    // MLR-like phase (0.34 refs/instr), then MLOAD-like (0.5), cycling.
    engine.start_workload(
        0,
        Box::new(PhasedStream::cycling(vec![
            Phase {
                stream: Box::new(Mlr::new(MB, 3)),
                accesses: 120_000,
            },
            Phase {
                stream: Box::new(Mload::new(8 * MB)),
                accesses: 120_000,
            },
        ])),
    );
    engine.start_workload(1, Box::new(Lookbusy::new()));

    let mut phase_changes = 0;
    let mut reclaims = 0;
    for _ in 0..40 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        let reports = ctl.tick(&snaps, &mut engine.cat()).unwrap();
        if reports[0].phase_changed {
            phase_changes += 1;
        }
        if reports[0].class == WorkloadClass::Reclaim {
            reclaims += 1;
            // Reclaim always restores the reserved allocation.
            assert_eq!(reports[0].ways, 4, "reclaim must restore the baseline");
        }
    }
    assert!(
        phase_changes >= 2,
        "cycling workload produced only {phase_changes} phase changes"
    );
    assert!(
        reclaims >= phase_changes,
        "every phase change starts with a reclaim"
    );
}

#[test]
fn stable_workload_never_phase_changes() {
    let vms = vec![VmSpec::new("stable", vec![0, 1], 4)];
    let handles = vec![WorkloadHandle::new("stable", vec![0, 1], 4)];
    let mut engine = Engine::new(small_engine(), vms).unwrap();
    let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut engine.cat()).unwrap();
    engine.start_workload(0, Box::new(Mlr::new(MB, 5)));

    let mut changes_after_start = 0;
    for epoch in 0..20 {
        engine.run_epoch();
        let snaps = engine.snapshots();
        let reports = ctl.tick(&snaps, &mut engine.cat()).unwrap();
        // The very first interval legitimately (re)baselines; after that
        // a constant workload must never look like a new phase.
        if epoch > 0 && reports[0].phase_changed {
            changes_after_start += 1;
        }
    }
    assert_eq!(changes_after_start, 0);
}
