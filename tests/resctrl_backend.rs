//! The dCat controller drives a resctrl-filesystem backend unchanged.
//!
//! This is the deployment path on real CAT hardware: the controller
//! manipulates partitions only through the `CacheController` trait, so
//! pointing it at a `/sys/fs/resctrl`-layout directory tree is all it
//! takes. The test uses a temporary-directory fixture.

use dcat_suite::prelude::*;
use resctrl::FsBackend;

fn temp_root(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dcat-fsbackend-{tag}-{}-{:?}",
        std::process::id(),
        std::thread::current().id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn snapshot(l1: u64, llc_r: u64, llc_m: u64, ins: u64, cyc: u64) -> CounterSnapshot {
    CounterSnapshot {
        l1_ref: l1,
        llc_ref: llc_r,
        llc_miss: llc_m,
        ret_ins: ins,
        cycles: cyc,
    }
}

#[test]
fn controller_programs_schemata_files() {
    let root = temp_root("program");
    let mut cat = FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap();
    let handles = vec![
        WorkloadHandle::new("vm-a", vec![0, 1], 4),
        WorkloadHandle::new("vm-b", vec![2, 3], 4),
    ];
    let mut ctl = DcatController::new(DcatConfig::default(), handles, &mut cat).unwrap();

    // Initial static partitioning landed in the files.
    let cos1 = std::fs::read_to_string(root.join("COS1").join("schemata")).unwrap();
    assert_eq!(cos1.trim(), "L3:0=f");
    let cos2 = std::fs::read_to_string(root.join("COS2").join("schemata")).unwrap();
    assert_eq!(cos2.trim(), "L3:0=f0");
    let cpus1 = std::fs::read_to_string(root.join("COS1").join("cpus_list")).unwrap();
    assert_eq!(cpus1.trim(), "0-1");

    // Drive a few intervals: vm-a misses hard (grows), vm-b is idle
    // (donates). The mask changes must appear in the files.
    let mut total_a = CounterSnapshot::default();
    for _ in 0..8 {
        total_a = total_a.merged_with(&snapshot(340_000, 120_000, 60_000, 1_000_000, 20_000_000));
        let snaps = vec![total_a, CounterSnapshot::default()];
        ctl.tick(&snaps, &mut cat).unwrap();
    }
    assert!(ctl.ways_of(0) > 4, "vm-a should have grown");
    assert_eq!(ctl.ways_of(1), 1, "idle vm-b should donate");

    let cos1 = std::fs::read_to_string(root.join("COS1").join("schemata")).unwrap();
    let mask = Cbm::parse_hex(cos1.trim().strip_prefix("L3:0=").unwrap()).unwrap();
    assert_eq!(mask.ways(), ctl.ways_of(0), "file reflects the controller");

    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn reopened_backend_sees_controller_state() {
    let root = temp_root("reopen");
    {
        let mut cat = FsBackend::create_fixture(&root, CatCapabilities::with_ways(12), 4).unwrap();
        let handles = vec![WorkloadHandle::new("only", vec![0, 1], 3)];
        let _ctl = DcatController::new(DcatConfig::default(), handles, &mut cat).unwrap();
    }
    // A fresh process (e.g. a monitoring tool) reads the same state.
    let reopened = FsBackend::open(&root).unwrap();
    assert_eq!(reopened.core_cos(0).unwrap(), CosId(1));
    assert_eq!(reopened.cos_mask(CosId(1)).unwrap().ways(), 3);
    std::fs::remove_dir_all(&root).unwrap();
}

#[test]
fn identical_decisions_through_memory_and_filesystem_backends() {
    let root = temp_root("equiv");
    let mut fs_cat = FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 8).unwrap();
    let mut mem_cat = InMemoryController::new(CatCapabilities::with_ways(20), 8);
    let handles = || {
        vec![
            WorkloadHandle::new("a", vec![0, 1], 3),
            WorkloadHandle::new("b", vec![2, 3], 3),
        ]
    };
    let mut fs_ctl = DcatController::new(DcatConfig::default(), handles(), &mut fs_cat).unwrap();
    let mut mem_ctl = DcatController::new(DcatConfig::default(), handles(), &mut mem_cat).unwrap();

    let mut a = CounterSnapshot::default();
    let mut b = CounterSnapshot::default();
    for step in 0..10 {
        a = a.merged_with(&snapshot(
            340_000,
            120_000,
            60_000 - step * 2000,
            1_000_000,
            18_000_000,
        ));
        b = b.merged_with(&snapshot(20_000, 100, 10, 1_000_000, 800_000));
        let snaps = vec![a, b];
        let fs_reports = fs_ctl.tick(&snaps, &mut fs_cat).unwrap();
        let mem_reports = mem_ctl.tick(&snaps, &mut mem_cat).unwrap();
        for (f, m) in fs_reports.iter().zip(mem_reports.iter()) {
            assert_eq!(f.ways, m.ways, "backends diverged at step {step}");
            assert_eq!(f.class, m.class, "classes diverged at step {step}");
        }
    }
    std::fs::remove_dir_all(&root).unwrap();
}
