//! Decision-identity of the packed `CacheSet` against the seed oracle.
//!
//! The packed bitmask/SoA set (`set.rs`) replaced the seed
//! `Vec<Option<LineEntry>>` representation for speed; the seed code is
//! preserved verbatim as `set::legacy::LegacyCacheSet`. These properties
//! drive both implementations through identical randomized sequences of
//! lookups, fills, invalidations, mask-restricted flushes, and full
//! flushes — for every replacement policy — and assert that *every*
//! observable agrees at *every* step: hit/miss and hit way, fill way and
//! evicted line, occupancy (total, per-mask, per-owner), and the exact
//! resident-line listing. 10_000 sequences per policy.

use llc_sim::replacement::ReplacementPolicy;
use llc_sim::set::legacy::LegacyCacheSet;
use llc_sim::set::CacheSet;
use llc_sim::{LineAddr, WayMask};

/// Drives one randomized op sequence through both set implementations.
fn equivalence_cases(policy: ReplacementPolicy) {
    let name = format!("packed_set_equivalence_{policy:?}");
    prop_lite::run_cases(&name, 10_000, |g| {
        let ways = g.u32_in(1, 16);
        let mut packed = CacheSet::new(ways);
        let mut oracle = LegacyCacheSet::new(ways);
        // Small line universe so sequences revisit lines (hits, re-fills
        // of previously evicted lines) instead of missing forever.
        let universe = g.u64_in(4, 40);
        // The active fill mask mutates mid-sequence, exercising fills
        // whose mask excludes previously filled ways.
        let mut mask = random_nonempty_mask(g, ways);
        let ops = g.usize_in(10, 50);
        let mut now = 0u64;
        for _ in 0..ops {
            now += 1;
            match g.u32_in(0, 9) {
                // Access: lookup, fill on miss — the cache's own pattern.
                0..=5 => {
                    let line = LineAddr(g.u64_in(0, universe));
                    let draw = g.u64_in(0, u64::MAX - 1);
                    let a = packed.lookup_with(line, now, policy);
                    let b = oracle.lookup_with(line, now, policy);
                    assert_eq!(a, b, "lookup diverged for {line:?}");
                    if a.is_none() {
                        let fa = packed.fill_with(line, mask, now, g.case(), policy, draw);
                        let fb = oracle.fill_with(line, mask, now, g.case(), policy, draw);
                        assert_eq!(fa, fb, "fill diverged for {line:?}");
                    }
                }
                6 => {
                    let line = LineAddr(g.u64_in(0, universe));
                    assert_eq!(
                        packed.invalidate(line),
                        oracle.invalidate(line),
                        "invalidate diverged"
                    );
                }
                7 => mask = random_nonempty_mask(g, ways),
                8 => {
                    let victim_mask = random_nonempty_mask(g, ways);
                    let a: Vec<LineAddr> = packed.invalidate_ways(victim_mask);
                    let b: Vec<LineAddr> = oracle.invalidate_ways(victim_mask);
                    assert_eq!(a, b, "invalidate_ways diverged");
                }
                _ => {
                    packed.flush();
                    oracle.flush();
                }
            }
            // Probe a line both ways without touching LRU state.
            let probe = LineAddr(g.u64_in(0, universe));
            assert_eq!(packed.probe(probe), oracle.probe(probe), "probe diverged");
            assert_eq!(packed.occupancy(), oracle.occupancy());
            assert_eq!(packed.occupancy_in(mask), oracle.occupancy_in(mask));
            assert_eq!(packed.occupancy_of(g.case()), oracle.occupancy_of(g.case()));
            let a: Vec<LineAddr> = packed.resident_lines().collect();
            let b: Vec<LineAddr> = oracle.resident_lines().collect();
            assert_eq!(a, b, "resident lines diverged");
        }
    });
}

fn random_nonempty_mask(g: &mut prop_lite::Gen, ways: u32) -> WayMask {
    let start = g.u32_in(0, ways - 1);
    let count = g.u32_in(1, ways - start);
    WayMask::from_way_range(start, count)
}

#[test]
fn packed_set_matches_oracle_lru() {
    equivalence_cases(ReplacementPolicy::Lru);
}

#[test]
fn packed_set_matches_oracle_fifo() {
    equivalence_cases(ReplacementPolicy::Fifo);
}

#[test]
fn packed_set_matches_oracle_random() {
    equivalence_cases(ReplacementPolicy::Random);
}

#[test]
fn packed_set_matches_oracle_bip() {
    equivalence_cases(ReplacementPolicy::bip());
}
