//! Property-based tests for the cache simulator's core invariants.

use llc_sim::{
    AccessKind, CacheGeometry, FrameAllocator, FramePolicy, Hierarchy, HierarchyConfig, LineAddr,
    PageMapper, PageSize, SetAssocCache, VirtAddr, WayMask,
};

fn small_hierarchy(llc_ways: u32) -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        cores: 2,
        l1: CacheGeometry::new(8, 2, 64),
        l2: CacheGeometry::new(16, 4, 64),
        llc: CacheGeometry::new(64, llc_ways, 64),
        llc_policy: Default::default(),
    })
}

/// A partition can never hold more lines than sets x permitted ways.
#[test]
fn partition_occupancy_bounded() {
    prop_lite::run_cases("partition_occupancy_bounded", 128, |g| {
        let lines = g.vec_of(1, 399, |g| g.u64_in(0, 9_999));
        let start = g.u32_in(0, 5);
        let count = g.u32_in(1, 2);
        let geometry = CacheGeometry::new(32, 8, 64);
        let mut cache = SetAssocCache::new(geometry);
        let mask = WayMask::from_way_range(start, count);
        for line in lines {
            cache.access(LineAddr(line), mask);
        }
        assert!(cache.occupancy_in(mask) <= u64::from(32 * count));
        // Nothing leaked outside the permitted ways.
        assert_eq!(cache.occupancy(), cache.occupancy_in(mask));
    });
}

/// Whatever is resident in a private L1 or L2 is resident in the LLC
/// (the inclusive property the paper's footnote 3 describes).
#[test]
fn hierarchy_is_inclusive() {
    prop_lite::run_cases("hierarchy_is_inclusive", 64, |g| {
        let accesses: Vec<(u64, u32)> =
            g.vec_of(1, 499, |g| (g.u64_in(0, (1u64 << 16) - 1), g.u32_in(0, 1)));
        let mut h = small_hierarchy(8);
        h.set_fill_mask(0, WayMask::from_way_range(0, 4));
        h.set_fill_mask(1, WayMask::from_way_range(4, 4));
        let mut touched = Vec::new();
        for (addr, core) in accesses {
            let addr = addr & !63;
            h.access(core, addr, AccessKind::Load);
            touched.push((core, addr));
        }
        for (core, addr) in touched {
            if h.l1_probe(core, addr) || h.l2_probe(core, addr) {
                assert!(
                    h.llc_probe(addr),
                    "line {addr:#x} in a private cache but not the LLC"
                );
            }
        }
    });
}

/// Counter arithmetic: l1_ref >= l1_miss >= llc_ref >= llc_miss.
#[test]
fn counter_ordering_holds() {
    prop_lite::run_cases("counter_ordering_holds", 64, |g| {
        let accesses = g.vec_of(1, 599, |g| g.u64_in(0, (1u64 << 20) - 1));
        let mut h = small_hierarchy(8);
        for addr in accesses {
            h.access(0, addr & !63, AccessKind::Store);
        }
        let c = h.counters(0);
        assert!(c.l1_ref >= c.l1_miss);
        assert!(c.l1_miss >= c.llc_ref);
        assert!(c.llc_ref >= c.llc_miss);
    });
}

/// Translation is a function: the same virtual address always maps to
/// the same physical address, and distinct pages never share a frame.
#[test]
fn translation_is_stable_and_injective() {
    prop_lite::run_cases("translation_is_stable_and_injective", 64, |g| {
        let pages = g.vec_of(1, 63, |g| g.u64_in(0, 511));
        let huge = g.bool_with(0.5);
        let size = if huge {
            PageSize::Huge
        } else {
            PageSize::Small
        };
        let mut frames = FrameAllocator::new(2 * 1024 * 1024 * 1024, FramePolicy::Randomized, 7);
        let mut mapper = PageMapper::new(size);
        let mut seen = std::collections::HashMap::new();
        for p in pages {
            let vaddr = VirtAddr(p * size.bytes());
            let paddr = mapper.translate(vaddr, &mut frames).unwrap();
            let again = mapper.translate(vaddr, &mut frames).unwrap();
            assert_eq!(paddr, again);
            if let Some(prev) = seen.insert(p, paddr) {
                assert_eq!(prev, paddr);
            }
        }
        // Injectivity over page frames.
        let mut frames_used: Vec<u64> = seen.values().map(|a| a.0 >> size.shift()).collect();
        frames_used.sort_unstable();
        frames_used.dedup();
        assert_eq!(frames_used.len(), seen.len());
    });
}

/// The LRU never evicts the most recently used line of a partition.
#[test]
fn mru_line_survives_one_fill() {
    prop_lite::run_cases("mru_line_survives_one_fill", 128, |g| {
        let seed_lines = g.vec_of(2, 15, |g| g.u64_in(0, 63));
        let fresh = g.u64_in(64, 127);
        let geometry = CacheGeometry::new(1, 8, 64); // single set
        let mut cache = SetAssocCache::new(geometry);
        let mask = WayMask::from_way_range(0, 4);
        for l in &seed_lines {
            cache.access(LineAddr(*l), mask);
        }
        let mru = *seed_lines.last().unwrap();
        cache.access(LineAddr(fresh), mask);
        assert!(
            cache.probe(LineAddr(mru)),
            "MRU line {mru} evicted by a single fill"
        );
    });
}
