//! Sampled-fidelity accuracy sweep: `one_in ∈ {1, 3, 4, 7}` against full
//! fidelity on a 64-set LLC (64 is divisible by 4 but not by 3 or 7, so
//! the sweep exercises both the exact-stride and the ⌈sets/one_in⌉
//! scaling paths). Bounds checked per stride:
//!
//! * scaled occupancy never exceeds the cache capacity (the old
//!   `* one_in` scale broke this whenever `sets % one_in != 0`);
//! * scaled occupancy tracks full fidelity;
//! * the estimated end-to-end miss rate tracks full fidelity;
//! * stride 1 degenerates to exactly full fidelity.

use llc_sim::{AccessKind, CacheGeometry, Hierarchy, HierarchyConfig, SimFidelity};
use smallrng::SmallRng;

const CORES: u32 = 2;
const LLC_SETS: u32 = 64;
const LLC_WAYS: u32 = 8;

fn hierarchy() -> Hierarchy {
    Hierarchy::new(HierarchyConfig {
        cores: CORES,
        l1: CacheGeometry::new(8, 2, 64),
        l2: CacheGeometry::new(16, 4, 64),
        llc: CacheGeometry::new(LLC_SETS, LLC_WAYS, 64),
        llc_policy: Default::default(),
    })
}

/// A deterministic hot/cold access trace: 70% of references to a hot
/// 128-line region, 30% uniform over 2048 lines (4× LLC capacity), split
/// across both cores.
fn trace(seed: u64, len: usize) -> Vec<(u32, u64)> {
    let mut rng = SmallRng::seed_from_u64(seed);
    (0..len)
        .map(|_| {
            let core = (rng.next_u64() % u64::from(CORES)) as u32;
            let line = if rng.next_u64() % 10 < 7 {
                rng.gen_range(0..128)
            } else {
                rng.gen_range(0..2048)
            };
            (core, line * 64)
        })
        .collect()
}

fn run(fidelity: SimFidelity, accesses: &[(u32, u64)]) -> (u64, f64) {
    let mut h = hierarchy();
    h.set_fidelity(fidelity);
    for &(core, addr) in accesses {
        h.access(core, addr, AccessKind::Load);
    }
    let (mut llc_ref, mut llc_miss) = (0u64, 0u64);
    for core in 0..CORES {
        let c = h.counters(core);
        llc_ref += c.llc_ref;
        llc_miss += c.llc_miss;
    }
    let rate = if llc_ref == 0 {
        0.0
    } else {
        llc_miss as f64 / llc_ref as f64
    };
    (h.llc_occupancy(), rate)
}

#[test]
fn sampled_sweep_bounds_occupancy_and_miss_rate() {
    let accesses = trace(0xd1a7, 40_000);
    let (full_occ, full_rate) = run(SimFidelity::Full, &accesses);
    let capacity_lines = u64::from(LLC_SETS) * u64::from(LLC_WAYS);
    assert!(full_occ <= capacity_lines);
    assert!(full_rate > 0.05 && full_rate < 0.95, "trace must be mixed");

    for one_in in [1u32, 3, 4, 7] {
        let (occ, rate) = run(SimFidelity::Sampled { one_in }, &accesses);
        assert!(
            occ <= capacity_lines,
            "one_in={one_in}: scaled occupancy {occ} exceeds capacity {capacity_lines}"
        );
        let occ_err = occ.abs_diff(full_occ);
        let occ_bound = (full_occ / 4).max(u64::from(LLC_WAYS) * u64::from(one_in));
        assert!(
            occ_err <= occ_bound,
            "one_in={one_in}: occupancy {occ} vs full {full_occ} (err {occ_err} > {occ_bound})"
        );
        let rate_err = (rate - full_rate).abs();
        assert!(
            rate_err <= 0.12,
            "one_in={one_in}: miss rate {rate:.4} vs full {full_rate:.4}"
        );
        if one_in == 1 {
            assert_eq!(occ, full_occ, "stride 1 is exactly full fidelity");
            assert!((rate - full_rate).abs() < 1e-12);
        }
    }
}

#[test]
fn sampled_sweep_is_deterministic_per_stride() {
    let accesses = trace(0xbeef, 10_000);
    for one_in in [3u32, 4, 7] {
        let a = run(SimFidelity::Sampled { one_in }, &accesses);
        let b = run(SimFidelity::Sampled { one_in }, &accesses);
        assert_eq!(a, b, "one_in={one_in}");
    }
}
