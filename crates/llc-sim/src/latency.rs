//! Latency and cycle-count model.
//!
//! The simulator is trace-driven, not cycle-accurate: it counts how many
//! accesses were served at each level of the hierarchy and converts those
//! counts into cycles with a simple analytic model,
//!
//! ```text
//! cycles = instructions * cpi_exec
//!        + (sum over levels: hits_at_level * extra_penalty(level)) / mlp
//! ```
//!
//! where `cpi_exec` is the workload's compute-bound CPI (L1 hits are assumed
//! pipelined into it) and `mlp` is the workload's memory-level parallelism —
//! how many outstanding misses it sustains. A dependent pointer chase (the
//! paper's MLR) has `mlp ~= 1`; a hardware-prefetched sequential stream
//! (MLOAD) overlaps many misses and has a high effective `mlp`.
//!
//! The same level counts also yield the *average data access latency* that
//! the paper's Figures 1, 2, 8, 11, and 16 report.

use crate::counters::CoreCounters;
use crate::hierarchy::HitLevel;

/// Absolute load-to-use latency of each hierarchy level, in cycles.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LatencyModel {
    /// L1 hit latency.
    pub l1: f64,
    /// L2 hit latency.
    pub l2: f64,
    /// LLC hit latency.
    pub llc: f64,
    /// DRAM access latency.
    pub dram: f64,
}

impl Default for LatencyModel {
    /// Broadwell-era figures: 4 / 12 / 42 / 200 cycles.
    fn default() -> Self {
        LatencyModel {
            l1: 4.0,
            l2: 12.0,
            llc: 42.0,
            dram: 200.0,
        }
    }
}

impl LatencyModel {
    /// Absolute latency of a hit at `level`.
    pub fn latency_of(&self, level: HitLevel) -> f64 {
        match level {
            HitLevel::L1 => self.l1,
            HitLevel::L2 => self.l2,
            HitLevel::Llc => self.llc,
            HitLevel::Dram => self.dram,
        }
    }

    /// Extra penalty of a hit at `level` over an L1 hit.
    pub fn penalty_over_l1(&self, level: HitLevel) -> f64 {
        (self.latency_of(level) - self.l1).max(0.0)
    }

    /// Average data-access latency given per-level counts.
    ///
    /// Returns the L1 latency when there were no accesses at all (an idle
    /// interval), so callers never divide by zero.
    pub fn average_access_latency(&self, counters: &CoreCounters) -> f64 {
        let l1_hits = counters.l1_ref.saturating_sub(counters.l1_miss);
        let l2_hits = counters.l1_miss.saturating_sub(counters.llc_ref);
        let llc_hits = counters.llc_ref.saturating_sub(counters.llc_miss);
        let dram = counters.llc_miss;
        let total = counters.l1_ref;
        if total == 0 {
            return self.l1;
        }
        let sum = l1_hits as f64 * self.l1
            + l2_hits as f64 * self.l2
            + llc_hits as f64 * self.llc
            + dram as f64 * self.dram;
        sum / total as f64
    }
}

/// Converts level counts into elapsed cycles for one core.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CyclesModel {
    /// Latency parameters.
    pub latency: LatencyModel,
    /// Compute-bound cycles per instruction (covers pipelined L1 hits).
    pub cpi_exec: f64,
    /// Effective memory-level parallelism dividing miss penalties.
    pub mlp: f64,
}

impl CyclesModel {
    /// Creates a model, clamping `mlp` to at least 1.
    pub fn new(latency: LatencyModel, cpi_exec: f64, mlp: f64) -> Self {
        CyclesModel {
            latency,
            cpi_exec,
            mlp: mlp.max(1.0),
        }
    }

    /// Cycles consumed by an interval with the given counts.
    ///
    /// `counters.cycles` is ignored; this function is what *produces* the
    /// cycle count the simulator stores there.
    pub fn cycles_for(&self, counters: &CoreCounters) -> u64 {
        let l2_hits = counters.l1_miss.saturating_sub(counters.llc_ref);
        let llc_hits = counters.llc_ref.saturating_sub(counters.llc_miss);
        let dram = counters.llc_miss;
        let stall = (l2_hits as f64 * self.latency.penalty_over_l1(HitLevel::L2)
            + llc_hits as f64 * self.latency.penalty_over_l1(HitLevel::Llc)
            + dram as f64 * self.latency.penalty_over_l1(HitLevel::Dram))
            / self.mlp;
        let exec = counters.ret_ins as f64 * self.cpi_exec;
        (exec + stall).round() as u64
    }

    /// Instructions per cycle implied by the model for the interval.
    pub fn ipc_for(&self, counters: &CoreCounters) -> f64 {
        let cycles = self.cycles_for(counters);
        if cycles == 0 {
            return 0.0;
        }
        counters.ret_ins as f64 / cycles as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn counters(l1_ref: u64, l1_miss: u64, llc_ref: u64, llc_miss: u64, ins: u64) -> CoreCounters {
        CoreCounters {
            l1_ref,
            l1_miss,
            llc_ref,
            llc_miss,
            ret_ins: ins,
            cycles: 0,
        }
    }

    #[test]
    fn all_l1_hits_average_latency_is_l1() {
        let m = LatencyModel::default();
        let c = counters(100, 0, 0, 0, 400);
        assert!((m.average_access_latency(&c) - m.l1).abs() < 1e-9);
    }

    #[test]
    fn all_dram_average_latency_is_dram() {
        let m = LatencyModel::default();
        let c = counters(100, 100, 100, 100, 400);
        assert!((m.average_access_latency(&c) - m.dram).abs() < 1e-9);
    }

    #[test]
    fn idle_interval_reports_l1_latency() {
        let m = LatencyModel::default();
        assert!((m.average_access_latency(&CoreCounters::default()) - m.l1).abs() < 1e-9);
    }

    #[test]
    fn mixed_latency_between_extremes() {
        let m = LatencyModel::default();
        let c = counters(100, 50, 20, 10, 400);
        let lat = m.average_access_latency(&c);
        assert!(lat > m.l1 && lat < m.dram, "latency {lat} out of bounds");
    }

    #[test]
    fn cycles_grow_with_misses() {
        let cm = CyclesModel::new(LatencyModel::default(), 0.8, 1.0);
        let fast = counters(100, 0, 0, 0, 400);
        let slow = counters(100, 100, 100, 100, 400);
        assert!(cm.cycles_for(&slow) > cm.cycles_for(&fast));
    }

    #[test]
    fn higher_mlp_hides_miss_latency() {
        let c = counters(100, 100, 100, 100, 400);
        let serial = CyclesModel::new(LatencyModel::default(), 0.8, 1.0);
        let overlapped = CyclesModel::new(LatencyModel::default(), 0.8, 8.0);
        assert!(overlapped.cycles_for(&c) < serial.cycles_for(&c));
        assert!(overlapped.ipc_for(&c) > serial.ipc_for(&c));
    }

    #[test]
    fn mlp_clamped_to_one() {
        let cm = CyclesModel::new(LatencyModel::default(), 1.0, 0.0);
        assert_eq!(cm.mlp, 1.0);
    }

    #[test]
    fn ipc_of_compute_bound_is_reciprocal_cpi() {
        let cm = CyclesModel::new(LatencyModel::default(), 2.0, 1.0);
        let c = counters(0, 0, 0, 0, 1000);
        assert!((cm.ipc_for(&c) - 0.5).abs() < 1e-3);
    }
}
