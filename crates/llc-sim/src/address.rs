//! Address types and line-granularity helpers.
//!
//! The simulator works on 64-bit addresses. Virtual and physical addresses
//! are newtypes so that a virtual address can never be fed to a
//! physically-indexed cache by accident; translation through
//! [`crate::paging::PageMapper`] is the only way to cross the boundary.

/// Base-2 logarithm of the cache-line size.
pub const LINE_SHIFT: u32 = 6;

/// Cache-line size in bytes (64 B on every CPU the paper uses).
pub const LINE_SIZE: u64 = 1 << LINE_SHIFT;

/// A virtual (workload-visible) byte address.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VirtAddr(pub u64);

/// A physical byte address, as produced by translation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct PhysAddr(pub u64);

/// A physical address truncated to cache-line granularity.
///
/// Two byte addresses within the same 64-byte line compare equal as
/// [`LineAddr`]s, which is exactly the granularity caches operate at.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct LineAddr(pub u64);

impl VirtAddr {
    /// Returns the virtual page number for the given page-size shift.
    #[inline]
    pub fn page_number(self, page_shift: u32) -> u64 {
        self.0 >> page_shift
    }

    /// Returns the offset within a page of the given page-size shift.
    #[inline]
    pub fn page_offset(self, page_shift: u32) -> u64 {
        self.0 & ((1 << page_shift) - 1)
    }
}

impl PhysAddr {
    /// Truncates the physical address to its cache line.
    #[inline]
    pub fn line(self) -> LineAddr {
        LineAddr(self.0 >> LINE_SHIFT)
    }
}

impl LineAddr {
    /// Reconstructs the byte address of the first byte of the line.
    #[inline]
    pub fn base_addr(self) -> PhysAddr {
        PhysAddr(self.0 << LINE_SHIFT)
    }
}

/// Truncates a raw physical byte address to its line address.
#[inline]
pub fn line_addr(paddr: PhysAddr) -> LineAddr {
    paddr.line()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_line_for_addresses_within_64_bytes() {
        assert_eq!(PhysAddr(0x1000).line(), PhysAddr(0x103f).line());
        assert_ne!(PhysAddr(0x1000).line(), PhysAddr(0x1040).line());
    }

    #[test]
    fn line_base_addr_round_trips() {
        let line = PhysAddr(0x1234).line();
        assert_eq!(line.base_addr().0, 0x1200);
        assert_eq!(line.base_addr().line(), line);
    }

    #[test]
    fn virt_page_number_and_offset() {
        let v = VirtAddr(0x12345);
        assert_eq!(v.page_number(12), 0x12);
        assert_eq!(v.page_offset(12), 0x345);
        // 2 MiB pages use a 21-bit shift.
        assert_eq!(v.page_number(21), 0);
        assert_eq!(v.page_offset(21), 0x12345);
    }

    #[test]
    fn line_size_constants_consistent() {
        assert_eq!(LINE_SIZE, 64);
        assert_eq!(1u64 << LINE_SHIFT, LINE_SIZE);
    }
}
