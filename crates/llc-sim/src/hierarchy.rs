//! The full memory hierarchy: per-core L1/L2, shared way-partitioned LLC.
//!
//! Inclusion is enforced the way Intel's pre-Skylake server parts do it
//! (and the paper's footnote 3 describes): the LLC is inclusive of the
//! private caches, so evicting a line from the LLC *back-invalidates* it
//! from every core's L1 and L2. This is the mechanism by which a noisy
//! neighbor flushing the LLC also destroys a victim's private-cache
//! contents — the effect Figure 1 of the paper measures.

use crate::address::PhysAddr;
use crate::cache::{AccessOutcome, SetAssocCache, WayMask};
use crate::counters::CoreCounters;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementPolicy;

/// Kind of memory access. Loads and stores are costed identically by the
/// latency model; the distinction is kept because workload generators and
/// the paper's event list (Table 2) both make it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// The hierarchy level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the private L1.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared LLC.
    Llc,
    /// Missed everywhere; served by DRAM.
    Dram,
}

/// How faithfully the shared LLC is simulated.
///
/// `Full` models every set; it is the default and the mode every
/// byte-identity guarantee is stated for. `Sampled` simulates only one
/// LLC set in `one_in` (UMON-style set sampling, as in the utility-based
/// cache-partitioning literature): accesses that index a *sampled* set
/// run through the real tag store, while accesses to unsampled sets are
/// classified hit-or-miss by a deterministic per-core estimator that
/// replays the miss ratio observed on the sampled sets. Private L1/L2
/// caches are always fully simulated.
///
/// Consequences of sampling, all documented rather than hidden:
///
/// * LLC occupancy accessors scale sampled-set counts by the exact
///   `sets / simulated_sets` ratio (round-half-up), so magnitudes stay
///   comparable with full fidelity and never exceed the cache capacity;
/// * LLC inclusion is not maintained for unsampled sets (their lines are
///   never resident), so `llc_probe` only answers for sampled sets;
/// * miss *rates* carry a sampling error — the accuracy test in
///   `tests/sampled_fidelity.rs` bounds it for the fig10 workloads.
///
/// The estimator is pure integer arithmetic over monotonic counters, so
/// sampled runs are exactly as deterministic (and `--jobs N`-stable) as
/// full-fidelity runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SimFidelity {
    /// Simulate every LLC set (the seed behavior).
    #[default]
    Full,
    /// Simulate one LLC set in `one_in`; estimate the rest.
    Sampled {
        /// Sampling stride: sets whose index is a multiple of this value
        /// are simulated. `1` degenerates to full fidelity.
        one_in: u32,
    },
}

/// Per-core hit/miss estimator for unsampled LLC sets.
///
/// Tracks the references and misses this core issued to *sampled* sets
/// and replays that ratio over unsampled accesses with an error-diffusion
/// (Bresenham) accumulator: across any window, estimated misses track
/// `sampled_miss / sampled_ref` to within one access, with no floating
/// point and no RNG. The counters decay exponentially (both halve once
/// the reference count reaches [`ESTIMATOR_WINDOW`]) so the replayed
/// ratio follows the *recent* regime — a cache warming up or a CAT
/// reallocation shifts the miss rate, and a lifetime average would lag
/// it by the whole history.
#[derive(Debug, Clone, Copy, Default)]
struct SampleEstimator {
    /// References this core issued to sampled LLC sets (decayed).
    sampled_ref: u64,
    /// Misses among those references (decayed).
    sampled_miss: u64,
    /// Error-diffusion accumulator, kept below `sampled_ref`.
    credit: u64,
}

/// Decay threshold for [`SampleEstimator`]: once this many sampled
/// references accumulate, both counters halve. The effective memory is
/// therefore the last ~2 windows of sampled traffic.
const ESTIMATOR_WINDOW: u64 = 1024;

impl SampleEstimator {
    /// Records the outcome of one access to a sampled set.
    fn observe(&mut self, missed: bool) {
        if self.sampled_ref >= ESTIMATOR_WINDOW {
            self.sampled_ref /= 2;
            self.sampled_miss /= 2;
            self.credit /= 2;
        }
        self.sampled_ref += 1;
        if missed {
            self.sampled_miss += 1;
        }
    }

    /// Applies the effect of a way flush to the replayed ratio. The hits
    /// in this estimator's history were served by lines that a flush (in
    /// proportion to the fraction of LLC ways it covered) just dropped,
    /// so that share of past hits is converted into misses: a full-mask
    /// flush replays ~all-miss, matching a cold cache, and the decay
    /// window re-learns the true post-flush rate within ~one window.
    /// Without this, unsampled sets keep replaying pre-flush hits right
    /// after a reallocation.
    fn flush_decay(&mut self, flushed_ways: u32, total_ways: u32) {
        let hits = self.sampled_ref.saturating_sub(self.sampled_miss);
        let converted = (hits * u64::from(flushed_ways))
            .checked_div(u64::from(total_ways))
            .unwrap_or(0);
        self.sampled_miss = (self.sampled_miss + converted).min(self.sampled_ref);
        // Keep the Bresenham invariant `credit < sampled_ref`.
        self.credit = self.credit.min(self.sampled_ref.saturating_sub(1));
    }

    /// Classifies one access to an unsampled set. Before any sampled set
    /// has been touched there is no signal, so the cold estimator calls
    /// everything a miss — matching a cold cache.
    fn estimate_miss(&mut self) -> bool {
        if self.sampled_ref == 0 {
            return true;
        }
        self.credit += self.sampled_miss;
        if self.credit >= self.sampled_ref {
            self.credit -= self.sampled_ref;
            true
        } else {
            false
        }
    }
}

/// Shape of a [`Hierarchy`].
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of cores sharing the LLC.
    pub cores: u32,
    /// Geometry of each private L1 data cache.
    pub l1: CacheGeometry,
    /// Geometry of each private L2.
    pub l2: CacheGeometry,
    /// Geometry of the shared LLC.
    pub llc: CacheGeometry,
    /// Replacement/insertion policy of the shared LLC (private caches
    /// stay LRU, as on real parts).
    pub llc_policy: ReplacementPolicy,
}

impl Default for HierarchyConfig {
    /// The paper's evaluation machine: 18-core Xeon E5-2697 v4 with a
    /// 20-way 45 MiB LLC.
    fn default() -> Self {
        HierarchyConfig {
            cores: 18,
            l1: CacheGeometry::l1d(),
            l2: CacheGeometry::l2(),
            llc: CacheGeometry::xeon_e5_llc(),
            llc_policy: ReplacementPolicy::Lru,
        }
    }
}

impl HierarchyConfig {
    /// The paper's second machine: 8-core Xeon-D with a 12-way 12 MiB LLC.
    pub fn xeon_d() -> Self {
        HierarchyConfig {
            cores: 8,
            l1: CacheGeometry::l1d(),
            l2: CacheGeometry::l2(),
            llc: CacheGeometry::xeon_d_llc(),
            llc_policy: ReplacementPolicy::Lru,
        }
    }
}

/// A multi-core cache hierarchy with CAT fill masks on the LLC.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    fill_masks: Vec<WayMask>,
    counters: Vec<CoreCounters>,
    fidelity: SimFidelity,
    samplers: Vec<SampleEstimator>,
}

impl Hierarchy {
    /// Creates an empty hierarchy; every core starts with a full fill mask
    /// (the unmanaged "shared cache" configuration).
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores > 0, "hierarchy needs at least one core");
        let full = WayMask::all(config.llc.ways);
        Hierarchy {
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l2))
                .collect(),
            llc: SetAssocCache::with_policy(config.llc, config.llc_policy),
            fill_masks: vec![full; config.cores as usize],
            counters: vec![CoreCounters::default(); config.cores as usize],
            fidelity: SimFidelity::Full,
            samplers: vec![SampleEstimator::default(); config.cores as usize],
            config,
        }
    }

    /// Selects the LLC simulation fidelity. Meant to be called once,
    /// before any access; switching modes mid-run is not meaningful
    /// (estimator state and tag contents would mix regimes).
    ///
    /// # Panics
    ///
    /// Panics on `Sampled { one_in: 0 }` — a zero stride samples nothing.
    pub fn set_fidelity(&mut self, fidelity: SimFidelity) {
        if let SimFidelity::Sampled { one_in } = fidelity {
            assert!(one_in > 0, "sampling stride must be at least 1");
        }
        self.fidelity = fidelity;
    }

    /// The current LLC simulation fidelity.
    pub fn fidelity(&self) -> SimFidelity {
        self.fidelity
    }

    /// Number of LLC sets actually simulated under the current fidelity:
    /// the sets whose index is a multiple of `one_in`, i.e. ⌈sets/one_in⌉.
    fn simulated_llc_sets(&self) -> u64 {
        let sets = u64::from(self.config.llc.sets);
        match self.fidelity {
            SimFidelity::Full => sets,
            SimFidelity::Sampled { one_in } => sets.div_ceil(u64::from(one_in.max(1))),
        }
    }

    /// Scales a sampled-set line count to approximate the full cache.
    ///
    /// The scale is the exact `sets / simulated_sets` ratio with
    /// round-half-up, not `one_in`: the simulated sets are the indices
    /// divisible by `one_in`, which is ⌈sets/one_in⌉ of them, so
    /// multiplying by `one_in` over-estimates whenever the set count is
    /// not a multiple of the stride (e.g. 16 sets at `one_in = 7`
    /// simulates 3 sets; `one_in` would report 21 lines for 3 resident,
    /// beyond the 16 a one-line-per-set footprint can occupy).
    fn scale_occupancy(&self, count: u64) -> u64 {
        if self.fidelity == SimFidelity::Full {
            return count;
        }
        let sets = u64::from(self.config.llc.sets);
        let simulated = self.simulated_llc_sets();
        (count * sets + simulated / 2)
            .checked_div(simulated)
            .unwrap_or(count)
    }

    /// Whether the set holding `line` is simulated under the current
    /// fidelity.
    #[inline]
    fn llc_set_is_sampled(&self, line: crate::address::LineAddr) -> bool {
        match self.fidelity {
            SimFidelity::Full => true,
            SimFidelity::Sampled { one_in } => {
                self.config.llc.set_index(line).is_multiple_of(one_in)
            }
        }
    }

    /// The hierarchy's shape.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.config.cores
    }

    /// Sets the LLC fill mask for `core` (what programming a CAT class of
    /// service and associating the core with it achieves).
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty or exceeds the LLC's associativity;
    /// Intel CAT rejects both.
    pub fn set_fill_mask(&mut self, core: u32, mask: WayMask) {
        assert!(!mask.is_empty(), "CAT does not allow a zero-way mask");
        assert!(
            mask.ways().all(|w| w < self.config.llc.ways),
            "mask exceeds LLC associativity"
        );
        // A core beyond the socket has no fill mask to program; ignore
        // it rather than panic (real CAT writes to absent cores no-op).
        if let Some(slot) = self.fill_masks.get_mut(core as usize) {
            *slot = mask;
        }
    }

    /// The current fill mask of `core`.
    ///
    /// Mirrors [`Hierarchy::set_fill_mask`]'s contract for absent cores:
    /// reading a core beyond the socket returns the reset (all-ways)
    /// mask — the unmanaged state such a core would observe — instead of
    /// panicking, so the read and write sides of the CAT surface agree.
    pub fn fill_mask(&self, core: u32) -> WayMask {
        self.fill_masks
            .get(core as usize)
            .copied()
            .unwrap_or_else(|| WayMask::all(self.config.llc.ways))
    }

    /// Performs one memory access by `core` at physical address `paddr`.
    ///
    /// Updates the Table-2 event counters and returns the level that served
    /// the access.
    pub fn access(&mut self, core: u32, paddr: u64, _kind: AccessKind) -> HitLevel {
        let line = PhysAddr(paddr).line();
        let idx = core as usize;
        self.counters[idx].l1_ref += 1;

        let l1_mask = WayMask::all(self.config.l1.ways);
        if self.l1[idx].access(line, l1_mask).is_hit() {
            return HitLevel::L1;
        }
        self.counters[idx].l1_miss += 1;

        let l2_mask = WayMask::all(self.config.l2.ways);
        if self.l2[idx].probe(line) {
            // Refresh L2 LRU, then pull the line up into L1.
            self.l2[idx].access(line, l2_mask);
            self.fill_l1(idx, line);
            return HitLevel::L2;
        }
        self.counters[idx].llc_ref += 1;

        if !self.llc_set_is_sampled(line) {
            // Unsampled set: classify via the estimator instead of the tag
            // store. No LLC fill, no eviction, no back-invalidation — the
            // private caches still absorb the line so upper-level hit rates
            // stay realistic.
            let missed = self.samplers[idx].estimate_miss();
            if missed {
                self.counters[idx].llc_miss += 1;
            }
            self.fill_l2(idx, line);
            self.fill_l1(idx, line);
            return if missed {
                HitLevel::Dram
            } else {
                HitLevel::Llc
            };
        }

        let llc_mask = self.fill_masks[idx];
        let sampling = self.fidelity != SimFidelity::Full;
        match self.llc.access_as(line, llc_mask, core) {
            AccessOutcome::Hit => {
                if sampling {
                    self.samplers[idx].observe(false);
                }
                self.fill_l2(idx, line);
                self.fill_l1(idx, line);
                HitLevel::Llc
            }
            AccessOutcome::Miss { evicted } => {
                self.counters[idx].llc_miss += 1;
                if sampling {
                    self.samplers[idx].observe(true);
                }
                if let Some(victim) = evicted {
                    self.back_invalidate(victim);
                }
                self.fill_l2(idx, line);
                self.fill_l1(idx, line);
                HitLevel::Dram
            }
        }
    }

    /// Fills `line` into `core`'s L1 (it was just looked up and missed).
    fn fill_l1(&mut self, idx: usize, line: crate::address::LineAddr) {
        let mask = WayMask::all(self.config.l1.ways);
        if !self.l1[idx].probe(line) {
            self.l1[idx].access(line, mask);
        }
    }

    /// Fills `line` into `core`'s L2, keeping L1 inclusive in L2.
    fn fill_l2(&mut self, idx: usize, line: crate::address::LineAddr) {
        let mask = WayMask::all(self.config.l2.ways);
        if self.l2[idx].probe(line) {
            return;
        }
        if let AccessOutcome::Miss {
            evicted: Some(victim),
        } = self.l2[idx].access(line, mask)
        {
            self.l1[idx].invalidate(victim);
        }
    }

    /// Inclusive back-invalidation: drop `line` from every private cache.
    fn back_invalidate(&mut self, line: crate::address::LineAddr) {
        for idx in 0..self.config.cores as usize {
            self.l2[idx].invalidate(line);
            self.l1[idx].invalidate(line);
        }
    }

    /// Records `n` retired instructions on `core`.
    pub fn record_instructions(&mut self, core: u32, n: u64) {
        self.counters[core as usize].ret_ins += n;
    }

    /// Records `n` unhalted cycles on `core`.
    pub fn record_cycles(&mut self, core: u32, n: u64) {
        self.counters[core as usize].cycles += n;
    }

    /// The monotonic counters of `core`.
    pub fn counters(&self, core: u32) -> CoreCounters {
        self.counters[core as usize]
    }

    /// Resets the counters of `core` (not the cache contents).
    pub fn reset_counters(&mut self, core: u32) {
        self.counters[core as usize].reset();
    }

    /// LLC lines resident in ways permitted by `mask` (scaled to the full
    /// cache when sampling).
    pub fn llc_occupancy_in(&self, mask: WayMask) -> u64 {
        self.scale_occupancy(self.llc.occupancy_in(mask))
    }

    /// Total LLC lines resident (scaled to the full cache when sampling).
    pub fn llc_occupancy(&self) -> u64 {
        self.scale_occupancy(self.llc.occupancy())
    }

    /// Whether `paddr`'s line is resident in the LLC.
    pub fn llc_probe(&self, paddr: u64) -> bool {
        self.llc.probe(PhysAddr(paddr).line())
    }

    /// Whether `paddr`'s line is resident in `core`'s L1.
    pub fn l1_probe(&self, core: u32, paddr: u64) -> bool {
        self.l1[core as usize].probe(PhysAddr(paddr).line())
    }

    /// Whether `paddr`'s line is resident in `core`'s L2.
    pub fn l2_probe(&self, core: u32, paddr: u64) -> bool {
        self.l2[core as usize].probe(PhysAddr(paddr).line())
    }

    /// Read-only view of the LLC, for occupancy statistics.
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// LLC lines filled by `core` (CMT-style occupancy attribution,
    /// scaled to the full cache when sampling).
    pub fn llc_occupancy_of_core(&self, core: u32) -> u64 {
        self.scale_occupancy(self.llc.occupancy_of(core))
    }

    /// Invalidates every LLC line in the ways permitted by `mask`,
    /// back-invalidating the private caches (the user-level way flush the
    /// paper's Section 6 calls for after a reallocation). Returns the
    /// number of LLC *lines* dropped, not a way count (scaled to the full
    /// cache when sampling, like the occupancy accessors).
    pub fn flush_mask(&mut self, mask: WayMask) -> u64 {
        let dropped = self.llc.invalidate_ways(mask);
        for line in &dropped {
            for idx in 0..self.config.cores as usize {
                self.l2[idx].invalidate(*line);
                self.l1[idx].invalidate(*line);
            }
        }
        if self.fidelity != SimFidelity::Full {
            // The estimators' hit history describes the pre-flush cache;
            // without a decay, unsampled sets would keep replaying stale
            // hits right after a reallocation flush.
            let flushed_ways = mask.count();
            let total_ways = self.config.llc.ways;
            for s in &mut self.samplers {
                s.flush_decay(flushed_ways, total_ways);
            }
        }
        self.scale_occupancy(dropped.len() as u64)
    }

    /// Flushes every cache in the hierarchy.
    pub fn flush_all(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        self.llc.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheGeometry::new(4, 2, 64),
            l2: CacheGeometry::new(8, 2, 64),
            llc: CacheGeometry::new(16, 4, 64),
            llc_policy: Default::default(),
        })
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = tiny();
        assert_eq!(h.access(0, 0x1000, AccessKind::Load), HitLevel::Dram);
        assert_eq!(h.access(0, 0x1000, AccessKind::Load), HitLevel::L1);
        let c = h.counters(0);
        assert_eq!(c.l1_ref, 2);
        assert_eq!(c.l1_miss, 1);
        assert_eq!(c.llc_ref, 1);
        assert_eq!(c.llc_miss, 1);
    }

    #[test]
    fn cross_core_sharing_hits_in_llc() {
        let mut h = tiny();
        h.access(0, 0x2000, AccessKind::Load);
        // Core 1 has never seen the line; its L1/L2 miss but the LLC hits.
        assert_eq!(h.access(1, 0x2000, AccessKind::Load), HitLevel::Llc);
        assert_eq!(h.counters(1).llc_miss, 0);
    }

    #[test]
    fn llc_eviction_back_invalidates_private_caches() {
        let mut h = Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheGeometry::new(4, 2, 64),
            l2: CacheGeometry::new(8, 2, 64),
            llc: CacheGeometry::new(4, 1, 64), // 1-way LLC: easy to evict
            llc_policy: Default::default(),
        });
        h.access(0, 0, AccessKind::Load);
        assert!(h.l1_probe(0, 0));
        // Same LLC set (4 sets, line 4*64=256 bytes later), evicts line 0.
        h.access(1, 4 * 64, AccessKind::Load);
        assert!(!h.llc_probe(0));
        assert!(!h.l1_probe(0, 0), "inclusive LLC must back-invalidate L1");
        assert!(!h.l2_probe(0, 0), "inclusive LLC must back-invalidate L2");
    }

    #[test]
    fn fill_masks_partition_the_llc() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask::from_way_range(0, 2));
        h.set_fill_mask(1, WayMask::from_way_range(2, 2));
        for i in 0..200u64 {
            h.access(0, i * 64, AccessKind::Load);
            h.access(1, (1 << 20) + i * 64, AccessKind::Load);
        }
        let low = h.llc_occupancy_in(WayMask::from_way_range(0, 2));
        let high = h.llc_occupancy_in(WayMask::from_way_range(2, 2));
        assert!(low <= 32, "partition 0 overflowed: {low}");
        assert!(high <= 32, "partition 1 overflowed: {high}");
    }

    #[test]
    #[should_panic(expected = "zero-way")]
    fn empty_mask_rejected() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask(0));
    }

    #[test]
    #[should_panic(expected = "exceeds LLC associativity")]
    fn oversized_mask_rejected() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask::from_way_range(0, 5));
    }

    #[test]
    fn instruction_and_cycle_recording() {
        let mut h = tiny();
        h.record_instructions(1, 100);
        h.record_cycles(1, 250);
        assert_eq!(h.counters(1).ret_ins, 100);
        assert_eq!(h.counters(1).cycles, 250);
        h.reset_counters(1);
        assert_eq!(h.counters(1).ret_ins, 0);
    }

    #[test]
    fn l2_hit_path_counts_no_llc_ref() {
        let mut h = Hierarchy::new(HierarchyConfig {
            cores: 1,
            l1: CacheGeometry::new(1, 1, 64), // 1-line L1: easy to evict
            l2: CacheGeometry::new(8, 2, 64),
            llc: CacheGeometry::new(16, 4, 64),
            llc_policy: Default::default(),
        });
        h.access(0, 0, AccessKind::Load);
        h.access(0, 64, AccessKind::Load); // evicts line 0 from the L1
        let before = h.counters(0).llc_ref;
        assert_eq!(h.access(0, 0, AccessKind::Load), HitLevel::L2);
        assert_eq!(h.counters(0).llc_ref, before);
    }

    #[test]
    fn occupancy_attribution_per_core() {
        let mut h = tiny();
        for i in 0..8u64 {
            h.access(0, i * 64, AccessKind::Load);
        }
        h.access(1, 1 << 20, AccessKind::Load);
        assert_eq!(h.llc_occupancy_of_core(0), 8);
        assert_eq!(h.llc_occupancy_of_core(1), 1);
    }

    #[test]
    fn flush_mask_back_invalidates_private_caches() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask::from_way_range(0, 2));
        h.access(0, 0x40, AccessKind::Load);
        assert!(h.l1_probe(0, 0x40));
        let dropped = h.flush_mask(WayMask::from_way_range(0, 2));
        assert_eq!(dropped, 1);
        assert!(!h.llc_probe(0x40));
        assert!(!h.l1_probe(0, 0x40), "flush must reach the L1 (inclusive)");
        assert!(!h.l2_probe(0, 0x40));
    }

    #[test]
    fn sampled_one_in_one_matches_full_fidelity() {
        // Stride 1 samples every set: counters must be identical to Full.
        let mut full = tiny();
        let mut sampled = tiny();
        sampled.set_fidelity(SimFidelity::Sampled { one_in: 1 });
        for i in 0..500u64 {
            let addr = (i % 37) * 64 * 3;
            full.access(0, addr, AccessKind::Load);
            sampled.access(0, addr, AccessKind::Load);
        }
        assert_eq!(full.counters(0), sampled.counters(0));
        assert_eq!(full.llc_occupancy(), sampled.llc_occupancy());
    }

    #[test]
    fn sampled_mode_counts_every_llc_reference() {
        // llc_ref covers estimated accesses too; rates need no rescaling.
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 4 });
        for i in 0..64u64 {
            h.access(0, i * 64, AccessKind::Load);
        }
        let c = h.counters(0);
        assert_eq!(c.llc_ref, 64, "every reference is counted");
        assert_eq!(c.llc_miss, 64, "cold cache: all misses, real or estimated");
    }

    #[test]
    fn sampled_occupancy_scales_to_the_full_cache() {
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 4 });
        // Touch one line per LLC set (16 sets, 64-line stride apart).
        for i in 0..16u64 {
            h.access(0, i * 64, AccessKind::Load);
        }
        // Only 4 of 16 sets are simulated; scaling restores the magnitude.
        assert_eq!(h.llc_occupancy(), 16);
        assert_eq!(h.llc_occupancy_of_core(0), 16);
    }

    #[test]
    fn sampled_occupancy_is_exact_for_non_divisible_set_counts() {
        // 16 sets at stride 7 simulate sets {0, 7, 14} — three sets, not
        // 16/7. The scale must be the exact 16/3 ratio; the old `* one_in`
        // scale reported 21 lines for a one-line-per-set footprint that
        // can only occupy 16.
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 7 });
        for set in [0u64, 7, 14] {
            h.access(0, set * 64, AccessKind::Load);
        }
        assert_eq!(h.llc_occupancy(), 16);
        assert_eq!(h.llc_occupancy_of_core(0), 16);
        let lines = 16 * 4; // sets * ways
        assert!(
            h.llc_occupancy() <= lines,
            "scaled occupancy must never exceed the cache capacity"
        );
    }

    #[test]
    fn sampled_flush_drop_count_is_exact_for_non_divisible_strides() {
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 7 });
        for set in [0u64, 7, 14] {
            h.access(0, set * 64, AccessKind::Load);
        }
        // Three resident lines dropped, scaled by the exact 16/3 ratio.
        let dropped = h.flush_mask(WayMask::all(4));
        assert_eq!(dropped, 16);
        assert_eq!(h.llc_occupancy(), 0);
    }

    #[test]
    fn sampled_flush_resets_the_estimator_hit_history() {
        // Warm both fidelities on the same sampled-set pattern, flush the
        // whole cache, then touch fresh *unsampled* sets: full fidelity
        // misses every one (the sets are cold), and the sampled estimator
        // must replay the same all-miss regime instead of the pre-flush
        // hit ratio it learned.
        let mut full = tiny();
        let mut sampled = tiny();
        sampled.set_fidelity(SimFidelity::Sampled { one_in: 4 });
        for _ in 0..20 {
            for i in 0..8u64 {
                full.access(0, i * 4 * 64, AccessKind::Load);
                sampled.access(0, i * 4 * 64, AccessKind::Load);
            }
        }
        full.flush_mask(WayMask::all(4));
        sampled.flush_mask(WayMask::all(4));
        let full_warm = full.counters(0);
        let sampled_warm = sampled.counters(0);
        // Fresh lines in unsampled sets {1, 5, 9, 13}.
        for i in 0..8u64 {
            full.access(0, (i * 4 + 1) * 64, AccessKind::Load);
            sampled.access(0, (i * 4 + 1) * 64, AccessKind::Load);
        }
        let full_tail = full.counters(0).llc_miss - full_warm.llc_miss;
        let sampled_tail = sampled.counters(0).llc_miss - sampled_warm.llc_miss;
        assert_eq!(full_tail, 8, "cold sets after a full flush all miss");
        assert_eq!(
            sampled_tail, full_tail,
            "estimator must not replay pre-flush hits on unsampled sets"
        );
    }

    #[test]
    fn partial_flush_decays_the_estimator_proportionally() {
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 4 });
        for _ in 0..20 {
            for i in 0..8u64 {
                h.access(0, i * 4 * 64, AccessKind::Load);
            }
        }
        let warm = h.counters(0);
        // Flush half the ways: half the learned hits become misses.
        h.flush_mask(WayMask::from_way_range(0, 2));
        for i in 0..8u64 {
            h.access(0, (i * 4 + 1) * 64, AccessKind::Load);
        }
        let tail_ref = h.counters(0).llc_ref - warm.llc_ref;
        let tail_miss = h.counters(0).llc_miss - warm.llc_miss;
        let rate = tail_miss as f64 / tail_ref as f64;
        assert!(
            (0.25..=0.85).contains(&rate),
            "half-capacity flush should replay a mixed regime, got {rate}"
        );
    }

    #[test]
    fn fill_mask_of_absent_core_reads_the_default() {
        let mut h = tiny();
        // The write side no-ops on absent cores; the read side answers
        // with the reset all-ways mask instead of panicking.
        h.set_fill_mask(99, WayMask::from_way_range(0, 2));
        assert_eq!(h.fill_mask(99), WayMask::all(4));
        h.set_fill_mask(0, WayMask::from_way_range(0, 2));
        assert_eq!(h.fill_mask(0), WayMask::from_way_range(0, 2));
    }

    #[test]
    fn sampled_estimator_tracks_the_sampled_miss_rate() {
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 4 });
        // Warm the sampled sets: lines `i * 4` map to LLC sets
        // {0, 4, 8, 12} — all sampled — two lines per 4-way set, so after
        // the cold pass they hit. The tiny 2-way L1/L2 thrash on the same
        // pattern, so accesses keep reaching the LLC.
        for _ in 0..20 {
            for i in 0..8u64 {
                h.access(0, i * 4 * 64, AccessKind::Load);
            }
        }
        let warm = h.counters(0);
        let warm_rate = warm.llc_miss as f64 / warm.llc_ref as f64;
        assert!(
            warm_rate < 0.25,
            "sampled sets should mostly hit once warm, got {warm_rate}"
        );
        // Now touch only *unsampled* sets ({1, 5, 9, 13}): the estimator
        // replays the observed mostly-hit ratio instead of guessing miss.
        for _ in 0..10 {
            for i in 0..8u64 {
                h.access(0, (i * 4 + 1) * 64, AccessKind::Load);
            }
        }
        let c = h.counters(0);
        let tail_ref = c.llc_ref - warm.llc_ref;
        let tail_miss = c.llc_miss - warm.llc_miss;
        assert!(tail_ref > 0, "unsampled pattern must reach the LLC");
        let tail_rate = tail_miss as f64 / tail_ref as f64;
        assert!(
            tail_rate < 0.3,
            "estimator should replay the sampled hit rate, got {tail_rate}"
        );
    }

    #[test]
    #[should_panic(expected = "stride must be at least 1")]
    fn zero_sampling_stride_rejected() {
        let mut h = tiny();
        h.set_fidelity(SimFidelity::Sampled { one_in: 0 });
    }

    #[test]
    fn flush_all_empties_hierarchy() {
        let mut h = tiny();
        for i in 0..20u64 {
            h.access(0, i * 64, AccessKind::Store);
        }
        h.flush_all();
        assert_eq!(h.llc_occupancy(), 0);
        assert_eq!(h.access(0, 0, AccessKind::Load), HitLevel::Dram);
    }
}
