//! The full memory hierarchy: per-core L1/L2, shared way-partitioned LLC.
//!
//! Inclusion is enforced the way Intel's pre-Skylake server parts do it
//! (and the paper's footnote 3 describes): the LLC is inclusive of the
//! private caches, so evicting a line from the LLC *back-invalidates* it
//! from every core's L1 and L2. This is the mechanism by which a noisy
//! neighbor flushing the LLC also destroys a victim's private-cache
//! contents — the effect Figure 1 of the paper measures.

use crate::address::PhysAddr;
use crate::cache::{AccessOutcome, SetAssocCache, WayMask};
use crate::counters::CoreCounters;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementPolicy;

/// Kind of memory access. Loads and stores are costed identically by the
/// latency model; the distinction is kept because workload generators and
/// the paper's event list (Table 2) both make it.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessKind {
    /// A read.
    Load,
    /// A write.
    Store,
}

/// The hierarchy level that served an access.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum HitLevel {
    /// Served by the private L1.
    L1,
    /// Served by the private L2.
    L2,
    /// Served by the shared LLC.
    Llc,
    /// Missed everywhere; served by DRAM.
    Dram,
}

/// Shape of a [`Hierarchy`].
#[derive(Debug, Clone, Copy)]
pub struct HierarchyConfig {
    /// Number of cores sharing the LLC.
    pub cores: u32,
    /// Geometry of each private L1 data cache.
    pub l1: CacheGeometry,
    /// Geometry of each private L2.
    pub l2: CacheGeometry,
    /// Geometry of the shared LLC.
    pub llc: CacheGeometry,
    /// Replacement/insertion policy of the shared LLC (private caches
    /// stay LRU, as on real parts).
    pub llc_policy: ReplacementPolicy,
}

impl Default for HierarchyConfig {
    /// The paper's evaluation machine: 18-core Xeon E5-2697 v4 with a
    /// 20-way 45 MiB LLC.
    fn default() -> Self {
        HierarchyConfig {
            cores: 18,
            l1: CacheGeometry::l1d(),
            l2: CacheGeometry::l2(),
            llc: CacheGeometry::xeon_e5_llc(),
            llc_policy: ReplacementPolicy::Lru,
        }
    }
}

impl HierarchyConfig {
    /// The paper's second machine: 8-core Xeon-D with a 12-way 12 MiB LLC.
    pub fn xeon_d() -> Self {
        HierarchyConfig {
            cores: 8,
            l1: CacheGeometry::l1d(),
            l2: CacheGeometry::l2(),
            llc: CacheGeometry::xeon_d_llc(),
            llc_policy: ReplacementPolicy::Lru,
        }
    }
}

/// A multi-core cache hierarchy with CAT fill masks on the LLC.
#[derive(Debug)]
pub struct Hierarchy {
    config: HierarchyConfig,
    l1: Vec<SetAssocCache>,
    l2: Vec<SetAssocCache>,
    llc: SetAssocCache,
    fill_masks: Vec<WayMask>,
    counters: Vec<CoreCounters>,
}

impl Hierarchy {
    /// Creates an empty hierarchy; every core starts with a full fill mask
    /// (the unmanaged "shared cache" configuration).
    pub fn new(config: HierarchyConfig) -> Self {
        assert!(config.cores > 0, "hierarchy needs at least one core");
        let full = WayMask::all(config.llc.ways);
        Hierarchy {
            l1: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l1))
                .collect(),
            l2: (0..config.cores)
                .map(|_| SetAssocCache::new(config.l2))
                .collect(),
            llc: SetAssocCache::with_policy(config.llc, config.llc_policy),
            fill_masks: vec![full; config.cores as usize],
            counters: vec![CoreCounters::default(); config.cores as usize],
            config,
        }
    }

    /// The hierarchy's shape.
    pub fn config(&self) -> &HierarchyConfig {
        &self.config
    }

    /// Number of cores.
    pub fn cores(&self) -> u32 {
        self.config.cores
    }

    /// Sets the LLC fill mask for `core` (what programming a CAT class of
    /// service and associating the core with it achieves).
    ///
    /// # Panics
    ///
    /// Panics if the mask is empty or exceeds the LLC's associativity;
    /// Intel CAT rejects both.
    pub fn set_fill_mask(&mut self, core: u32, mask: WayMask) {
        assert!(!mask.is_empty(), "CAT does not allow a zero-way mask");
        assert!(
            mask.ways().all(|w| w < self.config.llc.ways),
            "mask exceeds LLC associativity"
        );
        // A core beyond the socket has no fill mask to program; ignore
        // it rather than panic (real CAT writes to absent cores no-op).
        if let Some(slot) = self.fill_masks.get_mut(core as usize) {
            *slot = mask;
        }
    }

    /// The current fill mask of `core`.
    pub fn fill_mask(&self, core: u32) -> WayMask {
        self.fill_masks[core as usize]
    }

    /// Performs one memory access by `core` at physical address `paddr`.
    ///
    /// Updates the Table-2 event counters and returns the level that served
    /// the access.
    pub fn access(&mut self, core: u32, paddr: u64, _kind: AccessKind) -> HitLevel {
        let line = PhysAddr(paddr).line();
        let idx = core as usize;
        self.counters[idx].l1_ref += 1;

        let l1_mask = WayMask::all(self.config.l1.ways);
        if self.l1[idx].access(line, l1_mask).is_hit() {
            return HitLevel::L1;
        }
        self.counters[idx].l1_miss += 1;

        let l2_mask = WayMask::all(self.config.l2.ways);
        if self.l2[idx].probe(line) {
            // Refresh L2 LRU, then pull the line up into L1.
            self.l2[idx].access(line, l2_mask);
            self.fill_l1(idx, line);
            return HitLevel::L2;
        }
        self.counters[idx].llc_ref += 1;

        let llc_mask = self.fill_masks[idx];
        match self.llc.access_as(line, llc_mask, core) {
            AccessOutcome::Hit => {
                self.fill_l2(idx, line);
                self.fill_l1(idx, line);
                HitLevel::Llc
            }
            AccessOutcome::Miss { evicted } => {
                self.counters[idx].llc_miss += 1;
                if let Some(victim) = evicted {
                    self.back_invalidate(victim);
                }
                self.fill_l2(idx, line);
                self.fill_l1(idx, line);
                HitLevel::Dram
            }
        }
    }

    /// Fills `line` into `core`'s L1 (it was just looked up and missed).
    fn fill_l1(&mut self, idx: usize, line: crate::address::LineAddr) {
        let mask = WayMask::all(self.config.l1.ways);
        if !self.l1[idx].probe(line) {
            self.l1[idx].access(line, mask);
        }
    }

    /// Fills `line` into `core`'s L2, keeping L1 inclusive in L2.
    fn fill_l2(&mut self, idx: usize, line: crate::address::LineAddr) {
        let mask = WayMask::all(self.config.l2.ways);
        if self.l2[idx].probe(line) {
            return;
        }
        if let AccessOutcome::Miss {
            evicted: Some(victim),
        } = self.l2[idx].access(line, mask)
        {
            self.l1[idx].invalidate(victim);
        }
    }

    /// Inclusive back-invalidation: drop `line` from every private cache.
    fn back_invalidate(&mut self, line: crate::address::LineAddr) {
        for idx in 0..self.config.cores as usize {
            self.l2[idx].invalidate(line);
            self.l1[idx].invalidate(line);
        }
    }

    /// Records `n` retired instructions on `core`.
    pub fn record_instructions(&mut self, core: u32, n: u64) {
        self.counters[core as usize].ret_ins += n;
    }

    /// Records `n` unhalted cycles on `core`.
    pub fn record_cycles(&mut self, core: u32, n: u64) {
        self.counters[core as usize].cycles += n;
    }

    /// The monotonic counters of `core`.
    pub fn counters(&self, core: u32) -> CoreCounters {
        self.counters[core as usize]
    }

    /// Resets the counters of `core` (not the cache contents).
    pub fn reset_counters(&mut self, core: u32) {
        self.counters[core as usize].reset();
    }

    /// LLC lines resident in ways permitted by `mask`.
    pub fn llc_occupancy_in(&self, mask: WayMask) -> u64 {
        self.llc.occupancy_in(mask)
    }

    /// Total LLC lines resident.
    pub fn llc_occupancy(&self) -> u64 {
        self.llc.occupancy()
    }

    /// Whether `paddr`'s line is resident in the LLC.
    pub fn llc_probe(&self, paddr: u64) -> bool {
        self.llc.probe(PhysAddr(paddr).line())
    }

    /// Whether `paddr`'s line is resident in `core`'s L1.
    pub fn l1_probe(&self, core: u32, paddr: u64) -> bool {
        self.l1[core as usize].probe(PhysAddr(paddr).line())
    }

    /// Whether `paddr`'s line is resident in `core`'s L2.
    pub fn l2_probe(&self, core: u32, paddr: u64) -> bool {
        self.l2[core as usize].probe(PhysAddr(paddr).line())
    }

    /// Read-only view of the LLC, for occupancy statistics.
    pub fn llc(&self) -> &SetAssocCache {
        &self.llc
    }

    /// LLC lines filled by `core` (CMT-style occupancy attribution).
    pub fn llc_occupancy_of_core(&self, core: u32) -> u64 {
        self.llc.occupancy_of(core)
    }

    /// Invalidates every LLC line in the ways permitted by `mask`,
    /// back-invalidating the private caches (the user-level way flush the
    /// paper's Section 6 calls for after a reallocation). Returns the
    /// number of LLC *lines* dropped, not a way count.
    pub fn flush_mask(&mut self, mask: WayMask) -> u64 {
        let dropped = self.llc.invalidate_ways(mask);
        for line in &dropped {
            for idx in 0..self.config.cores as usize {
                self.l2[idx].invalidate(*line);
                self.l1[idx].invalidate(*line);
            }
        }
        dropped.len() as u64
    }

    /// Flushes every cache in the hierarchy.
    pub fn flush_all(&mut self) {
        for c in &mut self.l1 {
            c.flush();
        }
        for c in &mut self.l2 {
            c.flush();
        }
        self.llc.flush();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny() -> Hierarchy {
        Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheGeometry::new(4, 2, 64),
            l2: CacheGeometry::new(8, 2, 64),
            llc: CacheGeometry::new(16, 4, 64),
            llc_policy: Default::default(),
        })
    }

    #[test]
    fn first_touch_misses_everywhere_then_hits_l1() {
        let mut h = tiny();
        assert_eq!(h.access(0, 0x1000, AccessKind::Load), HitLevel::Dram);
        assert_eq!(h.access(0, 0x1000, AccessKind::Load), HitLevel::L1);
        let c = h.counters(0);
        assert_eq!(c.l1_ref, 2);
        assert_eq!(c.l1_miss, 1);
        assert_eq!(c.llc_ref, 1);
        assert_eq!(c.llc_miss, 1);
    }

    #[test]
    fn cross_core_sharing_hits_in_llc() {
        let mut h = tiny();
        h.access(0, 0x2000, AccessKind::Load);
        // Core 1 has never seen the line; its L1/L2 miss but the LLC hits.
        assert_eq!(h.access(1, 0x2000, AccessKind::Load), HitLevel::Llc);
        assert_eq!(h.counters(1).llc_miss, 0);
    }

    #[test]
    fn llc_eviction_back_invalidates_private_caches() {
        let mut h = Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheGeometry::new(4, 2, 64),
            l2: CacheGeometry::new(8, 2, 64),
            llc: CacheGeometry::new(4, 1, 64), // 1-way LLC: easy to evict
            llc_policy: Default::default(),
        });
        h.access(0, 0, AccessKind::Load);
        assert!(h.l1_probe(0, 0));
        // Same LLC set (4 sets, line 4*64=256 bytes later), evicts line 0.
        h.access(1, 4 * 64, AccessKind::Load);
        assert!(!h.llc_probe(0));
        assert!(!h.l1_probe(0, 0), "inclusive LLC must back-invalidate L1");
        assert!(!h.l2_probe(0, 0), "inclusive LLC must back-invalidate L2");
    }

    #[test]
    fn fill_masks_partition_the_llc() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask::from_way_range(0, 2));
        h.set_fill_mask(1, WayMask::from_way_range(2, 2));
        for i in 0..200u64 {
            h.access(0, i * 64, AccessKind::Load);
            h.access(1, (1 << 20) + i * 64, AccessKind::Load);
        }
        let low = h.llc_occupancy_in(WayMask::from_way_range(0, 2));
        let high = h.llc_occupancy_in(WayMask::from_way_range(2, 2));
        assert!(low <= 32, "partition 0 overflowed: {low}");
        assert!(high <= 32, "partition 1 overflowed: {high}");
    }

    #[test]
    #[should_panic(expected = "zero-way")]
    fn empty_mask_rejected() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask(0));
    }

    #[test]
    #[should_panic(expected = "exceeds LLC associativity")]
    fn oversized_mask_rejected() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask::from_way_range(0, 5));
    }

    #[test]
    fn instruction_and_cycle_recording() {
        let mut h = tiny();
        h.record_instructions(1, 100);
        h.record_cycles(1, 250);
        assert_eq!(h.counters(1).ret_ins, 100);
        assert_eq!(h.counters(1).cycles, 250);
        h.reset_counters(1);
        assert_eq!(h.counters(1).ret_ins, 0);
    }

    #[test]
    fn l2_hit_path_counts_no_llc_ref() {
        let mut h = Hierarchy::new(HierarchyConfig {
            cores: 1,
            l1: CacheGeometry::new(1, 1, 64), // 1-line L1: easy to evict
            l2: CacheGeometry::new(8, 2, 64),
            llc: CacheGeometry::new(16, 4, 64),
            llc_policy: Default::default(),
        });
        h.access(0, 0, AccessKind::Load);
        h.access(0, 64, AccessKind::Load); // evicts line 0 from the L1
        let before = h.counters(0).llc_ref;
        assert_eq!(h.access(0, 0, AccessKind::Load), HitLevel::L2);
        assert_eq!(h.counters(0).llc_ref, before);
    }

    #[test]
    fn occupancy_attribution_per_core() {
        let mut h = tiny();
        for i in 0..8u64 {
            h.access(0, i * 64, AccessKind::Load);
        }
        h.access(1, 1 << 20, AccessKind::Load);
        assert_eq!(h.llc_occupancy_of_core(0), 8);
        assert_eq!(h.llc_occupancy_of_core(1), 1);
    }

    #[test]
    fn flush_mask_back_invalidates_private_caches() {
        let mut h = tiny();
        h.set_fill_mask(0, WayMask::from_way_range(0, 2));
        h.access(0, 0x40, AccessKind::Load);
        assert!(h.l1_probe(0, 0x40));
        let dropped = h.flush_mask(WayMask::from_way_range(0, 2));
        assert_eq!(dropped, 1);
        assert!(!h.llc_probe(0x40));
        assert!(!h.l1_probe(0, 0x40), "flush must reach the L1 (inclusive)");
        assert!(!h.l2_probe(0, 0x40));
    }

    #[test]
    fn flush_all_empties_hierarchy() {
        let mut h = tiny();
        for i in 0..20u64 {
            h.access(0, i * 64, AccessKind::Store);
        }
        h.flush_all();
        assert_eq!(h.llc_occupancy(), 0);
        assert_eq!(h.access(0, 0, AccessKind::Load), HitLevel::Dram);
    }
}
