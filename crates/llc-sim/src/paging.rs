//! Virtual-to-physical translation with 4 KiB and 2 MiB pages.
//!
//! The paper's conflict-miss analysis (Figures 2 and 3) hinges on one fact:
//! a contiguous *virtual* buffer is scattered across *physical* frames, so
//! the number of lines landing in each LLC set is binomially distributed
//! rather than uniform, and a way-restricted partition suffers conflict
//! misses even when its capacity equals the working set. Huge pages reduce
//! (but, once the working set spans several huge pages, do not eliminate)
//! the effect.
//!
//! [`FrameAllocator`] hands out physical frames either **randomized**
//! (default OS behavior after memory has been churned) or **contiguous**
//! (the idealized placement, also used for huge-page interiors which are
//! physically contiguous by construction). [`PageMapper`] demand-maps
//! virtual pages on first touch.

use std::collections::{HashMap, HashSet};

use smallrng::SmallRng;

use crate::address::{PhysAddr, VirtAddr};
use crate::coloring::ColorSet;

/// Page size used by a mapper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum PageSize {
    /// Regular 4 KiB pages.
    Small,
    /// 2 MiB huge pages (x86 PMD-level).
    Huge,
}

impl PageSize {
    /// log2 of the page size in bytes.
    #[inline]
    pub fn shift(self) -> u32 {
        match self {
            PageSize::Small => 12,
            PageSize::Huge => 21,
        }
    }

    /// Page size in bytes.
    #[inline]
    pub fn bytes(self) -> u64 {
        1 << self.shift()
    }

    /// Number of 4 KiB frames covered by one page of this size.
    #[inline]
    pub fn small_frames(self) -> u64 {
        self.bytes() >> PageSize::Small.shift()
    }
}

/// Physical frame placement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FramePolicy {
    /// Frames are drawn uniformly at random from the free pool. This models
    /// a long-running host whose physical memory is fragmented, and is the
    /// regime in which the paper's conflict misses appear.
    Randomized,
    /// Frames are handed out in ascending order, producing physically
    /// contiguous buffers (the best case for way-restricted partitions).
    Contiguous,
}

/// Allocates physical frames from a fixed-size pool.
///
/// Internally tracks 4 KiB frames; a huge-page allocation claims a naturally
/// aligned run of 512 of them.
#[derive(Debug)]
pub struct FrameAllocator {
    total_small_frames: u64,
    used: HashSet<u64>,
    bump_next: u64,
    policy: FramePolicy,
    rng: SmallRng,
}

impl FrameAllocator {
    /// Creates an allocator over `memory_bytes` of physical memory.
    ///
    /// # Panics
    ///
    /// Panics if `memory_bytes` is smaller than one huge page.
    pub fn new(memory_bytes: u64, policy: FramePolicy, seed: u64) -> Self {
        assert!(
            memory_bytes >= PageSize::Huge.bytes(),
            "physical memory must hold at least one huge page"
        );
        FrameAllocator {
            total_small_frames: memory_bytes >> PageSize::Small.shift(),
            used: HashSet::new(),
            bump_next: 0,
            policy,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Total pool capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.total_small_frames << PageSize::Small.shift()
    }

    /// Bytes currently allocated.
    pub fn used_bytes(&self) -> u64 {
        (self.used.len() as u64) << PageSize::Small.shift()
    }

    /// Allocates one page of `size`, returning the physical address of its
    /// first byte, or `None` when the pool is exhausted.
    pub fn allocate(&mut self, size: PageSize) -> Option<PhysAddr> {
        self.allocate_colored(size, None)
    }

    /// Allocates one page whose frame color is permitted by `colors`
    /// (OS page coloring; see [`crate::coloring`]). `None` colors means
    /// any frame.
    pub fn allocate_colored(
        &mut self,
        size: PageSize,
        colors: Option<&ColorSet>,
    ) -> Option<PhysAddr> {
        // Route through the external-RNG path with the allocator's own
        // stream. The clone-swap sidesteps borrowing `self.rng` while
        // `self` is mutably borrowed; xoshiro state is four words, so the
        // copy is free.
        let mut rng = self.rng.clone();
        let out = self.allocate_colored_with(size, colors, &mut rng);
        self.rng = rng;
        out
    }

    /// Like [`FrameAllocator::allocate_colored`], but randomized placement
    /// draws from `rng` instead of the allocator's internal stream.
    ///
    /// The engine gives every VM its own placement stream (derived from the
    /// scenario seed and the VM index) so that adding or removing one VM
    /// never reshuffles another VM's frames.
    pub fn allocate_colored_with(
        &mut self,
        size: PageSize,
        colors: Option<&ColorSet>,
        rng: &mut SmallRng,
    ) -> Option<PhysAddr> {
        let span = size.small_frames();
        let slots = self.total_small_frames / span;
        if slots == 0 {
            return None;
        }
        match self.policy {
            FramePolicy::Contiguous => self.allocate_bump(span, slots, size, colors),
            FramePolicy::Randomized => self.allocate_random(span, slots, size, colors, rng),
        }
    }

    fn slot_permitted(
        &self,
        start_frame: u64,
        span: u64,
        size: PageSize,
        colors: Option<&ColorSet>,
    ) -> bool {
        if !self.run_free(start_frame, span) {
            return false;
        }
        match colors {
            None => true,
            Some(c) => c.permits_frame(start_frame << PageSize::Small.shift(), size),
        }
    }

    fn run_free(&self, start_frame: u64, span: u64) -> bool {
        (start_frame..start_frame + span).all(|f| !self.used.contains(&f))
    }

    fn claim(&mut self, start_frame: u64, span: u64) -> PhysAddr {
        for f in start_frame..start_frame + span {
            self.used.insert(f);
        }
        PhysAddr(start_frame << PageSize::Small.shift())
    }

    fn allocate_bump(
        &mut self,
        span: u64,
        slots: u64,
        size: PageSize,
        colors: Option<&ColorSet>,
    ) -> Option<PhysAddr> {
        // Align the bump pointer to the allocation span, then scan forward.
        let mut slot = self.bump_next.div_ceil(span);
        let mut scanned = 0;
        while scanned < slots {
            let wrapped = slot % slots;
            let start = wrapped * span;
            if self.slot_permitted(start, span, size, colors) {
                self.bump_next = start + span;
                return Some(self.claim(start, span));
            }
            slot += 1;
            scanned += 1;
        }
        None
    }

    fn allocate_random(
        &mut self,
        span: u64,
        slots: u64,
        size: PageSize,
        colors: Option<&ColorSet>,
        rng: &mut SmallRng,
    ) -> Option<PhysAddr> {
        // Rejection-sample aligned slots; fall back to a linear sweep when
        // the pool (or the color class) is nearly full so allocation never
        // spuriously fails.
        for _ in 0..128 {
            let slot = rng.gen_range(0..slots);
            let start = slot * span;
            if self.slot_permitted(start, span, size, colors) {
                return Some(self.claim(start, span));
            }
        }
        let offset = rng.gen_range(0..slots);
        for i in 0..slots {
            let start = ((offset + i) % slots) * span;
            if self.slot_permitted(start, span, size, colors) {
                return Some(self.claim(start, span));
            }
        }
        None
    }

    /// Releases one page previously returned by [`FrameAllocator::allocate`].
    pub fn free(&mut self, base: PhysAddr, size: PageSize) {
        let first = base.0 >> PageSize::Small.shift();
        for f in first..first + size.small_frames() {
            self.used.remove(&f);
        }
    }
}

/// Demand-paged virtual address space.
#[derive(Debug)]
pub struct PageMapper {
    page_size: PageSize,
    table: HashMap<u64, PhysAddr>,
}

impl PageMapper {
    /// Creates an empty address space using pages of `page_size`.
    pub fn new(page_size: PageSize) -> Self {
        PageMapper {
            page_size,
            table: HashMap::new(),
        }
    }

    /// The mapper's page size.
    pub fn page_size(&self) -> PageSize {
        self.page_size
    }

    /// Number of pages currently mapped.
    pub fn mapped_pages(&self) -> usize {
        self.table.len()
    }

    /// Translates `vaddr`, allocating a frame on first touch.
    ///
    /// Returns `None` only when the physical pool is exhausted.
    pub fn translate(&mut self, vaddr: VirtAddr, frames: &mut FrameAllocator) -> Option<PhysAddr> {
        self.translate_colored(vaddr, frames, None)
    }

    /// Translates `vaddr`, demand-allocating only frames whose color is
    /// permitted by `colors` (OS page coloring).
    pub fn translate_colored(
        &mut self,
        vaddr: VirtAddr,
        frames: &mut FrameAllocator,
        colors: Option<&ColorSet>,
    ) -> Option<PhysAddr> {
        let shift = self.page_size.shift();
        let vpage = vaddr.page_number(shift);
        let base = match self.table.get(&vpage) {
            Some(base) => *base,
            None => {
                let base = frames.allocate_colored(self.page_size, colors)?;
                self.table.insert(vpage, base);
                base
            }
        };
        Some(PhysAddr(base.0 + vaddr.page_offset(shift)))
    }

    /// Like [`PageMapper::translate`], but demand allocation draws frame
    /// placement randomness from `rng` (the owning VM's private stream)
    /// instead of the allocator's shared one.
    pub fn translate_with(
        &mut self,
        vaddr: VirtAddr,
        frames: &mut FrameAllocator,
        rng: &mut SmallRng,
    ) -> Option<PhysAddr> {
        let shift = self.page_size.shift();
        let vpage = vaddr.page_number(shift);
        let base = match self.table.get(&vpage) {
            Some(base) => *base,
            None => {
                let base = frames.allocate_colored_with(self.page_size, None, rng)?;
                self.table.insert(vpage, base);
                base
            }
        };
        Some(PhysAddr(base.0 + vaddr.page_offset(shift)))
    }

    /// Unmaps everything, returning the frames to `frames`.
    pub fn clear(&mut self, frames: &mut FrameAllocator) {
        // The page table stays a HashMap (translate() runs per memory
        // reference; O(1) lookup is the point). Draining it here visits
        // entries in hasher order, but freeing is commutative: the free
        // list the allocator rebuilds is a set, and allocation order is
        // driven by the RNG stream, not by insertion order of frees.
        // lint: allow(DL006, frees are commutative; no iteration order escapes)
        for (_, base) in self.table.drain() {
            frames.free(base, self.page_size);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pool(policy: FramePolicy) -> FrameAllocator {
        FrameAllocator::new(64 * 1024 * 1024, policy, 42)
    }

    #[test]
    fn page_size_arithmetic() {
        assert_eq!(PageSize::Small.bytes(), 4096);
        assert_eq!(PageSize::Huge.bytes(), 2 * 1024 * 1024);
        assert_eq!(PageSize::Huge.small_frames(), 512);
    }

    #[test]
    fn contiguous_allocation_is_sequential() {
        let mut a = pool(FramePolicy::Contiguous);
        let p0 = a.allocate(PageSize::Small).unwrap();
        let p1 = a.allocate(PageSize::Small).unwrap();
        assert_eq!(p1.0, p0.0 + 4096);
    }

    #[test]
    fn randomized_allocation_scatters() {
        let mut a = pool(FramePolicy::Randomized);
        let addrs: Vec<u64> = (0..16)
            .map(|_| a.allocate(PageSize::Small).unwrap().0)
            .collect();
        let sequential = addrs.windows(2).all(|w| w[1] == w[0] + 4096);
        assert!(
            !sequential,
            "random placement should not be fully sequential"
        );
        // No duplicates.
        let mut sorted = addrs.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), addrs.len());
    }

    #[test]
    fn huge_pages_are_naturally_aligned() {
        let mut a = pool(FramePolicy::Randomized);
        for _ in 0..8 {
            let p = a.allocate(PageSize::Huge).unwrap();
            assert_eq!(p.0 % PageSize::Huge.bytes(), 0);
        }
    }

    #[test]
    fn pool_exhaustion_returns_none() {
        let mut a = FrameAllocator::new(2 * 1024 * 1024, FramePolicy::Contiguous, 1);
        assert!(a.allocate(PageSize::Huge).is_some());
        assert!(a.allocate(PageSize::Huge).is_none());
        assert!(a.allocate(PageSize::Small).is_none());
    }

    #[test]
    fn free_makes_frames_reusable() {
        let mut a = FrameAllocator::new(2 * 1024 * 1024, FramePolicy::Contiguous, 1);
        let p = a.allocate(PageSize::Huge).unwrap();
        a.free(p, PageSize::Huge);
        assert!(a.allocate(PageSize::Huge).is_some());
    }

    #[test]
    fn translation_is_stable_and_offset_preserving() {
        let mut frames = pool(FramePolicy::Randomized);
        let mut m = PageMapper::new(PageSize::Small);
        let p1 = m.translate(VirtAddr(0x1234), &mut frames).unwrap();
        let p2 = m.translate(VirtAddr(0x1234), &mut frames).unwrap();
        assert_eq!(p1, p2);
        assert_eq!(p1.0 & 0xfff, 0x234);
        // Same page, different offset: same frame.
        let p3 = m.translate(VirtAddr(0x1000), &mut frames).unwrap();
        assert_eq!(p3.0 & !0xfff, p1.0 & !0xfff);
        assert_eq!(m.mapped_pages(), 1);
    }

    #[test]
    fn distinct_virtual_pages_get_distinct_frames() {
        let mut frames = pool(FramePolicy::Randomized);
        let mut m = PageMapper::new(PageSize::Small);
        let a = m.translate(VirtAddr(0), &mut frames).unwrap();
        let b = m.translate(VirtAddr(4096), &mut frames).unwrap();
        assert_ne!(a.0 >> 12, b.0 >> 12);
    }

    #[test]
    fn clear_returns_frames() {
        let mut frames = FrameAllocator::new(2 * 1024 * 1024, FramePolicy::Contiguous, 1);
        let mut m = PageMapper::new(PageSize::Small);
        for i in 0..512u64 {
            m.translate(VirtAddr(i * 4096), &mut frames).unwrap();
        }
        assert!(frames.allocate(PageSize::Small).is_none());
        m.clear(&mut frames);
        assert_eq!(m.mapped_pages(), 0);
        assert!(frames.allocate(PageSize::Small).is_some());
    }

    #[test]
    fn external_rng_controls_random_placement() {
        // Two allocators with different internal seeds, driven by identical
        // external streams, must hand out identical frame sequences.
        let mut a = FrameAllocator::new(64 * 1024 * 1024, FramePolicy::Randomized, 1);
        let mut b = FrameAllocator::new(64 * 1024 * 1024, FramePolicy::Randomized, 2);
        let mut ra = SmallRng::seed_from_u64(99);
        let mut rb = SmallRng::seed_from_u64(99);
        for _ in 0..32 {
            let pa = a
                .allocate_colored_with(PageSize::Small, None, &mut ra)
                .unwrap();
            let pb = b
                .allocate_colored_with(PageSize::Small, None, &mut rb)
                .unwrap();
            assert_eq!(pa, pb);
        }
        // And the internal-stream path still works after external draws.
        assert!(a.allocate(PageSize::Small).is_some());
    }

    #[test]
    fn translate_with_matches_per_stream_determinism() {
        let mut frames = pool(FramePolicy::Randomized);
        let mut m1 = PageMapper::new(PageSize::Small);
        let mut m2 = PageMapper::new(PageSize::Small);
        let mut r1 = SmallRng::seed_from_u64(7);
        let mut r2 = SmallRng::seed_from_u64(7);
        let mut frames2 = pool(FramePolicy::Randomized);
        for i in 0..16u64 {
            let p1 = m1
                .translate_with(VirtAddr(i * 4096), &mut frames, &mut r1)
                .unwrap();
            let p2 = m2
                .translate_with(VirtAddr(i * 4096), &mut frames2, &mut r2)
                .unwrap();
            assert_eq!(p1, p2);
        }
    }

    #[test]
    fn huge_page_interior_is_contiguous() {
        let mut frames = pool(FramePolicy::Randomized);
        let mut m = PageMapper::new(PageSize::Huge);
        let base = m.translate(VirtAddr(0), &mut frames).unwrap();
        let mid = m.translate(VirtAddr(1024 * 1024), &mut frames).unwrap();
        assert_eq!(mid.0, base.0 + 1024 * 1024);
    }
}
