//! Per-core event counters mirroring the paper's Table 2 MSR events.
//!
//! dCat reads five events per core: L1 references, LLC references, LLC
//! misses, retired instructions, and unhalted cycles. The simulator
//! maintains exactly those (plus L2 figures used by the latency model) and
//! the `perf-events` crate turns raw counts into the derived metrics the
//! controller consumes.

/// Monotonic per-core event counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CoreCounters {
    /// L1 data-cache references. Every load/store counts, hit or miss;
    /// the paper uses this to estimate memory accesses per instruction.
    pub l1_ref: u64,
    /// L1 misses (therefore L2 references).
    pub l1_miss: u64,
    /// L2 misses (therefore LLC references). This is the paper's `llc_ref`.
    pub llc_ref: u64,
    /// LLC misses (DRAM accesses). This is the paper's `llc_miss`.
    pub llc_miss: u64,
    /// Retired instructions.
    pub ret_ins: u64,
    /// Unhalted core cycles.
    pub cycles: u64,
}

impl CoreCounters {
    /// Component-wise difference `self - earlier`, for interval metrics.
    ///
    /// Saturates at zero so a reset (counter wrap, workload swap) cannot
    /// produce nonsense negative intervals.
    pub fn delta_since(&self, earlier: &CoreCounters) -> CoreCounters {
        CoreCounters {
            l1_ref: self.l1_ref.saturating_sub(earlier.l1_ref),
            l1_miss: self.l1_miss.saturating_sub(earlier.l1_miss),
            llc_ref: self.llc_ref.saturating_sub(earlier.llc_ref),
            llc_miss: self.llc_miss.saturating_sub(earlier.llc_miss),
            ret_ins: self.ret_ins.saturating_sub(earlier.ret_ins),
            cycles: self.cycles.saturating_sub(earlier.cycles),
        }
    }

    /// Component-wise sum, for aggregating the cores of a multi-core VM.
    pub fn merged_with(&self, other: &CoreCounters) -> CoreCounters {
        CoreCounters {
            l1_ref: self.l1_ref.saturating_add(other.l1_ref),
            l1_miss: self.l1_miss.saturating_add(other.l1_miss),
            llc_ref: self.llc_ref.saturating_add(other.llc_ref),
            llc_miss: self.llc_miss.saturating_add(other.llc_miss),
            ret_ins: self.ret_ins.saturating_add(other.ret_ins),
            cycles: self.cycles.saturating_add(other.cycles),
        }
    }

    /// Resets every counter to zero.
    pub fn reset(&mut self) {
        *self = CoreCounters::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> CoreCounters {
        CoreCounters {
            l1_ref: 100,
            l1_miss: 40,
            llc_ref: 30,
            llc_miss: 10,
            ret_ins: 400,
            cycles: 1000,
        }
    }

    #[test]
    fn delta_is_componentwise() {
        let a = sample();
        let mut b = a;
        b.l1_ref += 5;
        b.llc_miss += 2;
        b.cycles += 100;
        let d = b.delta_since(&a);
        assert_eq!(d.l1_ref, 5);
        assert_eq!(d.llc_miss, 2);
        assert_eq!(d.cycles, 100);
        assert_eq!(d.ret_ins, 0);
    }

    #[test]
    fn delta_saturates_on_reset() {
        let a = sample();
        let d = CoreCounters::default().delta_since(&a);
        assert_eq!(d, CoreCounters::default());
    }

    #[test]
    fn merge_sums_counts() {
        let m = sample().merged_with(&sample());
        assert_eq!(m.l1_ref, 200);
        assert_eq!(m.cycles, 2000);
    }

    #[test]
    fn merge_saturates_at_counter_width() {
        let mut a = sample();
        a.cycles = u64::MAX - 1;
        let mut b = sample();
        b.cycles = 2;
        let m = a.merged_with(&b);
        assert_eq!(m.cycles, u64::MAX);
        assert_eq!(m.l1_ref, 200, "non-saturating components still add");
    }

    #[test]
    fn reset_zeroes() {
        let mut c = sample();
        c.reset();
        assert_eq!(c, CoreCounters::default());
    }
}
