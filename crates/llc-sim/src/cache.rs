//! A complete set-associative cache array with per-requestor fill masks.

use crate::address::LineAddr;
use crate::geometry::CacheGeometry;
use crate::replacement::ReplacementPolicy;
use crate::set::{CacheSet, FillResult};

/// A bitmask over cache ways, mirroring a CAT capacity bitmask (CBM).
///
/// Bit `i` set means way `i` may be *filled* by the holder of the mask.
/// Lookups are never masked — CAT restricts allocation, not hits.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct WayMask(pub u32);

impl WayMask {
    /// A mask permitting every way of a cache with `ways` ways.
    #[inline]
    pub fn all(ways: u32) -> Self {
        debug_assert!((1..=32).contains(&ways));
        if ways == 32 {
            WayMask(u32::MAX)
        } else {
            WayMask((1u32 << ways) - 1)
        }
    }

    /// A contiguous mask of `count` ways starting at way `start`.
    #[inline]
    pub fn from_way_range(start: u32, count: u32) -> Self {
        debug_assert!(start + count <= 32);
        if count == 0 {
            return WayMask(0);
        }
        let bits = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        WayMask(bits << start)
    }

    /// Whether way `way` is permitted.
    #[inline]
    pub fn contains(self, way: u32) -> bool {
        way < 32 && self.0 & (1 << way) != 0
    }

    /// Number of permitted ways.
    #[inline]
    pub fn count(self) -> u32 {
        self.0.count_ones()
    }

    /// Whether no way is permitted.
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the set bits form one contiguous run (an Intel CAT
    /// requirement for capacity bitmasks).
    pub fn is_contiguous(self) -> bool {
        if self.0 == 0 {
            return false;
        }
        let shifted = u64::from(self.0 >> self.0.trailing_zeros());
        (shifted & (shifted + 1)) == 0
    }

    /// Whether the two masks share any way.
    #[inline]
    pub fn overlaps(self, other: WayMask) -> bool {
        self.0 & other.0 != 0
    }

    /// Iterates over the permitted way indices in ascending order.
    pub fn ways(self) -> impl Iterator<Item = u32> {
        (0..32).filter(move |w| self.contains(*w))
    }
}

/// Whether an access hit or missed, and what the miss displaced.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessOutcome {
    /// The line was resident.
    Hit,
    /// The line was not resident; it has been filled, evicting `evicted`
    /// from the fill-mask partition if the partition was full.
    Miss {
        /// Line displaced by the fill, if any.
        evicted: Option<LineAddr>,
    },
}

impl AccessOutcome {
    /// Convenience predicate.
    #[inline]
    pub fn is_hit(self) -> bool {
        matches!(self, AccessOutcome::Hit)
    }
}

/// A set-associative cache indexed by physical line address.
#[derive(Debug, Clone)]
pub struct SetAssocCache {
    geometry: CacheGeometry,
    policy: ReplacementPolicy,
    sets: Vec<CacheSet>,
    clock: u64,
    // Cheap xorshift state for Random victims / BIP insertion draws;
    // deterministic so simulations are reproducible.
    draw_state: u64,
}

impl SetAssocCache {
    /// Creates an empty LRU cache of the given geometry.
    pub fn new(geometry: CacheGeometry) -> Self {
        SetAssocCache::with_policy(geometry, ReplacementPolicy::Lru)
    }

    /// Creates an empty cache using `policy` for replacement/insertion.
    pub fn with_policy(geometry: CacheGeometry, policy: ReplacementPolicy) -> Self {
        let sets = (0..geometry.sets)
            .map(|_| CacheSet::new(geometry.ways))
            .collect();
        SetAssocCache {
            geometry,
            policy,
            sets,
            clock: 0,
            draw_state: 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// The cache's shape.
    #[inline]
    pub fn geometry(&self) -> CacheGeometry {
        self.geometry
    }

    /// The cache's replacement policy.
    #[inline]
    pub fn policy(&self) -> ReplacementPolicy {
        self.policy
    }

    /// Next pseudo-random draw (xorshift64*).
    fn next_draw(&mut self) -> u64 {
        let mut x = self.draw_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.draw_state = x;
        x.wrapping_mul(0x2545_F491_4F6C_DD1D)
    }

    /// Performs an access with the given fill mask.
    ///
    /// On a miss the line is filled into a way permitted by `mask`.
    pub fn access(&mut self, line: LineAddr, mask: WayMask) -> AccessOutcome {
        self.access_as(line, mask, 0)
    }

    /// Performs an access attributed to requestor `owner` (a core id),
    /// tagging any filled line for occupancy monitoring — the simulator's
    /// analogue of Intel CMT's RMID tagging.
    pub fn access_as(&mut self, line: LineAddr, mask: WayMask, owner: u32) -> AccessOutcome {
        self.clock += 1;
        let now = self.clock;
        let draw = self.next_draw();
        let policy = self.policy;
        let idx = self.geometry.set_index(line) as usize;
        let set = &mut self.sets[idx];
        if set.lookup_with(line, now, policy).is_some() {
            return AccessOutcome::Hit;
        }
        let FillResult { evicted, .. } = set.fill_with(line, mask, now, owner, policy, draw);
        AccessOutcome::Miss { evicted }
    }

    /// Checks residency without updating replacement state.
    pub fn probe(&self, line: LineAddr) -> bool {
        let idx = self.geometry.set_index(line) as usize;
        self.sets[idx].probe(line).is_some()
    }

    /// Drops `line` if resident; returns whether it was.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        let idx = self.geometry.set_index(line) as usize;
        self.sets[idx].invalidate(line)
    }

    /// Empties the whole cache.
    pub fn flush(&mut self) {
        for set in &mut self.sets {
            set.flush();
        }
    }

    /// Total resident lines.
    pub fn occupancy(&self) -> u64 {
        self.sets.iter().map(|s| u64::from(s.occupancy())).sum()
    }

    /// Resident lines within the ways permitted by `mask`, across all sets.
    pub fn occupancy_in(&self, mask: WayMask) -> u64 {
        self.sets
            .iter()
            .map(|s| u64::from(s.occupancy_in(mask)))
            .sum()
    }

    /// Read-only access to a set (for occupancy statistics).
    pub fn set(&self, index: u32) -> &CacheSet {
        &self.sets[index as usize]
    }

    /// Lines resident that were filled by `owner`, across all sets.
    pub fn occupancy_of(&self, owner: u32) -> u64 {
        self.sets
            .iter()
            .map(|s| u64::from(s.occupancy_of(owner)))
            .sum()
    }

    /// Invalidates every line in the ways permitted by `mask`, returning
    /// the dropped lines. This models the paper's Section-6 observation
    /// that Intel has no instruction to clear a cache way, so operators
    /// run a user-level flush pass after reassigning ways.
    pub fn invalidate_ways(&mut self, mask: WayMask) -> Vec<LineAddr> {
        let mut dropped = Vec::new();
        for set in &mut self.sets {
            dropped.extend(set.invalidate_ways(mask));
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small() -> SetAssocCache {
        SetAssocCache::new(CacheGeometry::new(16, 4, 64))
    }

    #[test]
    fn way_mask_all_and_range() {
        assert_eq!(WayMask::all(4).0, 0b1111);
        assert_eq!(WayMask::all(32).0, u32::MAX);
        assert_eq!(WayMask::from_way_range(2, 3).0, 0b11100);
        assert_eq!(WayMask::from_way_range(0, 32).0, u32::MAX);
        assert_eq!(WayMask::from_way_range(5, 0).0, 0);
    }

    #[test]
    fn way_mask_contiguity() {
        assert!(WayMask(0b0110).is_contiguous());
        assert!(WayMask(0b1).is_contiguous());
        assert!(WayMask(u32::MAX).is_contiguous());
        assert!(!WayMask(0b0101).is_contiguous());
        assert!(!WayMask(0).is_contiguous());
    }

    #[test]
    fn way_mask_overlap_and_iteration() {
        let a = WayMask::from_way_range(0, 2);
        let b = WayMask::from_way_range(1, 2);
        let c = WayMask::from_way_range(2, 2);
        assert!(a.overlaps(b));
        assert!(!a.overlaps(c));
        assert_eq!(b.ways().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn miss_then_hit() {
        let mut c = small();
        let mask = WayMask::all(4);
        assert!(!c.access(LineAddr(1), mask).is_hit());
        assert!(c.access(LineAddr(1), mask).is_hit());
    }

    #[test]
    fn capacity_eviction_within_partition() {
        let mut c = small();
        let mask = WayMask::from_way_range(0, 1);
        // Two lines mapping to the same set with a 1-way partition thrash.
        let a = LineAddr(0);
        let b = LineAddr(16); // same set (16 sets)
        assert!(!c.access(a, mask).is_hit());
        match c.access(b, mask) {
            AccessOutcome::Miss { evicted } => assert_eq!(evicted, Some(a)),
            AccessOutcome::Hit => panic!("expected miss"),
        }
        assert!(!c.probe(a));
    }

    #[test]
    fn occupancy_never_exceeds_partition_capacity() {
        let mut c = small();
        let mask = WayMask::from_way_range(1, 2);
        for i in 0..1000u64 {
            c.access(LineAddr(i), mask);
        }
        // 16 sets x 2 permitted ways.
        assert!(c.occupancy_in(mask) <= 32);
        assert_eq!(c.occupancy(), c.occupancy_in(mask));
    }

    #[test]
    fn occupancy_attributed_to_filling_owner() {
        let mut c = small();
        let mask = WayMask::all(4);
        for i in 0..10u64 {
            c.access_as(LineAddr(i), mask, 1);
        }
        for i in 100..104u64 {
            c.access_as(LineAddr(i), mask, 2);
        }
        assert_eq!(c.occupancy_of(1), 10);
        assert_eq!(c.occupancy_of(2), 4);
        assert_eq!(c.occupancy_of(3), 0);
        // A hit by another owner does not re-attribute the line (CMT
        // attributes to the RMID that filled it).
        c.access_as(LineAddr(0), mask, 2);
        assert_eq!(c.occupancy_of(1), 10);
    }

    #[test]
    fn invalidate_ways_drops_only_masked_ways() {
        let mut c = small();
        let low = WayMask::from_way_range(0, 2);
        let high = WayMask::from_way_range(2, 2);
        c.access(LineAddr(1), low);
        c.access(LineAddr(2), high);
        let dropped = c.invalidate_ways(low);
        assert_eq!(dropped, vec![LineAddr(1)]);
        assert!(!c.probe(LineAddr(1)));
        assert!(c.probe(LineAddr(2)));
    }

    #[test]
    fn bip_resists_a_scan() {
        // Working set of 4 lines in a 1-set, 8-way cache, then a long
        // scan. Under LRU the scan evicts the working set; under BIP the
        // scan inserts at LRU position and mostly evicts itself.
        let geometry = CacheGeometry::new(1, 8, 64);
        let run = |policy: crate::ReplacementPolicy| -> usize {
            let mut c = SetAssocCache::with_policy(geometry, policy);
            let mask = WayMask::all(8);
            for round in 0..4 {
                for line in 0..4u64 {
                    c.access(LineAddr(line), mask);
                }
                let _ = round;
            }
            // A scan of 64 distinct lines.
            for line in 100..164u64 {
                c.access(LineAddr(line), mask);
            }
            (0..4u64).filter(|l| c.probe(LineAddr(*l))).count()
        };
        let lru_survivors = run(crate::ReplacementPolicy::Lru);
        let bip_survivors = run(crate::ReplacementPolicy::bip());
        assert_eq!(
            lru_survivors, 0,
            "LRU must lose the working set to the scan"
        );
        assert!(
            bip_survivors >= 3,
            "BIP should keep the hot working set, kept {bip_survivors}"
        );
    }

    #[test]
    fn fifo_does_not_promote_on_hit() {
        let geometry = CacheGeometry::new(1, 2, 64);
        let mut c = SetAssocCache::with_policy(geometry, crate::ReplacementPolicy::Fifo);
        let mask = WayMask::all(2);
        c.access(LineAddr(1), mask);
        c.access(LineAddr(2), mask);
        // Re-touch line 1; under FIFO that does not save it.
        c.access(LineAddr(1), mask);
        c.access(LineAddr(3), mask);
        assert!(!c.probe(LineAddr(1)), "FIFO evicts the oldest insert");
        assert!(c.probe(LineAddr(2)));
    }

    #[test]
    fn random_policy_stays_within_partition() {
        let geometry = CacheGeometry::new(4, 8, 64);
        let mut c = SetAssocCache::with_policy(geometry, crate::ReplacementPolicy::Random);
        let mask = WayMask::from_way_range(2, 3);
        for line in 0..500u64 {
            c.access(LineAddr(line), mask);
        }
        assert_eq!(c.occupancy(), c.occupancy_in(mask));
        assert!(c.occupancy_in(mask) <= 12);
    }

    #[test]
    fn flush_resets_occupancy() {
        let mut c = small();
        for i in 0..50u64 {
            c.access(LineAddr(i), WayMask::all(4));
        }
        assert!(c.occupancy() > 0);
        c.flush();
        assert_eq!(c.occupancy(), 0);
    }
}
