//! A single cache set: tag store, LRU ordering, and mask-restricted fill.
//!
//! The set is the unit where CAT semantics live. A lookup may hit in *any*
//! way (CAT restricts allocation, not lookup), while a fill may only claim a
//! way permitted by the requesting core's fill mask, evicting the
//! least-recently-used line among the permitted ways when they are all
//! occupied.

use crate::address::LineAddr;
use crate::cache::WayMask;
use crate::replacement::ReplacementPolicy;

/// One resident line: its address tag, an LRU timestamp, and the id of
/// the requestor that filled it (the analogue of Intel CMT's RMID tag,
/// which is how real hardware attributes LLC occupancy to tenants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEntry {
    /// Full line address (the simulator stores the whole line number rather
    /// than a truncated tag; equality is what matters, not storage economy).
    pub line: LineAddr,
    /// Monotonic last-use stamp; larger means more recently used.
    pub last_use: u64,
    /// Requestor (core) that brought the line in.
    pub owner: u32,
}

/// Result of a fill into a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillResult {
    /// Way index that received the line.
    pub way: u32,
    /// Line that was evicted to make room, if any.
    pub evicted: Option<LineAddr>,
}

/// A single set of a set-associative cache.
#[derive(Debug, Clone)]
pub struct CacheSet {
    ways: Vec<Option<LineEntry>>,
}

impl CacheSet {
    /// Creates an empty set with the given associativity.
    pub fn new(ways: u32) -> Self {
        CacheSet {
            ways: vec![None; ways as usize],
        }
    }

    /// Number of ways in this set.
    #[inline]
    pub fn way_count(&self) -> u32 {
        self.ways.len() as u32
    }

    /// Looks up a line; on a hit, refreshes its LRU stamp (unless the
    /// policy does not promote on hits) and returns the way.
    pub fn lookup(&mut self, line: LineAddr, now: u64) -> Option<u32> {
        self.lookup_with(line, now, ReplacementPolicy::Lru)
    }

    /// Policy-aware lookup.
    pub fn lookup_with(
        &mut self,
        line: LineAddr,
        now: u64,
        policy: ReplacementPolicy,
    ) -> Option<u32> {
        for (idx, slot) in self.ways.iter_mut().enumerate() {
            if let Some(entry) = slot {
                if entry.line == line {
                    if policy.promotes_on_hit() {
                        entry.last_use = now;
                    }
                    return Some(idx as u32);
                }
            }
        }
        None
    }

    /// Checks residency without perturbing LRU state (a *probe*).
    pub fn probe(&self, line: LineAddr) -> Option<u32> {
        self.ways
            .iter()
            .position(|slot| slot.map(|e| e.line) == Some(line))
            .map(|idx| idx as u32)
    }

    /// Fills `line` into a way permitted by `mask`, evicting the LRU line
    /// among the permitted ways if none is free. The line is tagged with
    /// `owner` for occupancy attribution.
    ///
    /// # Panics
    ///
    /// Panics if `mask` permits no way within this set's associativity;
    /// CAT forbids empty masks (Intel x86 does not allow a zero-way COS) and
    /// upper layers validate masks before they reach the set.
    pub fn fill(&mut self, line: LineAddr, mask: WayMask, now: u64, owner: u32) -> FillResult {
        self.fill_with(line, mask, now, owner, ReplacementPolicy::Lru, 0)
    }

    /// Policy-aware fill. `draw` is a pseudo-random value supplied by the
    /// cache (used by Random victim selection and BIP insertion); passing
    /// any constant degrades those policies but stays correct.
    pub fn fill_with(
        &mut self,
        line: LineAddr,
        mask: WayMask,
        now: u64,
        owner: u32,
        policy: ReplacementPolicy,
        draw: u64,
    ) -> FillResult {
        debug_assert!(
            self.probe(line).is_none(),
            "fill of a line that is already resident"
        );
        // Insertion stamp: BIP inserts at the LRU position (stamp 0) except
        // one fill in `mru_one_in`.
        let insert_stamp = match policy {
            ReplacementPolicy::Bip { mru_one_in } => {
                if mru_one_in <= 1 || draw.is_multiple_of(u64::from(mru_one_in)) {
                    now
                } else {
                    0
                }
            }
            _ => now,
        };

        // Prefer an invalid (empty) permitted way; collect candidates.
        let mut candidates: Vec<u32> = Vec::new();
        let mut victim: Option<u32> = None;
        let mut victim_stamp = u64::MAX;
        for way in 0..self.way_count() {
            if !mask.contains(way) {
                continue;
            }
            match self.ways[way as usize] {
                None => {
                    self.ways[way as usize] = Some(LineEntry {
                        line,
                        last_use: insert_stamp,
                        owner,
                    });
                    return FillResult { way, evicted: None };
                }
                Some(entry) => {
                    candidates.push(way);
                    if entry.last_use < victim_stamp {
                        victim_stamp = entry.last_use;
                        victim = Some(way);
                    }
                }
            }
        }
        let way = match policy {
            ReplacementPolicy::Random => *candidates
                .get((draw % candidates.len().max(1) as u64) as usize)
                .expect("fill mask must permit at least one way"),
            // LRU, FIFO, and BIP all evict the oldest stamp; they differ
            // in when stamps are refreshed (lookup) or assigned (insert).
            _ => victim.expect("fill mask must permit at least one way"),
        };
        let evicted = self.ways[way as usize].map(|e| e.line);
        self.ways[way as usize] = Some(LineEntry {
            line,
            last_use: insert_stamp,
            owner,
        });
        FillResult { way, evicted }
    }

    /// Invalidates `line` if resident (used for inclusive back-invalidation).
    ///
    /// Returns `true` when a line was actually dropped.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        for slot in self.ways.iter_mut() {
            if slot.map(|e| e.line) == Some(line) {
                *slot = None;
                return true;
            }
        }
        false
    }

    /// Clears every way of the set.
    pub fn flush(&mut self) {
        for slot in self.ways.iter_mut() {
            *slot = None;
        }
    }

    /// Number of valid lines currently resident.
    pub fn occupancy(&self) -> u32 {
        self.ways.iter().filter(|s| s.is_some()).count() as u32
    }

    /// Number of valid lines resident in ways permitted by `mask`.
    pub fn occupancy_in(&self, mask: WayMask) -> u32 {
        self.ways
            .iter()
            .enumerate()
            .filter(|(idx, slot)| slot.is_some() && mask.contains(*idx as u32))
            .count() as u32
    }

    /// Iterates over resident lines.
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        self.ways.iter().filter_map(|s| s.map(|e| e.line))
    }

    /// Number of valid lines filled by `owner`.
    pub fn occupancy_of(&self, owner: u32) -> u32 {
        self.ways
            .iter()
            .filter(|s| s.map(|e| e.owner) == Some(owner))
            .count() as u32
    }

    /// Invalidates every line resident in the ways permitted by `mask`,
    /// returning how many were dropped and which lines they were.
    pub fn invalidate_ways(&mut self, mask: WayMask) -> Vec<LineAddr> {
        let mut dropped = Vec::new();
        for (way, slot) in self.ways.iter_mut().enumerate() {
            if mask.contains(way as u32) {
                if let Some(entry) = slot.take() {
                    dropped.push(entry.line);
                }
            }
        }
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask(ways: u32) -> WayMask {
        WayMask::from_way_range(0, ways)
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut set = CacheSet::new(4);
        set.fill(LineAddr(7), full_mask(4), 1, 0);
        assert!(set.lookup(LineAddr(7), 2).is_some());
        assert!(set.lookup(LineAddr(8), 3).is_none());
    }

    #[test]
    fn fill_prefers_empty_way() {
        let mut set = CacheSet::new(2);
        let r1 = set.fill(LineAddr(1), full_mask(2), 1, 0);
        let r2 = set.fill(LineAddr(2), full_mask(2), 2, 0);
        assert_eq!(r1.evicted, None);
        assert_eq!(r2.evicted, None);
        assert_ne!(r1.way, r2.way);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut set = CacheSet::new(2);
        set.fill(LineAddr(1), full_mask(2), 1, 0);
        set.fill(LineAddr(2), full_mask(2), 2, 0);
        // Touch line 1 so line 2 becomes LRU.
        set.lookup(LineAddr(1), 3);
        let r = set.fill(LineAddr(3), full_mask(2), 4, 0);
        assert_eq!(r.evicted, Some(LineAddr(2)));
        assert!(set.probe(LineAddr(1)).is_some());
    }

    #[test]
    fn masked_fill_only_claims_permitted_ways() {
        let mut set = CacheSet::new(4);
        let low = WayMask::from_way_range(0, 2);
        for i in 0..8 {
            set.fill(LineAddr(i), low, i, 0);
        }
        // Only the two permitted ways are ever occupied.
        assert_eq!(set.occupancy(), 2);
        assert_eq!(set.occupancy_in(low), 2);
        assert_eq!(set.occupancy_in(WayMask::from_way_range(2, 2)), 0);
    }

    #[test]
    fn masked_fill_does_not_evict_other_partition() {
        let mut set = CacheSet::new(4);
        let low = WayMask::from_way_range(0, 2);
        let high = WayMask::from_way_range(2, 2);
        set.fill(LineAddr(100), high, 1, 0);
        for i in 0..10 {
            set.fill(LineAddr(i), low, 2 + i, 0);
        }
        // The high-partition line survives low-partition thrashing: that is
        // exactly the isolation CAT provides.
        assert!(set.probe(LineAddr(100)).is_some());
    }

    #[test]
    fn hit_possible_outside_fill_mask() {
        let mut set = CacheSet::new(4);
        let high = WayMask::from_way_range(2, 2);
        set.fill(LineAddr(5), high, 1, 0);
        // A core whose mask excludes ways 2-3 still *hits* on the line.
        assert!(set.lookup(LineAddr(5), 2).is_some());
    }

    #[test]
    fn invalidate_removes_line() {
        let mut set = CacheSet::new(2);
        set.fill(LineAddr(9), full_mask(2), 1, 0);
        assert!(set.invalidate(LineAddr(9)));
        assert!(!set.invalidate(LineAddr(9)));
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    fn flush_empties_set() {
        let mut set = CacheSet::new(4);
        for i in 0..4 {
            set.fill(LineAddr(i), full_mask(4), i, 0);
        }
        set.flush();
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn empty_mask_fill_panics_when_full() {
        let mut set = CacheSet::new(2);
        // A mask outside the set's associativity behaves like an empty mask.
        let bad = WayMask::from_way_range(2, 2);
        set.fill(LineAddr(1), bad, 1, 0);
    }
}
