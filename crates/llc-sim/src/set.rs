//! A single cache set: tag store, LRU ordering, and mask-restricted fill.
//!
//! The set is the unit where CAT semantics live. A lookup may hit in *any*
//! way (CAT restricts allocation, not lookup), while a fill may only claim a
//! way permitted by the requesting core's fill mask, evicting the
//! least-recently-used line among the permitted ways when they are all
//! occupied.
//!
//! # Packed representation
//!
//! The set stores its state in one contiguous allocation plus a `u32`
//! occupancy bitmask instead of a `Vec<Option<LineEntry>>`:
//!
//! ```text
//! occ:  u32 bitmask, bit w set = way w holds a valid line
//! data: [ line_0 .. line_{n-1} | stamp_0 .. stamp_{n-1} | owner_0 .. owner_{n-1} ]
//!        (u64 each; empty line slots hold INVALID_LINE so the lookup scan
//!         needs no per-way validity test)
//! ```
//!
//! The layout buys three things on the hot path:
//!
//! * **lookup** is a branch-light equality scan over a contiguous `u64`
//!   run (the tag region), which the compiler vectorizes;
//! * **victim selection** walks the set bits of `occ & mask` — no
//!   per-fill candidate `Vec` allocation (the seed implementation
//!   malloc'd one per miss, which dominated fill-churn profiles);
//! * **occupancy queries** are `count_ones` on the bitmask instead of an
//!   `Option` scan.
//!
//! Every replacement decision is bit-identical to the seed
//! `Vec<Option<LineEntry>>` implementation, which is retained as
//! [`legacy::LegacyCacheSet`] — the oracle for the equivalence property
//! test and the reference side of the `dcat-perfbench` speedup
//! measurement.

use crate::address::LineAddr;
use crate::cache::WayMask;
use crate::replacement::ReplacementPolicy;

/// Sentinel stored in empty line slots. Real line addresses are physical
/// addresses shifted right by the 6-bit line offset, so they can never
/// reach `u64::MAX`; [`CacheSet::fill_with`] debug-asserts it.
const INVALID_LINE: u64 = u64::MAX;

/// One resident line: its address tag, an LRU timestamp, and the id of
/// the requestor that filled it (the analogue of Intel CMT's RMID tag,
/// which is how real hardware attributes LLC occupancy to tenants).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LineEntry {
    /// Full line address (the simulator stores the whole line number rather
    /// than a truncated tag; equality is what matters, not storage economy).
    pub line: LineAddr,
    /// Monotonic last-use stamp; larger means more recently used.
    pub last_use: u64,
    /// Requestor (core) that brought the line in.
    pub owner: u32,
}

/// Result of a fill into a set.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FillResult {
    /// Way index that received the line.
    pub way: u32,
    /// Line that was evicted to make room, if any.
    pub evicted: Option<LineAddr>,
}

/// A single set of a set-associative cache (packed representation).
#[derive(Debug, Clone)]
pub struct CacheSet {
    /// Occupancy bitmask: bit `w` set means way `w` holds a valid line.
    occ: u32,
    /// Packed per-way state: `ways` line slots, then `ways` LRU stamps,
    /// then `ways` owner ids (widened to `u64` to keep one allocation).
    data: Box<[u64]>,
}

/// BIP insertion stamp: MRU (`now`) one fill in `mru_one_in`, LRU-position
/// (stamp 0) otherwise; every other policy inserts at MRU. Shared by the
/// packed and legacy implementations so they cannot drift.
#[inline]
fn insertion_stamp(policy: ReplacementPolicy, now: u64, draw: u64) -> u64 {
    match policy {
        ReplacementPolicy::Bip { mru_one_in } => {
            if mru_one_in <= 1 || draw.is_multiple_of(u64::from(mru_one_in)) {
                now
            } else {
                0
            }
        }
        _ => now,
    }
}

impl CacheSet {
    /// Creates an empty set with the given associativity.
    pub fn new(ways: u32) -> Self {
        debug_assert!((1..=32).contains(&ways), "way masks are 32-bit");
        let n = ways as usize;
        let mut data = vec![0u64; 3 * n].into_boxed_slice();
        data[..n].fill(INVALID_LINE);
        CacheSet { occ: 0, data }
    }

    /// Number of ways in this set.
    #[inline]
    pub fn way_count(&self) -> u32 {
        (self.data.len() / 3) as u32
    }

    /// Bitmask of the ways that actually exist in this set.
    #[inline]
    fn way_range_bits(&self) -> u32 {
        let n = self.way_count();
        if n >= 32 {
            u32::MAX
        } else {
            (1u32 << n) - 1
        }
    }

    #[inline]
    fn n(&self) -> usize {
        self.data.len() / 3
    }

    #[inline]
    fn lines(&self) -> &[u64] {
        &self.data[..self.n()]
    }

    #[inline]
    fn stamp(&self, way: u32) -> u64 {
        self.data[self.n() + way as usize]
    }

    #[inline]
    fn set_entry(&mut self, way: u32, line: u64, stamp: u64, owner: u32) {
        let n = self.n();
        let w = way as usize;
        self.data[w] = line;
        self.data[n + w] = stamp;
        self.data[2 * n + w] = u64::from(owner);
        self.occ |= 1 << way;
    }

    /// Looks up a line; on a hit, refreshes its LRU stamp (unless the
    /// policy does not promote on hits) and returns the way.
    pub fn lookup(&mut self, line: LineAddr, now: u64) -> Option<u32> {
        self.lookup_with(line, now, ReplacementPolicy::Lru)
    }

    /// Policy-aware lookup.
    pub fn lookup_with(
        &mut self,
        line: LineAddr,
        now: u64,
        policy: ReplacementPolicy,
    ) -> Option<u32> {
        let n = self.n();
        // Empty slots hold INVALID_LINE, which no real line equals, so the
        // scan runs over the contiguous tag region with no validity tests.
        for w in 0..n {
            if self.data[w] == line.0 {
                if policy.promotes_on_hit() {
                    self.data[n + w] = now;
                }
                return Some(w as u32);
            }
        }
        None
    }

    /// Checks residency without perturbing LRU state (a *probe*).
    pub fn probe(&self, line: LineAddr) -> Option<u32> {
        self.lines()
            .iter()
            .position(|&l| l == line.0)
            .map(|w| w as u32)
    }

    /// Fills `line` into a way permitted by `mask`, evicting the LRU line
    /// among the permitted ways if none is free. The line is tagged with
    /// `owner` for occupancy attribution.
    ///
    /// # Panics
    ///
    /// Panics if `mask` permits no way within this set's associativity;
    /// CAT forbids empty masks (Intel x86 does not allow a zero-way COS) and
    /// upper layers validate masks before they reach the set.
    pub fn fill(&mut self, line: LineAddr, mask: WayMask, now: u64, owner: u32) -> FillResult {
        self.fill_with(line, mask, now, owner, ReplacementPolicy::Lru, 0)
    }

    /// Policy-aware fill. `draw` is a pseudo-random value supplied by the
    /// cache (used by Random victim selection and BIP insertion); passing
    /// any constant degrades those policies but stays correct.
    pub fn fill_with(
        &mut self,
        line: LineAddr,
        mask: WayMask,
        now: u64,
        owner: u32,
        policy: ReplacementPolicy,
        draw: u64,
    ) -> FillResult {
        debug_assert!(
            self.probe(line).is_none(),
            "fill of a line that is already resident"
        );
        debug_assert_ne!(line.0, INVALID_LINE, "line address collides with sentinel");
        let insert_stamp = insertion_stamp(policy, now, draw);

        // Prefer an invalid (empty) permitted way: the lowest-index free
        // bit, matching the seed's ascending-way scan.
        let permitted = mask.0 & self.way_range_bits();
        let free = !self.occ & permitted;
        if free != 0 {
            let way = free.trailing_zeros();
            self.set_entry(way, line.0, insert_stamp, owner);
            return FillResult { way, evicted: None };
        }

        // All permitted ways are occupied: pick a victim among them.
        let candidates = self.occ & permitted;
        assert!(candidates != 0, "fill mask must permit at least one way");
        let way = match policy {
            ReplacementPolicy::Random => {
                let k = (draw % u64::from(candidates.count_ones())) as u32;
                nth_set_bit(candidates, k)
            }
            // LRU, FIFO, and BIP all evict the oldest stamp; they differ
            // in when stamps are refreshed (lookup) or assigned (insert).
            // Ties break toward the lowest way index (strict-less scan in
            // ascending way order), as in the seed implementation.
            _ => {
                let mut victim = 0u32;
                let mut victim_stamp = u64::MAX;
                let mut bits = candidates;
                while bits != 0 {
                    let w = bits.trailing_zeros();
                    bits &= bits - 1;
                    let s = self.stamp(w);
                    if s < victim_stamp {
                        victim_stamp = s;
                        victim = w;
                    }
                }
                victim
            }
        };
        let evicted = LineAddr(self.data[way as usize]);
        self.set_entry(way, line.0, insert_stamp, owner);
        FillResult {
            way,
            evicted: Some(evicted),
        }
    }

    /// Invalidates `line` if resident (used for inclusive back-invalidation).
    ///
    /// Returns `true` when a line was actually dropped.
    pub fn invalidate(&mut self, line: LineAddr) -> bool {
        match self.probe(line) {
            Some(way) => {
                self.data[way as usize] = INVALID_LINE;
                self.occ &= !(1 << way);
                true
            }
            None => false,
        }
    }

    /// Clears every way of the set.
    pub fn flush(&mut self) {
        let n = self.n();
        self.data[..n].fill(INVALID_LINE);
        self.occ = 0;
    }

    /// Number of valid lines currently resident.
    #[inline]
    pub fn occupancy(&self) -> u32 {
        self.occ.count_ones()
    }

    /// Number of valid lines resident in ways permitted by `mask`.
    #[inline]
    pub fn occupancy_in(&self, mask: WayMask) -> u32 {
        (self.occ & mask.0).count_ones()
    }

    /// Iterates over resident lines (ascending way order).
    pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
        let occ = self.occ;
        self.lines()
            .iter()
            .enumerate()
            .filter(move |(w, _)| occ & (1 << *w) != 0)
            .map(|(_, &l)| LineAddr(l))
    }

    /// Number of valid lines filled by `owner`.
    pub fn occupancy_of(&self, owner: u32) -> u32 {
        let n = self.n();
        let mut count = 0;
        let mut bits = self.occ;
        while bits != 0 {
            let w = bits.trailing_zeros() as usize;
            bits &= bits - 1;
            if self.data[2 * n + w] == u64::from(owner) {
                count += 1;
            }
        }
        count
    }

    /// Invalidates every line resident in the ways permitted by `mask`,
    /// returning how many were dropped and which lines they were.
    pub fn invalidate_ways(&mut self, mask: WayMask) -> Vec<LineAddr> {
        let mut bits = self.occ & mask.0;
        let mut dropped = Vec::with_capacity(bits.count_ones() as usize);
        while bits != 0 {
            let way = bits.trailing_zeros();
            bits &= bits - 1;
            dropped.push(LineAddr(self.data[way as usize]));
            self.data[way as usize] = INVALID_LINE;
            self.occ &= !(1 << way);
        }
        dropped
    }
}

/// Index of the `k`-th (0-based) set bit of `bits`, ascending.
///
/// # Panics
///
/// Debug-asserts that `bits` has more than `k` set bits; callers guard.
#[inline]
fn nth_set_bit(mut bits: u32, k: u32) -> u32 {
    debug_assert!(bits.count_ones() > k, "nth_set_bit out of range");
    for _ in 0..k {
        bits &= bits - 1;
    }
    bits.trailing_zeros()
}

/// The seed `Vec<Option<LineEntry>>` set implementation, byte-for-byte.
///
/// Kept compiled (not `#[cfg(test)]`) for two consumers: the equivalence
/// property test uses it as the decision oracle, and `dcat-perfbench`
/// measures the packed representation's speedup against it — the ratio
/// recorded in `BENCH_micro.json`. Not part of the supported API.
#[doc(hidden)]
pub mod legacy {
    use super::{insertion_stamp, FillResult, LineEntry};
    use crate::address::LineAddr;
    use crate::cache::WayMask;
    use crate::replacement::ReplacementPolicy;

    /// A single set of a set-associative cache (seed representation).
    #[derive(Debug, Clone)]
    pub struct LegacyCacheSet {
        ways: Vec<Option<LineEntry>>,
    }

    impl LegacyCacheSet {
        /// Creates an empty set with the given associativity.
        pub fn new(ways: u32) -> Self {
            LegacyCacheSet {
                ways: vec![None; ways as usize],
            }
        }

        /// Number of ways in this set.
        pub fn way_count(&self) -> u32 {
            self.ways.len() as u32
        }

        /// Policy-aware lookup; see [`super::CacheSet::lookup_with`].
        pub fn lookup_with(
            &mut self,
            line: LineAddr,
            now: u64,
            policy: ReplacementPolicy,
        ) -> Option<u32> {
            for (idx, slot) in self.ways.iter_mut().enumerate() {
                if let Some(entry) = slot {
                    if entry.line == line {
                        if policy.promotes_on_hit() {
                            entry.last_use = now;
                        }
                        return Some(idx as u32);
                    }
                }
            }
            None
        }

        /// Checks residency without perturbing LRU state.
        pub fn probe(&self, line: LineAddr) -> Option<u32> {
            self.ways
                .iter()
                .position(|slot| slot.map(|e| e.line) == Some(line))
                .map(|idx| idx as u32)
        }

        /// Policy-aware fill; see [`super::CacheSet::fill_with`].
        pub fn fill_with(
            &mut self,
            line: LineAddr,
            mask: WayMask,
            now: u64,
            owner: u32,
            policy: ReplacementPolicy,
            draw: u64,
        ) -> FillResult {
            debug_assert!(
                self.probe(line).is_none(),
                "fill of a line that is already resident"
            );
            let insert_stamp = insertion_stamp(policy, now, draw);

            // Prefer an invalid (empty) permitted way; collect candidates.
            let mut candidates: Vec<u32> = Vec::new();
            let mut victim: Option<u32> = None;
            let mut victim_stamp = u64::MAX;
            for way in 0..self.way_count() {
                if !mask.contains(way) {
                    continue;
                }
                match self.ways[way as usize] {
                    None => {
                        self.ways[way as usize] = Some(LineEntry {
                            line,
                            last_use: insert_stamp,
                            owner,
                        });
                        return FillResult { way, evicted: None };
                    }
                    Some(entry) => {
                        candidates.push(way);
                        if entry.last_use < victim_stamp {
                            victim_stamp = entry.last_use;
                            victim = Some(way);
                        }
                    }
                }
            }
            let way = match policy {
                ReplacementPolicy::Random => *candidates
                    .get((draw % candidates.len().max(1) as u64) as usize)
                    .expect("fill mask must permit at least one way"),
                _ => victim.expect("fill mask must permit at least one way"),
            };
            let evicted = self.ways[way as usize].map(|e| e.line);
            self.ways[way as usize] = Some(LineEntry {
                line,
                last_use: insert_stamp,
                owner,
            });
            FillResult { way, evicted }
        }

        /// Invalidates `line` if resident; returns whether it was.
        pub fn invalidate(&mut self, line: LineAddr) -> bool {
            for slot in self.ways.iter_mut() {
                if slot.map(|e| e.line) == Some(line) {
                    *slot = None;
                    return true;
                }
            }
            false
        }

        /// Clears every way of the set.
        pub fn flush(&mut self) {
            for slot in self.ways.iter_mut() {
                *slot = None;
            }
        }

        /// Number of valid lines currently resident.
        pub fn occupancy(&self) -> u32 {
            self.ways.iter().filter(|s| s.is_some()).count() as u32
        }

        /// Number of valid lines resident in ways permitted by `mask`.
        pub fn occupancy_in(&self, mask: WayMask) -> u32 {
            self.ways
                .iter()
                .enumerate()
                .filter(|(idx, slot)| slot.is_some() && mask.contains(*idx as u32))
                .count() as u32
        }

        /// Number of valid lines filled by `owner`.
        pub fn occupancy_of(&self, owner: u32) -> u32 {
            self.ways
                .iter()
                .filter(|s| s.map(|e| e.owner) == Some(owner))
                .count() as u32
        }

        /// Iterates over resident lines (ascending way order).
        pub fn resident_lines(&self) -> impl Iterator<Item = LineAddr> + '_ {
            self.ways.iter().filter_map(|s| s.map(|e| e.line))
        }

        /// Invalidates every line in the ways permitted by `mask`.
        pub fn invalidate_ways(&mut self, mask: WayMask) -> Vec<LineAddr> {
            let mut dropped = Vec::new();
            for (way, slot) in self.ways.iter_mut().enumerate() {
                if mask.contains(way as u32) {
                    if let Some(entry) = slot.take() {
                        dropped.push(entry.line);
                    }
                }
            }
            dropped
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn full_mask(ways: u32) -> WayMask {
        WayMask::from_way_range(0, ways)
    }

    #[test]
    fn fill_then_lookup_hits() {
        let mut set = CacheSet::new(4);
        set.fill(LineAddr(7), full_mask(4), 1, 0);
        assert!(set.lookup(LineAddr(7), 2).is_some());
        assert!(set.lookup(LineAddr(8), 3).is_none());
    }

    #[test]
    fn fill_prefers_empty_way() {
        let mut set = CacheSet::new(2);
        let r1 = set.fill(LineAddr(1), full_mask(2), 1, 0);
        let r2 = set.fill(LineAddr(2), full_mask(2), 2, 0);
        assert_eq!(r1.evicted, None);
        assert_eq!(r2.evicted, None);
        assert_ne!(r1.way, r2.way);
    }

    #[test]
    fn lru_victim_is_least_recently_used() {
        let mut set = CacheSet::new(2);
        set.fill(LineAddr(1), full_mask(2), 1, 0);
        set.fill(LineAddr(2), full_mask(2), 2, 0);
        // Touch line 1 so line 2 becomes LRU.
        set.lookup(LineAddr(1), 3);
        let r = set.fill(LineAddr(3), full_mask(2), 4, 0);
        assert_eq!(r.evicted, Some(LineAddr(2)));
        assert!(set.probe(LineAddr(1)).is_some());
    }

    #[test]
    fn masked_fill_only_claims_permitted_ways() {
        let mut set = CacheSet::new(4);
        let low = WayMask::from_way_range(0, 2);
        for i in 0..8 {
            set.fill(LineAddr(i), low, i, 0);
        }
        // Only the two permitted ways are ever occupied.
        assert_eq!(set.occupancy(), 2);
        assert_eq!(set.occupancy_in(low), 2);
        assert_eq!(set.occupancy_in(WayMask::from_way_range(2, 2)), 0);
    }

    #[test]
    fn masked_fill_does_not_evict_other_partition() {
        let mut set = CacheSet::new(4);
        let low = WayMask::from_way_range(0, 2);
        let high = WayMask::from_way_range(2, 2);
        set.fill(LineAddr(100), high, 1, 0);
        for i in 0..10 {
            set.fill(LineAddr(i), low, 2 + i, 0);
        }
        // The high-partition line survives low-partition thrashing: that is
        // exactly the isolation CAT provides.
        assert!(set.probe(LineAddr(100)).is_some());
    }

    #[test]
    fn hit_possible_outside_fill_mask() {
        let mut set = CacheSet::new(4);
        let high = WayMask::from_way_range(2, 2);
        set.fill(LineAddr(5), high, 1, 0);
        // A core whose mask excludes ways 2-3 still *hits* on the line.
        assert!(set.lookup(LineAddr(5), 2).is_some());
    }

    #[test]
    fn invalidate_removes_line() {
        let mut set = CacheSet::new(2);
        set.fill(LineAddr(9), full_mask(2), 1, 0);
        assert!(set.invalidate(LineAddr(9)));
        assert!(!set.invalidate(LineAddr(9)));
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    fn flush_empties_set() {
        let mut set = CacheSet::new(4);
        for i in 0..4 {
            set.fill(LineAddr(i), full_mask(4), i, 0);
        }
        set.flush();
        assert_eq!(set.occupancy(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one way")]
    fn empty_mask_fill_panics_when_full() {
        let mut set = CacheSet::new(2);
        // A mask outside the set's associativity behaves like an empty mask.
        let bad = WayMask::from_way_range(2, 2);
        set.fill(LineAddr(1), bad, 1, 0);
    }

    #[test]
    fn occupancy_of_attributes_by_filling_owner() {
        let mut set = CacheSet::new(4);
        set.fill(LineAddr(1), full_mask(4), 1, 7);
        set.fill(LineAddr(2), full_mask(4), 2, 7);
        set.fill(LineAddr(3), full_mask(4), 3, 9);
        assert_eq!(set.occupancy_of(7), 2);
        assert_eq!(set.occupancy_of(9), 1);
        assert_eq!(set.occupancy_of(0), 0);
    }

    #[test]
    fn resident_lines_iterates_in_way_order() {
        let mut set = CacheSet::new(4);
        set.fill(LineAddr(30), full_mask(4), 1, 0);
        set.fill(LineAddr(10), full_mask(4), 2, 0);
        set.invalidate(LineAddr(30));
        set.fill(LineAddr(20), WayMask::from_way_range(2, 2), 3, 0);
        let lines: Vec<LineAddr> = set.resident_lines().collect();
        assert_eq!(lines, vec![LineAddr(10), LineAddr(20)]);
    }

    #[test]
    fn invalidate_ways_reports_dropped_lines_ascending() {
        let mut set = CacheSet::new(4);
        for i in 0..4u64 {
            set.fill(LineAddr(i), full_mask(4), i, 0);
        }
        let dropped = set.invalidate_ways(WayMask::from_way_range(1, 2));
        assert_eq!(dropped, vec![LineAddr(1), LineAddr(2)]);
        assert_eq!(set.occupancy(), 2);
    }

    #[test]
    fn nth_set_bit_selects_ascending() {
        assert_eq!(nth_set_bit(0b1011, 0), 0);
        assert_eq!(nth_set_bit(0b1011, 1), 1);
        assert_eq!(nth_set_bit(0b1011, 2), 3);
    }

    #[test]
    fn thirty_two_way_set_works_at_the_mask_edge() {
        let mut set = CacheSet::new(32);
        let mask = WayMask::all(32);
        for i in 0..32u64 {
            assert_eq!(set.fill(LineAddr(i), mask, i + 1, 0).evicted, None);
        }
        assert_eq!(set.occupancy(), 32);
        let r = set.fill(LineAddr(99), mask, 100, 0);
        assert_eq!(r.evicted, Some(LineAddr(0)), "way 0 held the oldest stamp");
    }
}
