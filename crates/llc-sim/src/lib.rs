//! Set-associative, inclusive cache-hierarchy simulator with CAT-style
//! way-partitioning.
//!
//! This crate is the hardware substrate for the dCat reproduction. It models
//! the parts of an Intel Xeon memory hierarchy that the paper's evaluation
//! depends on:
//!
//! * a **shared, inclusive, set-associative last-level cache** (LLC) indexed
//!   by physical address,
//! * **Cache Allocation Technology (CAT)** semantics: each core carries a
//!   *fill mask* restricting which ways it may allocate (evict) into, while
//!   hits are served from any way,
//! * private per-core **L1/L2** caches kept inclusive with the LLC
//!   (an LLC eviction back-invalidates the line from every private cache),
//! * **virtual-to-physical translation** with 4 KiB and 2 MiB pages and a
//!   frame allocator that can hand out either randomized or contiguous
//!   physical frames (this is what makes the paper's conflict-miss
//!   experiments, Figures 2 and 3, emerge rather than being scripted),
//! * per-core **event counters** matching the MSR events of the paper's
//!   Table 2, and
//! * a **latency/IPC model** that converts per-level hit counts into cycles
//!   and average data-access latency.
//!
//! The crate deliberately knows nothing about workloads, VMs, or the dCat
//! controller; those live in the `workloads`, `host`, and `dcat` crates.
//!
//! # Examples
//!
//! ```
//! use llc_sim::{CacheGeometry, Hierarchy, HierarchyConfig, WayMask};
//!
//! // A small two-core hierarchy with an 8-way LLC.
//! let cfg = HierarchyConfig {
//!     cores: 2,
//!     llc: CacheGeometry::new(1024, 8, 64),
//!     ..HierarchyConfig::default()
//! };
//! let mut h = Hierarchy::new(cfg);
//!
//! // Restrict core 0 to the two low ways (CAT).
//! h.set_fill_mask(0, WayMask::from_way_range(0, 2));
//! h.access(0, 0x1000, llc_sim::AccessKind::Load);
//! assert_eq!(h.counters(0).l1_ref, 1);
//! ```

pub mod address;
pub mod cache;
pub mod coloring;
pub mod counters;
pub mod geometry;
pub mod hierarchy;
pub mod latency;
pub mod paging;
pub mod replacement;
pub mod set;
pub mod stats;

pub use address::{line_addr, LineAddr, PhysAddr, VirtAddr, LINE_SHIFT, LINE_SIZE};
pub use cache::{AccessOutcome, SetAssocCache, WayMask};
pub use coloring::ColorSet;
pub use counters::CoreCounters;
pub use geometry::CacheGeometry;
pub use hierarchy::{AccessKind, Hierarchy, HierarchyConfig, HitLevel, SimFidelity};
pub use latency::{CyclesModel, LatencyModel};
pub use paging::{FrameAllocator, FramePolicy, PageMapper, PageSize};
pub use replacement::ReplacementPolicy;
pub use stats::SetOccupancyHistogram;

// Socket-level parallelism moves a whole socket's simulator state to a
// worker thread, so the core state types must stay `Send`. Assert it at
// compile time: introducing an `Rc` or raw pointer anywhere inside these
// structures becomes a build error here rather than a distant type error
// in the `host` crate.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Hierarchy>();
    assert_send::<PageMapper>();
    assert_send::<FrameAllocator>();
};
