//! Mapping statistics used by the paper's conflict-miss analysis.
//!
//! Figure 3 of the paper plots, for a fixed working set, the histogram of
//! how many of the working set's cache lines land in each LLC set. With
//! randomized 4 KiB frames the distribution has a heavy tail: even when the
//! partition's *capacity* equals the working set, ~30% of sets receive more
//! lines than the partition has ways, producing conflict misses.

use std::collections::BTreeMap;

use crate::address::PhysAddr;
use crate::geometry::CacheGeometry;

/// Histogram of lines-per-set for a collection of physical lines.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SetOccupancyHistogram {
    /// `buckets[k]` = number of sets with exactly `k` lines mapped to them.
    pub buckets: Vec<u64>,
    /// Total number of sets in the cache.
    pub total_sets: u64,
}

impl SetOccupancyHistogram {
    /// Builds the histogram for the lines of `addrs` under `geometry`.
    ///
    /// Duplicate lines are counted once — the histogram describes the
    /// working set, not the access stream.
    pub fn from_lines<I>(geometry: CacheGeometry, addrs: I) -> Self
    where
        I: IntoIterator<Item = PhysAddr>,
    {
        // BTreeMap, not HashMap: the histogram fill below iterates the
        // map, and iteration order must not depend on the hasher seed.
        let mut per_set: BTreeMap<u32, u64> = BTreeMap::new();
        let mut seen = std::collections::BTreeSet::new();
        for addr in addrs {
            let line = addr.line();
            if seen.insert(line) {
                *per_set.entry(geometry.set_index(line)).or_insert(0) += 1;
            }
        }
        let max = per_set.values().copied().max().unwrap_or(0) as usize;
        let mut buckets = vec![0u64; max + 1];
        for &count in per_set.values() {
            buckets[count as usize] += 1;
        }
        let occupied: u64 = buckets.iter().skip(1).sum();
        buckets[0] = u64::from(geometry.sets) - occupied;
        SetOccupancyHistogram {
            buckets,
            total_sets: u64::from(geometry.sets),
        }
    }

    /// Fraction of sets with at least `k` lines mapped.
    ///
    /// The paper's headline statistic is "sets with 3 or more lines" for a
    /// 2-way partition — sets guaranteed to conflict.
    pub fn fraction_with_at_least(&self, k: usize) -> f64 {
        if self.total_sets == 0 {
            return 0.0;
        }
        let n: u64 = self.buckets.iter().skip(k).sum();
        n as f64 / self.total_sets as f64
    }

    /// Number of lines that cannot simultaneously reside in a `ways`-way
    /// partition (the excess above `ways` in each set).
    pub fn conflicting_lines(&self, ways: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .map(|(k, &sets)| (k as u64).saturating_sub(ways) * sets)
            .sum()
    }

    /// Mean lines per set.
    pub fn mean(&self) -> f64 {
        if self.total_sets == 0 {
            return 0.0;
        }
        let lines: u64 = self
            .buckets
            .iter()
            .enumerate()
            .map(|(k, &sets)| k as u64 * sets)
            .sum();
        lines as f64 / self.total_sets as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn geom() -> CacheGeometry {
        CacheGeometry::new(4, 2, 64)
    }

    #[test]
    fn uniform_mapping_has_no_conflicts() {
        // 8 consecutive lines over 4 sets: exactly 2 per set.
        let addrs = (0..8u64).map(|i| PhysAddr(i * 64));
        let h = SetOccupancyHistogram::from_lines(geom(), addrs);
        assert_eq!(h.buckets, vec![0, 0, 4]);
        assert_eq!(h.conflicting_lines(2), 0);
        assert!((h.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_mapping_counts_conflicts() {
        // 4 lines all in set 0 (stride = sets * line).
        let addrs = (0..4u64).map(|i| PhysAddr(i * 4 * 64));
        let h = SetOccupancyHistogram::from_lines(geom(), addrs);
        assert_eq!(h.buckets[4], 1);
        assert_eq!(h.buckets[0], 3);
        assert_eq!(h.conflicting_lines(2), 2);
        assert!((h.fraction_with_at_least(3) - 0.25).abs() < 1e-9);
    }

    #[test]
    fn duplicate_lines_counted_once() {
        let addrs = vec![PhysAddr(0), PhysAddr(8), PhysAddr(32)]; // same line
        let h = SetOccupancyHistogram::from_lines(geom(), addrs);
        assert_eq!(h.buckets[1], 1);
        assert_eq!(h.buckets[0], 3);
    }

    #[test]
    fn empty_working_set() {
        let h = SetOccupancyHistogram::from_lines(geom(), std::iter::empty());
        assert_eq!(h.buckets, vec![4]);
        assert_eq!(h.fraction_with_at_least(1), 0.0);
    }
}
