//! Replacement and insertion policies for the set-associative arrays.
//!
//! The dCat paper's "streaming" class rests on Qureshi et al.'s analysis
//! of cyclic access patterns under LRU (their adaptive-insertion paper is
//! cited for it): a scan longer than the cache thrashes LRU completely,
//! which is exactly why an MLOAD neighbor destroys a shared cache. The
//! simulator therefore supports the relevant policy family:
//!
//! * [`ReplacementPolicy::Lru`] — true LRU (Intel LLCs approximate this);
//!   the default everywhere.
//! * [`ReplacementPolicy::Fifo`] — insertion-order eviction (hits do not
//!   refresh recency).
//! * [`ReplacementPolicy::Random`] — uniform victim among the permitted
//!   ways.
//! * [`ReplacementPolicy::Bip`] — bimodal insertion (BIP, the
//!   scan-resistant half of DIP): fills are inserted at the LRU position
//!   except with small probability, so a one-shot scan evicts itself
//!   instead of the working set.
//!
//! Policies compose with CAT masks: victim selection is always confined
//! to the permitted ways. The `ablate_replacement` bench compares them
//! under the paper's noisy-neighbor scenario.

/// Victim-selection / insertion policy of one cache array.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ReplacementPolicy {
    /// Evict the least-recently-used permitted line; insert at MRU.
    #[default]
    Lru,
    /// Evict the oldest-inserted permitted line; hits do not promote.
    Fifo,
    /// Evict a uniformly random permitted line.
    Random,
    /// LRU eviction, but insert at the LRU position except one fill in
    /// `mru_one_in` (BIP). `mru_one_in = 32` is the DIP paper's epsilon.
    Bip {
        /// Insert at MRU once every this many fills.
        mru_one_in: u32,
    },
}

impl ReplacementPolicy {
    /// The DIP paper's BIP configuration (1/32 MRU insertions).
    pub fn bip() -> Self {
        ReplacementPolicy::Bip { mru_one_in: 32 }
    }

    /// Whether a lookup hit refreshes the line's recency.
    pub fn promotes_on_hit(self) -> bool {
        !matches!(self, ReplacementPolicy::Fifo)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_is_lru() {
        assert_eq!(ReplacementPolicy::default(), ReplacementPolicy::Lru);
    }

    #[test]
    fn promotion_rules() {
        assert!(ReplacementPolicy::Lru.promotes_on_hit());
        assert!(ReplacementPolicy::Random.promotes_on_hit());
        assert!(ReplacementPolicy::bip().promotes_on_hit());
        assert!(!ReplacementPolicy::Fifo.promotes_on_hit());
    }
}
