//! OS page coloring: the set-partitioning alternative the paper discusses.
//!
//! Sections 2.2 and 7 of the paper contrast CAT with OS-level page
//! coloring (Lin et al., Coloris): instead of restricting *ways*, the OS
//! restricts which physical frames a tenant receives, so its lines map
//! only to a subset of the cache's *sets* — trading capacity for sets
//! while keeping the full associativity. The paper dismisses coloring for
//! dynamic use (re-coloring means copying pages) but it is the natural
//! baseline for the conflict-miss analysis: a color-partitioned working
//! set keeps all 20 ways and therefore suffers no associativity loss.
//!
//! A *color* is the classic `page_frame_number mod num_colors` where
//! `num_colors = way_bytes / page_size` — frames of the same color cover
//! the same set region of the cache.

use crate::geometry::CacheGeometry;
use crate::paging::PageSize;

/// A subset of the page colors of a cache.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ColorSet {
    num_colors: u64,
    allowed: Vec<bool>,
}

impl ColorSet {
    /// Number of distinct page colors an LLC has for the given page size:
    /// `way_bytes / page_bytes`. Returns 0 when a single page already
    /// covers a whole way (huge pages on small caches), in which case
    /// coloring cannot partition anything.
    pub fn num_colors_of(llc: CacheGeometry, page: PageSize) -> u64 {
        llc.way_bytes() / page.bytes()
    }

    /// A color set allowing colors `[first, first + count)` of `llc`'s
    /// colors for `page`-sized frames.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty or exceeds the cache's colors, or if
    /// the cache has no colors at this page size.
    pub fn contiguous(llc: CacheGeometry, page: PageSize, first: u64, count: u64) -> Self {
        let num_colors = Self::num_colors_of(llc, page);
        assert!(num_colors > 0, "cache has no page colors at this page size");
        assert!(count >= 1, "a color set cannot be empty");
        assert!(
            first + count <= num_colors,
            "colors [{first}, {}) exceed the cache's {num_colors}",
            first + count
        );
        let mut allowed = vec![false; num_colors as usize];
        for c in first..first + count {
            allowed[c as usize] = true;
        }
        ColorSet {
            num_colors,
            allowed,
        }
    }

    /// A color set allowing every color (no partitioning).
    pub fn all(llc: CacheGeometry, page: PageSize) -> Self {
        let num_colors = Self::num_colors_of(llc, page);
        assert!(num_colors > 0, "cache has no page colors at this page size");
        ColorSet {
            num_colors,
            allowed: vec![true; num_colors as usize],
        }
    }

    /// Total colors of the underlying cache.
    pub fn num_colors(&self) -> u64 {
        self.num_colors
    }

    /// Colors permitted by this set.
    pub fn allowed_count(&self) -> u64 {
        self.allowed.iter().filter(|a| **a).count() as u64
    }

    /// Fraction of the cache's capacity this color set grants.
    pub fn capacity_fraction(&self) -> f64 {
        self.allowed_count() as f64 / self.num_colors as f64
    }

    /// Whether a physical frame (identified by its base address) has an
    /// allowed color for `page`-sized frames.
    pub fn permits_frame(&self, frame_base_addr: u64, page: PageSize) -> bool {
        let pfn = frame_base_addr >> page.shift();
        self.allowed[(pfn % self.num_colors) as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn llc() -> CacheGeometry {
        CacheGeometry::xeon_e5_llc() // 2.25 MiB per way
    }

    #[test]
    fn color_counts_match_way_capacity() {
        // 2.25 MiB way / 4 KiB pages = 576 colors.
        assert_eq!(ColorSet::num_colors_of(llc(), PageSize::Small), 576);
        // 2.25 MiB way / 2 MiB pages = 1 color (cannot partition).
        assert_eq!(ColorSet::num_colors_of(llc(), PageSize::Huge), 1);
    }

    #[test]
    fn contiguous_set_grants_expected_fraction() {
        let c = ColorSet::contiguous(llc(), PageSize::Small, 0, 144);
        assert_eq!(c.allowed_count(), 144);
        assert!((c.capacity_fraction() - 0.25).abs() < 1e-9);
    }

    #[test]
    fn permits_frames_by_pfn_modulo() {
        let c = ColorSet::contiguous(llc(), PageSize::Small, 0, 2);
        assert!(c.permits_frame(0, PageSize::Small)); // color 0
        assert!(c.permits_frame(4096, PageSize::Small)); // color 1
        assert!(!c.permits_frame(2 * 4096, PageSize::Small)); // color 2
                                                              // Colors wrap at num_colors.
        assert!(c.permits_frame(576 * 4096, PageSize::Small)); // color 0 again
    }

    #[test]
    fn all_colors_permit_everything() {
        let c = ColorSet::all(llc(), PageSize::Small);
        for pfn in 0..1000u64 {
            assert!(c.permits_frame(pfn * 4096, PageSize::Small));
        }
    }

    #[test]
    #[should_panic(expected = "exceed")]
    fn out_of_range_colors_rejected() {
        let _ = ColorSet::contiguous(llc(), PageSize::Small, 570, 10);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_color_set_rejected() {
        let _ = ColorSet::contiguous(llc(), PageSize::Small, 0, 0);
    }
}
