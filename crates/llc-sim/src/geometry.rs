//! Cache geometry: sets, ways, line size, and indexing.
//!
//! Real Xeon LLCs are sliced and use a hash of the physical address to pick
//! a slice; within a slice, indexing is a simple bit-field extraction. We
//! model the whole LLC as one array and index with `line_number % sets`,
//! which reduces to bit extraction for power-of-two set counts and is a
//! faithful-enough spread for the non-power-of-two LLCs of the paper's
//! machines (the Xeon-E5 v4 has 45 MiB / 20 ways / 64 B = 36 864 sets).

use crate::address::{LineAddr, LINE_SIZE};

/// Static shape of one cache level.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheGeometry {
    /// Number of sets.
    pub sets: u32,
    /// Associativity (ways per set).
    pub ways: u32,
    /// Line size in bytes. Always 64 in this simulator, kept explicit so
    /// capacity arithmetic is self-describing.
    pub line_size: u32,
}

impl CacheGeometry {
    /// Creates a geometry, panicking on degenerate shapes.
    ///
    /// # Panics
    ///
    /// Panics if any dimension is zero or if `ways > 32` (way masks are
    /// 32-bit; no CAT-capable part exceeds 20 ways).
    pub fn new(sets: u32, ways: u32, line_size: u32) -> Self {
        assert!(sets > 0, "cache must have at least one set");
        assert!(ways > 0, "cache must have at least one way");
        assert!(ways <= 32, "way masks are 32-bit");
        assert!(
            line_size.is_power_of_two(),
            "line size must be a power of two"
        );
        CacheGeometry {
            sets,
            ways,
            line_size,
        }
    }

    /// Builds a geometry from a total capacity in bytes and an associativity.
    ///
    /// # Panics
    ///
    /// Panics if the capacity is not an exact multiple of `ways * 64`.
    pub fn from_capacity(capacity_bytes: u64, ways: u32) -> Self {
        let per_way = capacity_bytes / u64::from(ways);
        assert_eq!(
            per_way * u64::from(ways),
            capacity_bytes,
            "capacity must divide evenly into ways"
        );
        let sets = per_way / LINE_SIZE;
        assert_eq!(
            sets * LINE_SIZE,
            per_way,
            "way capacity must divide into lines"
        );
        CacheGeometry::new(sets as u32, ways, LINE_SIZE as u32)
    }

    /// Total capacity in bytes.
    #[inline]
    pub fn capacity_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.ways) * u64::from(self.line_size)
    }

    /// Capacity of a single way in bytes.
    #[inline]
    pub fn way_bytes(&self) -> u64 {
        u64::from(self.sets) * u64::from(self.line_size)
    }

    /// Maps a line address to its set index.
    #[inline]
    pub fn set_index(&self, line: LineAddr) -> u32 {
        (line.0 % u64::from(self.sets)) as u32
    }

    /// The 8-way 32 KiB L1 data cache used by both evaluation machines.
    pub fn l1d() -> Self {
        CacheGeometry::from_capacity(32 * 1024, 8)
    }

    /// The 8-way 256 KiB private L2 used by both evaluation machines.
    pub fn l2() -> Self {
        CacheGeometry::from_capacity(256 * 1024, 8)
    }

    /// The Xeon-D LLC from the paper: 12-way, 12 MiB.
    pub fn xeon_d_llc() -> Self {
        CacheGeometry::from_capacity(12 * 1024 * 1024, 12)
    }

    /// The Xeon-E5 v4 LLC from the paper: 20-way, 45 MiB (2.25 MiB per way).
    pub fn xeon_e5_llc() -> Self {
        CacheGeometry::from_capacity(45 * 1024 * 1024, 20)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn capacity_round_trips() {
        let g = CacheGeometry::from_capacity(45 * 1024 * 1024, 20);
        assert_eq!(g.capacity_bytes(), 45 * 1024 * 1024);
        assert_eq!(g.sets, 36_864);
        assert_eq!(g.way_bytes(), 45 * 1024 * 1024 / 20);
    }

    #[test]
    fn xeon_presets_match_paper() {
        // "a 20-way 45 MB LLC. The capacity of each cache way is 2.25 MB."
        let e5 = CacheGeometry::xeon_e5_llc();
        assert_eq!(e5.ways, 20);
        assert_eq!(e5.way_bytes(), 2_359_296); // 2.25 MiB
        let d = CacheGeometry::xeon_d_llc();
        assert_eq!(d.ways, 12);
        assert_eq!(d.capacity_bytes(), 12 * 1024 * 1024);
    }

    #[test]
    fn set_index_wraps_modulo() {
        let g = CacheGeometry::new(100, 4, 64);
        assert_eq!(g.set_index(LineAddr(0)), 0);
        assert_eq!(g.set_index(LineAddr(99)), 99);
        assert_eq!(g.set_index(LineAddr(100)), 0);
        assert_eq!(g.set_index(LineAddr(250)), 50);
    }

    #[test]
    fn power_of_two_index_matches_bit_extraction() {
        let g = CacheGeometry::new(1024, 8, 64);
        for line in [0u64, 1, 1023, 1024, 123_456_789] {
            assert_eq!(u64::from(g.set_index(LineAddr(line))), line & 1023);
        }
    }

    #[test]
    #[should_panic(expected = "way masks are 32-bit")]
    fn rejects_excessive_associativity() {
        let _ = CacheGeometry::new(64, 33, 64);
    }

    #[test]
    #[should_panic(expected = "capacity must divide evenly")]
    fn rejects_non_dividing_capacity() {
        let _ = CacheGeometry::from_capacity(1000, 3);
    }
}
