//! Repo automation tasks (`cargo run -p xtask -- <task>`).
//!
//! `lint` is the repo's gate: `cargo fmt --check`, `cargo clippy
//! --all-targets -- -D warnings`, and four source scans that encode
//! rules the stock tools do not know about:
//!
//! 1. **No `unwrap()`/`expect()` in privileged I/O paths** — the
//!    non-test code of `resctrl::fs` (writes kernel interfaces) and
//!    `dcat::daemon` (long-running control loop) must propagate errors,
//!    never abort. `unwrap_or*` combinators are fine.
//! 2. **No raw CBM bit arithmetic outside `resctrl::cbm`** — way masks
//!    are built and inspected through the `Cbm` API so the contiguity
//!    and bounds rules live in one audited module. Shifting bits or
//!    masking `.0` by hand anywhere else in `dcat`, `resctrl`, or
//!    `host` is flagged. (`llc_sim::WayMask` is its own abstraction and
//!    is not scanned.)
//! 3. **No float `==` on telemetry-derived metrics** — IPC, miss rates,
//!    and normalized values are compared against thresholds, never for
//!    exact equality; sentinel tests use `is_infinite`/`is_finite`.
//! 4. **No ad-hoc threading outside `host::pool`** — `thread::spawn` /
//!    `thread::scope` anywhere but `crates/host/src/pool.rs` would
//!    bypass the deterministic index-ordered pool that guarantees
//!    `--jobs N` results are bit-identical to serial runs. (`crates/
//!    xtask` itself is excluded from the repo walk: its embedded scan
//!    fixtures spell the banned tokens.)
//! 5. **No direct filesystem I/O in the daemon loop** — `dcat::daemon`
//!    must reach telemetry through `dcat::telemetry::TelemetryFeed` and
//!    resctrl through the retry-wrapped controller, so every read/write
//!    gets the bounded-retry and degraded-tick treatment. A bare
//!    `std::fs::` call in the loop would bypass the fault taxonomy.
//!
//! Every scan is self-tested on startup against embedded fixtures
//! seeded with the banned patterns (and a clean control): a scan that
//! stops detecting its pattern fails the lint run itself. `scan
//! <files...>` applies all five scans to arbitrary paths, which CI
//! uses to prove the gate fails non-zero on a seeded fixture file.

use std::path::{Path, PathBuf};
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--scan-only")),
        Some("scan") if args.len() > 1 => scan_files(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--scan-only]");
            eprintln!("       cargo run -p xtask -- scan <file.rs>...");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask always runs from somewhere inside the workspace.
    let mut dir = std::env::current_dir().expect("cwd");
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return dir;
        }
        assert!(dir.pop(), "workspace root not found above cwd");
    }
}

fn lint(scan_only: bool) -> ExitCode {
    if let Err(e) = self_test() {
        eprintln!("lint self-test failed: {e}");
        return ExitCode::FAILURE;
    }
    let root = repo_root();
    let mut failures = 0usize;

    if !scan_only {
        for (name, cmd_args) in [
            ("cargo fmt --check", vec!["fmt", "--", "--check"]),
            (
                "cargo clippy -D warnings",
                vec![
                    "clippy",
                    "--offline",
                    "--all-targets",
                    "--",
                    "-D",
                    "warnings",
                ],
            ),
        ] {
            println!("lint: running {name}");
            let status = Command::new("cargo")
                .args(&cmd_args)
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(_) => {
                    eprintln!("lint: {name} failed");
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("lint: could not run {name}: {e}");
                    failures += 1;
                }
            }
        }
    }

    let findings = scan_repo(&root);
    for f in &findings {
        eprintln!("lint: {f}");
    }
    failures += findings.len();

    if failures == 0 {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

fn scan_files(paths: &[String]) -> ExitCode {
    if let Err(e) = self_test() {
        eprintln!("lint self-test failed: {e}");
        return ExitCode::FAILURE;
    }
    let mut findings = Vec::new();
    for p in paths {
        let path = Path::new(p);
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("scan: cannot read {p}: {e}");
                return ExitCode::FAILURE;
            }
        };
        findings.extend(scan_no_unwrap(path, &text));
        findings.extend(scan_no_raw_cbm_bits(path, &text));
        findings.extend(scan_no_float_eq(path, &text));
        findings.extend(scan_no_thread_spawn(path, &text));
        findings.extend(scan_no_direct_io(path, &text));
    }
    for f in &findings {
        eprintln!("scan: {f}");
    }
    if findings.is_empty() {
        println!("scan: clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Applies each scan to the files its rule governs.
fn scan_repo(root: &Path) -> Vec<String> {
    let mut findings = Vec::new();

    for rel in ["crates/resctrl/src/fs.rs", "crates/dcat/src/daemon.rs"] {
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("lint target {rel} unreadable: {e}"));
        findings.extend(scan_no_unwrap(&path, &text));
    }

    // Scan 5 governs the daemon loop alone: `resctrl::fs` and
    // `dcat::telemetry` are the sanctioned wrappers and may touch the
    // filesystem directly.
    {
        let rel = "crates/dcat/src/daemon.rs";
        let path = root.join(rel);
        let text = std::fs::read_to_string(&path)
            .unwrap_or_else(|e| panic!("lint target {rel} unreadable: {e}"));
        findings.extend(scan_no_direct_io(&path, &text));
    }

    for dir in ["crates/dcat/src", "crates/resctrl/src", "crates/host/src"] {
        for path in rust_files(&root.join(dir)) {
            if path.file_name().is_some_and(|f| f == "cbm.rs") {
                continue; // the one module allowed to touch raw bits
            }
            let text = std::fs::read_to_string(&path).expect("listed file readable");
            findings.extend(scan_no_raw_cbm_bits(&path, &text));
        }
    }

    for dir in ["crates/dcat/src", "crates/perf-events/src"] {
        for path in rust_files(&root.join(dir)) {
            let text = std::fs::read_to_string(&path).expect("listed file readable");
            findings.extend(scan_no_float_eq(&path, &text));
        }
    }

    // Scan 4 walks every crate except xtask itself (whose embedded scan
    // fixtures spell the banned tokens) and skips the one allowed module.
    let crates_dir = root.join("crates");
    let crate_roots =
        std::fs::read_dir(&crates_dir).unwrap_or_else(|e| panic!("crates dir unreadable: {e}"));
    for entry in crate_roots {
        let crate_dir = entry.expect("dir entry").path();
        if !crate_dir.is_dir() || crate_dir.file_name().is_some_and(|n| n == "xtask") {
            continue;
        }
        for path in rust_files(&crate_dir) {
            if path.ends_with("host/src/pool.rs") {
                continue; // the one module allowed to spawn threads
            }
            let text = std::fs::read_to_string(&path).expect("listed file readable");
            findings.extend(scan_no_thread_spawn(&path, &text));
        }
    }

    findings
}

fn rust_files(dir: &Path) -> Vec<PathBuf> {
    let mut out = Vec::new();
    let entries = std::fs::read_dir(dir).unwrap_or_else(|e| panic!("{}: {e}", dir.display()));
    for entry in entries {
        let path = entry.expect("dir entry").path();
        if path.is_dir() {
            out.extend(rust_files(&path));
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    out.sort();
    out
}

/// Lines of the file before its `#[cfg(test)]` module, with line numbers.
fn non_test_lines(text: &str) -> impl Iterator<Item = (usize, &str)> {
    text.lines()
        .enumerate()
        .map(|(i, l)| (i + 1, l))
        .take_while(|(_, l)| l.trim() != "#[cfg(test)]")
        .filter(|(_, l)| {
            let t = l.trim_start();
            !t.starts_with("//")
        })
}

/// Scan 1: no `.unwrap()` / `.expect(` in privileged non-test code.
fn scan_no_unwrap(path: &Path, text: &str) -> Vec<String> {
    let mut findings = Vec::new();
    for (n, line) in non_test_lines(text) {
        if line.contains(".unwrap()") || line.contains(".expect(") {
            findings.push(format!(
                "{}:{n}: unwrap()/expect() in privileged I/O path (propagate the error)",
                path.display()
            ));
        }
    }
    findings
}

/// Scan 2: no raw CBM bit arithmetic outside `resctrl::cbm`.
///
/// Flags space-delimited shifts (generics like `Vec<Option<Cbm>>` have
/// none) and single `&`/`|`/`^` applied to a `.0` field access (logical
/// `&&`/`||` and float literals like `0.0` do not match).
fn scan_no_raw_cbm_bits(path: &Path, text: &str) -> Vec<String> {
    let mut findings = Vec::new();
    for (n, line) in non_test_lines(text) {
        let shift = line.contains(" << ") || line.contains(" >> ");
        let field_bitop = [".0 & ", ".0 | ", ".0 ^ "].iter().any(|pat| {
            line.match_indices(pat).any(|(i, _)| {
                // `.0` must be a field access, not the tail of a float
                // literal (`0.0 & ...` can only be bit arithmetic anyway,
                // but `prev > 0.0 && x` must not match: require the single
                // operator not be doubled).
                let after = &line[i + pat.len()..];
                let op = pat.as_bytes()[3];
                !after.starts_with(op as char) && !line[..i].ends_with(|c: char| c.is_ascii_digit())
            })
        });
        if shift || field_bitop {
            findings.push(format!(
                "{}:{n}: raw CBM bit arithmetic (use the resctrl::cbm API)",
                path.display()
            ));
        }
    }
    findings
}

/// Scan 3: no float `==` on telemetry-derived metrics.
fn scan_no_float_eq(path: &Path, text: &str) -> Vec<String> {
    const METRICS: [&str; 7] = [
        "ipc",
        "miss_rate",
        "llc_miss_rate",
        "llc_ref_per_instr",
        "mem_access_per_instr",
        "norm",
        "baseline",
    ];
    let mut findings = Vec::new();
    for (n, line) in non_test_lines(text) {
        let float_eq = line.contains("== f64::")
            || line.contains("f64::NEG_INFINITY ==")
            || line.contains("f64::INFINITY ==")
            || eq_against_float_literal(line);
        let metric_eq = METRICS
            .iter()
            .any(|m| line.contains(&format!("{m} == ")) || line.contains(&format!(" == {m}")));
        if float_eq || metric_eq {
            findings.push(format!(
                "{}:{n}: float equality on a telemetry metric (compare against a threshold)",
                path.display()
            ));
        }
    }
    findings
}

/// Scan 4: no `thread::spawn` / `thread::scope` outside `host::pool`.
///
/// The deterministic pool is the only sanctioned way to go parallel:
/// it claims work by item index and merges results in item order, which
/// is what keeps `--jobs N` output bit-identical to `--jobs 1`. A stray
/// spawn would reintroduce completion-order nondeterminism.
fn scan_no_thread_spawn(path: &Path, text: &str) -> Vec<String> {
    let mut findings = Vec::new();
    for (n, line) in non_test_lines(text) {
        if line.contains("thread::spawn") || line.contains("thread::scope") {
            findings.push(format!(
                "{}:{n}: ad-hoc threading (go through host::pool::Pool)",
                path.display()
            ));
        }
    }
    findings
}

/// Scan 5: no direct filesystem I/O in the daemon loop.
///
/// Telemetry reads go through `TelemetryFeed` + `with_retries`, resctrl
/// writes through the retry-wrapped backend. A bare `std::fs` call in
/// `dcat::daemon` would dodge the transient/fatal error taxonomy and the
/// degraded-tick machinery.
fn scan_no_direct_io(path: &Path, text: &str) -> Vec<String> {
    const PATTERNS: [&str; 3] = ["std::fs::", "fs::read_to_string(", "fs::write("];
    let mut findings = Vec::new();
    for (n, line) in non_test_lines(text) {
        if PATTERNS.iter().any(|p| line.contains(p)) {
            findings.push(format!(
                "{}:{n}: direct filesystem I/O in the daemon loop (go through \
                 TelemetryFeed and the retry-wrapped controller)",
                path.display()
            ));
        }
    }
    findings
}

/// Whether the line compares something with `==` against a float literal
/// (`== 0.0`, `0.5 ==`, ...).
///
/// The operand is extracted as the maximal run of literal characters
/// touching the `==` (not a whitespace split), so literals nested in
/// calls — `assert!(0.5 == y)` — are still seen.
fn eq_against_float_literal(line: &str) -> bool {
    let lit_char = |c: char| c.is_ascii_digit() || c == '.' || c == '_' || c == 'f';
    line.match_indices("==").any(|(i, _)| {
        let before: String = line[..i]
            .trim_end()
            .chars()
            .rev()
            .take_while(|&c| lit_char(c))
            .collect();
        let after: String = line[i + 2..]
            .trim_start()
            .chars()
            .take_while(|&c| lit_char(c))
            .collect();
        // `before` is reversed, but a float literal's shape survives
        // mirroring for this check: digits around a single dot.
        is_float_literal(&before) || is_float_literal(&after)
    })
}

fn is_float_literal(tok: &str) -> bool {
    let mut parts = tok.splitn(2, '.');
    match (parts.next(), parts.next()) {
        (Some(a), Some(b)) => {
            !a.is_empty()
                && a.chars()
                    .all(|c| c.is_ascii_digit() || c == '_' || c == 'f')
                && !b.is_empty()
                && b.chars()
                    .all(|c| c.is_ascii_digit() || c == '_' || c == 'f')
        }
        _ => false,
    }
}

/// Every scan must flag its seeded banned-pattern fixture and pass its
/// clean control, or the gate itself is broken.
fn self_test() -> Result<(), String> {
    let p = Path::new("fixture.rs");

    let banned_unwrap = "let x = file.read().unwrap();\nlet y = map.get(&k).expect(\"present\");\n";
    if scan_no_unwrap(p, banned_unwrap).len() != 2 {
        return Err("unwrap scan missed its fixture".into());
    }
    let clean_unwrap =
        "let x = v.unwrap_or_default();\n// .unwrap() in a comment\n#[cfg(test)]\nlet z = v.unwrap();\n";
    if !scan_no_unwrap(p, clean_unwrap).is_empty() {
        return Err("unwrap scan flagged clean code".into());
    }

    let banned_bits = "let m = Cbm(mask.0 & !mask2.0);\nlet top = bits << shift;\n";
    if scan_no_raw_cbm_bits(p, banned_bits).len() != 2
        || scan_no_raw_cbm_bits(p, "let x = 1 << 4;\n").len() != 1
    {
        return Err("cbm scan missed its fixture".into());
    }
    let clean_bits = "let prev: Vec<Option<Cbm>> = masks.clone();\nif prev > 0.0 && x { }\nlet u = a.union(b);\n";
    if !scan_no_raw_cbm_bits(p, clean_bits).is_empty() {
        return Err("cbm scan flagged clean code".into());
    }

    let banned_eq =
        "if max == f64::NEG_INFINITY { }\nif m.ipc == 0.0 { }\nif miss_rate == thr { }\n";
    if scan_no_float_eq(p, banned_eq).len() != 3 {
        return Err("float-eq scan missed its fixture".into());
    }
    let clean_eq = "if max.is_infinite() { }\nif m.ipc > 0.0 { }\nif count == 0 { }\n";
    if !scan_no_float_eq(p, clean_eq).is_empty() {
        return Err("float-eq scan flagged clean code".into());
    }

    let banned_threads =
        "let h = std::thread::spawn(move || work());\nthread::scope(|s| { s.spawn(|| ()); });\n";
    if scan_no_thread_spawn(p, banned_threads).len() != 2 {
        return Err("thread scan missed its fixture".into());
    }
    let clean_threads =
        "let out = pool.map(items, worker);\n// thread::spawn in a comment\nlet t = thread_count;\n";
    if !scan_no_thread_spawn(p, clean_threads).is_empty() {
        return Err("thread scan flagged clean code".into());
    }

    let banned_io = "let t = std::fs::read_to_string(&path)?;\nfs::write(&path, text)?;\n";
    if scan_no_direct_io(p, banned_io).len() != 2 {
        return Err("direct-io scan missed its fixture".into());
    }
    let clean_io = "let t = feed.read(tick)?;\n// std::fs:: in a comment\n#[cfg(test)]\nstd::fs::write(&p, t).unwrap();\n";
    if !scan_no_direct_io(p, clean_io).is_empty() {
        return Err("direct-io scan flagged clean code".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn embedded_fixtures_pass_self_test() {
        self_test().unwrap();
    }

    #[test]
    fn float_literal_edges() {
        assert!(eq_against_float_literal("if x == 0.0 {"));
        assert!(eq_against_float_literal("assert!(0.5 == y);"));
        assert!(!eq_against_float_literal("if x == 0 {"));
        assert!(!eq_against_float_literal("let v = 0.5;"));
    }
}
