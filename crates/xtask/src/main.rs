//! Repo automation tasks (`cargo run -p xtask -- <task>`).
//!
//! `lint` is the repo's gate: `cargo fmt --check`, `cargo clippy
//! --all-targets -- -D warnings`, then the `dcat-lint` token-aware
//! static-analysis engine (see `crates/lint`), which runs the DL001…
//! DL010 pass catalog against its checked-in baseline
//! (`lint-baseline.txt`). The regex line-scans that used to live here
//! were ported into that engine; xtask keeps only the tool
//! orchestration.
//!
//! `scan <files...>` applies every per-file DL pass, unscoped, to
//! arbitrary paths — CI uses it to prove the gate fails non-zero on a
//! seeded fixture file.

use std::path::PathBuf;
use std::process::{Command, ExitCode};

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(args.iter().any(|a| a == "--scan-only")),
        Some("scan") if args.len() > 1 => scan(&args[1..]),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint [--scan-only]");
            eprintln!("       cargo run -p xtask -- scan <file.rs>...");
            ExitCode::FAILURE
        }
    }
}

fn repo_root() -> PathBuf {
    // xtask always runs from somewhere inside the workspace.
    let cwd = std::env::current_dir().expect("cwd");
    dcat_lint::find_repo_root(&cwd).expect("workspace root above cwd")
}

fn lint(scan_only: bool) -> ExitCode {
    if let Err(e) = dcat_lint::self_test() {
        eprintln!("lint self-test failed: {e}");
        return ExitCode::FAILURE;
    }
    let root = repo_root();
    let mut failures = 0usize;

    if !scan_only {
        for (name, cmd_args) in [
            ("cargo fmt --check", vec!["fmt", "--", "--check"]),
            (
                "cargo clippy -D warnings",
                vec![
                    "clippy",
                    "--offline",
                    "--all-targets",
                    "--",
                    "-D",
                    "warnings",
                ],
            ),
        ] {
            println!("lint: running {name}");
            let status = Command::new("cargo")
                .args(&cmd_args)
                .current_dir(&root)
                .status();
            match status {
                Ok(s) if s.success() => {}
                Ok(_) => {
                    eprintln!("lint: {name} failed");
                    failures += 1;
                }
                Err(e) => {
                    eprintln!("lint: could not run {name}: {e}");
                    failures += 1;
                }
            }
        }
    }

    println!("lint: running dcat-lint pass catalog");
    let report = match dcat_lint::check_repo(&root) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("lint: dcat-lint failed to run: {e}");
            return ExitCode::FAILURE;
        }
    };
    let base = match dcat_lint::baseline::load(&root.join("lint-baseline.txt")) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let (new, grandfathered, stale) = dcat_lint::baseline::partition(&report.findings, &base);
    for f in &new {
        eprintln!("lint: {}", f.render_human());
    }
    for key in &stale {
        eprintln!("lint: note: stale baseline entry (debt paid — remove it): {key}");
    }
    println!(
        "lint: dcat-lint: {} new, {} baselined, {} suppressed by annotation",
        new.len(),
        grandfathered.len(),
        report.suppressed.len()
    );
    failures += new.len();

    if failures == 0 {
        println!("lint: clean");
        ExitCode::SUCCESS
    } else {
        eprintln!("lint: {failures} failure(s)");
        ExitCode::FAILURE
    }
}

fn scan(paths: &[String]) -> ExitCode {
    if let Err(e) = dcat_lint::self_test() {
        eprintln!("lint self-test failed: {e}");
        return ExitCode::FAILURE;
    }
    let paths: Vec<PathBuf> = paths.iter().map(PathBuf::from).collect();
    let report = match dcat_lint::scan_files(&paths) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("scan: {e}");
            return ExitCode::FAILURE;
        }
    };
    for f in &report.findings {
        eprintln!("scan: {}", f.render_human());
    }
    if report.findings.is_empty() {
        println!("scan: clean");
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
