//! MLOAD: a stream of sequential read accesses to an array.
//!
//! The paper's noisy neighbor. With a 60 MB working set the scan is cyclic:
//! by the time the stream wraps around, the head of the buffer has been
//! evicted, so there is *no reuse* — the paper's "streaming" class
//! (citing the cyclic access pattern of Qureshi's adaptive-insertion work).
//! Hardware prefetchers hide much of the miss latency, modeled as a high
//! effective MLP, so MLOAD's own IPC barely depends on its LLC share — but
//! its eviction pressure destroys its neighbors' cache contents.

use llc_sim::{PageSize, LINE_SIZE};

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// Sequential-scan micro-benchmark with a fixed working set.
#[derive(Debug)]
pub struct Mload {
    wss_bytes: u64,
    lines: u64,
    cursor: u64,
    page_size: PageSize,
}

impl Mload {
    /// Memory references per instruction for the scan loop. Distinct from
    /// MLR's value so phase detection can tell the two apart.
    pub const MEM_REFS_PER_INSTR: f64 = 0.5;

    /// Creates an MLOAD with the given working-set size, 4 KiB pages.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one cache line.
    pub fn new(wss_bytes: u64) -> Self {
        Self::with_page_size(wss_bytes, PageSize::Small)
    }

    /// Creates an MLOAD backed by the given page size.
    pub fn with_page_size(wss_bytes: u64, page_size: PageSize) -> Self {
        assert!(wss_bytes >= LINE_SIZE, "working set smaller than one line");
        Mload {
            wss_bytes,
            lines: wss_bytes / LINE_SIZE,
            cursor: 0,
            page_size,
        }
    }
}

impl AccessStream for Mload {
    fn next_access(&mut self) -> MemRef {
        let line = self.cursor;
        self.cursor = (self.cursor + 1) % self.lines;
        MemRef::load(line * LINE_SIZE)
    }

    fn profile(&self) -> ExecutionProfile {
        // Sequential loads prefetch well: many overlapped misses.
        ExecutionProfile::new(Self::MEM_REFS_PER_INSTR, 0.6, 8.0)
    }

    fn page_size(&self) -> PageSize {
        self.page_size
    }

    fn name(&self) -> String {
        format!("MLOAD-{}MB", self.wss_bytes / (1024 * 1024))
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(self.wss_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_is_sequential_and_cyclic() {
        let mut m = Mload::new(4 * LINE_SIZE);
        let addrs: Vec<u64> = (0..6).map(|_| m.next_access().vaddr.0).collect();
        assert_eq!(addrs, vec![0, 64, 128, 192, 0, 64]);
    }

    #[test]
    fn profile_is_streaming() {
        let m = Mload::new(60 * 1024 * 1024);
        assert!(m.profile().mlp > 4.0);
        assert_eq!(m.name(), "MLOAD-60MB");
        assert_eq!(m.working_set_bytes(), Some(60 * 1024 * 1024));
    }

    #[test]
    fn phase_signature_differs_from_mlr() {
        // dCat's phase detector must be able to distinguish the two.
        assert!((Mload::MEM_REFS_PER_INSTR - crate::Mlr::MEM_REFS_PER_INSTR).abs() > 0.1);
    }
}
