//! Synthetic workload models for the dCat reproduction.
//!
//! The paper evaluates dCat with two internally developed micro-benchmarks
//! (**MLR**, a stream of random reads over an array, and **MLOAD**, a
//! stream of sequential reads), the CPU-burner **lookbusy**, twenty
//! **SPEC CPU2006** benchmarks, and three cloud services (**Redis**,
//! **PostgreSQL**, **Elasticsearch**). None of those binaries can run
//! against a simulated cache, so this crate models each of them as an
//! [`AccessStream`]: an infinite generator of virtual-address references
//! plus an [`ExecutionProfile`] describing the workload's compute behavior
//! (memory references per instruction, base CPI, and memory-level
//! parallelism).
//!
//! The models preserve exactly the properties the paper's evaluation
//! depends on:
//!
//! * **working-set size** — whether the references fit in a given number of
//!   LLC ways,
//! * **reuse** — whether cached data is touched again (MLR: yes; MLOAD with
//!   a 60 MB cyclic scan: effectively never, the paper's "streaming"
//!   class),
//! * **access pattern** — dependent random loads (MLP ≈ 1) versus
//!   prefetch-friendly sequential scans (high MLP),
//! * **phase structure** — composite streams switch behavior to exercise
//!   dCat's phase detector, and
//! * **request boundaries** — service models mark request completion so the
//!   engine can report throughput and latency percentiles like the paper's
//!   Tables 4–6.

//! # Examples
//!
//! ```
//! use workloads::{AccessStream, Mlr, RedisModel};
//!
//! // The paper's random-read microbenchmark with a 6 MB working set.
//! let mut mlr = Mlr::new(6 * 1024 * 1024, 42);
//! let r = mlr.next_access();
//! assert!(r.vaddr.0 < 6 * 1024 * 1024);
//!
//! // A request-structured service model: the last access of each GET is
//! // flagged so the engine can record request latency.
//! let mut redis = RedisModel::paper_default(7);
//! let mut saw_end = false;
//! for _ in 0..16 {
//!     saw_end |= redis.next_access().ends_request;
//! }
//! assert!(saw_end);
//! ```

pub mod diurnal;
pub mod lookbusy;
pub mod mload;
pub mod mlr;
pub mod phased;
pub mod services;
pub mod spec;
pub mod stream;
pub mod trace;
pub mod zipf;

pub use diurnal::{DiurnalStream, DAY_CURVE};
pub use lookbusy::Lookbusy;
pub use mload::Mload;
pub use mlr::Mlr;
pub use phased::PhasedStream;
pub use services::{ElasticsearchModel, KeySampler, PostgresModel, RedisModel};
pub use spec::{spec_catalog, SpecBenchmark, SpecStream};
pub use stream::{AccessStream, ExecutionProfile, MemRef};
pub use trace::{Trace, TraceRecorder, TraceStream};
pub use zipf::ZipfSampler;
