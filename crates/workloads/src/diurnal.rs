//! [`DiurnalStream`]: a load-curve modulator for service workloads.
//!
//! Fleet scenarios need tenants whose request rate follows a daily
//! pattern — quiet nights, a morning ramp, a midday plateau — because
//! that is what creates the lending opportunities the cluster policies
//! (LFOC clustering, Memshare share accounting) exploit: a tenant at 20%
//! load leaves cache on the table that a tenant at peak wants.
//!
//! The wrapper modulates an inner [`AccessStream`] *in stream space* so
//! it composes with any service model and stays deterministic: after
//! each completed request it consults a load curve (percent of peak,
//! advanced every [`DiurnalStream::requests_per_step`] requests) and
//! interleaves proportional *think-time* filler references before the
//! next request. Filler references spin over a single hot line-sized
//! region, so they hit the L1 and consume only compute — exactly what an
//! idle front-end burning poll loops looks like to the cache. At 100%
//! load no filler is inserted and the wrapper is the identity; at 25%
//! load roughly three filler references follow every request reference,
//! quartering the request rate per unit of instructions.
//!
//! Integer carry arithmetic keeps the filler count exact over time and
//! byte-identical across `--jobs` widths.

use llc_sim::PageSize;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// Virtual address of the think-time spin line. High in the address
/// space so it cannot collide with any service model's working set
/// (models allocate from 0 upward); one line means at most one extra
/// resident LLC line per tenant.
const THINK_VADDR: u64 = 1 << 44;

/// A 24-step load curve resembling a consumer-facing service's day:
/// overnight trough, morning ramp, evening peak. Values are percent of
/// peak request rate.
pub const DAY_CURVE: [u32; 24] = [
    35, 28, 22, 20, 22, 30, 45, 62, 78, 90, 96, 100, 98, 94, 90, 88, 88, 92, 97, 100, 93, 78, 60,
    45,
];

/// Wraps an [`AccessStream`], stretching its request rate to follow a
/// load curve. See the module docs for the model.
pub struct DiurnalStream {
    inner: Box<dyn AccessStream>,
    /// Percent-of-peak steps, each 1..=100.
    curve: Vec<u32>,
    /// Completed requests per curve step.
    requests_per_step: u64,
    /// Completed requests so far.
    completed: u64,
    /// Position offset into the curve (tenants start at different local
    /// times).
    phase: usize,
    /// References the current request has issued so far.
    request_cost: u64,
    /// Filler references still owed before the next request reference.
    think_remaining: u64,
    /// Fractional filler owed, in percent units (the integer carry).
    think_carry: u64,
}

impl DiurnalStream {
    /// Wraps `inner` with a load curve. Curve values are clamped to
    /// 1..=100 (a zero-load step would stall the stream forever; real
    /// tenants always have a trickle).
    ///
    /// # Panics
    ///
    /// Panics if `curve` is empty or `requests_per_step` is zero.
    pub fn new(
        inner: Box<dyn AccessStream>,
        curve: &[u32],
        requests_per_step: u64,
        phase: usize,
    ) -> Self {
        assert!(!curve.is_empty(), "load curve needs at least one step");
        assert!(requests_per_step > 0, "curve must advance");
        DiurnalStream {
            inner,
            curve: curve.iter().map(|&p| p.clamp(1, 100)).collect(),
            requests_per_step,
            completed: 0,
            phase,
            request_cost: 0,
            think_remaining: 0,
            think_carry: 0,
        }
    }

    /// The standard day-shaped curve at the given phase offset.
    pub fn day(inner: Box<dyn AccessStream>, requests_per_step: u64, phase: usize) -> Self {
        DiurnalStream::new(inner, &DAY_CURVE, requests_per_step, phase)
    }

    /// Current percent-of-peak load.
    pub fn load_percent(&self) -> u32 {
        let step = (self.completed / self.requests_per_step) as usize;
        let idx = (step + self.phase) % self.curve.len();
        self.curve.get(idx).copied().unwrap_or(100)
    }
}

impl AccessStream for DiurnalStream {
    fn next_access(&mut self) -> MemRef {
        if self.think_remaining > 0 {
            self.think_remaining -= 1;
            return MemRef::load(THINK_VADDR);
        }
        let r = self.inner.next_access();
        self.request_cost += 1;
        if r.ends_request {
            self.completed += 1;
            let load = u64::from(self.load_percent());
            // A request that cost C references at load L% owes
            // C * (100 - L) / L filler references, carried exactly.
            let owed = self.request_cost * (100 - load) + self.think_carry;
            self.think_remaining = owed / load;
            self.think_carry = owed % load;
            self.request_cost = 0;
        }
        r
    }

    fn profile(&self) -> ExecutionProfile {
        // Think-time spinning has the same instruction mix as the inner
        // stream's compute; the cache-visible difference (L1-resident
        // filler) comes from the references themselves.
        self.inner.profile()
    }

    fn page_size(&self) -> PageSize {
        self.inner.page_size()
    }

    fn name(&self) -> String {
        format!("diurnal({})", self.inner.name())
    }

    fn working_set_bytes(&self) -> Option<u64> {
        self.inner.working_set_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RedisModel;

    fn redis() -> Box<dyn AccessStream> {
        Box::new(RedisModel::new(1000, 128, 0.9, 7))
    }

    /// Counts request completions within a fixed reference budget.
    fn requests_in(stream: &mut dyn AccessStream, refs: usize) -> u64 {
        let mut done = 0;
        for _ in 0..refs {
            if stream.next_access().ends_request {
                done += 1;
            }
        }
        done
    }

    #[test]
    fn full_load_is_the_identity() {
        let mut plain = redis();
        let mut wrapped = DiurnalStream::new(redis(), &[100], 10, 0);
        for _ in 0..2000 {
            assert_eq!(plain.next_access(), wrapped.next_access());
        }
    }

    #[test]
    fn half_load_roughly_halves_the_request_rate() {
        let full = requests_in(&mut *redis(), 20_000);
        let mut half = DiurnalStream::new(redis(), &[50], u64::MAX, 0);
        let halved = requests_in(&mut half, 20_000);
        let ratio = halved as f64 / full as f64;
        assert!(
            (0.4..=0.6).contains(&ratio),
            "expected ~0.5 request-rate ratio, got {ratio} ({halved}/{full})"
        );
    }

    #[test]
    fn curve_advances_with_completed_requests() {
        let mut s = DiurnalStream::new(redis(), &[100, 25], 5, 0);
        assert_eq!(s.load_percent(), 100);
        while s.completed < 5 {
            s.next_access();
        }
        assert_eq!(s.load_percent(), 25);
    }

    #[test]
    fn phase_offsets_rotate_the_curve() {
        let s = DiurnalStream::day(redis(), 10, 11);
        assert_eq!(s.load_percent(), DAY_CURVE[11]);
    }

    #[test]
    fn filler_hits_a_single_line() {
        let mut s = DiurnalStream::new(redis(), &[20], u64::MAX, 0);
        let mut think = Vec::new();
        for _ in 0..5000 {
            let r = s.next_access();
            if r.vaddr.0 >= THINK_VADDR {
                think.push(r.vaddr.0);
            }
        }
        assert!(!think.is_empty(), "20% load must insert filler");
        assert!(think.iter().all(|&v| v == THINK_VADDR));
    }

    #[test]
    fn wrapper_is_deterministic() {
        let mut a = DiurnalStream::day(redis(), 7, 3);
        let mut b = DiurnalStream::day(redis(), 7, 3);
        for _ in 0..5000 {
            assert_eq!(a.next_access(), b.next_access());
        }
    }

    #[test]
    #[should_panic(expected = "at least one step")]
    fn empty_curve_rejected() {
        DiurnalStream::new(redis(), &[], 10, 0);
    }
}
