//! MLR: a stream of random read accesses to an array.
//!
//! This is the paper's primary micro-benchmark (Section 2.1): every
//! reference is a load at a uniformly random line of a buffer of
//! configurable working-set size. Consecutive loads are data-dependent (a
//! pointer chase), so the effective memory-level parallelism is ~1 and the
//! measured data-access latency tracks the hierarchy level serving the
//! misses — which is what makes MLR so sensitive to its LLC allocation.

use llc_sim::{PageSize, LINE_SIZE};
use smallrng::SmallRng;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// Random-read micro-benchmark with a fixed working set.
#[derive(Debug)]
pub struct Mlr {
    wss_bytes: u64,
    lines: u64,
    page_size: PageSize,
    rng: SmallRng,
}

impl Mlr {
    /// Memory references per instruction for the pointer-chase loop.
    pub const MEM_REFS_PER_INSTR: f64 = 0.34;

    /// Creates an MLR with the given working-set size, 4 KiB pages.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than one cache line.
    pub fn new(wss_bytes: u64, seed: u64) -> Self {
        Self::with_page_size(wss_bytes, PageSize::Small, seed)
    }

    /// Creates an MLR backed by the given page size (the paper's Figure 2
    /// compares 4 KiB pages with 2 MiB huge pages).
    pub fn with_page_size(wss_bytes: u64, page_size: PageSize, seed: u64) -> Self {
        assert!(wss_bytes >= LINE_SIZE, "working set smaller than one line");
        Mlr {
            wss_bytes,
            lines: wss_bytes / LINE_SIZE,
            page_size,
            rng: SmallRng::seed_from_u64(seed),
        }
    }
}

impl AccessStream for Mlr {
    fn next_access(&mut self) -> MemRef {
        let line = self.rng.gen_range(0..self.lines);
        MemRef::load(line * LINE_SIZE)
    }

    fn profile(&self) -> ExecutionProfile {
        // A dependent random chase: each load's address comes from the
        // previous load, so misses serialize (MLP ~= 1).
        ExecutionProfile::new(Self::MEM_REFS_PER_INSTR, 0.75, 1.0)
    }

    fn page_size(&self) -> PageSize {
        self.page_size
    }

    fn name(&self) -> String {
        format!("MLR-{}MB", self.wss_bytes / (1024 * 1024))
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(self.wss_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn accesses_stay_within_working_set() {
        let mut mlr = Mlr::new(1024 * 1024, 7);
        for _ in 0..10_000 {
            let r = mlr.next_access();
            assert!(r.vaddr.0 < 1024 * 1024);
            assert_eq!(r.vaddr.0 % LINE_SIZE, 0);
            assert!(!r.ends_request);
        }
    }

    #[test]
    fn accesses_cover_the_working_set() {
        // With 64 lines and 10k draws, every line should be touched.
        let mut mlr = Mlr::new(64 * LINE_SIZE, 11);
        let mut seen = HashSet::new();
        for _ in 0..10_000 {
            seen.insert(mlr.next_access().vaddr.0);
        }
        assert_eq!(seen.len(), 64);
    }

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut m = Mlr::new(1 << 20, 5);
            (0..32).map(|_| m.next_access().vaddr.0).collect()
        };
        let b: Vec<u64> = {
            let mut m = Mlr::new(1 << 20, 5);
            (0..32).map(|_| m.next_access().vaddr.0).collect()
        };
        let c: Vec<u64> = {
            let mut m = Mlr::new(1 << 20, 6);
            (0..32).map(|_| m.next_access().vaddr.0).collect()
        };
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn profile_is_serial_and_memory_heavy() {
        let m = Mlr::new(6 * 1024 * 1024, 1);
        let p = m.profile();
        assert_eq!(p.mlp, 1.0);
        assert!(p.mem_refs_per_instr > 0.2);
        assert_eq!(m.working_set_bytes(), Some(6 * 1024 * 1024));
        assert_eq!(m.name(), "MLR-6MB");
    }

    #[test]
    #[should_panic(expected = "smaller than one line")]
    fn rejects_tiny_working_set() {
        let _ = Mlr::new(32, 0);
    }
}
