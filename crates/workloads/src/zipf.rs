//! Zipfian key sampling for the service models.
//!
//! Implements the classic Gray et al. quantile method also used by YCSB:
//! the generalized harmonic number `zeta(n, theta)` is computed once, then
//! each draw costs O(1). YCSB's default skew `theta = 0.99` is the default
//! here too.

use smallrng::SmallRng;

/// O(1) Zipf-distributed sampler over `0..n`.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    n: u64,
    theta: f64,
    alpha: f64,
    zetan: f64,
    eta: f64,
    rng: SmallRng,
}

impl ZipfSampler {
    /// Creates a sampler over `0..n` with skew `theta` (0 = uniform-ish,
    /// 0.99 = YCSB default, larger = more skewed).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is not in `[0, 1)` ∪ `(1, ..)` — the
    /// method is singular at exactly 1.
    pub fn new(n: u64, theta: f64, seed: u64) -> Self {
        assert!(n > 0, "population must be non-empty");
        assert!(
            (theta - 1.0).abs() > 1e-9 && theta >= 0.0,
            "theta must be >= 0 and != 1"
        );
        let zetan = Self::zeta(n, theta);
        let zeta2 = Self::zeta(2.min(n), theta);
        let alpha = 1.0 / (1.0 - theta);
        let eta = (1.0 - (2.0 / n as f64).powf(1.0 - theta)) / (1.0 - zeta2 / zetan);
        ZipfSampler {
            n,
            theta,
            alpha,
            zetan,
            eta,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Generalized harmonic number `sum_{i=1..n} 1/i^theta`.
    fn zeta(n: u64, theta: f64) -> f64 {
        (1..=n).map(|i| 1.0 / (i as f64).powf(theta)).sum()
    }

    /// The population size.
    pub fn population(&self) -> u64 {
        self.n
    }

    /// Draws one key in `0..n`; key 0 is the most popular.
    pub fn sample(&mut self) -> u64 {
        let u = self.rng.gen_f64();
        let uz = u * self.zetan;
        if uz < 1.0 {
            return 0;
        }
        if uz < 1.0 + 0.5f64.powf(self.theta) {
            return 1;
        }
        let k = (self.n as f64 * (self.eta * u - self.eta + 1.0).powf(self.alpha)) as u64;
        k.min(self.n - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_in_range() {
        let mut z = ZipfSampler::new(1000, 0.99, 3);
        for _ in 0..10_000 {
            assert!(z.sample() < 1000);
        }
    }

    #[test]
    fn skew_concentrates_on_small_keys() {
        let mut z = ZipfSampler::new(100_000, 0.99, 9);
        let draws = 50_000;
        let hot = (0..draws).filter(|_| z.sample() < 1000).count();
        // With theta=0.99 the hottest 1% of keys should absorb a large
        // share of accesses (YCSB sees ~60%+); demand at least 40%.
        assert!(
            hot as f64 / draws as f64 > 0.4,
            "only {hot}/{draws} draws hit the hot 1%"
        );
    }

    #[test]
    fn low_theta_is_flatter() {
        let draws = 50_000;
        let mut hot_counts = Vec::new();
        for theta in [0.2, 0.99] {
            let mut z = ZipfSampler::new(10_000, theta, 42);
            hot_counts.push((0..draws).filter(|_| z.sample() < 100).count());
        }
        assert!(
            hot_counts[0] < hot_counts[1],
            "higher theta must be more skewed"
        );
    }

    #[test]
    fn deterministic_per_seed() {
        let mut a = ZipfSampler::new(1000, 0.99, 5);
        let mut b = ZipfSampler::new(1000, 0.99, 5);
        for _ in 0..100 {
            assert_eq!(a.sample(), b.sample());
        }
    }

    #[test]
    #[should_panic(expected = "population")]
    fn empty_population_rejected() {
        let _ = ZipfSampler::new(0, 0.99, 1);
    }

    #[test]
    #[should_panic(expected = "theta")]
    fn theta_one_rejected() {
        let _ = ZipfSampler::new(10, 1.0, 1);
    }
}
