//! Cloud service models: Redis, PostgreSQL, Elasticsearch.
//!
//! The paper's application results (Tables 4–6) measure request throughput
//! and latency from the client side while dCat manages the server VM's LLC.
//! Each model here generates the *memory reference pattern* of serving one
//! request and marks the request boundary, so the engine can report
//! throughput and latency percentiles:
//!
//! * **Redis** (Table 4) — Memtier GETs over 1 M × 128 B records with a
//!   zipfian key distribution: a hash-index probe plus a small record read.
//!   The hot key set is much larger than a baseline partition but fits in
//!   an expanded one, which is why the paper sees the largest dCat gains
//!   here (+57.6% over shared, +26.6% over static).
//! * **PostgreSQL** (Table 5) — pgbench SELECTs over 10 M tuples: hot
//!   B-tree upper levels, then uniformly distributed leaf and heap touches.
//!   The uniform tail caps how much any cache can help, matching the
//!   paper's modest gains (+5.7% / −10.7% latency).
//! * **Elasticsearch** (Table 6) — YCSB workload C reads over 100 K × 1 KB
//!   documents: hot term dictionary plus a zipfian document fetch
//!   (~10–12% gains in the paper).

use llc_sim::LINE_SIZE;
use smallrng::SmallRng;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};
use crate::zipf::ZipfSampler;

/// How a service draws keys from its dataset.
///
/// Zipf matches YCSB-style generators; the two-tier sampler models a flat
/// hot set (e.g. Memtier's bounded random key range): `hot_prob` of the
/// requests fall uniformly on the `hot` most popular keys, the rest
/// uniformly on the tail. Two-tier spreads its hot mass evenly over a
/// configurable footprint, which is the regime where a cache controller
/// wins way-by-way.
#[derive(Debug)]
pub enum KeySampler {
    /// Zipf-distributed keys.
    Zipf(ZipfSampler),
    /// Flat hot set plus uniform tail.
    TwoTier {
        /// Number of hot keys.
        hot: u64,
        /// Total keys.
        total: u64,
        /// Probability a request targets the hot set.
        hot_prob: f64,
        /// Generator.
        rng: SmallRng,
    },
}

impl KeySampler {
    /// A two-tier sampler.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < hot <= total` and `hot_prob` is a probability.
    pub fn two_tier(hot: u64, total: u64, hot_prob: f64, seed: u64) -> Self {
        assert!(
            hot > 0 && hot <= total,
            "hot set must be within the dataset"
        );
        assert!((0.0..=1.0).contains(&hot_prob), "hot_prob must be in [0,1]");
        KeySampler::TwoTier {
            hot,
            total,
            hot_prob,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// Draws one key.
    pub fn sample(&mut self) -> u64 {
        match self {
            KeySampler::Zipf(z) => z.sample(),
            KeySampler::TwoTier {
                hot,
                total,
                hot_prob,
                rng,
            } => {
                if rng.gen_bool(*hot_prob) {
                    rng.gen_range(0..*hot)
                } else if *total > *hot {
                    rng.gen_range(*hot..*total)
                } else {
                    rng.gen_range(0..*hot)
                }
            }
        }
    }
}

/// Queue of planned accesses for the in-flight request.
#[derive(Debug, Default)]
struct RequestQueue {
    addrs: Vec<u64>,
    pos: usize,
}

impl RequestQueue {
    fn is_drained(&self) -> bool {
        self.pos >= self.addrs.len()
    }

    fn begin(&mut self) -> &mut Vec<u64> {
        self.addrs.clear();
        self.pos = 0;
        &mut self.addrs
    }

    /// Pops the next access; the final one is flagged as the request end.
    fn next(&mut self) -> MemRef {
        debug_assert!(!self.is_drained(), "next() on a drained queue");
        let addr = self.addrs[self.pos];
        self.pos += 1;
        let r = MemRef::load(addr);
        if self.is_drained() {
            r.ending_request()
        } else {
            r
        }
    }
}

/// In-memory key/value store serving GET requests (Memtier against Redis).
#[derive(Debug)]
pub struct RedisModel {
    n_records: u64,
    record_lines: u64,
    index_bytes: u64,
    keys: KeySampler,
    queue: RequestQueue,
}

impl RedisModel {
    /// The paper's dataset: 1 M records of 128 B each.
    ///
    /// Memtier's bounded-random GET pattern keeps a flat hot set of
    /// ~150 K keys (~21 MB of records): larger than the contracted 9 MB
    /// partition, comfortably inside an expanded one — the regime in which
    /// the paper measures its largest dCat gains.
    pub fn paper_default(seed: u64) -> Self {
        RedisModel::with_sampler(
            1_000_000,
            128,
            KeySampler::two_tier(150_000, 1_000_000, 0.85, seed),
        )
    }

    /// Creates a Redis model with `n_records` of `record_bytes` each and
    /// zipfian skew `theta`.
    pub fn new(n_records: u64, record_bytes: u64, theta: f64, seed: u64) -> Self {
        RedisModel::with_sampler(
            n_records,
            record_bytes,
            KeySampler::Zipf(ZipfSampler::new(n_records, theta, seed)),
        )
    }

    /// Creates a Redis model with an explicit key sampler.
    pub fn with_sampler(n_records: u64, record_bytes: u64, keys: KeySampler) -> Self {
        RedisModel {
            n_records,
            record_lines: record_bytes.div_ceil(LINE_SIZE).max(1),
            // Hash table: one 8-byte bucket pointer per record.
            index_bytes: n_records * 8,
            keys,
            queue: RequestQueue::default(),
        }
    }

    fn plan_request(&mut self) {
        let key = self.keys.sample();
        let record_lines = self.record_lines;
        let index_bytes = self.index_bytes;
        let data_base = index_bytes;
        let record_bytes = record_lines * LINE_SIZE;
        let out = self.queue.begin();
        // Hash bucket probe, then the chained entry it points at.
        out.push((key * 8) % index_bytes);
        out.push((key.wrapping_mul(0x9E37_79B9) * 8) % index_bytes);
        // Record header + value, sequential lines.
        let rec_base = data_base + key * record_bytes;
        for l in 0..record_lines {
            out.push(rec_base + l * LINE_SIZE);
        }
    }
}

impl AccessStream for RedisModel {
    fn next_access(&mut self) -> MemRef {
        if self.queue.is_drained() {
            self.plan_request();
        }
        self.queue.next()
    }

    fn profile(&self) -> ExecutionProfile {
        // ~80 instructions per GET on the pipelined hot path (Memtier
        // drives 8 threads x 30-deep pipelines, so per-request dispatch
        // overhead amortizes away); 4 references per request for the
        // default record size. Throughput is dominated by where those
        // references hit.
        let refs = 2.0 + self.record_lines as f64;
        ExecutionProfile::new(refs / 80.0, 0.9, 1.2)
    }

    fn name(&self) -> String {
        "redis".to_string()
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(self.index_bytes + self.n_records * self.record_lines * LINE_SIZE)
    }
}

/// Relational database serving single-row SELECTs (pgbench).
#[derive(Debug)]
pub struct PostgresModel {
    n_tuples: u64,
    rng: ZipfSampler,
    queue: RequestQueue,
    heap_tuple_lines: u64,
}

impl PostgresModel {
    /// B-tree upper levels: hot, ~2 MiB.
    const BTREE_HOT_BYTES: u64 = 2 * 1024 * 1024;
    /// Bytes per heap tuple (pgbench accounts rows are ~100 B).
    const TUPLE_BYTES: u64 = 128;

    /// The paper's dataset: 10 M tuples.
    pub fn paper_default(seed: u64) -> Self {
        PostgresModel::new(10_000_000, seed)
    }

    /// Creates a PostgreSQL model over `n_tuples`.
    pub fn new(n_tuples: u64, seed: u64) -> Self {
        PostgresModel {
            n_tuples,
            // pgbench draws keys uniformly; theta=0 approximates uniform
            // while reusing the sampler plumbing.
            rng: ZipfSampler::new(n_tuples, 0.0, seed),
            queue: RequestQueue::default(),
            heap_tuple_lines: Self::TUPLE_BYTES.div_ceil(LINE_SIZE),
        }
    }

    fn plan_request(&mut self) {
        let key = self.rng.sample();
        let n = self.n_tuples;
        let leaf_bytes = n * 16; // leaf entries: key + TID
        let heap_base = Self::BTREE_HOT_BYTES + leaf_bytes;
        let tuple_lines = self.heap_tuple_lines;
        let out = self.queue.begin();
        // Root + inner B-tree levels: hot region, pseudo-random by key.
        out.push((key.wrapping_mul(0x9E37_79B9)) % Self::BTREE_HOT_BYTES);
        out.push((key.wrapping_mul(0x85EB_CA6B)) % Self::BTREE_HOT_BYTES);
        // Leaf page entry.
        out.push(Self::BTREE_HOT_BYTES + (key * 16) % leaf_bytes);
        // Heap tuple.
        let tuple_base = heap_base + key * Self::TUPLE_BYTES;
        for l in 0..tuple_lines {
            out.push(tuple_base + l * LINE_SIZE);
        }
    }
}

impl AccessStream for PostgresModel {
    fn next_access(&mut self) -> MemRef {
        if self.queue.is_drained() {
            self.plan_request();
        }
        self.queue.next()
    }

    fn profile(&self) -> ExecutionProfile {
        // Executor + planner overhead: ~800 instructions per SELECT.
        let refs = 3.0 + self.heap_tuple_lines as f64;
        ExecutionProfile::new(refs / 800.0, 0.7, 1.3)
    }

    fn name(&self) -> String {
        "postgresql".to_string()
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(Self::BTREE_HOT_BYTES + self.n_tuples * 16 + self.n_tuples * Self::TUPLE_BYTES)
    }
}

/// Search engine serving YCSB workload-C reads (Elasticsearch).
#[derive(Debug)]
pub struct ElasticsearchModel {
    n_docs: u64,
    doc_lines: u64,
    keys: KeySampler,
    queue: RequestQueue,
}

impl ElasticsearchModel {
    /// Term dictionary / doc-values hot region: 4 MiB.
    const DICT_BYTES: u64 = 4 * 1024 * 1024;

    /// The paper's dataset: YCSB workload C, 100 K records of 1 KB.
    ///
    /// A flat hot set of ~14 K documents (~14 MB) with a heavier uniform
    /// tail than Redis: cache expansion helps, but the tail caps the win
    /// at the ~10% level the paper reports.
    pub fn paper_default(seed: u64) -> Self {
        ElasticsearchModel::with_sampler(
            100_000,
            1024,
            KeySampler::two_tier(14_000, 100_000, 0.70, seed),
        )
    }

    /// Creates an Elasticsearch model over `n_docs` documents of
    /// `doc_bytes` each (YCSB's default zipfian distribution).
    pub fn new(n_docs: u64, doc_bytes: u64, seed: u64) -> Self {
        ElasticsearchModel::with_sampler(
            n_docs,
            doc_bytes,
            KeySampler::Zipf(ZipfSampler::new(n_docs, 0.99, seed)),
        )
    }

    /// Creates an Elasticsearch model with an explicit key sampler.
    pub fn with_sampler(n_docs: u64, doc_bytes: u64, keys: KeySampler) -> Self {
        ElasticsearchModel {
            n_docs,
            doc_lines: doc_bytes.div_ceil(LINE_SIZE).max(1),
            keys,
            queue: RequestQueue::default(),
        }
    }

    fn plan_request(&mut self) {
        let doc = self.keys.sample();
        let doc_lines = self.doc_lines;
        let doc_bytes = doc_lines * LINE_SIZE;
        let out = self.queue.begin();
        // Term dictionary walk: three hot probes.
        for salt in [0x9E37_79B9u64, 0xC2B2_AE35, 0x27D4_EB2F] {
            out.push(doc.wrapping_mul(salt) % Self::DICT_BYTES);
        }
        // Stored-fields read: the whole document, sequential.
        let base = Self::DICT_BYTES + doc * doc_bytes;
        for l in 0..doc_lines {
            out.push(base + l * LINE_SIZE);
        }
    }
}

impl AccessStream for ElasticsearchModel {
    fn next_access(&mut self) -> MemRef {
        if self.queue.is_drained() {
            self.plan_request();
        }
        self.queue.next()
    }

    fn profile(&self) -> ExecutionProfile {
        // Query parsing, scoring, serialization: ~1500 instructions.
        let refs = 3.0 + self.doc_lines as f64;
        ExecutionProfile::new(refs / 1500.0, 0.8, 1.5)
    }

    fn name(&self) -> String {
        "elasticsearch".to_string()
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(Self::DICT_BYTES + self.n_docs * self.doc_lines * LINE_SIZE)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain_requests(stream: &mut dyn AccessStream, n: usize) -> Vec<usize> {
        // Returns the access count of `n` consecutive requests.
        let mut lens = Vec::new();
        let mut count = 0;
        while lens.len() < n {
            count += 1;
            if stream.next_access().ends_request {
                lens.push(count);
                count = 0;
            }
        }
        lens
    }

    #[test]
    fn redis_request_shape() {
        let mut r = RedisModel::new(10_000, 128, 0.99, 1);
        let lens = drain_requests(&mut r, 50);
        // 2 index probes + 2 record lines.
        assert!(lens.iter().all(|&l| l == 4), "unexpected lens {lens:?}");
    }

    #[test]
    fn redis_addresses_within_footprint() {
        let mut r = RedisModel::new(10_000, 128, 0.99, 2);
        let wss = r.working_set_bytes().unwrap();
        for _ in 0..5000 {
            assert!(r.next_access().vaddr.0 < wss);
        }
    }

    #[test]
    fn redis_hot_keys_repeat() {
        let mut r = RedisModel::new(100_000, 128, 0.99, 3);
        let mut seen = std::collections::HashMap::new();
        for _ in 0..30_000 {
            let a = r.next_access();
            *seen.entry(a.vaddr.0).or_insert(0u32) += 1;
        }
        let max = seen.values().copied().max().unwrap();
        assert!(
            max > 50,
            "zipfian hot lines should repeat heavily, max={max}"
        );
    }

    #[test]
    fn postgres_request_shape() {
        let mut p = PostgresModel::new(100_000, 4);
        let lens = drain_requests(&mut p, 20);
        // 2 btree + 1 leaf + 1 tuple line (128 B = 2 lines).
        assert!(lens.iter().all(|&l| l == 5), "unexpected lens {lens:?}");
        let wss = p.working_set_bytes().unwrap();
        for _ in 0..2000 {
            assert!(p.next_access().vaddr.0 < wss);
        }
    }

    #[test]
    fn elasticsearch_request_shape() {
        let mut e = ElasticsearchModel::new(10_000, 1024, 5);
        let lens = drain_requests(&mut e, 20);
        // 3 dictionary + 16 document lines.
        assert!(lens.iter().all(|&l| l == 19), "unexpected lens {lens:?}");
    }

    #[test]
    fn profiles_are_memory_light_but_valid() {
        let r = RedisModel::paper_default(1);
        let p = PostgresModel::new(100_000, 1);
        let e = ElasticsearchModel::paper_default(1);
        for s in [&r as &dyn AccessStream, &p, &e] {
            let prof = s.profile();
            assert!(prof.mem_refs_per_instr > 0.0 && prof.mem_refs_per_instr < 0.1);
        }
        assert_eq!(r.name(), "redis");
        assert_eq!(p.name(), "postgresql");
        assert_eq!(e.name(), "elasticsearch");
    }

    #[test]
    fn paper_default_footprints() {
        // Redis: 8 MB index + 128 MB data.
        let r = RedisModel::paper_default(1);
        assert_eq!(r.working_set_bytes().unwrap(), 8_000_000 + 128_000_000);
        // Elasticsearch: 4 MiB dict + ~100 MB docs.
        let e = ElasticsearchModel::paper_default(1);
        assert!(e.working_set_bytes().unwrap() > 100_000_000);
    }
}
