//! Access-trace recording and replay.
//!
//! The synthetic models cover the paper's workloads, but a downstream user
//! may want to drive the simulator with a *real* trace (from `perf mem`,
//! a PIN tool, or another simulator). The format is line-oriented text:
//!
//! ```text
//! # dcat-trace v1
//! # profile: mem_refs_per_instr cpi_exec mlp
//! profile 0.34 0.75 1.0
//! L 1a40
//! S 2b80
//! L 1a40 end
//! ```
//!
//! `L`/`S` mark loads and stores, the address is hexadecimal, and a
//! trailing `end` marks a request boundary. [`TraceRecorder`] wraps any
//! stream and writes this format while passing accesses through;
//! [`TraceStream`] replays a parsed trace (cyclically, so finite traces
//! drive arbitrarily long simulations).

use std::fmt::Write as _;

use llc_sim::AccessKind;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// A parsed, replayable access trace.
#[derive(Debug, Clone)]
pub struct Trace {
    profile: ExecutionProfile,
    refs: Vec<MemRef>,
}

impl Trace {
    /// Parses the text format.
    ///
    /// Returns an error naming the offending line for malformed input.
    pub fn parse(text: &str) -> Result<Trace, String> {
        let mut profile = None;
        let mut refs = Vec::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut fields = line.split_whitespace();
            let tag = fields.next().expect("non-empty line has a first field");
            match tag {
                "profile" => {
                    let mut parse_f = |what: &str| -> Result<f64, String> {
                        fields
                            .next()
                            .ok_or_else(|| format!("line {}: missing {what}", lineno + 1))?
                            .parse()
                            .map_err(|e| format!("line {}: bad {what}: {e}", lineno + 1))
                    };
                    profile = Some(ExecutionProfile::new(
                        parse_f("mem_refs_per_instr")?,
                        parse_f("cpi_exec")?,
                        parse_f("mlp")?,
                    ));
                }
                "L" | "S" => {
                    let addr = fields
                        .next()
                        .ok_or_else(|| format!("line {}: missing address", lineno + 1))?;
                    let vaddr = u64::from_str_radix(addr, 16)
                        .map_err(|e| format!("line {}: bad address {addr:?}: {e}", lineno + 1))?;
                    let ends_request = match fields.next() {
                        None => false,
                        Some("end") => true,
                        Some(other) => {
                            return Err(format!("line {}: unexpected field {other:?}", lineno + 1))
                        }
                    };
                    refs.push(MemRef {
                        vaddr: llc_sim::VirtAddr(vaddr),
                        kind: if tag == "L" {
                            AccessKind::Load
                        } else {
                            AccessKind::Store
                        },
                        ends_request,
                    });
                }
                other => return Err(format!("line {}: unknown tag {other:?}", lineno + 1)),
            }
        }
        if refs.is_empty() {
            return Err("trace contains no accesses".to_string());
        }
        Ok(Trace {
            profile: profile.ok_or("trace has no profile line")?,
            refs,
        })
    }

    /// Number of recorded references.
    pub fn len(&self) -> usize {
        self.refs.len()
    }

    /// Whether the trace is empty (never true for a parsed trace).
    pub fn is_empty(&self) -> bool {
        self.refs.is_empty()
    }

    /// The trace's execution profile.
    pub fn profile(&self) -> ExecutionProfile {
        self.profile
    }

    /// A cyclic replay stream over this trace.
    pub fn stream(self) -> TraceStream {
        TraceStream {
            trace: self,
            cursor: 0,
        }
    }
}

/// Replays a [`Trace`] cyclically.
#[derive(Debug, Clone)]
pub struct TraceStream {
    trace: Trace,
    cursor: usize,
}

impl AccessStream for TraceStream {
    fn next_access(&mut self) -> MemRef {
        let r = self.trace.refs[self.cursor];
        self.cursor = (self.cursor + 1) % self.trace.refs.len();
        r
    }

    fn profile(&self) -> ExecutionProfile {
        self.trace.profile
    }

    fn name(&self) -> String {
        format!("trace[{} refs]", self.trace.refs.len())
    }
}

/// Wraps a stream, recording everything that passes through.
pub struct TraceRecorder<S> {
    inner: S,
    out: String,
    recorded: usize,
    limit: usize,
}

impl<S: AccessStream> TraceRecorder<S> {
    /// Records up to `limit` references of `inner` (further accesses pass
    /// through unrecorded).
    pub fn new(inner: S, limit: usize) -> Self {
        let mut out = String::from("# dcat-trace v1\n");
        let p = inner.profile();
        let _ = writeln!(
            out,
            "profile {} {} {}",
            p.mem_refs_per_instr, p.cpi_exec, p.mlp
        );
        TraceRecorder {
            inner,
            out,
            recorded: 0,
            limit,
        }
    }

    /// The recorded trace text so far.
    pub fn text(&self) -> &str {
        &self.out
    }

    /// References recorded so far.
    pub fn recorded(&self) -> usize {
        self.recorded
    }
}

impl<S: AccessStream> AccessStream for TraceRecorder<S> {
    fn next_access(&mut self) -> MemRef {
        let r = self.inner.next_access();
        if self.recorded < self.limit {
            let tag = match r.kind {
                AccessKind::Load => "L",
                AccessKind::Store => "S",
            };
            let _ = write!(self.out, "{tag} {:x}", r.vaddr.0);
            if r.ends_request {
                self.out.push_str(" end");
            }
            self.out.push('\n');
            self.recorded += 1;
        }
        r
    }

    fn profile(&self) -> ExecutionProfile {
        self.inner.profile()
    }

    fn name(&self) -> String {
        format!("recorder[{}]", self.inner.name())
    }

    fn working_set_bytes(&self) -> Option<u64> {
        self.inner.working_set_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mlr;

    #[test]
    fn parse_happy_path() {
        let t =
            Trace::parse("# comment\nprofile 0.34 0.75 1.0\nL 1a40\nS 2b80\nL 1a40 end\n").unwrap();
        assert_eq!(t.len(), 3);
        assert!((t.profile().mem_refs_per_instr - 0.34).abs() < 1e-9);
        let mut s = t.stream();
        assert_eq!(s.next_access().vaddr.0, 0x1a40);
        let second = s.next_access();
        assert_eq!(second.kind, AccessKind::Store);
        assert!(s.next_access().ends_request);
        // Cyclic wrap.
        assert_eq!(s.next_access().vaddr.0, 0x1a40);
    }

    #[test]
    fn parse_rejects_malformed_input() {
        assert!(Trace::parse("").is_err());
        assert!(Trace::parse("profile 0.3 0.7 1\n").is_err(), "no accesses");
        assert!(Trace::parse("L 1a40\n").is_err(), "no profile");
        assert!(Trace::parse("profile 0.3 0.7 1\nX 1a40\n").is_err());
        assert!(Trace::parse("profile 0.3 0.7 1\nL zz\n").is_err());
        assert!(Trace::parse("profile 0.3 0.7 1\nL 1a40 huh\n").is_err());
        assert!(Trace::parse("profile 0.3\nL 1a40\n").is_err());
    }

    #[test]
    fn record_replay_round_trips() {
        let mut rec = TraceRecorder::new(Mlr::new(64 * 1024, 7), 100);
        let original: Vec<u64> = (0..100).map(|_| rec.next_access().vaddr.0).collect();
        // Further accesses are not recorded.
        let _ = rec.next_access();
        assert_eq!(rec.recorded(), 100);

        let replay = Trace::parse(rec.text()).unwrap();
        assert_eq!(replay.len(), 100);
        let mut s = replay.stream();
        let replayed: Vec<u64> = (0..100).map(|_| s.next_access().vaddr.0).collect();
        assert_eq!(original, replayed);
    }

    #[test]
    fn recorder_preserves_the_profile() {
        let mlr = Mlr::new(1 << 20, 1);
        let expected = mlr.profile();
        let mut rec = TraceRecorder::new(mlr, 10);
        for _ in 0..10 {
            rec.next_access();
        }
        let replay = Trace::parse(rec.text()).unwrap();
        let got = replay.profile();
        assert!((got.mem_refs_per_instr - expected.mem_refs_per_instr).abs() < 1e-9);
        assert!((got.cpi_exec - expected.cpi_exec).abs() < 1e-9);
        assert!((got.mlp - expected.mlp).abs() < 1e-9);
    }
}
