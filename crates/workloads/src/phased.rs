//! Composite streams that switch behavior between phases.
//!
//! Real programs move through phases with different memory behavior; dCat
//! detects a phase change from a >10% shift in memory accesses per
//! instruction and re-baselines (paper Sections 3.3, 3.4). [`PhasedStream`]
//! builds such programs from any sequence of sub-streams, each active for a
//! fixed number of references, optionally cycling forever.

use llc_sim::PageSize;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// One phase: a sub-stream and how many references it runs for.
pub struct Phase {
    /// The workload of this phase.
    pub stream: Box<dyn AccessStream>,
    /// Number of memory references before advancing to the next phase.
    pub accesses: u64,
}

/// A stream that plays its phases in order.
pub struct PhasedStream {
    phases: Vec<Phase>,
    current: usize,
    remaining_in_phase: u64,
    cycle: bool,
    switches: u64,
}

impl PhasedStream {
    /// Creates a phased stream that stops advancing after the last phase
    /// (the final phase then runs forever).
    ///
    /// # Panics
    ///
    /// Panics if `phases` is empty or any phase has zero accesses.
    pub fn new(phases: Vec<Phase>) -> Self {
        Self::build(phases, false)
    }

    /// Creates a phased stream that cycles back to the first phase.
    pub fn cycling(phases: Vec<Phase>) -> Self {
        Self::build(phases, true)
    }

    fn build(phases: Vec<Phase>, cycle: bool) -> Self {
        assert!(!phases.is_empty(), "phased stream needs at least one phase");
        assert!(
            phases.iter().all(|p| p.accesses > 0),
            "every phase must run for at least one access"
        );
        let first = phases[0].accesses;
        PhasedStream {
            phases,
            current: 0,
            remaining_in_phase: first,
            cycle,
            switches: 0,
        }
    }

    /// Index of the currently active phase.
    pub fn current_phase(&self) -> usize {
        self.current
    }

    /// How many phase transitions have occurred.
    pub fn phase_switches(&self) -> u64 {
        self.switches
    }

    fn advance_if_needed(&mut self) {
        if self.remaining_in_phase > 0 {
            return;
        }
        let last = self.phases.len() - 1;
        if self.current < last {
            self.current += 1;
        } else if self.cycle {
            self.current = 0;
        } else {
            // Terminal phase runs forever.
            self.remaining_in_phase = u64::MAX;
            return;
        }
        self.switches += 1;
        self.remaining_in_phase = self.phases[self.current].accesses;
    }
}

impl AccessStream for PhasedStream {
    fn next_access(&mut self) -> MemRef {
        self.advance_if_needed();
        self.remaining_in_phase = self.remaining_in_phase.saturating_sub(1);
        self.phases[self.current].stream.next_access()
    }

    fn profile(&self) -> ExecutionProfile {
        self.phases[self.current].stream.profile()
    }

    fn page_size(&self) -> PageSize {
        // The engine allocates one address space per workload; all phases
        // share the first phase's page size.
        self.phases[0].stream.page_size()
    }

    fn name(&self) -> String {
        let names: Vec<String> = self.phases.iter().map(|p| p.stream.name()).collect();
        format!("phased[{}]", names.join("->"))
    }

    fn working_set_bytes(&self) -> Option<u64> {
        self.phases[self.current].stream.working_set_bytes()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Mload, Mlr};

    fn two_phase() -> PhasedStream {
        PhasedStream::new(vec![
            Phase {
                stream: Box::new(Mlr::new(1 << 20, 1)),
                accesses: 10,
            },
            Phase {
                stream: Box::new(Mload::new(1 << 20)),
                accesses: 10,
            },
        ])
    }

    #[test]
    fn switches_after_configured_accesses() {
        let mut s = two_phase();
        for _ in 0..10 {
            s.next_access();
        }
        assert_eq!(s.current_phase(), 0);
        s.next_access();
        assert_eq!(s.current_phase(), 1);
        assert_eq!(s.phase_switches(), 1);
    }

    #[test]
    fn profile_follows_current_phase() {
        let mut s = two_phase();
        let p0 = s.profile();
        for _ in 0..11 {
            s.next_access();
        }
        let p1 = s.profile();
        assert!((p0.mem_refs_per_instr - p1.mem_refs_per_instr).abs() > 0.1);
    }

    #[test]
    fn terminal_phase_runs_forever_without_cycling() {
        let mut s = two_phase();
        for _ in 0..1000 {
            s.next_access();
        }
        assert_eq!(s.current_phase(), 1);
        assert_eq!(s.phase_switches(), 1);
    }

    #[test]
    fn cycling_returns_to_first_phase() {
        let mut s = PhasedStream::cycling(vec![
            Phase {
                stream: Box::new(Mlr::new(1 << 20, 1)),
                accesses: 5,
            },
            Phase {
                stream: Box::new(Mload::new(1 << 20)),
                accesses: 5,
            },
        ]);
        for _ in 0..11 {
            s.next_access();
        }
        assert_eq!(s.current_phase(), 0);
        assert_eq!(s.phase_switches(), 2);
    }

    #[test]
    #[should_panic(expected = "at least one phase")]
    fn empty_phases_rejected() {
        let _ = PhasedStream::new(vec![]);
    }

    #[test]
    fn name_lists_phases() {
        let s = two_phase();
        assert_eq!(s.name(), "phased[MLR-1MB->MLOAD-1MB]");
    }
}
