//! SPEC CPU2006-like workload profiles.
//!
//! The paper (Figure 17, Table 3) runs twenty SPEC CPU2006 benchmarks. SPEC
//! binaries cannot execute against a simulated cache, so each benchmark is
//! modeled by the cache-relevant parameters the literature characterizes
//! them with — working-set size (Gove, SIGARCH CAN 2007), core-working-set
//! to working-set ratio (the paper cites it as CWSS/WSS, after Jaleel's
//! characterization), access-pattern mix, and memory intensity:
//!
//! * a **hot region** of `hot_fraction * wss` is touched with probability
//!   `hot_access_prob` (high reuse — omnetpp and astar have a high CWSS/WSS
//!   ratio, which is exactly why the paper sees them gain up to 83% from
//!   extra cache),
//! * the remainder of the working set is touched either at random or by a
//!   cyclic sequential cursor (`streaming = true` models the
//!   libquantum/lbm/milc class that never reuses cache contents).
//!
//! The absolute numbers are synthetic; the *ordering* of cache sensitivity
//! across benchmarks follows the published characterizations, which is what
//! the reproduction needs.

use llc_sim::LINE_SIZE;
use smallrng::SmallRng;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// Static description of one SPEC-like benchmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SpecBenchmark {
    /// Benchmark name, e.g. `"omnetpp"`.
    pub name: &'static str,
    /// Effective LLC-relevant working-set size in bytes.
    pub wss_bytes: u64,
    /// Fraction of the working set forming the high-reuse core (CWSS/WSS).
    pub hot_fraction: f64,
    /// Probability that a reference targets the hot region.
    pub hot_access_prob: f64,
    /// Whether cold references scan sequentially with no reuse.
    pub streaming: bool,
    /// Memory references per instruction.
    pub mem_refs_per_instr: f64,
    /// Compute-bound CPI.
    pub cpi_exec: f64,
    /// Memory-level parallelism.
    pub mlp: f64,
}

impl SpecBenchmark {
    /// Instantiates the benchmark as an access stream.
    pub fn stream(&self, seed: u64) -> SpecStream {
        SpecStream::new(*self, seed)
    }
}

/// The twenty benchmarks of the paper's Figure 17, with characteristics
/// following the published working-set studies.
pub fn spec_catalog() -> Vec<SpecBenchmark> {
    const MB: u64 = 1024 * 1024;
    // Helper groups:
    //   cache-insensitive (small WSS, fits private caches + a way or two)
    //   cache-friendly    (medium/large WSS, high reuse -> dCat receivers)
    //   streaming         (large WSS, cyclic scans, no reuse)
    vec![
        // name            wss      hot core        refs  cpi   mlp
        bench("perlbench", 2 * MB, reuse(0.60, 0.90), 0.30, 0.55, 1.5),
        bench("bzip2", 7 * MB, reuse(0.50, 0.80), 0.32, 0.60, 1.6),
        bench("gcc", 6 * MB, reuse(0.55, 0.85), 0.35, 0.65, 1.5),
        bench("mcf", 40 * MB, reuse(0.30, 0.70), 0.40, 0.80, 1.2),
        bench("gobmk", 2 * MB, reuse(0.70, 0.90), 0.28, 0.60, 1.4),
        bench("hmmer", MB, reuse(0.80, 0.95), 0.42, 0.50, 2.0),
        bench("sjeng", 512 * 1024, reuse(0.80, 0.95), 0.25, 0.55, 1.5),
        bench("libquantum", 32 * MB, scan(0.02, 0.05), 0.33, 0.50, 7.0),
        bench("h264ref", 3 * MB, reuse(0.65, 0.90), 0.38, 0.55, 2.2),
        bench("omnetpp", 16 * MB, reuse(0.75, 0.92), 0.36, 0.70, 1.1),
        bench("astar", 14 * MB, reuse(0.70, 0.90), 0.34, 0.70, 1.1),
        bench("xalancbmk", 12 * MB, reuse(0.60, 0.85), 0.37, 0.70, 1.3),
        bench("bwaves", 32 * MB, scan(0.05, 0.10), 0.45, 0.55, 6.5),
        bench("milc", 48 * MB, scan(0.04, 0.08), 0.40, 0.60, 6.0),
        bench("cactusADM", 12 * MB, reuse(0.45, 0.75), 0.38, 0.65, 2.0),
        bench("leslie3d", 24 * MB, scan(0.10, 0.20), 0.42, 0.60, 5.5),
        bench("soplex", 10 * MB, reuse(0.60, 0.85), 0.39, 0.70, 1.4),
        bench("GemsFDTD", 28 * MB, scan(0.08, 0.15), 0.44, 0.60, 5.0),
        bench("lbm", 64 * MB, scan(0.03, 0.05), 0.46, 0.55, 7.5),
        bench("sphinx3", 8 * MB, reuse(0.55, 0.85), 0.41, 0.65, 1.6),
    ]
}

/// How a benchmark touches its working set: the hot-core shape plus
/// whether the cold remainder is re-referenced or scanned once.
struct AccessPattern {
    hot_fraction: f64,
    hot_access_prob: f64,
    streaming: bool,
}

/// A reuse-heavy pattern: cold references are uniform (they may hit).
fn reuse(hot_fraction: f64, hot_access_prob: f64) -> AccessPattern {
    AccessPattern {
        hot_fraction,
        hot_access_prob,
        streaming: false,
    }
}

/// A streaming pattern: cold references scan cyclically, never reusing.
fn scan(hot_fraction: f64, hot_access_prob: f64) -> AccessPattern {
    AccessPattern {
        hot_fraction,
        hot_access_prob,
        streaming: true,
    }
}

fn bench(
    name: &'static str,
    wss_bytes: u64,
    pattern: AccessPattern,
    mem_refs_per_instr: f64,
    cpi_exec: f64,
    mlp: f64,
) -> SpecBenchmark {
    SpecBenchmark {
        name,
        wss_bytes,
        hot_fraction: pattern.hot_fraction,
        hot_access_prob: pattern.hot_access_prob,
        streaming: pattern.streaming,
        mem_refs_per_instr,
        cpi_exec,
        mlp,
    }
}

/// Access stream realizing a [`SpecBenchmark`].
#[derive(Debug)]
pub struct SpecStream {
    spec: SpecBenchmark,
    hot_lines: u64,
    total_lines: u64,
    cold_cursor: u64,
    rng: SmallRng,
}

impl SpecStream {
    /// Creates the stream.
    ///
    /// # Panics
    ///
    /// Panics if the working set is smaller than two lines.
    pub fn new(spec: SpecBenchmark, seed: u64) -> Self {
        let total_lines = spec.wss_bytes / LINE_SIZE;
        assert!(total_lines >= 2, "SPEC working set too small");
        let hot_lines = ((total_lines as f64 * spec.hot_fraction) as u64).clamp(1, total_lines - 1);
        SpecStream {
            spec,
            hot_lines,
            total_lines,
            cold_cursor: 0,
            rng: SmallRng::seed_from_u64(seed),
        }
    }

    /// The benchmark description.
    pub fn benchmark(&self) -> &SpecBenchmark {
        &self.spec
    }
}

impl AccessStream for SpecStream {
    fn next_access(&mut self) -> MemRef {
        let line = if self.rng.gen_bool(self.spec.hot_access_prob) {
            // Reuse: uniform within the hot core.
            self.rng.gen_range(0..self.hot_lines)
        } else {
            let cold_span = self.total_lines - self.hot_lines;
            let offset = if self.spec.streaming {
                // Cyclic sequential scan over the cold region: no reuse.
                let c = self.cold_cursor;
                self.cold_cursor = (self.cold_cursor + 1) % cold_span;
                c
            } else {
                self.rng.gen_range(0..cold_span)
            };
            self.hot_lines + offset
        };
        MemRef::load(line * LINE_SIZE)
    }

    fn profile(&self) -> ExecutionProfile {
        ExecutionProfile::new(
            self.spec.mem_refs_per_instr,
            self.spec.cpi_exec,
            self.spec.mlp,
        )
    }

    fn name(&self) -> String {
        self.spec.name.to_string()
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(self.spec.wss_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::HashSet;

    #[test]
    fn catalog_has_twenty_distinct_benchmarks() {
        let cat = spec_catalog();
        assert_eq!(cat.len(), 20);
        let names: HashSet<&str> = cat.iter().map(|b| b.name).collect();
        assert_eq!(names.len(), 20);
    }

    #[test]
    fn catalog_spans_the_three_classes() {
        let cat = spec_catalog();
        let streaming = cat.iter().filter(|b| b.streaming).count();
        let small = cat
            .iter()
            .filter(|b| b.wss_bytes <= 4 * 1024 * 1024)
            .count();
        let friendly = cat
            .iter()
            .filter(|b| !b.streaming && b.wss_bytes > 9 * 1024 * 1024)
            .count();
        assert!(streaming >= 4, "need streaming benchmarks");
        assert!(small >= 4, "need cache-insensitive benchmarks");
        assert!(friendly >= 4, "need dCat-receiver benchmarks");
    }

    #[test]
    fn accesses_stay_in_working_set() {
        for b in spec_catalog() {
            let mut s = b.stream(17);
            for _ in 0..2000 {
                assert!(
                    s.next_access().vaddr.0 < b.wss_bytes,
                    "{} overflowed",
                    b.name
                );
            }
        }
    }

    #[test]
    fn hot_region_dominates_reuse_heavy_benchmarks() {
        let omnetpp = spec_catalog()
            .into_iter()
            .find(|b| b.name == "omnetpp")
            .unwrap();
        let mut s = omnetpp.stream(3);
        let hot_bytes = (omnetpp.wss_bytes as f64 * omnetpp.hot_fraction) as u64;
        let draws = 20_000;
        let hot = (0..draws)
            .filter(|_| s.next_access().vaddr.0 < hot_bytes)
            .count();
        assert!(hot as f64 / draws as f64 > 0.85);
    }

    #[test]
    fn streaming_cold_region_is_sequential() {
        let lbm = spec_catalog()
            .into_iter()
            .find(|b| b.name == "lbm")
            .unwrap();
        let mut s = lbm.stream(3);
        let hot_lines = ((lbm.wss_bytes / 64) as f64 * lbm.hot_fraction) as u64;
        let cold: Vec<u64> = std::iter::from_fn(|| Some(s.next_access()))
            .filter(|r| r.vaddr.0 / 64 >= hot_lines)
            .take(100)
            .map(|r| r.vaddr.0 / 64)
            .collect();
        // Consecutive cold accesses advance by exactly one line.
        let sequential = cold.windows(2).filter(|w| w[1] == w[0] + 1).count();
        assert!(
            sequential >= 90,
            "cold scan not sequential: {sequential}/99"
        );
    }

    #[test]
    fn profiles_are_valid() {
        for b in spec_catalog() {
            let s = b.stream(1);
            let p = s.profile();
            assert!(p.mem_refs_per_instr > 0.0 && p.mem_refs_per_instr < 1.0);
            assert!(p.mlp >= 1.0);
            assert_eq!(s.name(), b.name);
        }
    }
}
