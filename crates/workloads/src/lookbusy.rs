//! lookbusy: a CPU burner with negligible cache footprint.
//!
//! The paper uses `lookbusy` as the "polite neighbor": it consumes CPU but
//! performs essentially no LLC accesses, so dCat classifies its VM as a
//! Donor and shrinks it to the minimum one way. We model it as a tight
//! loop over a buffer that fits comfortably in the L1.

use llc_sim::LINE_SIZE;

use crate::stream::{AccessStream, ExecutionProfile, MemRef};

/// CPU-bound workload touching only an L1-resident buffer.
#[derive(Debug)]
pub struct Lookbusy {
    lines: u64,
    cursor: u64,
}

impl Lookbusy {
    /// Buffer size: 8 KiB, a quarter of the L1.
    pub const WSS_BYTES: u64 = 8 * 1024;

    /// Creates a lookbusy stream.
    pub fn new() -> Self {
        Lookbusy {
            lines: Self::WSS_BYTES / LINE_SIZE,
            cursor: 0,
        }
    }
}

impl Default for Lookbusy {
    fn default() -> Self {
        Lookbusy::new()
    }
}

impl AccessStream for Lookbusy {
    fn next_access(&mut self) -> MemRef {
        let line = self.cursor;
        self.cursor = (self.cursor + 1) % self.lines;
        MemRef::load(line * LINE_SIZE)
    }

    fn profile(&self) -> ExecutionProfile {
        // Almost pure compute: few memory references, all L1 hits.
        ExecutionProfile::new(0.02, 0.5, 1.0)
    }

    fn name(&self) -> String {
        "lookbusy".to_string()
    }

    fn working_set_bytes(&self) -> Option<u64> {
        Some(Self::WSS_BYTES)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn footprint_fits_in_l1() {
        let mut lb = Lookbusy::new();
        for _ in 0..1000 {
            assert!(lb.next_access().vaddr.0 < Lookbusy::WSS_BYTES);
        }
    }

    #[test]
    fn profile_is_compute_bound() {
        let lb = Lookbusy::new();
        assert!(lb.profile().mem_refs_per_instr < 0.05);
    }
}
