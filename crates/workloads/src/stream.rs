//! The [`AccessStream`] abstraction shared by every workload model.

use llc_sim::{AccessKind, PageSize, VirtAddr};

/// One memory reference emitted by a workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemRef {
    /// Virtual address touched.
    pub vaddr: VirtAddr,
    /// Load or store.
    pub kind: AccessKind,
    /// Whether this reference completes a request (service models mark
    /// request boundaries so the engine can record per-request latency;
    /// batch workloads leave this `false`).
    pub ends_request: bool,
}

impl MemRef {
    /// A plain load that does not end a request.
    pub fn load(vaddr: u64) -> Self {
        MemRef {
            vaddr: VirtAddr(vaddr),
            kind: AccessKind::Load,
            ends_request: false,
        }
    }

    /// A plain store that does not end a request.
    pub fn store(vaddr: u64) -> Self {
        MemRef {
            vaddr: VirtAddr(vaddr),
            kind: AccessKind::Store,
            ends_request: false,
        }
    }

    /// Marks this reference as the last one of a request.
    pub fn ending_request(mut self) -> Self {
        self.ends_request = true;
        self
    }
}

/// Compute-side characteristics of a workload, consumed by the engine's
/// cycle model.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ExecutionProfile {
    /// Memory references per retired instruction (`l1_ref / ret_ins`). This
    /// is the paper's phase signature: it depends only on the code, never
    /// on the cache configuration (paper Figure 5).
    pub mem_refs_per_instr: f64,
    /// Cycles per instruction when every reference hits the L1.
    pub cpi_exec: f64,
    /// Memory-level parallelism: how many outstanding misses the workload
    /// sustains. Dependent pointer chases have ~1; prefetched streams ~8.
    pub mlp: f64,
}

impl ExecutionProfile {
    /// Creates a profile, clamping values to sane ranges.
    pub fn new(mem_refs_per_instr: f64, cpi_exec: f64, mlp: f64) -> Self {
        ExecutionProfile {
            mem_refs_per_instr: mem_refs_per_instr.clamp(0.0, 4.0),
            cpi_exec: cpi_exec.max(0.05),
            mlp: mlp.max(1.0),
        }
    }
}

/// An infinite generator of memory references.
///
/// Streams are infinite; *when* a workload starts and stops is decided by
/// the scenario schedule in the `host` crate, mirroring how the paper
/// starts and stops programs inside long-lived VMs.
///
/// Streams are `Send` so a whole socket's VM set (engine state plus the
/// boxed streams it drives) can move to a worker thread when multi-socket
/// topologies simulate sockets in parallel. Workload models are plain
/// seeded state machines, so the bound costs implementors nothing.
pub trait AccessStream: Send {
    /// Produces the next memory reference.
    fn next_access(&mut self) -> MemRef;

    /// Fills `out` with the next `n` references (clearing it first).
    ///
    /// Exactly equivalent to calling [`AccessStream::next_access`] `n`
    /// times — the default body does just that — but callers holding a
    /// `Box<dyn AccessStream>` pay one virtual dispatch per *batch*
    /// instead of one per reference: the default body is monomorphized
    /// per implementor, so its `next_access` calls resolve statically and
    /// inline. The engine's slice loop is the intended caller.
    fn next_batch(&mut self, out: &mut Vec<MemRef>, n: usize) {
        out.clear();
        out.reserve(n);
        for _ in 0..n {
            out.push(self.next_access());
        }
    }

    /// The stream's current execution profile. Phase-switching composites
    /// return the profile of the *current* phase.
    fn profile(&self) -> ExecutionProfile;

    /// Page size backing the stream's buffer (huge pages change physical
    /// contiguity and therefore conflict misses; paper Figures 2–3).
    fn page_size(&self) -> PageSize {
        PageSize::Small
    }

    /// A short human-readable name for reports.
    fn name(&self) -> String;

    /// Working-set size in bytes, if the model has a well-defined one.
    fn working_set_bytes(&self) -> Option<u64> {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn next_batch_equals_repeated_next_access() {
        // Two identically-seeded streams: the batch must reproduce the
        // one-at-a-time sequence exactly, including across batch
        // boundaries (no internal state is skipped or duplicated).
        let mut one_by_one = crate::Mlr::new(1024 * 1024, 42);
        let mut batched: Box<dyn AccessStream> = Box::new(crate::Mlr::new(1024 * 1024, 42));
        let mut batch = Vec::new();
        for n in [1usize, 7, 64, 100] {
            batched.next_batch(&mut batch, n);
            assert_eq!(batch.len(), n);
            for r in &batch {
                assert_eq!(*r, one_by_one.next_access());
            }
        }
    }

    #[test]
    fn memref_constructors() {
        let l = MemRef::load(0x40);
        assert_eq!(l.kind, AccessKind::Load);
        assert!(!l.ends_request);
        let s = MemRef::store(0x80).ending_request();
        assert_eq!(s.kind, AccessKind::Store);
        assert!(s.ends_request);
    }

    #[test]
    fn profile_clamps_degenerate_values() {
        let p = ExecutionProfile::new(-1.0, 0.0, 0.0);
        assert_eq!(p.mem_refs_per_instr, 0.0);
        assert!(p.cpi_exec > 0.0);
        assert_eq!(p.mlp, 1.0);
    }
}
