//! Property-based tests for the workload generators.

use workloads::{
    spec_catalog, AccessStream, ElasticsearchModel, KeySampler, Mload, Mlr, PostgresModel,
    RedisModel, ZipfSampler,
};

/// MLR stays inside its working set and covers it.
#[test]
fn mlr_addresses_in_bounds() {
    prop_lite::run_cases("mlr_addresses_in_bounds", 128, |g| {
        let wss = g.u64_in(1, 511) * 1024;
        let seed = g.u64_in(0, 99);
        let mut mlr = Mlr::new(wss, seed);
        for _ in 0..200 {
            assert!(mlr.next_access().vaddr.0 < wss);
        }
    });
}

/// MLOAD is exactly sequential modulo the working set.
#[test]
fn mload_is_sequential() {
    prop_lite::run_cases("mload_is_sequential", 128, |g| {
        let wss_lines = g.u64_in(2, 999);
        let mut mload = Mload::new(wss_lines * 64);
        let mut prev = mload.next_access().vaddr.0;
        for _ in 0..300 {
            let cur = mload.next_access().vaddr.0;
            assert!(cur == prev + 64 || cur == 0, "jump {prev} -> {cur}");
            prev = cur;
        }
    });
}

/// Zipf samples stay in range for any population and valid skew.
#[test]
fn zipf_in_range() {
    prop_lite::run_cases("zipf_in_range", 128, |g| {
        let n = g.u64_in(1, 99_999);
        let theta_pct = g.u32_in(0, 98);
        let seed = g.u64_in(0, 49);
        let mut z = ZipfSampler::new(n, f64::from(theta_pct) / 100.0, seed);
        for _ in 0..100 {
            assert!(z.sample() < n);
        }
    });
}

/// Two-tier sampling respects the hot/total boundary statistics.
#[test]
fn two_tier_respects_bounds() {
    prop_lite::run_cases("two_tier_respects_bounds", 128, |g| {
        let hot = g.u64_in(1, 99);
        let extra = g.u64_in(1, 999);
        let seed = g.u64_in(0, 49);
        let total = hot + extra;
        let mut s = KeySampler::two_tier(hot, total, 1.0, seed);
        for _ in 0..100 {
            assert!(s.sample() < hot, "hot_prob=1 must stay in the hot set");
        }
        let mut s = KeySampler::two_tier(hot, total, 0.0, seed);
        for _ in 0..100 {
            let k = s.sample();
            assert!(
                (hot..total).contains(&k),
                "hot_prob=0 must stay in the tail"
            );
        }
    });
}

/// Every service model stays inside its advertised footprint and
/// produces complete requests.
#[test]
fn services_stay_in_footprint() {
    prop_lite::run_cases("services_stay_in_footprint", 20, |g| {
        let seed = g.u64_in(0, 19);
        let mut models: Vec<Box<dyn AccessStream>> = vec![
            Box::new(RedisModel::new(10_000, 128, 0.9, seed)),
            Box::new(PostgresModel::new(50_000, seed)),
            Box::new(ElasticsearchModel::new(5_000, 1024, seed)),
        ];
        for m in models.iter_mut() {
            let wss = m.working_set_bytes().unwrap();
            let mut saw_request_end = false;
            for _ in 0..500 {
                let r = m.next_access();
                assert!(r.vaddr.0 < wss, "{} outside footprint", m.name());
                saw_request_end |= r.ends_request;
            }
            assert!(saw_request_end, "{} never completed a request", m.name());
        }
    });
}

/// SPEC streams honor their working sets for every catalog entry.
#[test]
fn spec_streams_in_bounds() {
    prop_lite::run_cases("spec_streams_in_bounds", 128, |g| {
        let seed = g.u64_in(0, 9);
        let idx = g.usize_in(0, 19);
        let catalog = spec_catalog();
        let bench = catalog[idx % catalog.len()];
        let mut s = bench.stream(seed);
        for _ in 0..300 {
            assert!(s.next_access().vaddr.0 < bench.wss_bytes);
        }
    });
}

/// Profiles are always sane: positive CPI, MLP >= 1, bounded ratio.
#[test]
fn profiles_are_sane() {
    prop_lite::run_cases("profiles_are_sane", 10, |g| {
        let seed = g.u64_in(0, 9);
        let catalog = spec_catalog();
        let mut streams: Vec<Box<dyn AccessStream>> = vec![
            Box::new(Mlr::new(1 << 20, seed)),
            Box::new(Mload::new(1 << 20)),
            Box::new(RedisModel::paper_default(seed)),
        ];
        for b in &catalog {
            streams.push(Box::new(b.stream(seed)));
        }
        for s in &streams {
            let p = s.profile();
            assert!(p.cpi_exec > 0.0);
            assert!(p.mlp >= 1.0);
            assert!(p.mem_refs_per_instr >= 0.0 && p.mem_refs_per_instr <= 4.0);
        }
    });
}
