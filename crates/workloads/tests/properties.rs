//! Property-based tests for the workload generators.

use proptest::prelude::*;
use workloads::{
    spec_catalog, AccessStream, ElasticsearchModel, KeySampler, Mload, Mlr, PostgresModel,
    RedisModel, ZipfSampler,
};

proptest! {
    /// MLR stays inside its working set and covers it.
    #[test]
    fn mlr_addresses_in_bounds(wss_kb in 1u64..512, seed in 0u64..100) {
        let wss = wss_kb * 1024;
        prop_assume!(wss >= 64);
        let mut mlr = Mlr::new(wss, seed);
        for _ in 0..200 {
            prop_assert!(mlr.next_access().vaddr.0 < wss);
        }
    }

    /// MLOAD is exactly sequential modulo the working set.
    #[test]
    fn mload_is_sequential(wss_lines in 2u64..1000) {
        let mut mload = Mload::new(wss_lines * 64);
        let mut prev = mload.next_access().vaddr.0;
        for _ in 0..300 {
            let cur = mload.next_access().vaddr.0;
            prop_assert!(cur == prev + 64 || cur == 0, "jump {prev} -> {cur}");
            prev = cur;
        }
    }

    /// Zipf samples stay in range for any population and valid skew.
    #[test]
    fn zipf_in_range(n in 1u64..100_000, theta_pct in 0u32..99, seed in 0u64..50) {
        let mut z = ZipfSampler::new(n, f64::from(theta_pct) / 100.0, seed);
        for _ in 0..100 {
            prop_assert!(z.sample() < n);
        }
    }

    /// Two-tier sampling respects the hot/total boundary statistics.
    #[test]
    fn two_tier_respects_bounds(hot in 1u64..100, extra in 1u64..1000, seed in 0u64..50) {
        let total = hot + extra;
        let mut s = KeySampler::two_tier(hot, total, 1.0, seed);
        for _ in 0..100 {
            prop_assert!(s.sample() < hot, "hot_prob=1 must stay in the hot set");
        }
        let mut s = KeySampler::two_tier(hot, total, 0.0, seed);
        for _ in 0..100 {
            let k = s.sample();
            prop_assert!((hot..total).contains(&k), "hot_prob=0 must stay in the tail");
        }
    }

    /// Every service model stays inside its advertised footprint and
    /// produces complete requests.
    #[test]
    fn services_stay_in_footprint(seed in 0u64..20) {
        let mut models: Vec<Box<dyn AccessStream>> = vec![
            Box::new(RedisModel::new(10_000, 128, 0.9, seed)),
            Box::new(PostgresModel::new(50_000, seed)),
            Box::new(ElasticsearchModel::new(5_000, 1024, seed)),
        ];
        for m in models.iter_mut() {
            let wss = m.working_set_bytes().unwrap();
            let mut saw_request_end = false;
            for _ in 0..500 {
                let r = m.next_access();
                prop_assert!(r.vaddr.0 < wss, "{} outside footprint", m.name());
                saw_request_end |= r.ends_request;
            }
            prop_assert!(saw_request_end, "{} never completed a request", m.name());
        }
    }

    /// SPEC streams honor their working sets for every catalog entry.
    #[test]
    fn spec_streams_in_bounds(seed in 0u64..10, idx in 0usize..20) {
        let catalog = spec_catalog();
        let bench = catalog[idx % catalog.len()];
        let mut s = bench.stream(seed);
        for _ in 0..300 {
            prop_assert!(s.next_access().vaddr.0 < bench.wss_bytes);
        }
    }

    /// Profiles are always sane: positive CPI, MLP >= 1, bounded ratio.
    #[test]
    fn profiles_are_sane(seed in 0u64..10) {
        let catalog = spec_catalog();
        let mut streams: Vec<Box<dyn AccessStream>> = vec![
            Box::new(Mlr::new(1 << 20, seed)),
            Box::new(Mload::new(1 << 20)),
            Box::new(RedisModel::paper_default(seed)),
        ];
        for b in &catalog {
            streams.push(Box::new(b.stream(seed)));
        }
        for s in &streams {
            let p = s.profile();
            prop_assert!(p.cpi_exec > 0.0);
            prop_assert!(p.mlp >= 1.0);
            prop_assert!(p.mem_refs_per_instr >= 0.0 && p.mem_refs_per_instr <= 4.0);
        }
    }
}
