//! Call-graph integration tests over the mini-workspace fixture in
//! `tests/fixtures/miniws/`: two crates, a cross-module call, a
//! use-aliased cross-crate call, method resolution through `self` and
//! typed parameters, and one deliberately ambiguous method call that
//! must land in the unresolved bucket rather than being dropped or
//! guessed.

use dcat_lint::diagnostics::Sink;
use dcat_lint::model::Workspace;
use dcat_lint::passes::interproc::{run_all, EntryMode};
use std::collections::BTreeMap;
use std::path::Path;

fn fixture(name: &str) -> String {
    let p = Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures/miniws")
        .join(name);
    std::fs::read_to_string(&p).unwrap_or_else(|e| panic!("read {}: {e}", p.display()))
}

/// Builds the fixture workspace under its virtual `crates/` paths.
fn mini_workspace() -> Workspace {
    let sources = vec![
        ("crates/app/src/main.rs".to_string(), fixture("app_main.rs")),
        (
            "crates/app/src/metrics.rs".to_string(),
            fixture("app_metrics.rs"),
        ),
        (
            "crates/corelib/src/lib.rs".to_string(),
            fixture("corelib.rs"),
        ),
    ];
    let idents = BTreeMap::from([
        ("app".to_string(), "app".to_string()),
        ("corelib".to_string(), "corelib".to_string()),
    ]);
    Workspace::from_sources(&sources, &idents)
}

fn fn_index(ws: &Workspace, qualified: &str) -> usize {
    ws.fns
        .iter()
        .position(|n| n.qualified == qualified)
        .unwrap_or_else(|| {
            let all: Vec<&str> = ws.fns.iter().map(|n| n.qualified.as_str()).collect();
            panic!("no fn `{qualified}` in graph; have: {all:?}")
        })
}

fn has_edge(ws: &Workspace, from: &str, to: &str) -> bool {
    let f = fn_index(ws, from);
    let t = fn_index(ws, to);
    ws.edges[f].iter().any(|&(c, _)| c == t)
}

#[test]
fn graph_edges_cover_module_crate_and_method_resolution() {
    let ws = mini_workspace();
    // Cross-module call within the app crate.
    assert!(has_edge(&ws, "app::main::main", "app::metrics::collect"));
    assert!(has_edge(&ws, "app::main::main", "app::metrics::gauge"));
    // Cross-crate call through a `use … as` alias.
    assert!(has_edge(
        &ws,
        "app::metrics::collect",
        "corelib::routing_table"
    ));
    // Method on a typed-parameter receiver.
    assert!(has_edge(
        &ws,
        "app::metrics::gauge",
        "corelib::Sensor::read"
    ));
    // Method through `self`.
    assert!(has_edge(
        &ws,
        "app::metrics::Gauge::touch",
        "app::metrics::Gauge::sample"
    ));
}

#[test]
fn ambiguous_method_call_is_reported_not_guessed() {
    let ws = mini_workspace();
    let flush = fn_index(&ws, "app::metrics::flush");
    let unresolved: Vec<_> = ws.unresolved.iter().filter(|u| u.caller == flush).collect();
    assert_eq!(
        unresolved.len(),
        1,
        "expected exactly the g.sample ambiguity, got: {:?}",
        ws.unresolved
            .iter()
            .map(|u| (&u.call, &u.reason))
            .collect::<Vec<_>>()
    );
    assert_eq!(unresolved[0].call, "g.sample");
    assert!(
        unresolved[0].reason.contains("2 candidates"),
        "reason names both candidates' count: {}",
        unresolved[0].reason
    );
    // No edge was invented to either candidate.
    assert!(!has_edge(
        &ws,
        "app::metrics::flush",
        "app::metrics::Gauge::sample"
    ));
    assert!(!has_edge(
        &ws,
        "app::metrics::flush",
        "corelib::Probe::sample"
    ));
    // The summary counts it.
    assert_eq!(ws.summary().unresolved, ws.unresolved.len());
}

/// The DL015 fixture is its own tiny workspace so the all-DL012
/// assertion on `mini_workspace()` keeps holding.
fn pool_workspace() -> Workspace {
    let sources = vec![(
        "crates/app/src/pool_worker.rs".to_string(),
        fixture("app_pool_worker.rs"),
    )];
    let idents = BTreeMap::from([("app".to_string(), "app".to_string())]);
    Workspace::from_sources(&sources, &idents)
}

fn daemon_workspace() -> Workspace {
    let sources = vec![(
        "crates/app/src/daemon_stub.rs".to_string(),
        fixture("app_daemon_stub.rs"),
    )];
    let idents = BTreeMap::from([("app".to_string(), "app".to_string())]);
    Workspace::from_sources(&sources, &idents)
}

#[test]
fn dl015_pool_capture_trace_is_byte_exact() {
    let ws = pool_workspace();
    let mut sink = Sink::default();
    run_all(&ws, EntryMode::Roots, &mut sink);
    let pool: Vec<_> = sink.findings.iter().filter(|f| f.code == "DL015").collect();
    assert_eq!(
        pool.len(),
        1,
        "expected exactly the mutated capture: {:?}",
        sink.findings
    );
    let f = pool[0];
    assert_eq!(f.path, "crates/app/src/pool_worker.rs");
    assert_eq!(
        f.message,
        "closure passed to Pool::map mutates captured `merged` — workers race on shared \
         state; return per-item results and merge in the coordinator"
    );
    assert_eq!(
        f.trace,
        vec![
            "app::pool_worker::run_sweep".to_string(),
            "app::pool_worker::fan_out".to_string()
        ],
        "entry -> capture chain must be reproduced exactly"
    );
    assert!(f.snippet.contains("merged += x"), "snippet: {}", f.snippet);
    assert!(
        sink.findings.iter().all(|f| f.code == "DL015"),
        "unexpected findings: {:?}",
        sink.findings
    );
}

#[test]
fn dl017_two_hop_discard_trace_is_byte_exact() {
    let ws = daemon_workspace();
    let mut sink = Sink::default();
    run_all(&ws, EntryMode::Roots, &mut sink);
    let io: Vec<_> = sink.findings.iter().filter(|f| f.code == "DL017").collect();
    assert_eq!(
        io.len(),
        1,
        "expected exactly the two-hop discard: {:?}",
        sink.findings
    );
    let f = io[0];
    assert_eq!(f.path, "crates/app/src/daemon_stub.rs");
    assert_eq!(
        f.message,
        "I/O Result bound to `applied` and then discarded with `let _ =` — the two-hop \
         discard still loses the error; classify or propagate it"
    );
    assert_eq!(
        f.trace,
        vec![
            "app::daemon_stub::run_daemon".to_string(),
            "app::daemon_stub::step_epoch".to_string()
        ],
        "entry -> discard chain must be reproduced exactly"
    );
    assert!(
        f.snippet.contains("let _ = applied"),
        "snippet: {}",
        f.snippet
    );
    assert!(
        sink.findings.iter().all(|f| f.code == "DL017"),
        "unexpected findings: {:?}",
        sink.findings
    );
}

#[test]
fn dl012_trace_through_aliased_cross_crate_call_is_byte_exact() {
    let ws = mini_workspace();
    let mut sink = Sink::default();
    run_all(&ws, EntryMode::Roots, &mut sink);
    let taints: Vec<_> = sink.findings.iter().filter(|f| f.code == "DL012").collect();
    assert_eq!(
        taints.len(),
        1,
        "expected exactly the laundered HashMap iteration: {:?}",
        sink.findings
    );
    let f = taints[0];
    assert_eq!(f.path, "crates/app/src/metrics.rs");
    assert_eq!(
        f.trace,
        vec![
            "app::main::main".to_string(),
            "app::metrics::collect".to_string()
        ],
        "entry -> sink chain must be reproduced exactly"
    );
    assert!(f.snippet.contains("for name in m.keys()"));
    assert!(
        f.render_human()
            .contains("via app::main::main -> app::metrics::collect"),
        "human rendering carries the trace: {}",
        f.render_human()
    );
    // The fixture has no panic sites or unit mixing: the other two
    // interprocedural passes stay quiet on it.
    assert!(
        sink.findings.iter().all(|f| f.code == "DL012"),
        "unexpected findings: {:?}",
        sink.findings
    );
}
