//! Mini-workspace fixture, "corelib" crate (`crates/corelib/src/lib.rs`).
//!
//! Deliberately holds a HashMap-returning constructor (the laundering
//! vehicle for the DL012 trace test) and a `sample` method that collides
//! with `app::metrics::Gauge::sample` to force an ambiguous edge.

use std::collections::HashMap;

/// Builds the routing table. The HashMap return type is what the
/// interprocedural engine must carry back into callers.
pub fn routing_table() -> HashMap<String, u32> {
    let mut m = HashMap::new();
    m.insert("a".to_string(), 1);
    m
}

pub struct Sensor;

impl Sensor {
    pub fn read(&self) -> u32 {
        7
    }
}

pub struct Probe;

impl Probe {
    /// Same method name as `Gauge::sample` in the app crate: a call on
    /// an untyped receiver cannot pick between them.
    pub fn sample(&self) -> u32 {
        1
    }
}
