//! Daemon epoch stub. Every resctrl-classified Result produced on the
//! epoch path must reach severity classification before the epoch
//! ends; `step_epoch` instead parks the Result in a binding and drops
//! it two statements later — the shape only value tracking can see.

pub struct ResctrlError;

pub fn run_daemon(rounds: u64) -> u64 {
    let mut acc = 0;
    let mut i = 0;
    while i < rounds {
        acc += step_epoch(i);
        i += 1;
    }
    acc
}

fn step_epoch(epoch: u64) -> u64 {
    let applied = write_mask(epoch);
    let _ = applied;
    epoch
}

fn write_mask(mask: u64) -> Result<u64, ResctrlError> {
    Ok(mask)
}
