//! Mini-workspace fixture, "app" crate entry (`crates/app/src/main.rs`).

mod metrics;

fn main() {
    let total = metrics::collect();
    let s = corelib::Sensor;
    let reading = metrics::gauge(&s);
    let _ = total + reading;
}
