//! Mini-workspace fixture, "app" crate metrics module
//! (`crates/app/src/metrics.rs`).

use corelib::routing_table as routes;

pub struct Gauge {
    pub value: u32,
}

impl Gauge {
    pub fn sample(&self) -> u32 {
        self.value
    }

    /// Method call through `self`: edge `Gauge::touch -> Gauge::sample`.
    pub fn touch(&self) -> u32 {
        self.sample()
    }
}

/// The DL012 target: the HashMap arrives through a use-aliased
/// cross-crate call, so no token-level pass can see its type here.
pub fn collect() -> u32 {
    let m = routes();
    let mut total = 0;
    for name in m.keys() {
        total += name.len() as u32;
    }
    total
}

/// Method resolution by typed-parameter receiver:
/// edge `gauge -> corelib::Sensor::read`.
pub fn gauge(s: &corelib::Sensor) -> u32 {
    s.read()
}

/// The deliberate unresolved edge: `g` is a pattern binding with no
/// recorded type, and both `Gauge` and `corelib::Probe` define
/// `sample`, so the resolver must report the ambiguity, not guess.
pub fn flush(q: &[Gauge]) -> u32 {
    if let Some(g) = q.last() {
        return g.sample();
    }
    0
}
