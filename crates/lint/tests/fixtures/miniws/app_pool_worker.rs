//! Worker fan-out over a deterministic pool. Tasks handed to
//! `Pool::map` must be self-contained: the closure below breaks the
//! discipline by accumulating into captured coordinator state.

pub struct Pool {
    jobs: usize,
}

impl Pool {
    pub fn new(jobs: usize) -> Self {
        Pool { jobs }
    }

    pub fn map(&self, items: Vec<u64>, f: impl Fn(usize, u64) -> u64) -> Vec<u64> {
        items
            .into_iter()
            .enumerate()
            .map(|(i, x)| f(i, x))
            .collect()
    }
}

pub fn run_sweep(items: Vec<u64>) -> u64 {
    fan_out(items)
}

fn fan_out(items: Vec<u64>) -> u64 {
    let pool: Pool = Pool::new(4);
    let mut merged = 0u64;
    let out = pool.map(items, |i, x| {
        merged += x;
        x + i as u64
    });
    out.iter().copied().sum::<u64>() + merged
}
