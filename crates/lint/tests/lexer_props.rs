//! Property-style tests for the scrubbing lexer: no matter how banned
//! tokens are wrapped in comments, strings, raw strings, or char
//! literals, the passes must neither see phantom patterns nor miss real
//! ones next to the wrapping.

use dcat_lint::diagnostics::Sink;
use dcat_lint::lexer::{scrub, SourceFile};
use dcat_lint::passes;
use dcat_lint::tokens::{tokenize, TokKind};
use prop_lite::run_cases;

/// Fragments that, placed in *code*, trigger a pass.
const BANNED: [&str; 6] = [
    ".unwrap()",
    ".expect(\"x\")",
    "thread::spawn",
    "std::fs::read_to_string(p)",
    "Instant::now()",
    "bits << shift",
];

/// Wrappers that must hide a fragment from every pass.
fn wrap(style: usize, fragment: &str) -> String {
    match style {
        0 => format!("// {fragment}\nlet a = 1;"),
        1 => format!("/* {fragment} */ let a = 1;"),
        2 => format!("/* outer /* {fragment} */ still comment */ let a = 1;"),
        3 => format!("let s = \"{fragment}\";"),
        4 => format!("let s = r#\"{fragment}\"#;"),
        5 => format!("let s = b\"{fragment}\";"),
        _ => unreachable!(),
    }
}

fn count_all_passes(src: &str) -> usize {
    let file = SourceFile::parse("prop.rs", src);
    let mut sink = Sink::default();
    for code in passes::FILE_PASS_CODES {
        passes::run_pass(code, &file, &mut sink);
    }
    sink.findings.len()
}

#[test]
fn wrapped_banned_fragments_are_invisible() {
    run_cases("wrapped_banned_fragments_are_invisible", 300, |g| {
        let fragment = *g.pick(&BANNED);
        let style = g.usize_in(0, 5);
        let src = wrap(style, fragment);
        assert_eq!(
            count_all_passes(&src),
            0,
            "style {style} leaked `{fragment}` out of the wrapper:\n{src}"
        );
    });
}

#[test]
fn code_after_a_wrapper_is_still_seen() {
    run_cases("code_after_a_wrapper_is_still_seen", 300, |g| {
        let hidden = *g.pick(&BANNED);
        let style = g.usize_in(0, 5);
        // One wrapped (invisible) occurrence, then one real violation.
        let src = format!("{}\nlet x = v.unwrap();\n", wrap(style, hidden));
        assert_eq!(
            count_all_passes(&src),
            1,
            "the real .unwrap() after a style-{style} wrapper was miscounted:\n{src}"
        );
    });
}

#[test]
fn char_literals_and_lifetimes_do_not_derail_scrubbing() {
    // `'"'` opens no string; `'a` is a lifetime, not a literal.
    let tricky = [
        "let q = '\"'; let x = v.unwrap();",
        "let e = '\\''; let x = v.unwrap();",
        "fn f<'a>(s: &'a str) -> &'a str { s.trim() }\nlet x = v.unwrap();",
        "let b = b'\"'; let x = v.unwrap();",
    ];
    for src in tricky {
        assert_eq!(count_all_passes(src), 1, "miscounted: {src}");
    }
}

#[test]
fn slash_slash_inside_strings_is_not_a_comment() {
    run_cases("slash_slash_inside_strings_is_not_a_comment", 200, |g| {
        let host = *g.pick(&["http://host/a", "a//b", "//", "x // y"]);
        let src = format!("let url = \"{host}\"; let x = v.unwrap();");
        assert_eq!(count_all_passes(&src), 1, "miscounted: {src}");
    });
}

#[test]
fn scrub_preserves_line_structure() {
    run_cases("scrub_preserves_line_structure", 300, |g| {
        let fragment = *g.pick(&BANNED);
        let style = g.usize_in(0, 5);
        let filler = g.usize_in(0, 4);
        let mut src = String::new();
        for _ in 0..filler {
            src.push_str("let pad = 0;\n");
        }
        src.push_str(&wrap(style, fragment));
        src.push('\n');
        let (scrubbed, _) = scrub(&src);
        assert_eq!(
            scrubbed.matches('\n').count(),
            src.matches('\n').count(),
            "scrubbing changed the line count:\n{src}"
        );
    });
}

/// Closing `>` runs of arbitrarily nested generics must come out as
/// individual `>` tokens — never a `>>` shift — or type spans inside
/// `let x: Vec<Vec<u8>> = …` would swallow the `=` that follows.
#[test]
fn nested_generic_closers_never_fuse_into_shifts() {
    run_cases("nested_generic_closers_never_fuse_into_shifts", 200, |g| {
        let depth = g.usize_in(2, 6);
        let mut ty = String::from("u8");
        for _ in 0..depth {
            ty = format!("Vec<{ty}>");
        }
        let src = format!("let x: {ty} = make();");
        let toks = tokenize(&src);
        assert!(
            toks.iter().all(|t| t.text != ">>" && t.text != ">>="),
            "fused shift token in: {src}"
        );
        assert_eq!(
            toks.iter().filter(|t| t.text == ">").count(),
            depth,
            "wrong number of `>` tokens in: {src}"
        );
        // A real shift keeps its two `>` adjacent (the `joined` flag),
        // so shift-aware passes can still recognize it.
        let shift = tokenize("let y = bits >> amount;");
        let adjacent = shift
            .windows(2)
            .any(|w| w[0].text == ">" && w[1].text == ">" && w[0].joined);
        assert!(adjacent, "shift lost its adjacency marker");
    });
}

/// Float literals with exponents are one token; splitting `1e-6` at the
/// sign would hand the parser a phantom `-` operator mid-number.
#[test]
fn float_exponents_lex_as_single_numbers() {
    run_cases("float_exponents_lex_as_single_numbers", 200, |g| {
        let mantissa = *g.pick(&["1", "1.5", "0.25", "12.0", "3"]);
        let marker = *g.pick(&["e", "E"]);
        let sign = *g.pick(&["", "+", "-"]);
        let exp = g.usize_in(0, 12);
        let lit = format!("{mantissa}{marker}{sign}{exp}");
        let src = format!("let eps = {lit};");
        let toks = tokenize(&src);
        let nums: Vec<_> = toks.iter().filter(|t| t.kind == TokKind::Number).collect();
        assert_eq!(nums.len(), 1, "split literal `{lit}` in: {src}");
        assert_eq!(nums[0].text, lit, "mangled literal in: {src}");
        assert!(
            !toks.iter().any(|t| t.text == "+" || t.text == "-"),
            "phantom sign operator from `{lit}`"
        );
    });
}

/// `r#ident` is an identifier whose *name* matches the keyword but which
/// must never satisfy keyword checks (`r#fn` is a legal fn name).
#[test]
fn raw_identifiers_do_not_satisfy_keyword_checks() {
    run_cases("raw_identifiers_do_not_satisfy_keyword_checks", 200, |g| {
        let kw = *g.pick(&["fn", "match", "loop", "use", "impl", "type", "mod"]);
        let src = format!("let r#{kw} = 1; let other = r#{kw};");
        let toks = tokenize(&src);
        let raws: Vec<_> = toks.iter().filter(|t| t.raw_ident).collect();
        assert_eq!(raws.len(), 2, "raw idents miscounted in: {src}");
        for t in raws {
            assert_eq!(t.kind, TokKind::Ident);
            assert_eq!(t.text, kw, "raw ident text keeps the bare name");
            assert!(
                !t.is_kw(kw),
                "r#{kw} must not satisfy the `{kw}` keyword check"
            );
        }
    });
}

#[test]
fn raw_string_hash_depths_round_trip() {
    run_cases("raw_string_hash_depths_round_trip", 200, |g| {
        let depth = g.usize_in(1, 4);
        let hashes = "#".repeat(depth);
        // A raw string whose body contains a quote + fewer hashes than
        // the delimiter; the scrubber must not close early.
        let src = format!(
            "let s = r{hashes}\"inner \"{} quote .unwrap()\"{hashes};\nlet x = v.unwrap();\n",
            "#".repeat(depth.saturating_sub(1)),
        );
        assert_eq!(count_all_passes(&src), 1, "miscounted: {src}");
    });
}
