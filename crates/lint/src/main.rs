//! dcat-lint CLI.
//!
//! ```text
//! dcat-lint [--json] [--baseline FILE] [--write-baseline FILE] [--root DIR] [FILE.rs...]
//! ```
//!
//! With no file arguments, runs the scoped repo gate (plus the DL010
//! spec-drift check) from the workspace root; with files, applies every
//! per-file pass to them unscoped (the CI fixture mode). Exit status:
//! 0 when no new findings, 1 when there are, 2 on usage/IO errors.

use dcat_lint::{baseline, check_repo, diagnostics, find_repo_root, scan_files, self_test};
use std::path::PathBuf;
use std::process::ExitCode;

struct Opts {
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        json: false,
        baseline: None,
        write_baseline: None,
        root: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline needs a path")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dcat-lint [--json] [--baseline FILE] [--write-baseline FILE] \
                     [--root DIR] [FILE.rs...]"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dcat-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = self_test() {
        eprintln!("dcat-lint: self-test failed: {e}");
        return ExitCode::from(2);
    }

    let file_mode = !opts.files.is_empty();
    let (report, base_path) = if file_mode {
        (scan_files(&opts.files), opts.baseline.clone())
    } else {
        let root = match opts.root.clone().map(Ok).unwrap_or_else(|| {
            std::env::current_dir()
                .map_err(|e| format!("cwd: {e}"))
                .and_then(|d| find_repo_root(&d))
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("dcat-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let base = opts
            .baseline
            .clone()
            .unwrap_or_else(|| root.join("lint-baseline.txt"));
        (check_repo(&root), Some(base))
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcat-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        let body = baseline::render(&report.findings);
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("dcat-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "dcat-lint: wrote {} finding key(s) to {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match base_path
        .as_deref()
        .map(baseline::load)
        .unwrap_or_else(|| Ok(Default::default()))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dcat-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (new, grandfathered, stale) = baseline::partition(&report.findings, &base);

    if opts.json {
        let new_owned: Vec<_> = new.iter().map(|f| (*f).clone()).collect();
        println!(
            "{}",
            diagnostics::render_json(
                &report.findings,
                &new_owned,
                report.suppressed.len(),
                grandfathered.len(),
                &stale,
            )
        );
    } else {
        for f in &new {
            eprintln!("dcat-lint: {}", f.render_human());
        }
        for key in &stale {
            eprintln!("dcat-lint: note: stale baseline entry (debt paid — remove it): {key}");
        }
        println!(
            "dcat-lint: {} finding(s): {} new, {} baselined, {} suppressed by annotation",
            report.findings.len(),
            new.len(),
            grandfathered.len(),
            report.suppressed.len(),
        );
    }

    if new.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
