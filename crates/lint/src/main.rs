//! dcat-lint CLI.
//!
//! ```text
//! dcat-lint [--json] [--baseline FILE] [--write-baseline FILE]
//!           [--prune-stale] [--root DIR] [FILE.rs...]
//! ```
//!
//! With no file arguments, runs the scoped repo gate (per-file passes,
//! the DL010 spec-drift check, and the interprocedural DL012-DL014
//! passes over the workspace call graph) from the workspace root; with
//! files, applies every pass to them unscoped (the CI fixture mode).
//! Exit status: 0 when clean, 1 on new findings *or* stale baseline
//! entries (debt paid but not recorded), 2 on usage/IO errors.
//! `--prune-stale` rewrites the baseline dropping stale keys (keeping
//! any hand-written header comments) instead of failing on them.

use dcat_lint::{baseline, check_repo, diagnostics, find_repo_root, scan_files, self_test};
use std::path::{Path, PathBuf};
use std::process::ExitCode;

struct Opts {
    json: bool,
    baseline: Option<PathBuf>,
    write_baseline: Option<PathBuf>,
    prune_stale: bool,
    root: Option<PathBuf>,
    files: Vec<PathBuf>,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        json: false,
        baseline: None,
        write_baseline: None,
        prune_stale: false,
        root: None,
        files: Vec::new(),
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--json" => opts.json = true,
            "--prune-stale" => opts.prune_stale = true,
            "--baseline" => {
                let v = it.next().ok_or("--baseline needs a path")?;
                opts.baseline = Some(PathBuf::from(v));
            }
            "--write-baseline" => {
                let v = it.next().ok_or("--write-baseline needs a path")?;
                opts.write_baseline = Some(PathBuf::from(v));
            }
            "--root" => {
                let v = it.next().ok_or("--root needs a path")?;
                opts.root = Some(PathBuf::from(v));
            }
            "--help" | "-h" => {
                return Err(
                    "usage: dcat-lint [--json] [--baseline FILE] [--write-baseline FILE] \
                     [--prune-stale] [--root DIR] [FILE.rs...]"
                        .into(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag {other}")),
            file => opts.files.push(PathBuf::from(file)),
        }
    }
    Ok(opts)
}

/// Leading comment block of an existing baseline file, if any.
fn header_of_file(path: &Path) -> Option<String> {
    let text = std::fs::read_to_string(path).ok()?;
    baseline::header_of(&text)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(o) => o,
        Err(e) => {
            eprintln!("dcat-lint: {e}");
            return ExitCode::from(2);
        }
    };
    if let Err(e) = self_test() {
        eprintln!("dcat-lint: self-test failed: {e}");
        return ExitCode::from(2);
    }

    let file_mode = !opts.files.is_empty();
    let (report, base_path) = if file_mode {
        (scan_files(&opts.files), opts.baseline.clone())
    } else {
        let root = match opts.root.clone().map(Ok).unwrap_or_else(|| {
            std::env::current_dir()
                .map_err(|e| format!("cwd: {e}"))
                .and_then(|d| find_repo_root(&d))
        }) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("dcat-lint: {e}");
                return ExitCode::from(2);
            }
        };
        let base = opts
            .baseline
            .clone()
            .unwrap_or_else(|| root.join("lint-baseline.txt"));
        (check_repo(&root), Some(base))
    };
    let report = match report {
        Ok(r) => r,
        Err(e) => {
            eprintln!("dcat-lint: {e}");
            return ExitCode::from(2);
        }
    };

    if let Some(path) = &opts.write_baseline {
        // A rewrite keeps any hand-written notes above the keys.
        let header = header_of_file(path);
        let body = baseline::render_with_header(&report.findings, header.as_deref());
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("dcat-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "dcat-lint: wrote {} finding key(s) to {}",
            report.findings.len(),
            path.display()
        );
        return ExitCode::SUCCESS;
    }

    let base = match base_path
        .as_deref()
        .map(baseline::load)
        .unwrap_or_else(|| Ok(Default::default()))
    {
        Ok(b) => b,
        Err(e) => {
            eprintln!("dcat-lint: {e}");
            return ExitCode::from(2);
        }
    };
    let (new, grandfathered, stale) = baseline::partition(&report.findings, &base);

    let mut pruned = false;
    if opts.prune_stale && !stale.is_empty() {
        let Some(path) = base_path.as_deref() else {
            eprintln!("dcat-lint: --prune-stale needs a baseline file (use --baseline)");
            return ExitCode::from(2);
        };
        let header = header_of_file(path);
        let body = baseline::render_keys(
            base.iter()
                .filter(|k| !stale.contains(*k))
                .map(String::as_str),
            header.as_deref(),
        );
        if let Err(e) = std::fs::write(path, body) {
            eprintln!("dcat-lint: write {}: {e}", path.display());
            return ExitCode::from(2);
        }
        println!(
            "dcat-lint: pruned {} stale baseline entrie(s) from {}",
            stale.len(),
            path.display()
        );
        pruned = true;
    }

    if opts.json {
        let new_owned: Vec<_> = new.iter().map(|f| (*f).clone()).collect();
        println!(
            "{}",
            diagnostics::render_json(
                &report.findings,
                &new_owned,
                report.suppressed.len(),
                grandfathered.len(),
                &stale,
                report.callgraph.as_ref(),
                &report.unresolved,
            )
        );
    } else {
        for f in &new {
            eprintln!("dcat-lint: {}", f.render_human());
        }
        if !pruned {
            for key in &stale {
                eprintln!("dcat-lint: error: stale baseline entry (debt paid — remove it or run --prune-stale): {key}");
            }
        }
        if let Some(g) = &report.callgraph {
            println!(
                "dcat-lint: call graph: {} function(s), {} edge(s), {} unresolved call(s) \
                 (full list under --json)",
                g.functions, g.edges, g.unresolved
            );
        }
        println!(
            "dcat-lint: {} finding(s): {} new, {} baselined, {} suppressed by annotation",
            report.findings.len(),
            new.len(),
            grandfathered.len(),
            report.suppressed.len(),
        );
    }

    // Stale entries fail the gate: a paid-off key left in the baseline
    // would silently re-admit the finding if it ever came back.
    if new.is_empty() && (pruned || stale.is_empty()) {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
