//! Workspace symbol table and call graph.
//!
//! [`Workspace::from_sources`] ingests every source file (as
//! `(repo-relative path, text)`), lexes and parses each one, assigns
//! crate idents and module paths from the directory layout, and resolves
//! a call graph:
//!
//! - **Path calls** (`foo(…)`, `module::foo(…)`, `Type::method(…)`,
//!   `Self::new(…)`) resolve through the caller's `use` aliases (groups,
//!   renames, globs), `crate`/`self`/`super` prefixes, and the module
//!   tree derived from file paths.
//! - **Method calls** (`recv.m(…)`) resolve by receiver-name heuristics:
//!   `self` binds to the enclosing impl type; a receiver whose type is
//!   known (parameter, `let x: T`, or a `let x = call()` whose callee
//!   resolved) binds to that type's impl (or, for `dyn Trait` /
//!   `impl Trait` receivers, to *every* workspace impl of the trait);
//!   otherwise a method name defined exactly once in the workspace
//!   resolves uniquely.
//! - Everything else lands in an explicit **unresolved bucket** that the
//!   engine reports rather than hides — a call the graph cannot follow
//!   is a hole in every interprocedural guarantee downstream. Calls to
//!   names defined nowhere in the workspace (std, core) are classified
//!   external and excluded by construction.
//!
//! The graph is deterministic: units are sorted by path, functions carry
//! parse order, adjacency lists are sorted and deduplicated, and every
//! index is a `BTreeMap`.

use crate::lexer::SourceFile;
use crate::parse::{parse_file, FnItem, ParsedFile};
use crate::tokens::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet};

/// One file in the workspace with its lexed and parsed forms.
pub struct SourceUnit {
    pub file: SourceFile,
    pub parsed: ParsedFile,
    pub crate_ident: String,
    /// Module path of the file itself (`["controller"]`,
    /// `["bin", "dcatd"]`); inline `mod` blocks extend it per item.
    pub file_module: Vec<String>,
}

/// One function node in the call graph.
#[derive(Debug, Clone)]
pub struct FnNode {
    pub unit: usize,
    /// Index into `units[unit].parsed.fns`.
    pub item: usize,
    pub crate_ident: String,
    /// Full module path (file module + inline modules).
    pub module: Vec<String>,
    pub name: String,
    pub impl_ty: Option<String>,
    pub trait_name: Option<String>,
    pub is_test: bool,
    /// `crate::module::Type::name` — the display identity used in
    /// traces and the fixture tests.
    pub qualified: String,
}

/// A call site the resolver could not follow.
#[derive(Debug, Clone)]
pub struct Unresolved {
    pub caller: usize,
    pub line: usize,
    /// The call as written (`recv.method` or `a::b::f`).
    pub call: String,
    pub reason: String,
}

/// Summary counters surfaced in human and JSON output.
#[derive(Debug, Clone, Default)]
pub struct GraphSummary {
    pub functions: usize,
    pub edges: usize,
    pub unresolved: usize,
}

pub struct Workspace {
    pub units: Vec<SourceUnit>,
    pub fns: Vec<FnNode>,
    /// `edges[f]` = sorted, deduped `(callee, line-of-call)` pairs.
    pub edges: Vec<Vec<(usize, usize)>>,
    pub unresolved: Vec<Unresolved>,
    /// Per-function local value types (`name -> type text`), including
    /// parameter types and `let` bindings whose initializer resolved.
    pub locals: Vec<BTreeMap<String, String>>,
}

impl Workspace {
    pub fn summary(&self) -> GraphSummary {
        GraphSummary {
            functions: self.fns.len(),
            edges: self.edges.iter().map(Vec::len).sum(),
            unresolved: self.unresolved.len(),
        }
    }

    pub fn fn_item(&self, f: usize) -> &FnItem {
        &self.units[self.fns[f].unit].parsed.fns[self.fns[f].item]
    }

    pub fn unit_of(&self, f: usize) -> &SourceUnit {
        &self.units[self.fns[f].unit]
    }

    /// Builds the workspace from `(repo-relative path, text)` pairs.
    /// `crate_idents` maps the directory name under `crates/` to the
    /// crate's ident (`bench` → `dcat_bench`); unmapped directories
    /// default to the underscored directory name. Paths outside
    /// `crates/*/src/` are grouped into a synthetic `fixture` crate, one
    /// module per file stem (the CI scan mode).
    pub fn from_sources(
        sources: &[(String, String)],
        crate_idents: &BTreeMap<String, String>,
    ) -> Workspace {
        let mut keyed: Vec<(String, &String, &String)> =
            sources.iter().map(|(p, t)| (p.clone(), p, t)).collect();
        keyed.sort_by(|a, b| a.0.cmp(&b.0));

        let mut units = Vec::new();
        for (_, path, text) in keyed {
            let file = SourceFile::parse(path, text);
            let scrubbed: String = file
                .lines
                .iter()
                .map(|l| l.scrubbed.as_str())
                .collect::<Vec<_>>()
                .join("\n");
            let parsed = parse_file(&scrubbed);
            let (crate_ident, file_module) = locate(path, crate_idents);
            units.push(SourceUnit {
                file,
                parsed,
                crate_ident,
                file_module,
            });
        }
        let mut ws = Workspace {
            units,
            fns: Vec::new(),
            edges: Vec::new(),
            unresolved: Vec::new(),
            locals: Vec::new(),
        };
        ws.build_nodes();
        let idx = Indexes::build(&ws);
        ws.resolve_calls(&idx);
        ws
    }

    fn build_nodes(&mut self) {
        for (u, unit) in self.units.iter().enumerate() {
            for (i, f) in unit.parsed.fns.iter().enumerate() {
                let mut module = unit.file_module.clone();
                module.extend(f.modules.iter().cloned());
                let mut qualified = unit.crate_ident.clone();
                for m in &module {
                    qualified.push_str("::");
                    qualified.push_str(m);
                }
                if let Some(owner) = f.impl_ty.as_ref().or(f.trait_name.as_ref()) {
                    qualified.push_str("::");
                    qualified.push_str(owner);
                }
                qualified.push_str("::");
                qualified.push_str(&f.name);
                self.fns.push(FnNode {
                    unit: u,
                    item: i,
                    crate_ident: unit.crate_ident.clone(),
                    module,
                    name: f.name.clone(),
                    impl_ty: f.impl_ty.clone(),
                    trait_name: f.trait_name.clone(),
                    is_test: f.is_test,
                    qualified,
                });
            }
        }
        self.edges = vec![Vec::new(); self.fns.len()];
        self.locals = vec![BTreeMap::new(); self.fns.len()];
    }

    fn resolve_calls(&mut self, idx: &Indexes) {
        let mut edges: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.fns.len()];
        let mut locals: Vec<BTreeMap<String, String>> = vec![BTreeMap::new(); self.fns.len()];
        let mut unresolved = Vec::new();
        for f in 0..self.fns.len() {
            let item = self.fn_item(f);
            let Some((body_start, body_end)) = item.body else {
                continue;
            };
            let mut ltypes: BTreeMap<String, String> = item
                .params
                .iter()
                .filter(|(n, _)| n != "_")
                .map(|(n, t)| (n.clone(), t.clone()))
                .collect();
            // First sub-pass: explicitly typed `let` bindings.
            collect_typed_lets(
                &self.units[self.fns[f].unit].parsed.tokens,
                body_start,
                body_end,
                &mut ltypes,
            );
            // Second sub-pass: call extraction (and `let x = call()`
            // return-type inference, which needs resolution).
            let calls = extract_calls(
                &self.units[self.fns[f].unit].parsed.tokens,
                body_start,
                body_end,
            );
            for call in calls {
                match self.resolve_one(f, &call, &ltypes, idx) {
                    Resolution::Fns(targets) => {
                        if let Some(bind) = &call.binds {
                            // All targets agreeing on a hash-carrying
                            // return is the useful case; take the first
                            // target's return type (deterministic).
                            if let Some(&t0) = targets.first() {
                                if let Some(ret) = &self.fn_item(t0).ret {
                                    ltypes.entry(bind.clone()).or_insert_with(|| ret.clone());
                                }
                            }
                        }
                        for t in targets {
                            edges[f].push((t, call.line));
                        }
                    }
                    Resolution::External => {}
                    Resolution::Unresolved(reason) => {
                        unresolved.push(Unresolved {
                            caller: f,
                            line: call.line,
                            call: call.display(),
                            reason,
                        });
                    }
                }
            }
            edges[f].sort();
            edges[f].dedup();
            locals[f] = ltypes;
        }
        self.edges = edges;
        self.locals = locals;
        self.unresolved = unresolved;
    }

    fn resolve_one(
        &self,
        caller: usize,
        call: &Call,
        ltypes: &BTreeMap<String, String>,
        idx: &Indexes,
    ) -> Resolution {
        match &call.kind {
            CallKind::Path(segments) => self.resolve_path(caller, segments, idx),
            CallKind::Method { receiver, name } => {
                self.resolve_method(caller, receiver, name, ltypes, idx)
            }
        }
    }

    fn resolve_path(&self, caller: usize, segments: &[String], idx: &Indexes) -> Resolution {
        let node = &self.fns[caller];
        let name = segments.last().cloned().unwrap_or_default();
        // Variant constructors / struct paths: a Capitalized terminal
        // segment is not a function call (workspace fns are snake_case).
        if name.chars().next().is_some_and(|c| c.is_ascii_uppercase()) {
            return Resolution::External;
        }
        let mut prefix: Vec<String> = segments[..segments.len() - 1].to_vec();

        // Splice `use` aliases on the head segment.
        if let Some(head) = prefix.first().cloned() {
            if !matches!(head.as_str(), "crate" | "self" | "super" | "Self") {
                if let Some(full) = idx.alias(self.fns[caller].unit, &head) {
                    let mut spliced = full.clone();
                    spliced.extend(prefix[1..].iter().cloned());
                    prefix = spliced;
                }
            }
        } else {
            // Bare `f(…)`: same module, then aliased name, then globs,
            // then crate-unique, then workspace-unique free fn.
            if let Some(t) = idx.free(&node.crate_ident, &node.module, &name) {
                return Resolution::Fns(vec![t]);
            }
            if let Some(full) = idx.alias(node.unit, &name) {
                return self.resolve_path(caller, &full.to_vec(), idx);
            }
            for glob in idx.globs(node.unit) {
                if let Some((cr, mods)) = idx.as_module(&glob, node) {
                    if let Some(t) = idx.free(&cr, &mods, &name) {
                        return Resolution::Fns(vec![t]);
                    }
                }
            }
            if let Some(t) = idx.unique_free_in_crate(&node.crate_ident, &name) {
                return Resolution::Fns(vec![t]);
            }
            return match idx.free_by_name.get(&name) {
                None => Resolution::External,
                Some(c) if c.len() == 1 => Resolution::Fns(c.clone()),
                Some(c) => Resolution::Unresolved(format!(
                    "free fn `{name}` is defined in {} places and no path disambiguates",
                    c.len()
                )),
            };
        }

        // `Self::f` / `Type::f`: terminal prefix segment names a type.
        let penult = prefix.last().cloned().unwrap_or_default();
        let penult_is_type = penult == "Self"
            || penult
                .chars()
                .next()
                .is_some_and(|c| c.is_ascii_uppercase());
        if penult_is_type {
            let ty = if penult == "Self" {
                match &node.impl_ty {
                    Some(t) => t.clone(),
                    None => return Resolution::Unresolved("`Self::` outside an impl".into()),
                }
            } else {
                penult
            };
            return self.resolve_on_type(&ty, &name, idx);
        }

        // Module path: normalize crate/self/super heads against the
        // caller's location, then look the module up in the tree.
        if let Some((cr, mods)) = idx.as_module(&prefix, node) {
            if let Some(t) = idx.free(&cr, &mods, &name) {
                return Resolution::Fns(vec![t]);
            }
            if idx.module_exists(&cr, &mods) {
                // The module exists but the fn is not in it: an
                // unparsed macro-generated fn or a re-export.
                return if idx.name_known(&name) {
                    Resolution::Unresolved(format!(
                        "`{}::{name}` not found in resolved module",
                        mods.join("::")
                    ))
                } else {
                    Resolution::External
                };
            }
        }
        if idx.name_known(&name) {
            Resolution::Unresolved(format!(
                "path `{}` did not resolve to a module or type",
                segments.join("::")
            ))
        } else {
            Resolution::External
        }
    }

    fn resolve_on_type(&self, ty: &str, method: &str, idx: &Indexes) -> Resolution {
        if let Some(targets) = idx
            .methods_by_type
            .get(&(ty.to_string(), method.to_string()))
        {
            return Resolution::Fns(targets.clone());
        }
        // Trait-dispatch: `Tr::m` or a type whose trait impl inherits a
        // default body.
        if idx.traits.contains(ty) {
            return self.resolve_trait_method(ty, method, idx);
        }
        for tr in idx.traits_of_type(ty) {
            if let Some(&d) = idx.trait_defaults.get(&(tr.clone(), method.to_string())) {
                return Resolution::Fns(vec![d]);
            }
        }
        if idx.name_known(method) {
            if idx.types.contains(ty) {
                Resolution::Unresolved(format!("no method `{method}` found on `{ty}`"))
            } else {
                // The type itself is foreign (Vec, Option): external.
                Resolution::External
            }
        } else {
            Resolution::External
        }
    }

    fn resolve_trait_method(&self, tr: &str, method: &str, idx: &Indexes) -> Resolution {
        let mut targets = Vec::new();
        for ty in idx.impls_of_trait(tr) {
            if let Some(ts) =
                idx.trait_impl_methods
                    .get(&(tr.to_string(), ty.clone(), method.to_string()))
            {
                targets.extend(ts.iter().copied());
            } else if let Some(&d) = idx
                .trait_defaults
                .get(&(tr.to_string(), method.to_string()))
            {
                targets.push(d);
            }
        }
        if targets.is_empty() {
            if let Some(&d) = idx
                .trait_defaults
                .get(&(tr.to_string(), method.to_string()))
            {
                targets.push(d);
            }
        }
        targets.sort();
        targets.dedup();
        if targets.is_empty() {
            if idx.name_known(method) {
                Resolution::Unresolved(format!("no impl of `{tr}` defines `{method}`"))
            } else {
                Resolution::External
            }
        } else {
            Resolution::Fns(targets)
        }
    }

    fn resolve_method(
        &self,
        caller: usize,
        receiver: &str,
        name: &str,
        ltypes: &BTreeMap<String, String>,
        idx: &Indexes,
    ) -> Resolution {
        if !idx.method_known(name) {
            return Resolution::External;
        }
        let node = &self.fns[caller];
        if receiver == "self" {
            if let Some(ty) = &node.impl_ty {
                return match self.resolve_on_type(ty, name, idx) {
                    // A self-call that misses the impl table is still
                    // worth surfacing (macro-generated methods).
                    Resolution::External => {
                        Resolution::Unresolved(format!("self.{name} not found on `{ty}`"))
                    }
                    r => r,
                };
            }
            if let Some(tr) = &node.trait_name {
                // `self.m()` inside a trait default body dispatches to
                // every impl of the trait.
                return self.resolve_trait_method(tr, name, idx);
            }
            return Resolution::Unresolved(format!("self.{name} outside an impl"));
        }
        if let Some(ty) = ltypes.get(receiver) {
            if let Some(tr) = dyn_trait_of(ty) {
                if idx.traits.contains(&tr) {
                    return self.resolve_trait_method(&tr, name, idx);
                }
            }
            let base = base_type_name(ty);
            if !base.is_empty() {
                if idx.traits.contains(&base) {
                    return self.resolve_trait_method(&base, name, idx);
                }
                if idx.types.contains(&base) {
                    return self.resolve_on_type(&base, name, idx);
                }
                // Known-foreign receiver (Vec<_>, Option<_>…): the
                // method belongs to std even if a workspace method
                // shares the name. Unknown base types fall through to
                // the unique-name heuristic below.
                if STD_TYPES.contains(&base.as_str()) {
                    return Resolution::External;
                }
            }
        }
        // Unknown receiver: the unique-name heuristic. Std trait and
        // container method names never resolve this way — `.next()` on
        // an iterator must not bind to a workspace `next` just because
        // the name happens to be unique (typed receivers still resolve).
        if STD_METHODS.contains(&name) {
            return Resolution::External;
        }
        match idx.methods_by_name.get(name) {
            Some(c) if c.len() == 1 => Resolution::Fns(c.clone()),
            Some(c) => Resolution::Unresolved(format!(
                "method `.{name}(…)` on untyped receiver `{receiver}` is ambiguous \
                 ({} candidates)",
                c.len()
            )),
            None => Resolution::External,
        }
    }
}

enum Resolution {
    Fns(Vec<usize>),
    External,
    Unresolved(String),
}

/// Standard-library receiver types whose methods are never workspace
/// methods, even on a name collision.
/// Ubiquitous std trait/container method names, excluded from the
/// unique-name method heuristic (a `.next()`/`.len()`/`.clone()` on an
/// untyped receiver is overwhelmingly a std call).
const STD_METHODS: [&str; 25] = [
    "next",
    "map",
    "clone",
    "fmt",
    "eq",
    "ne",
    "cmp",
    "partial_cmp",
    "hash",
    "default",
    "drop",
    "from",
    "into",
    "to_string",
    "len",
    "is_empty",
    "get",
    "get_mut",
    "push",
    "pop",
    "insert",
    "remove",
    "contains",
    "iter",
    "new",
];

const STD_TYPES: [&str; 24] = [
    "Vec", "VecDeque", "Option", "Result", "Box", "Rc", "Arc", "String", "str", "HashMap",
    "HashSet", "BTreeMap", "BTreeSet", "Mutex", "RwLock", "Cell", "RefCell", "Path", "PathBuf",
    "Duration", "Instant", "Iterator", "Range", "Cow",
];

/// `(crate_ident, file module path)` from a repo-relative path.
fn locate(path: &str, crate_idents: &BTreeMap<String, String>) -> (String, Vec<String>) {
    let parts: Vec<&str> = path.split('/').collect();
    if parts.first() == Some(&"crates") && parts.len() >= 4 && parts[2] == "src" {
        let dir = parts[1];
        let ident = crate_idents
            .get(dir)
            .cloned()
            .unwrap_or_else(|| dir.replace('-', "_"));
        let mut module: Vec<String> = parts[3..].iter().map(|s| s.to_string()).collect();
        if let Some(last) = module.last_mut() {
            *last = last.trim_end_matches(".rs").to_string();
        }
        match module.last().map(String::as_str) {
            Some("lib") => {
                module.pop();
            }
            Some("mod") => {
                module.pop();
            }
            _ => {}
        }
        (ident, module)
    } else {
        let stem = parts
            .last()
            .map(|s| s.trim_end_matches(".rs"))
            .unwrap_or("file");
        ("fixture".to_string(), vec![stem.to_string()])
    }
}

/// Strips `&`, `mut`, and whitespace; returns the trait name of a
/// `dyn Trait` / `impl Trait` type, if that is what it is.
fn dyn_trait_of(ty: &str) -> Option<String> {
    let t = ty.replace('&', " ");
    let toks: Vec<&str> = t.split_whitespace().collect();
    for (i, w) in toks.iter().enumerate() {
        if *w == "dyn" || *w == "impl" {
            return toks.get(i + 1).map(|s| {
                s.split('<')
                    .next()
                    .unwrap_or(s)
                    .trim_end_matches('>')
                    .to_string()
            });
        }
    }
    None
}

/// Base type name of a type string: `&mut Vec<CounterSnapshot>` → `Vec`,
/// `resctrl::InMemoryController` → `InMemoryController`.
fn base_type_name(ty: &str) -> String {
    let t = ty.replace(['&', '(', ')'], " ").replace("mut ", " ");
    let first = t.split_whitespace().next().unwrap_or("");
    let no_generics = first.split('<').next().unwrap_or(first);
    no_generics
        .rsplit("::")
        .next()
        .unwrap_or(no_generics)
        .to_string()
}

/// `let [mut] name: Type = …` bindings inside a body token range.
fn collect_typed_lets(toks: &[Tok], start: usize, end: usize, out: &mut BTreeMap<String, String>) {
    let mut i = start;
    while i < end {
        if toks[i].is_kw("let") {
            let mut j = i + 1;
            if j < end && toks[j].is_kw("mut") {
                j += 1;
            }
            if j < end && toks[j].kind == TokKind::Ident {
                let name = toks[j].text.clone();
                if j + 1 < end && toks[j + 1].is(":") {
                    let ty_start = j + 2;
                    let mut k = ty_start;
                    let mut depth = 0isize;
                    while k < end {
                        match toks[k].text.as_str() {
                            "<" | "(" | "[" => depth += 1,
                            ">" | ")" | "]" => depth -= 1,
                            "=" | ";" if depth <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    out.insert(name, crate::parse::join_tokens(&toks[ty_start..k]));
                    i = k;
                    continue;
                }
            }
        }
        i += 1;
    }
}

/// One syntactic call site found in a body.
struct Call {
    kind: CallKind,
    line: usize,
    /// `Some(name)` when the call is the initializer of `let name = …`.
    binds: Option<String>,
}

enum CallKind {
    Path(Vec<String>),
    Method { receiver: String, name: String },
}

impl Call {
    fn display(&self) -> String {
        match &self.kind {
            CallKind::Path(p) => p.join("::"),
            CallKind::Method { receiver, name } => format!("{receiver}.{name}"),
        }
    }
}

/// Keywords that can precede `(` without being calls.
const NON_CALL_KEYWORDS: [&str; 24] = [
    "if", "while", "match", "for", "loop", "return", "break", "continue", "in", "as", "let",
    "else", "move", "ref", "mut", "box", "await", "dyn", "impl", "fn", "use", "pub", "where",
    "unsafe",
];

/// Walks a body token range and extracts path and method call sites.
fn extract_calls(toks: &[Tok], start: usize, end: usize) -> Vec<Call> {
    let mut calls = Vec::new();
    let mut pending_let: Option<(String, usize)> = None; // (name, tokens seen since `=`)
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // Track `let name = …` so the first call directly after `=` can
        // record a binding for return-type inference.
        if t.is_kw("let") {
            let mut j = i + 1;
            if j < end && toks[j].is_kw("mut") {
                j += 1;
            }
            if j < end && toks[j].kind == TokKind::Ident && j + 1 < end && toks[j + 1].is("=") {
                pending_let = Some((toks[j].text.clone(), 0));
                i = j + 2;
                continue;
            }
        }
        if t.is(";") {
            pending_let = None;
        }
        // The binding survives only while the tokens since `=` still look
        // like a plain call-chain initializer (`a.b.c()`, `Foo::bar()`,
        // `&make()`). Control flow (`if`/`match`), operators, or blocks
        // mean the first call is *inside* the initializer expression, not
        // the initializer itself — inferring its return type there would
        // mistype the binding.
        if pending_let.is_some() {
            let call_prefix = (t.kind == TokKind::Ident
                && (!NON_CALL_KEYWORDS.contains(&t.text.as_str()) || t.is_kw("mut")))
                || t.is(".")
                || t.is("::")
                || t.is("&")
                || t.is("(");
            if !call_prefix {
                pending_let = None;
            }
        }

        // Method call: `. name (` or `. name ::<…> (`.
        if t.is(".")
            && i + 1 < end
            && toks[i + 1].kind == TokKind::Ident
            && !toks[i + 1].text.is_empty()
        {
            let after = call_paren_after(toks, i + 2, end);
            if let Some(_paren) = after {
                let receiver = if i > start {
                    match &toks[i - 1] {
                        r if r.kind == TokKind::Ident => r.text.clone(),
                        r if r.is(")") || r.is("]") => "<expr>".to_string(),
                        _ => "<expr>".to_string(),
                    }
                } else {
                    "<expr>".to_string()
                };
                let binds = take_bind(&mut pending_let);
                calls.push(Call {
                    kind: CallKind::Method {
                        receiver,
                        name: toks[i + 1].text.clone(),
                    },
                    line: toks[i + 1].line,
                    binds,
                });
                i += 2;
                continue;
            }
        }

        // Path call: IDENT (:: IDENT)* [::<…>] ( — collected backwards
        // from the ident adjacent to `(`.
        if t.kind == TokKind::Ident
            && !NON_CALL_KEYWORDS.contains(&t.text.as_str())
            && (i == start || !toks[i - 1].is(".") && !toks[i - 1].is("fn"))
        {
            // Macro invocation `name!(…)` is not a fn call.
            if i + 1 < end && toks[i + 1].is("!") {
                i += 2;
                continue;
            }
            if call_paren_after(toks, i + 1, end).is_some() {
                // Gather preceding `seg::`s.
                let mut segments = vec![t.text.clone()];
                let mut k = i;
                while k >= 2 + start && toks[k - 1].is("::") && (toks[k - 2].kind == TokKind::Ident)
                {
                    segments.insert(0, toks[k - 2].text.clone());
                    k -= 2;
                }
                let binds = take_bind(&mut pending_let);
                calls.push(Call {
                    kind: CallKind::Path(segments),
                    line: t.line,
                    binds,
                });
            }
        }
        i += 1;
    }
    calls
}

/// A binding is only attributed to the *first* call after the `=`.
fn take_bind(pending: &mut Option<(String, usize)>) -> Option<String> {
    match pending.take() {
        Some((name, 0)) => Some(name),
        _ => None,
    }
}

/// Is there a call-opening `(` at `i`, allowing one turbofish between?
/// Returns the index of the `(`.
fn call_paren_after(toks: &[Tok], i: usize, end: usize) -> Option<usize> {
    if i < end && toks[i].is("(") {
        return Some(i);
    }
    if i + 1 < end && toks[i].is("::") && toks[i + 1].is("<") {
        let mut depth = 0isize;
        let mut j = i + 1;
        while j < end {
            match toks[j].text.as_str() {
                "<" => depth += 1,
                ">" => {
                    depth -= 1;
                    if depth == 0 {
                        return (j + 1 < end && toks[j + 1].is("(")).then_some(j + 1);
                    }
                }
                ";" | "{" => return None,
                _ => {}
            }
            j += 1;
        }
    }
    None
}

/// Lookup tables built once per workspace.
struct Indexes {
    /// (crate, module-joined, fn-name) → node.
    free_fns: BTreeMap<(String, String, String), usize>,
    free_by_name: BTreeMap<String, Vec<usize>>,
    free_by_crate_name: BTreeMap<(String, String), Vec<usize>>,
    /// (type, method) → nodes (inherent + every trait impl).
    methods_by_type: BTreeMap<(String, String), Vec<usize>>,
    /// (trait, type, method) → nodes.
    trait_impl_methods: BTreeMap<(String, String, String), Vec<usize>>,
    /// (trait, method) → default-body node.
    trait_defaults: BTreeMap<(String, String), usize>,
    methods_by_name: BTreeMap<String, Vec<usize>>,
    traits: BTreeSet<String>,
    types: BTreeSet<String>,
    trait_impls: BTreeMap<String, BTreeSet<String>>,
    type_traits: BTreeMap<String, BTreeSet<String>>,
    modules: BTreeSet<(String, String)>,
    crates: BTreeSet<String>,
    known_names: BTreeSet<String>,
    known_methods: BTreeSet<String>,
    /// unit → alias → path.
    aliases: Vec<BTreeMap<String, Vec<String>>>,
    glob_imports: Vec<Vec<Vec<String>>>,
}

impl Indexes {
    fn build(ws: &Workspace) -> Indexes {
        let mut ix = Indexes {
            free_fns: BTreeMap::new(),
            free_by_name: BTreeMap::new(),
            free_by_crate_name: BTreeMap::new(),
            methods_by_type: BTreeMap::new(),
            trait_impl_methods: BTreeMap::new(),
            trait_defaults: BTreeMap::new(),
            methods_by_name: BTreeMap::new(),
            traits: BTreeSet::new(),
            types: BTreeSet::new(),
            trait_impls: BTreeMap::new(),
            type_traits: BTreeMap::new(),
            modules: BTreeSet::new(),
            crates: BTreeSet::new(),
            known_names: BTreeSet::new(),
            known_methods: BTreeSet::new(),
            aliases: Vec::new(),
            glob_imports: Vec::new(),
        };
        for unit in &ws.units {
            ix.crates.insert(unit.crate_ident.clone());
            // Every prefix of the file module is a module.
            for k in 0..=unit.file_module.len() {
                ix.modules
                    .insert((unit.crate_ident.clone(), unit.file_module[..k].join("::")));
            }
            for ty in &unit.parsed.types {
                if ty.is_trait {
                    ix.traits.insert(ty.name.clone());
                } else {
                    ix.types.insert(ty.name.clone());
                }
            }
            let mut amap = BTreeMap::new();
            let mut globs = Vec::new();
            for a in &unit.parsed.uses {
                if a.alias == "*" {
                    globs.push(a.path.clone());
                } else {
                    amap.insert(a.alias.clone(), a.path.clone());
                }
            }
            ix.aliases.push(amap);
            ix.glob_imports.push(globs);
        }
        for (f, node) in ws.fns.iter().enumerate() {
            let item = ws.fn_item(f);
            ix.known_names.insert(node.name.clone());
            if node.is_test {
                continue;
            }
            match (&node.impl_ty, &node.trait_name) {
                (Some(ty), tr) => {
                    ix.methods_by_type
                        .entry((ty.clone(), node.name.clone()))
                        .or_default()
                        .push(f);
                    ix.methods_by_name
                        .entry(node.name.clone())
                        .or_default()
                        .push(f);
                    ix.known_methods.insert(node.name.clone());
                    if let Some(tr) = tr {
                        ix.trait_impl_methods
                            .entry((tr.clone(), ty.clone(), node.name.clone()))
                            .or_default()
                            .push(f);
                        ix.trait_impls
                            .entry(tr.clone())
                            .or_default()
                            .insert(ty.clone());
                        ix.type_traits
                            .entry(ty.clone())
                            .or_default()
                            .insert(tr.clone());
                    }
                }
                (None, Some(tr)) => {
                    // Trait-decl method (sig or default body).
                    ix.known_methods.insert(node.name.clone());
                    if item.body.is_some() {
                        ix.trait_defaults.insert((tr.clone(), node.name.clone()), f);
                        ix.methods_by_name
                            .entry(node.name.clone())
                            .or_default()
                            .push(f);
                    }
                }
                (None, None) => {
                    ix.free_fns.insert(
                        (
                            node.crate_ident.clone(),
                            node.module.join("::"),
                            node.name.clone(),
                        ),
                        f,
                    );
                    ix.free_by_name
                        .entry(node.name.clone())
                        .or_default()
                        .push(f);
                    ix.free_by_crate_name
                        .entry((node.crate_ident.clone(), node.name.clone()))
                        .or_default()
                        .push(f);
                    // Inline modules become modules too.
                    for k in 0..=node.module.len() {
                        ix.modules
                            .insert((node.crate_ident.clone(), node.module[..k].join("::")));
                    }
                }
            }
        }
        ix
    }

    fn alias(&self, unit: usize, name: &str) -> Option<&Vec<String>> {
        self.aliases.get(unit).and_then(|m| m.get(name))
    }

    fn globs(&self, unit: usize) -> Vec<Vec<String>> {
        self.glob_imports.get(unit).cloned().unwrap_or_default()
    }

    fn free(&self, cr: &str, module: &[String], name: &str) -> Option<usize> {
        self.free_fns
            .get(&(cr.to_string(), module.join("::"), name.to_string()))
            .copied()
    }

    fn unique_free_in_crate(&self, cr: &str, name: &str) -> Option<usize> {
        match self
            .free_by_crate_name
            .get(&(cr.to_string(), name.to_string()))
        {
            Some(v) if v.len() == 1 => Some(v[0]),
            _ => None,
        }
    }

    fn module_exists(&self, cr: &str, module: &[String]) -> bool {
        self.modules.contains(&(cr.to_string(), module.join("::")))
    }

    fn name_known(&self, name: &str) -> bool {
        self.known_names.contains(name)
    }

    fn method_known(&self, name: &str) -> bool {
        self.known_methods.contains(name)
    }

    fn traits_of_type(&self, ty: &str) -> Vec<String> {
        self.type_traits
            .get(ty)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    fn impls_of_trait(&self, tr: &str) -> Vec<String> {
        self.trait_impls
            .get(tr)
            .map(|s| s.iter().cloned().collect())
            .unwrap_or_default()
    }

    /// Normalizes a path prefix to `(crate, module)` if it denotes a
    /// module: handles `crate`, leading `self`/`super`, crate idents,
    /// and module paths relative to the caller's module or crate root.
    fn as_module(&self, prefix: &[String], node: &FnNode) -> Option<(String, Vec<String>)> {
        if prefix.is_empty() {
            return Some((node.crate_ident.clone(), node.module.clone()));
        }
        let mut segs: Vec<String> = prefix.to_vec();
        let (cr, mut base): (String, Vec<String>) = match segs[0].as_str() {
            "crate" => {
                segs.remove(0);
                (node.crate_ident.clone(), Vec::new())
            }
            "self" => {
                segs.remove(0);
                (node.crate_ident.clone(), node.module.clone())
            }
            "super" => {
                let mut m = node.module.clone();
                while segs.first().map(String::as_str) == Some("super") {
                    segs.remove(0);
                    m.pop();
                }
                (node.crate_ident.clone(), m)
            }
            head if self.crates.contains(head) || self.crates.contains(&head.replace('-', "_")) => {
                let cr = head.replace('-', "_");
                segs.remove(0);
                (cr, Vec::new())
            }
            _ => {
                // Relative: try caller's module first, then crate root.
                let mut rel = node.module.clone();
                rel.extend(segs.iter().cloned());
                if self.module_exists(&node.crate_ident, &rel) {
                    return Some((node.crate_ident.clone(), rel));
                }
                (node.crate_ident.clone(), Vec::new())
            }
        };
        base.extend(segs);
        Some((cr, base))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ws(files: &[(&str, &str)]) -> Workspace {
        let sources: Vec<(String, String)> = files
            .iter()
            .map(|(p, t)| (p.to_string(), t.to_string()))
            .collect();
        Workspace::from_sources(&sources, &BTreeMap::new())
    }

    fn find(w: &Workspace, q: &str) -> usize {
        w.fns
            .iter()
            .position(|f| f.qualified == q)
            .unwrap_or_else(|| {
                panic!(
                    "fn {q} not found; have: {:?}",
                    w.fns.iter().map(|f| &f.qualified).collect::<Vec<_>>()
                )
            })
    }

    fn has_edge(w: &Workspace, from: &str, to: &str) -> bool {
        let f = find(w, from);
        let t = find(w, to);
        w.edges[f].iter().any(|(c, _)| *c == t)
    }

    #[test]
    fn cross_module_free_fn_call_resolves() {
        let w = ws(&[
            (
                "crates/alpha/src/lib.rs",
                "pub mod util;\nuse crate::util::helper;\npub fn entry() { helper(); util::other(); }\n",
            ),
            (
                "crates/alpha/src/util.rs",
                "pub fn helper() {}\npub fn other() { helper(); }\n",
            ),
        ]);
        assert!(has_edge(&w, "alpha::entry", "alpha::util::helper"));
        assert!(has_edge(&w, "alpha::entry", "alpha::util::other"));
        assert!(has_edge(&w, "alpha::util::other", "alpha::util::helper"));
    }

    #[test]
    fn cross_crate_call_through_use() {
        let w = ws(&[
            (
                "crates/alpha/src/lib.rs",
                "use beta::engine::spin;\npub fn entry() {\n    spin();\n    beta::engine::spin();\n}\n",
            ),
            ("crates/beta/src/lib.rs", "pub mod engine;\n"),
            ("crates/beta/src/engine.rs", "pub fn spin() {}\n"),
        ]);
        let f = find(&w, "alpha::entry");
        assert_eq!(w.edges[f].len(), 2, "two call sites, one callee each");
        assert!(has_edge(&w, "alpha::entry", "beta::engine::spin"));
    }

    #[test]
    fn method_resolution_by_receiver_type_and_self() {
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "pub struct Ctl;\nimpl Ctl {\n    pub fn tick(&mut self) { self.step(); }\n    fn step(&mut self) {}\n}\n\
             pub fn drive(c: &mut Ctl) { c.tick(); }\n",
        )]);
        assert!(has_edge(&w, "alpha::Ctl::tick", "alpha::Ctl::step"));
        assert!(has_edge(&w, "alpha::drive", "alpha::Ctl::tick"));
    }

    #[test]
    fn dyn_trait_receiver_fans_out_to_all_impls() {
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "pub trait Backend { fn go(&self); }\npub struct A;\npub struct B;\n\
             impl Backend for A { fn go(&self) {} }\nimpl Backend for B { fn go(&self) {} }\n\
             pub fn run(b: &dyn Backend) { b.go(); }\n",
        )]);
        assert!(has_edge(&w, "alpha::run", "alpha::A::go"));
        assert!(has_edge(&w, "alpha::run", "alpha::B::go"));
    }

    #[test]
    fn use_alias_renames_resolve() {
        let w = ws(&[
            (
                "crates/alpha/src/lib.rs",
                "use beta::maker as mk;\npub fn entry() { mk::build(); }\n",
            ),
            ("crates/beta/src/lib.rs", "pub mod maker;\n"),
            ("crates/beta/src/maker.rs", "pub fn build() {}\n"),
        ]);
        assert!(has_edge(&w, "alpha::entry", "beta::maker::build"));
    }

    #[test]
    fn unresolved_edges_are_reported_not_dropped() {
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "pub struct A;\npub struct B;\nimpl A { pub fn poke(&self) {} }\nimpl B { pub fn poke(&self) {} }\n\
             pub fn entry(x: &UnknownType) { x.poke(); }\n",
        )]);
        assert_eq!(w.unresolved.len(), 1, "ambiguous method must be reported");
        assert!(w.unresolved[0].reason.contains("ambiguous"));
    }

    #[test]
    fn std_calls_are_external_not_unresolved() {
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "pub fn entry(v: Vec<u64>) -> u64 { v.iter().copied().sum::<u64>().max(format!(\"x\").len() as u64) }\n",
        )]);
        assert!(w.unresolved.is_empty(), "{:?}", w.unresolved);
    }

    #[test]
    fn let_call_binding_infers_return_type() {
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "use std::collections::HashMap;\npub fn make() -> HashMap<u32, u64> { HashMap::new() }\n\
             pub fn entry() { let m = make(); let _ = m; }\n",
        )]);
        let e = find(&w, "alpha::entry");
        assert_eq!(
            w.locals[e].get("m").map(String::as_str),
            Some("HashMap<u32, u64>")
        );
    }

    #[test]
    fn control_flow_initializer_does_not_bind_call_return() {
        // `reserved()` returns u32, but it is only the *condition* of the
        // initializer; typing `baseline: u32` here would poison downstream
        // integer-divisor facts (`ipc / baseline` is float math).
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "pub fn reserved() -> u32 { 4 }\n\
             pub fn entry() { let baseline = if reserved() == 4 { 1.0 } else { 0.0 }; let _ = baseline; }\n",
        )]);
        let e = find(&w, "alpha::entry");
        assert_eq!(w.locals[e].get("baseline"), None);
    }

    #[test]
    fn trait_default_bodies_resolve() {
        let w = ws(&[(
            "crates/alpha/src/lib.rs",
            "pub trait P {\n    fn base(&self);\n    fn both(&self) { self.base(); }\n}\n\
             pub struct X;\nimpl P for X { fn base(&self) {} }\n\
             pub fn entry(x: &X) { x.both(); }\n",
        )]);
        assert!(has_edge(&w, "alpha::entry", "alpha::P::both"));
        assert!(has_edge(&w, "alpha::P::both", "alpha::X::base"));
    }

    #[test]
    fn bin_and_nested_module_paths() {
        let w = ws(&[
            (
                "crates/alpha/src/bin/tool.rs",
                "fn main() { alpha::sub::deep::f(); }\n",
            ),
            ("crates/alpha/src/lib.rs", "pub mod sub;\n"),
            ("crates/alpha/src/sub/mod.rs", "pub mod deep;\n"),
            ("crates/alpha/src/sub/deep.rs", "pub fn f() {}\n"),
        ]);
        assert!(has_edge(
            &w,
            "alpha::bin::tool::main",
            "alpha::sub::deep::f"
        ));
    }
}
