//! Item-level Rust parser over the token stream.
//!
//! The call graph ([`crate::model`]) needs items, not expressions: which
//! functions exist (free, inherent, trait-impl, trait-default), their
//! signatures, which `use` aliases are in scope, and each body as a
//! brace-matched token range. No expression grammar is attempted — a
//! body is an opaque token slice that the fact extractors and the call
//! scanner walk linearly.
//!
//! The parser is loss-tolerant by design: any token sequence it does not
//! recognize as the start of an item is skipped. That keeps it total
//! over every file in the workspace (and over adversarial fixtures)
//! without a grammar for the whole language.

use crate::tokens::{tokenize, Tok, TokKind};

/// One parsed function (free, inherent method, trait method, or trait
/// default body).
#[derive(Debug, Clone)]
pub struct FnItem {
    pub name: String,
    /// Parameter `(name, type-text)` pairs; `self` receivers appear as
    /// `("self", "&Self")`-style entries.
    pub params: Vec<(String, String)>,
    /// Return type text after `->`, `None` for unit.
    pub ret: Option<String>,
    /// Inline-module path inside this file (e.g. `["tests"]`).
    pub modules: Vec<String>,
    /// `impl` self-type name when this fn is a method (`DcatController`).
    pub impl_ty: Option<String>,
    /// Trait name when inside `impl Trait for Type` or a `trait` block.
    pub trait_name: Option<String>,
    /// Declared inside a `trait { … }` block (signature or default body).
    pub in_trait_decl: bool,
    pub is_pub: bool,
    /// Under `#[cfg(test)]`, `#[test]`, or inside `mod tests`.
    pub is_test: bool,
    /// 1-based line of the `fn` keyword.
    pub line: usize,
    /// Token index range of the body (excluding outer braces), if any.
    pub body: Option<(usize, usize)>,
    /// Inclusive 1-based line span of the body braces.
    pub body_lines: Option<(usize, usize)>,
}

/// A `use` mapping: `alias` names `path` in this file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UseAlias {
    pub alias: String,
    /// Full path segments, e.g. `["dcat", "controller", "DcatController"]`.
    pub path: Vec<String>,
}

/// A type definition (struct/enum/union/trait) — enough for method
/// resolution and unit-newtype knowledge.
#[derive(Debug, Clone)]
pub struct TypeDef {
    pub name: String,
    pub is_trait: bool,
    pub modules: Vec<String>,
    pub line: usize,
}

/// Everything the model needs from one file.
#[derive(Debug)]
pub struct ParsedFile {
    pub tokens: Vec<Tok>,
    pub fns: Vec<FnItem>,
    pub uses: Vec<UseAlias>,
    pub types: Vec<TypeDef>,
}

/// Parses the scrubbed text of one file.
pub fn parse_file(scrubbed: &str) -> ParsedFile {
    let tokens = tokenize(scrubbed);
    let mut p = Parser {
        toks: &tokens,
        fns: Vec::new(),
        uses: Vec::new(),
        types: Vec::new(),
    };
    p.items(0, tokens.len(), &mut Vec::new(), None, None, false, false);
    ParsedFile {
        fns: p.fns,
        uses: p.uses,
        types: p.types,
        tokens,
    }
}

struct Parser<'a> {
    toks: &'a [Tok],
    fns: Vec<FnItem>,
    uses: Vec<UseAlias>,
    types: Vec<TypeDef>,
}

impl<'a> Parser<'a> {
    /// Parses items in `toks[i..end]`. `impl_ty`/`trait_name` carry the
    /// enclosing impl/trait context; `in_test` is sticky downward.
    #[allow(clippy::too_many_arguments)]
    fn items(
        &mut self,
        mut i: usize,
        end: usize,
        modules: &mut Vec<String>,
        impl_ty: Option<&str>,
        trait_name: Option<&str>,
        in_trait_decl: bool,
        in_test: bool,
    ) {
        let mut is_pub = false;
        let mut item_test = in_test;
        while i < end {
            let t = &self.toks[i];
            // Attributes: `#[…]` / `#![…]`; `#[cfg(test)]` and `#[test]`
            // mark the next item (and everything under it) test-only.
            if t.is("#") {
                let mut j = i + 1;
                if j < end && self.toks[j].is("!") {
                    j += 1;
                }
                if j < end && self.toks[j].is("[") {
                    let close = self.match_delim(j, end, "[", "]");
                    let body: Vec<&str> = self.toks[j + 1..close.min(end)]
                        .iter()
                        .map(|t| t.text.as_str())
                        .collect();
                    if body.first() == Some(&"test")
                        || (body.first() == Some(&"cfg") && body.contains(&"test"))
                    {
                        item_test = true;
                    }
                    i = close + 1;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.is_kw("pub") {
                is_pub = true;
                i += 1;
                // Skip restriction `(crate)` / `(super)` / `(in path)`.
                if i < end && self.toks[i].is("(") {
                    i = self.match_delim(i, end, "(", ")") + 1;
                }
                continue;
            }
            if t.is_kw("unsafe") || t.is_kw("async") || t.is_kw("const") || t.is_kw("extern") {
                // Modifier before `fn` — `const NAME: …` is handled when
                // the next token is not `fn`/a string-ish ABI.
                if t.is_kw("const") && !matches!(self.toks.get(i + 1), Some(n) if n.is_kw("fn")) {
                    i = self.skip_to_semi_or_body(i + 1, end);
                    is_pub = false;
                    item_test = in_test;
                    continue;
                }
                i += 1;
                continue;
            }
            if t.is_kw("fn") {
                i = self.parse_fn(
                    i,
                    end,
                    modules,
                    impl_ty,
                    trait_name,
                    in_trait_decl,
                    is_pub,
                    item_test,
                );
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("impl") {
                i = self.parse_impl(i, end, modules, item_test);
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("mod") {
                if let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    let name = name.text.clone();
                    let test = item_test || name == "tests";
                    if matches!(self.toks.get(i + 2), Some(t) if t.is("{")) {
                        let close = self.match_delim(i + 2, end, "{", "}");
                        modules.push(name);
                        self.items(i + 3, close, modules, None, None, false, test);
                        modules.pop();
                        i = close + 1;
                    } else {
                        i += 3; // `mod name;` — the file walk finds it.
                    }
                } else {
                    i += 1;
                }
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("use") {
                i = self.parse_use(i + 1, end);
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("trait") {
                i = self.parse_trait(i, end, modules, item_test);
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("struct") || t.is_kw("enum") || t.is_kw("union") {
                if let Some(name) = self.toks.get(i + 1).filter(|t| t.kind == TokKind::Ident) {
                    self.types.push(TypeDef {
                        name: name.text.clone(),
                        is_trait: false,
                        modules: modules.clone(),
                        line: t.line,
                    });
                }
                i = self.skip_to_semi_or_body(i + 1, end);
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("static") || t.is_kw("type") {
                i = self.skip_to_semi_or_body(i + 1, end);
                is_pub = false;
                item_test = in_test;
                continue;
            }
            if t.is_kw("macro_rules") {
                // macro_rules! name { … }
                let mut j = i + 1;
                while j < end && !self.toks[j].is("{") {
                    j += 1;
                }
                i = self.match_delim(j, end, "{", "}") + 1;
                is_pub = false;
                item_test = in_test;
                continue;
            }
            // Anything else (stray tokens, doc attr remnants) is skipped.
            if t.is("{") {
                i = self.match_delim(i, end, "{", "}") + 1;
            } else {
                i += 1;
            }
            is_pub = false;
            item_test = in_test;
        }
    }

    /// Index of the delimiter matching `toks[open]` (which must be
    /// `open_d`), or `end` when unbalanced.
    fn match_delim(&self, open: usize, end: usize, open_d: &str, close_d: &str) -> usize {
        let mut depth = 0usize;
        let mut i = open;
        while i < end {
            let t = &self.toks[i];
            if t.is(open_d) {
                depth += 1;
            } else if t.is(close_d) {
                depth -= 1;
                if depth == 0 {
                    return i;
                }
            }
            i += 1;
        }
        end
    }

    /// Skips to just past the item-terminating `;`, or past a `{…}` body
    /// (struct/enum definitions), whichever comes first at depth 0.
    fn skip_to_semi_or_body(&self, mut i: usize, end: usize) -> usize {
        while i < end {
            let t = &self.toks[i];
            if t.is(";") {
                return i + 1;
            }
            if t.is("{") {
                return self.match_delim(i, end, "{", "}") + 1;
            }
            if t.is("(") {
                // Tuple struct: `struct W(u64);` — the `;` follows.
                i = self.match_delim(i, end, "(", ")") + 1;
                continue;
            }
            i += 1;
        }
        end
    }

    /// Skips a `<…>` generic list starting at `i` (which must be `<`).
    /// Single-`>` tokens (the tokenizer never joins them) make nested
    /// closers like `Vec<Vec<u64>>` balance exactly.
    fn skip_generics(&self, mut i: usize, end: usize) -> usize {
        let mut depth = 0usize;
        while i < end {
            let t = &self.toks[i];
            if t.is("<") {
                depth += 1;
            } else if t.is(">") {
                depth -= 1;
                if depth == 0 {
                    return i + 1;
                }
            } else if t.is("(") {
                i = self.match_delim(i, end, "(", ")");
            }
            i += 1;
        }
        end
    }

    #[allow(clippy::too_many_arguments)]
    fn parse_fn(
        &mut self,
        fn_kw: usize,
        end: usize,
        modules: &[String],
        impl_ty: Option<&str>,
        trait_name: Option<&str>,
        in_trait_decl: bool,
        is_pub: bool,
        is_test: bool,
    ) -> usize {
        let line = self.toks[fn_kw].line;
        let Some(name_tok) = self
            .toks
            .get(fn_kw + 1)
            .filter(|t| t.kind == TokKind::Ident)
        else {
            return fn_kw + 1;
        };
        let name = name_tok.text.clone();
        let mut i = fn_kw + 2;
        if i < end && self.toks[i].is("<") {
            i = self.skip_generics(i, end);
        }
        if i >= end || !self.toks[i].is("(") {
            return i;
        }
        let params_close = self.match_delim(i, end, "(", ")");
        let params = self.parse_params(i + 1, params_close);
        i = params_close + 1;
        // Return type: tokens after `->` up to `{`, `;`, or `where`.
        let mut ret = None;
        if i < end && self.toks[i].is("->") {
            i += 1;
            let start = i;
            let mut depth = 0usize;
            while i < end {
                let t = &self.toks[i];
                if depth == 0 && (t.is("{") || t.is(";") || t.is_kw("where")) {
                    break;
                }
                match t.text.as_str() {
                    "<" => depth += 1,
                    ">" => depth = depth.saturating_sub(1),
                    _ => {}
                }
                i += 1;
            }
            ret = Some(join_tokens(&self.toks[start..i]));
        }
        // Where clause.
        while i < end && !self.toks[i].is("{") && !self.toks[i].is(";") {
            i += 1;
        }
        let (body, body_lines, next) = if i < end && self.toks[i].is("{") {
            let close = self.match_delim(i, end, "{", "}");
            let lines = (
                self.toks[i].line,
                self.toks
                    .get(close)
                    .map(|t| t.line)
                    .unwrap_or(self.toks[i].line),
            );
            (Some((i + 1, close)), Some(lines), close + 1)
        } else {
            (None, None, (i + 1).min(end))
        };
        self.fns.push(FnItem {
            name,
            params,
            ret,
            modules: modules.to_vec(),
            impl_ty: impl_ty.map(str::to_string),
            trait_name: trait_name.map(str::to_string),
            in_trait_decl,
            is_pub,
            is_test,
            line,
            body,
            body_lines,
        });
        next
    }

    /// Splits `toks[start..end]` (the inside of the param parens) at
    /// top-level commas into `(name, type)` pairs.
    fn parse_params(&self, start: usize, end: usize) -> Vec<(String, String)> {
        let mut params = Vec::new();
        let mut i = start;
        let mut piece_start = start;
        let mut depth = 0isize;
        let flush = |s: usize, e: usize, params: &mut Vec<(String, String)>| {
            let toks = &self.toks[s..e];
            if toks.is_empty() {
                return;
            }
            // `self` receiver in any dress: self | &self | &mut self |
            // mut self | self: Type.
            if toks.iter().take(4).any(|t| t.is_kw("self")) {
                params.push(("self".to_string(), "&Self".to_string()));
                return;
            }
            // Find the top-level `:` splitting pattern from type.
            let mut d = 0isize;
            for (k, t) in toks.iter().enumerate() {
                match t.text.as_str() {
                    "<" | "(" | "[" => d += 1,
                    ">" | ")" | "]" => d -= 1,
                    ":" if d == 0 => {
                        let pat = &toks[..k];
                        let name = pat
                            .iter()
                            .rev()
                            .find(|t| t.kind == TokKind::Ident && !t.is_kw("mut"))
                            .map(|t| t.text.clone())
                            .unwrap_or_else(|| "_".to_string());
                        let ty = join_tokens(&toks[k + 1..]);
                        params.push((name, ty));
                        return;
                    }
                    _ => {}
                }
            }
        };
        while i < end {
            match self.toks[i].text.as_str() {
                "<" | "(" | "[" => depth += 1,
                ">" | ")" | "]" => depth -= 1,
                "," if depth == 0 => {
                    flush(piece_start, i, &mut params);
                    piece_start = i + 1;
                }
                _ => {}
            }
            i += 1;
        }
        flush(piece_start, end, &mut params);
        params
    }

    fn parse_impl(
        &mut self,
        impl_kw: usize,
        end: usize,
        modules: &mut Vec<String>,
        in_test: bool,
    ) -> usize {
        let mut i = impl_kw + 1;
        if i < end && self.toks[i].is("<") {
            i = self.skip_generics(i, end);
        }
        // Collect the first type path (trait or self type).
        let (first, after_first) = self.type_path(i, end);
        i = after_first;
        let (self_ty, trait_name) = if i < end && self.toks[i].is_kw("for") {
            let (second, after_second) = self.type_path(i + 1, end);
            i = after_second;
            (second, Some(first))
        } else {
            (first, None)
        };
        // Skip where clause.
        while i < end && !self.toks[i].is("{") && !self.toks[i].is(";") {
            i += 1;
        }
        if i >= end || !self.toks[i].is("{") {
            return (i + 1).min(end);
        }
        let close = self.match_delim(i, end, "{", "}");
        self.items(
            i + 1,
            close,
            modules,
            Some(&self_ty),
            trait_name.as_deref(),
            false,
            in_test,
        );
        close + 1
    }

    fn parse_trait(
        &mut self,
        trait_kw: usize,
        end: usize,
        modules: &mut Vec<String>,
        in_test: bool,
    ) -> usize {
        let Some(name_tok) = self
            .toks
            .get(trait_kw + 1)
            .filter(|t| t.kind == TokKind::Ident)
        else {
            return trait_kw + 1;
        };
        let name = name_tok.text.clone();
        self.types.push(TypeDef {
            name: name.clone(),
            is_trait: true,
            modules: modules.clone(),
            line: self.toks[trait_kw].line,
        });
        let mut i = trait_kw + 2;
        while i < end && !self.toks[i].is("{") && !self.toks[i].is(";") {
            if self.toks[i].is("<") {
                i = self.skip_generics(i, end);
                continue;
            }
            i += 1;
        }
        if i >= end || !self.toks[i].is("{") {
            return (i + 1).min(end);
        }
        let close = self.match_delim(i, end, "{", "}");
        self.items(i + 1, close, modules, None, Some(&name), true, in_test);
        close + 1
    }

    /// Reads a type path (`a::b::Type<G>` — generics skipped), returning
    /// its **last** segment (the type name) and the index after it.
    fn type_path(&self, mut i: usize, end: usize) -> (String, usize) {
        let mut last = String::new();
        // Leading `&`/`&mut`/`dyn`.
        while i < end
            && (self.toks[i].is("&")
                || self.toks[i].is_kw("mut")
                || self.toks[i].is_kw("dyn")
                || self.toks[i].kind == TokKind::Lifetime)
        {
            i += 1;
        }
        while i < end {
            let t = &self.toks[i];
            if t.kind == TokKind::Ident && !t.is_kw("for") && !t.is_kw("where") {
                last = t.text.clone();
                i += 1;
                if i < end && self.toks[i].is("<") {
                    i = self.skip_generics(i, end);
                }
                if i < end && self.toks[i].is("::") {
                    i += 1;
                    continue;
                }
            }
            break;
        }
        (last, i)
    }

    /// Parses a use tree after the `use` keyword; returns index past `;`.
    fn parse_use(&mut self, start: usize, end: usize) -> usize {
        let mut i = start;
        let mut semi = i;
        let mut depth = 0usize;
        while semi < end {
            match self.toks[semi].text.as_str() {
                "{" => depth += 1,
                "}" => depth = depth.saturating_sub(1),
                ";" if depth == 0 => break,
                _ => {}
            }
            semi += 1;
        }
        let mut prefix = Vec::new();
        self.use_tree(&mut i, semi, &mut prefix);
        semi + 1
    }

    /// Recursive use-tree walker accumulating aliases.
    fn use_tree(&mut self, i: &mut usize, end: usize, prefix: &mut Vec<String>) {
        let depth_at_entry = prefix.len();
        while *i < end {
            let t = &self.toks[*i];
            if t.kind == TokKind::Ident || t.is_kw("crate") || t.is_kw("self") || t.is_kw("super") {
                prefix.push(t.text.clone());
                *i += 1;
                if *i < end && self.toks[*i].is("::") {
                    *i += 1;
                    continue;
                }
                // Leaf — `as alias`?
                if *i < end && self.toks[*i].is_kw("as") {
                    if let Some(a) = self.toks.get(*i + 1) {
                        self.uses.push(UseAlias {
                            alias: a.text.clone(),
                            path: prefix.clone(),
                        });
                    }
                    *i += 2;
                } else {
                    let leaf = prefix.last().cloned().unwrap_or_default();
                    // `use a::b::self` imports `b` itself.
                    let alias = if leaf == "self" {
                        prefix.get(prefix.len().wrapping_sub(2)).cloned()
                    } else {
                        Some(leaf)
                    };
                    if let Some(alias) = alias {
                        self.uses.push(UseAlias {
                            alias,
                            path: if prefix.last().is_some_and(|l| l == "self") {
                                prefix[..prefix.len() - 1].to_vec()
                            } else {
                                prefix.clone()
                            },
                        });
                    }
                }
                prefix.truncate(depth_at_entry);
                // A `,` at this level continues siblings in a group.
                if *i < end && self.toks[*i].is(",") {
                    *i += 1;
                    continue;
                }
                return;
            }
            if t.is("{") {
                *i += 1;
                loop {
                    self.use_tree(i, end, prefix);
                    if *i < end && self.toks[*i].is(",") {
                        *i += 1;
                        continue;
                    }
                    break;
                }
                if *i < end && self.toks[*i].is("}") {
                    *i += 1;
                }
                prefix.truncate(depth_at_entry);
                if *i < end && self.toks[*i].is(",") {
                    *i += 1;
                    continue;
                }
                return;
            }
            if t.is("*") {
                // Glob: record under the reserved alias `*`.
                self.uses.push(UseAlias {
                    alias: "*".to_string(),
                    path: prefix.clone(),
                });
                *i += 1;
                prefix.truncate(depth_at_entry);
                return;
            }
            *i += 1;
        }
    }
}

/// Joins token texts with single spaces, tightening `::`/`<`/`>` joints
/// enough for readable type strings (`Vec < u64 >` → `Vec<u64>`).
pub fn join_tokens(toks: &[Tok]) -> String {
    let mut out = String::new();
    for t in toks {
        let tight = matches!(
            t.text.as_str(),
            "::" | "<" | ">" | "," | "(" | ")" | "[" | "]"
        );
        let prev_tight = out.ends_with(['<', ':', '(', '[', '&']);
        if !out.is_empty() && !tight && !prev_tight {
            out.push(' ');
        }
        if tight && out.ends_with(' ') {
            out.pop();
        }
        out.push_str(&t.text);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn free_fn_signature_and_body_span() {
        let p = parse_file("pub fn add(a: u32, b: u32) -> u32 {\n    a + b\n}\n");
        assert_eq!(p.fns.len(), 1);
        let f = &p.fns[0];
        assert_eq!(f.name, "add");
        assert!(f.is_pub);
        assert_eq!(
            f.params,
            vec![("a".into(), "u32".into()), ("b".into(), "u32".into())]
        );
        assert_eq!(f.ret.as_deref(), Some("u32"));
        assert_eq!(f.body_lines, Some((1, 3)));
    }

    #[test]
    fn nested_generics_in_params_and_ret() {
        let p = parse_file(
            "fn f(x: Vec<Vec<u64>>, m: BTreeMap<u32, Vec<Vec<u8>>>) -> Option<Vec<Vec<u64>>> {}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.params.len(), 2);
        assert_eq!(f.params[0].1, "Vec<Vec<u64>>");
        assert!(f.ret.as_deref().unwrap().contains("Vec<Vec<u64>>"));
    }

    #[test]
    fn impl_blocks_attach_methods_to_types() {
        let src = "struct Ctl;\nimpl Ctl {\n    pub fn tick(&mut self, n: u64) {}\n}\n\
                   impl Policy for Ctl {\n    fn name(&self) -> &'static str { \"x\" }\n}\n";
        let p = parse_file(src);
        assert_eq!(p.fns.len(), 2);
        assert_eq!(p.fns[0].impl_ty.as_deref(), Some("Ctl"));
        assert_eq!(p.fns[0].trait_name, None);
        assert_eq!(p.fns[1].impl_ty.as_deref(), Some("Ctl"));
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Policy"));
    }

    #[test]
    fn trait_decls_and_defaults() {
        let p = parse_file(
            "pub trait Source {\n    fn next(&mut self) -> u64;\n    fn peek(&self) -> u64 { 0 }\n}\n",
        );
        assert_eq!(p.types.len(), 1);
        assert!(p.types[0].is_trait);
        assert_eq!(p.fns.len(), 2);
        assert!(p.fns[0].in_trait_decl);
        assert!(p.fns[0].body.is_none());
        assert!(p.fns[1].body.is_some());
        assert_eq!(p.fns[1].trait_name.as_deref(), Some("Source"));
    }

    #[test]
    fn use_trees_with_groups_aliases_and_globs() {
        let src = "use std::collections::{BTreeMap, HashMap as Map};\n\
                   use crate::controller::DcatController;\n\
                   use resctrl::fault::*;\n";
        let p = parse_file(src);
        let find = |a: &str| p.uses.iter().find(|u| u.alias == a).cloned();
        assert_eq!(
            find("Map").unwrap().path,
            vec!["std", "collections", "HashMap"]
        );
        assert_eq!(
            find("BTreeMap").unwrap().path,
            vec!["std", "collections", "BTreeMap"]
        );
        assert_eq!(
            find("DcatController").unwrap().path,
            vec!["crate", "controller", "DcatController"]
        );
        assert!(p
            .uses
            .iter()
            .any(|u| u.alias == "*" && u.path == vec!["resctrl", "fault"]));
    }

    #[test]
    fn inline_modules_and_cfg_test() {
        let src = "fn live() {}\n#[cfg(test)]\nmod tests {\n    fn helper() {}\n    #[test]\n    fn case() {}\n}\n";
        let p = parse_file(src);
        assert_eq!(p.fns.len(), 3);
        assert!(!p.fns[0].is_test);
        assert!(p.fns[1].is_test);
        assert_eq!(p.fns[1].modules, vec!["tests"]);
        assert!(p.fns[2].is_test);
    }

    #[test]
    fn self_receiver_and_where_clause() {
        let p = parse_file(
            "impl S {\n    fn go<T>(&mut self, x: T) -> Vec<T> where T: Clone { vec![x] }\n}\n",
        );
        let f = &p.fns[0];
        assert_eq!(f.params[0].0, "self");
        assert_eq!(f.params[1], ("x".into(), "T".into()));
        assert_eq!(f.ret.as_deref(), Some("Vec<T>"));
        assert!(f.body.is_some());
    }

    #[test]
    fn const_and_statics_are_skipped_cleanly() {
        let p = parse_file(
            "pub const N: usize = 4;\nstatic TABLE: [u8; 2] = [1, 2];\nconst fn c() -> u32 { 1 }\nfn after() {}\n",
        );
        let names: Vec<_> = p.fns.iter().map(|f| f.name.as_str()).collect();
        assert_eq!(names, vec!["c", "after"]);
    }

    #[test]
    fn raw_ident_fn_name() {
        let p = parse_file("fn r#loop() {}\nfn plain() {}\n");
        assert_eq!(p.fns[0].name, "loop");
        assert_eq!(p.fns.len(), 2);
    }
}
