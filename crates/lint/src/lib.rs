//! dcat-lint: the workspace's token-aware static-analysis engine.
//!
//! Replaces the regex line-scans that used to live in `xtask` with a
//! lexer that understands comments, strings, raw strings, and char
//! literals ([`lexer`]), a catalog of passes with stable `DLxxx`
//! diagnostic codes ([`passes`]), inline suppression via
//! `// lint: allow(DLxxx, reason)` annotations, and a checked-in
//! baseline for grandfathered findings ([`baseline`]).
//!
//! | Code  | Pass | Scope |
//! |-------|------|-------|
//! | DL000 | malformed/unknown `lint: allow` annotation | everywhere |
//! | DL001 | `unwrap()`/`expect()` in privileged I/O | resctrl fs/retry, daemon, telemetry |
//! | DL002 | raw CBM bit arithmetic | dcat, resctrl, host (minus `cbm.rs`) |
//! | DL003 | float `==` on telemetry metrics | dcat, perf-events |
//! | DL004 | ad-hoc threading | all crates (minus `host::pool`) |
//! | DL005 | direct fs I/O in the daemon loop | daemon |
//! | DL006 | HashMap/HashSet iteration order | host, dcat, llc-sim, bench |
//! | DL007 | wall-clock / pointer-address ordering | all crates (minus `bench::timing`) |
//! | DL008 | lossy `as` casts in counter math | perf-events, llc-sim counters, controller delta math |
//! | DL009 | panicking slice index in privileged I/O | resctrl fs/retry, daemon, telemetry |
//! | DL010 | FIGURE6 vs DESIGN.md spec drift | transitions.rs + DESIGN.md |
//! | DL011 | direct stdio macros in library code | all library sources (minus `bench::report`, `obs`, `prop-lite`, bins/tests/benches) |
//! | DL012 | HashMap/HashSet order reaching published outputs | entry points: controller ticks, `CachePolicy` impls, engine/multi pub fns |
//! | DL013 | panic reachable from the daemon/apply path | entry points: `run_daemon*`, `DcatController::{apply*,tick*}` |
//! | DL014 | mixed-unit arithmetic (ways/bytes/misses/…) | dcat, resctrl, llc-sim, host |
//! | DL015 | pool-discipline race: closure to `Pool::map` captures `&mut`/cell/report sink | any crate calling `host::pool` |
//! | DL016 | allocation on a perfbench-pinned path (`Vec::new`+grow, size-losing collect, `Box::new`, `format!`) | reachable from `run_epoch*`, `CacheSet`, `CachePolicy::tick` |
//! | DL017 | I/O `Result` dropped/unwrapped or severity match with wildcard arm | resctrl, perf-events callers, daemon loop (bins/tests exempt) |
//!
//! Entry points: [`check_repo`] (scoped repo gate), [`scan_files`]
//! (all passes on arbitrary files, for fixture checks), [`self_test`]
//! (every pass against its embedded fixtures).

pub mod baseline;
pub mod dataflow;
pub mod diagnostics;
pub mod lexer;
pub mod model;
pub mod parse;
pub mod passes;
pub mod tokens;

use diagnostics::{Finding, Sink};
use lexer::SourceFile;
use std::path::{Path, PathBuf};

/// The result of a lint run, before baseline application.
#[derive(Debug, Default)]
pub struct Report {
    /// All findings, sorted by (path, line, code).
    pub findings: Vec<Finding>,
    /// Findings silenced by inline `lint: allow` annotations.
    pub suppressed: Vec<Finding>,
    /// Call-graph size counters (None when no graph was built).
    pub callgraph: Option<model::GraphSummary>,
    /// The unresolved call bucket, rendered `path:line: call (reason)`.
    /// Reported, never hidden: each entry is a hole in the
    /// interprocedural guarantees.
    pub unresolved: Vec<String>,
}

/// Walks upward from `start` to the workspace root (the directory with
/// both `Cargo.toml` and `crates/`).
pub fn find_repo_root(start: &Path) -> Result<PathBuf, String> {
    let mut dir = start.to_path_buf();
    loop {
        if dir.join("Cargo.toml").exists() && dir.join("crates").is_dir() {
            return Ok(dir);
        }
        if !dir.pop() {
            return Err(format!(
                "workspace root not found above {}",
                start.display()
            ));
        }
    }
}

/// Which per-file passes govern a repo-relative path.
///
/// The scopes encode the same module boundaries the legacy scans did,
/// plus the new determinism/cast/panic scopes from the pass catalog.
/// `crates/lint` itself is excluded from the walk entirely (its
/// fixtures spell every banned token), as is `crates/xtask`.
fn passes_for(rel: &str) -> Vec<&'static str> {
    use passes::{
        cast_safety, cbm_bits, determinism, direct_io, float_eq, panic_path, print_discipline,
        threading,
    };

    let privileged_io = [
        "crates/resctrl/src/fs.rs",
        "crates/resctrl/src/retry.rs",
        "crates/dcat/src/daemon.rs",
        "crates/dcat/src/telemetry.rs",
    ]
    .contains(&rel);
    let in_any = |dirs: &[&str]| dirs.iter().any(|d| rel.starts_with(d));

    let mut out = Vec::new();
    if privileged_io {
        out.push(panic_path::UNWRAP_CODE);
        out.push(panic_path::INDEX_CODE);
    }
    if in_any(&[
        "crates/dcat/src/",
        "crates/resctrl/src/",
        "crates/host/src/",
    ]) && !rel.ends_with("/cbm.rs")
    {
        out.push(cbm_bits::CODE);
    }
    if in_any(&["crates/dcat/src/", "crates/perf-events/src/"]) {
        out.push(float_eq::CODE);
    }
    if rel != "crates/host/src/pool.rs" {
        out.push(threading::CODE);
    }
    if rel == "crates/dcat/src/daemon.rs" {
        out.push(direct_io::CODE);
    }
    if in_any(&[
        "crates/host/src/",
        "crates/dcat/src/",
        "crates/llc-sim/src/",
        "crates/bench/src/",
    ]) {
        out.push(determinism::HASH_ITER_CODE);
    }
    if rel != "crates/bench/src/timing.rs" {
        out.push(determinism::WALL_CLOCK_CODE);
    }
    if in_any(&["crates/perf-events/src/"])
        || [
            "crates/llc-sim/src/counters.rs",
            "crates/dcat/src/phase.rs",
            "crates/dcat/src/perf_table.rs",
            "crates/dcat/src/daemon.rs",
        ]
        .contains(&rel)
    {
        out.push(cast_safety::CODE);
    }
    // Stdio discipline: library code must speak through bench::report.
    // Exempt the sinks themselves (report.rs, the obs crate), prop-lite
    // (shrunk counterexamples go straight to the developer), and code
    // that owns its stdio: binaries, main.rs, tests, benches.
    let owns_stdio = rel.contains("/bin/")
        || rel.ends_with("/main.rs")
        || rel.contains("/tests/")
        || rel.contains("/benches/");
    if !owns_stdio
        && rel != "crates/bench/src/report.rs"
        && !in_any(&["crates/obs/src/", "crates/prop-lite/src/"])
    {
        out.push(print_discipline::CODE);
    }
    out
}

/// Validates this file's `lint: allow` annotations (DL000) — malformed
/// grammar, unknown codes — and counts the well-formed ones so unused
/// suppressions remain visible in the report totals.
fn check_allows(file: &SourceFile, sink: &mut Sink) {
    for (line, why) in &file.malformed_allows {
        sink.emit_raw(Finding {
            code: passes::DL000,
            path: file.path.clone(),
            line: *line,
            message: format!("malformed lint annotation: {why}"),
            snippet: file
                .lines
                .get(line - 1)
                .map(|l| l.raw.trim().to_string())
                .unwrap_or_default(),
            trace: Vec::new(),
        });
    }
    let known = passes::known_codes();
    for (i, l) in file.lines.iter().enumerate() {
        for allow in &l.allows {
            if !known.contains(&allow.code.as_str()) {
                sink.emit_raw(Finding {
                    code: passes::DL000,
                    path: file.path.clone(),
                    line: i + 1,
                    message: format!("allow annotation names unknown code `{}`", allow.code),
                    snippet: l.raw.trim().to_string(),
                    trace: Vec::new(),
                });
            }
        }
    }
}

/// Runs the scoped gate over the whole repository, including the
/// DL010 spec-drift check.
pub fn check_repo(root: &Path) -> Result<Report, String> {
    let mut sink = Sink::default();
    let crates_dir = root.join("crates");
    let mut files = Vec::new();
    let mut graph_files = Vec::new();
    let mut crate_idents = std::collections::BTreeMap::new();
    let entries =
        std::fs::read_dir(&crates_dir).map_err(|e| format!("crates dir unreadable: {e}"))?;
    for entry in entries {
        let dir = entry.map_err(|e| format!("dir entry: {e}"))?.path();
        let name = dir.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if !dir.is_dir() {
            continue;
        }
        if let Some(ident) = package_ident(&dir.join("Cargo.toml")) {
            crate_idents.insert(name.to_string(), ident);
        }
        // The graph spans every crate's src/ tree — including lint and
        // xtask, whose fns are simply unreachable from the dCat entry
        // points — but never test fixtures.
        collect_rust_files(&dir, &mut graph_files)?;
        if name == "lint" || name == "xtask" {
            continue;
        }
        collect_rust_files(&dir, &mut files)?;
    }
    files.sort();
    graph_files.sort();

    for path in &files {
        let rel = rel_path(root, path);
        let codes = passes_for(&rel);
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let file = SourceFile::parse(&rel, &text);
        check_allows(&file, &mut sink);
        for code in codes {
            passes::run_pass(code, &file, &mut sink);
        }
    }

    // Interprocedural passes over the workspace call graph.
    let mut sources = Vec::new();
    for path in &graph_files {
        let rel = rel_path(root, path);
        if !rel.contains("/src/") || rel.contains("/fixtures/") {
            continue;
        }
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        sources.push((rel, text));
    }
    let ws = model::Workspace::from_sources(&sources, &crate_idents);
    passes::interproc::run_all(&ws, passes::interproc::EntryMode::Repo, &mut sink);
    let summary = ws.summary();
    let unresolved = render_unresolved(&ws);

    let transitions = root.join("crates/dcat/src/transitions.rs");
    let design = root.join("DESIGN.md");
    let transitions_text = std::fs::read_to_string(&transitions)
        .map_err(|e| format!("{}: {e}", transitions.display()))?;
    let design_text =
        std::fs::read_to_string(&design).map_err(|e| format!("{}: {e}", design.display()))?;
    passes::spec_drift::run(
        &transitions_text,
        "crates/dcat/src/transitions.rs",
        &design_text,
        "DESIGN.md",
        &mut sink,
    );

    let mut report = finish(sink);
    report.callgraph = Some(summary);
    report.unresolved = unresolved;
    Ok(report)
}

/// Applies every per-file pass, unscoped, to the given files — the mode
/// CI uses to prove the gate fails on a seeded fixture. The
/// interprocedural passes run too, with every call-graph root as an
/// entry point.
pub fn scan_files(paths: &[PathBuf]) -> Result<Report, String> {
    let mut sink = Sink::default();
    let mut sources = Vec::new();
    for path in paths {
        let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let rel = path.to_string_lossy().replace('\\', "/");
        let file = SourceFile::parse(&rel, &text);
        check_allows(&file, &mut sink);
        for code in passes::FILE_PASS_CODES {
            passes::run_pass(code, &file, &mut sink);
        }
        sources.push((rel, text));
    }
    let ws = model::Workspace::from_sources(&sources, &std::collections::BTreeMap::new());
    passes::interproc::run_all(&ws, passes::interproc::EntryMode::Roots, &mut sink);
    let mut report = finish(sink);
    report.callgraph = Some(ws.summary());
    report.unresolved = render_unresolved(&ws);
    Ok(report)
}

fn finish(sink: Sink) -> Report {
    let mut findings = sink.findings;
    findings
        .sort_by(|a, b| (a.path.as_str(), a.line, a.code).cmp(&(b.path.as_str(), b.line, b.code)));
    Report {
        findings,
        suppressed: sink.suppressed,
        callgraph: None,
        unresolved: Vec::new(),
    }
}

/// Renders the unresolved-call bucket for the report.
fn render_unresolved(ws: &model::Workspace) -> Vec<String> {
    ws.unresolved
        .iter()
        .map(|u| {
            format!(
                "{}:{}: `{}` ({})",
                ws.unit_of(u.caller).file.path,
                u.line,
                u.call,
                u.reason
            )
        })
        .collect()
}

/// First `name = "…"` in a Cargo.toml, underscored — the crate ident
/// used in `use` paths.
fn package_ident(manifest: &Path) -> Option<String> {
    let text = std::fs::read_to_string(manifest).ok()?;
    for line in text.lines() {
        let t = line.trim();
        if let Some(rest) = t.strip_prefix("name") {
            let rest = rest.trim_start().strip_prefix('=')?.trim();
            let name = rest.trim_matches('"');
            return Some(name.replace('-', "_"));
        }
    }
    None
}

fn rel_path(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

fn collect_rust_files(dir: &Path, out: &mut Vec<PathBuf>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let path = entry.map_err(|e| format!("dir entry: {e}"))?.path();
        if path.is_dir() {
            collect_rust_files(&path, out)?;
        } else if path.extension().is_some_and(|x| x == "rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Every pass self-tests against embedded positive and negative
/// fixtures; a pass that stops detecting its own pattern fails the
/// whole lint run.
pub fn self_test() -> Result<(), String> {
    passes::self_test_all()?;
    // The allow grammar itself.
    let file = SourceFile::parse("f.rs", "let x = 1; // lint: allow(DL001)\n");
    if file.malformed_allows.len() != 1 {
        return Err("allow-grammar self-test: reason-less allow accepted".into());
    }
    let mut sink = Sink::default();
    check_allows(&file, &mut sink);
    if sink
        .findings
        .iter()
        .filter(|f| f.code == passes::DL000)
        .count()
        != 1
    {
        return Err("allow-grammar self-test: DL000 not emitted".into());
    }
    let bogus = SourceFile::parse("f.rs", "let x = 1; // lint: allow(DL999, because)\n");
    let mut sink = Sink::default();
    check_allows(&bogus, &mut sink);
    if sink
        .findings
        .iter()
        .filter(|f| f.code == passes::DL000)
        .count()
        != 1
    {
        return Err("allow-grammar self-test: unknown code not rejected".into());
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().unwrap();
    }

    #[test]
    fn scoping_matches_the_catalog() {
        let daemon = passes_for("crates/dcat/src/daemon.rs");
        for code in [
            "DL001", "DL009", "DL002", "DL003", "DL004", "DL005", "DL006", "DL007", "DL008",
            "DL011",
        ] {
            assert!(daemon.contains(&code), "daemon must run {code}");
        }
        let cbm = passes_for("crates/resctrl/src/cbm.rs");
        assert!(!cbm.contains(&"DL002"), "cbm.rs owns the raw bits");
        let pool = passes_for("crates/host/src/pool.rs");
        assert!(!pool.contains(&"DL004"), "pool.rs owns the threads");
        let timing = passes_for("crates/bench/src/timing.rs");
        assert!(!timing.contains(&"DL007"), "timing.rs owns the clock");
        assert!(timing.contains(&"DL011"), "timing.rs must report via say");
        let counters = passes_for("crates/llc-sim/src/counters.rs");
        assert!(counters.contains(&"DL008"));
        let snapshot = passes_for("crates/perf-events/src/snapshot.rs");
        assert!(snapshot.contains(&"DL008"));
        assert!(snapshot.contains(&"DL003"));
        // DL011 exemptions: the sinks, prop-lite, and stdio owners.
        for exempt in [
            "crates/bench/src/report.rs",
            "crates/obs/src/metrics.rs",
            "crates/prop-lite/src/lib.rs",
            "crates/dcat/src/bin/dcatd.rs",
            "crates/obs/src/bin/obs_dump.rs",
            "crates/bench/src/bin/fig07_lifecycle.rs",
            "crates/bench/tests/determinism.rs",
            "crates/bench/benches/controller_tick.rs",
        ] {
            assert!(
                !passes_for(exempt).contains(&"DL011"),
                "{exempt} owns its stdio"
            );
        }
        assert!(passes_for("crates/bench/src/scenario.rs").contains(&"DL011"));
        // The dcat-top split: the renderer library is print-disciplined
        // (it returns Strings), while the dashboard binary owns its
        // stdio. The CI fixture proves the same boundary dynamically.
        let top_lib = passes_for("crates/top/src/lib.rs");
        assert!(top_lib.contains(&"DL011"), "the renderer must not print");
        assert!(
            top_lib.contains(&"DL007"),
            "the renderer is wall-clock free"
        );
        assert!(
            !passes_for("crates/top/src/bin/dcat_top.rs").contains(&"DL011"),
            "the dashboard binary owns its stdio"
        );
    }

    #[test]
    fn repo_gate_runs_end_to_end() {
        // The lint crate lives inside the workspace it checks: running
        // the full gate from the test proves the walk, the scoping, and
        // every pass hold together on real sources.
        let root = find_repo_root(Path::new(env!("CARGO_MANIFEST_DIR"))).unwrap();
        let report = check_repo(&root).unwrap();
        // The committed tree must be clean relative to the committed
        // baseline; assert no *unknown* findings so the test mirrors CI.
        let base = baseline::load(&root.join("lint-baseline.txt")).unwrap();
        let (new, _, _) = baseline::partition(&report.findings, &base);
        assert!(
            new.is_empty(),
            "new lint findings:\n{}",
            new.iter()
                .map(|f| f.render_human())
                .collect::<Vec<_>>()
                .join("\n")
        );
    }
}
