//! Findings, suppression-aware emission, and human/JSON rendering.

use crate::lexer::SourceFile;

/// One diagnostic produced by a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, `DL000`…`DL010`.
    pub code: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// Trimmed source line, truncated; part of the baseline key.
    pub snippet: String,
    /// Entry→sink call chain (qualified fn names) for interprocedural
    /// findings; empty for per-file passes. Not part of the key.
    pub trace: Vec<String>,
}

impl Finding {
    /// Baseline identity: code + path + whitespace-collapsed snippet.
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// grandfathered finding do not resurrect it.
    pub fn key(&self) -> String {
        let collapsed = self
            .snippet
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        format!("{}|{}|{}", self.code, self.path, collapsed)
    }

    pub fn render_human(&self) -> String {
        let mut out = format!(
            "{} {}:{}: {}\n    > {}",
            self.code, self.path, self.line, self.message, self.snippet
        );
        if !self.trace.is_empty() {
            out.push_str("\n    via ");
            out.push_str(&self.trace.join(" -> "));
        }
        out
    }
}

/// Collects findings from passes, routing suppressed ones aside.
#[derive(Debug, Default)]
pub struct Sink {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Finding>,
}

impl Sink {
    /// Emits a finding for `line` of `file` unless an inline
    /// `lint: allow(code, …)` annotation covers it.
    pub fn emit(&mut self, file: &SourceFile, line: usize, code: &'static str, message: String) {
        let snippet = file
            .lines
            .get(line - 1)
            .map(|l| truncate(l.raw.trim()))
            .unwrap_or_default();
        let finding = Finding {
            code,
            path: file.path.clone(),
            line,
            message,
            snippet,
            trace: Vec::new(),
        };
        if file.is_allowed(line, code) {
            self.suppressed.push(finding);
        } else {
            self.findings.push(finding);
        }
    }

    /// Emits unconditionally (used for findings that are not tied to a
    /// suppressible source line, e.g. spec drift and malformed allows).
    pub fn emit_raw(&mut self, finding: Finding) {
        self.findings.push(finding);
    }
}

fn truncate(s: &str) -> String {
    const MAX: usize = 160;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let cut: String = s.chars().take(MAX).collect();
        format!("{cut}…")
    }
}

/// Minimal JSON string escaping (the report contains only source text).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a single JSON object. Hand-rolled — the
/// workspace is hermetic and the schema is flat.
pub fn render_json(
    findings: &[Finding],
    new_findings: &[Finding],
    suppressed: usize,
    baselined: usize,
    stale_baseline: &[String],
    callgraph: Option<&crate::model::GraphSummary>,
    unresolved_calls: &[String],
) -> String {
    let one = |f: &Finding| {
        let trace: Vec<String> = f
            .trace
            .iter()
            .map(|s| format!("\"{}\"", json_escape(s)))
            .collect();
        format!(
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"trace\":[{}],\"key\":\"{}\"}}",
            f.code,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
            trace.join(","),
            json_escape(&f.key()),
        )
    };
    let all: Vec<String> = findings.iter().map(one).collect();
    let fresh: Vec<String> = new_findings.iter().map(one).collect();
    let stale: Vec<String> = stale_baseline
        .iter()
        .map(|k| format!("\"{}\"", json_escape(k)))
        .collect();
    let graph = callgraph
        .map(|g| {
            // The unresolved bucket is part of the report (no silent
            // drops): every call edge the resolver gave up on is listed.
            let calls: Vec<String> = unresolved_calls
                .iter()
                .map(|u| format!("\"{}\"", json_escape(u)))
                .collect();
            format!(
                ",\"callgraph\":{{\"functions\":{},\"edges\":{},\"unresolved\":{},\"unresolved_calls\":[{}]}}",
                g.functions,
                g.edges,
                g.unresolved,
                calls.join(",")
            )
        })
        .unwrap_or_default();
    format!(
        "{{\"findings\":[{}],\"new_findings\":[{}],\"counts\":{{\"total\":{},\"new\":{},\"suppressed\":{},\"baselined\":{}}},\"stale_baseline\":[{}]{}}}",
        all.join(","),
        fresh.join(","),
        findings.len(),
        new_findings.len(),
        suppressed,
        baselined,
        stale.join(","),
        graph,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(code: &'static str, snippet: &str) -> Finding {
        Finding {
            code,
            path: "crates/x/src/a.rs".into(),
            line: 3,
            message: "m".into(),
            snippet: snippet.into(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn key_collapses_whitespace_and_omits_line() {
        let a = f("DL001", "let  x =\t1;");
        let b = Finding {
            line: 99,
            ..f("DL001", "let x = 1;")
        };
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn json_report_escapes_quotes() {
        let out = render_json(&[f("DL001", "say \"hi\"")], &[], 0, 1, &[], None, &[]);
        assert!(out.contains("say \\\"hi\\\""));
        assert!(out.contains("\"baselined\":1"));
        assert!(out.contains("\"trace\":[]"));
        assert!(!out.contains("callgraph"));
    }

    #[test]
    fn json_report_carries_trace_and_graph() {
        let mut t = f("DL012", "m.values()");
        t.trace = vec!["dcat::a".into(), "dcat::b".into()];
        let g = crate::model::GraphSummary {
            functions: 10,
            edges: 20,
            unresolved: 3,
        };
        let unresolved = vec!["crates/x/src/a.rs:3: `z.sample` (ambiguous)".to_string()];
        let out = render_json(&[t.clone()], &[], 0, 0, &[], Some(&g), &unresolved);
        assert!(out.contains("\"trace\":[\"dcat::a\",\"dcat::b\"]"));
        assert!(out.contains(
            "\"callgraph\":{\"functions\":10,\"edges\":20,\"unresolved\":3,\"unresolved_calls\":[\"crates/x/src/a.rs:3: `z.sample` (ambiguous)\"]}"
        ));
        assert!(t.render_human().contains("via dcat::a -> dcat::b"));
    }

    #[test]
    fn suppression_routes_to_suppressed() {
        let file = SourceFile::parse(
            "crates/x/src/a.rs",
            "let v = m.keys(); // lint: allow(DL006, proven sorted)\n",
        );
        let mut sink = Sink::default();
        sink.emit(&file, 1, "DL006", "msg".into());
        assert!(sink.findings.is_empty());
        assert_eq!(sink.suppressed.len(), 1);
    }
}
