//! Findings, suppression-aware emission, and human/JSON rendering.

use crate::lexer::SourceFile;

/// One diagnostic produced by a pass.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Stable code, `DL000`…`DL010`.
    pub code: &'static str,
    /// Repo-relative path with `/` separators.
    pub path: String,
    /// 1-based line.
    pub line: usize,
    pub message: String,
    /// Trimmed source line, truncated; part of the baseline key.
    pub snippet: String,
}

impl Finding {
    /// Baseline identity: code + path + whitespace-collapsed snippet.
    /// Line numbers are deliberately excluded so unrelated edits above a
    /// grandfathered finding do not resurrect it.
    pub fn key(&self) -> String {
        let collapsed = self
            .snippet
            .split_whitespace()
            .collect::<Vec<_>>()
            .join(" ");
        format!("{}|{}|{}", self.code, self.path, collapsed)
    }

    pub fn render_human(&self) -> String {
        format!(
            "{} {}:{}: {}\n    > {}",
            self.code, self.path, self.line, self.message, self.snippet
        )
    }
}

/// Collects findings from passes, routing suppressed ones aside.
#[derive(Debug, Default)]
pub struct Sink {
    pub findings: Vec<Finding>,
    pub suppressed: Vec<Finding>,
}

impl Sink {
    /// Emits a finding for `line` of `file` unless an inline
    /// `lint: allow(code, …)` annotation covers it.
    pub fn emit(&mut self, file: &SourceFile, line: usize, code: &'static str, message: String) {
        let snippet = file
            .lines
            .get(line - 1)
            .map(|l| truncate(l.raw.trim()))
            .unwrap_or_default();
        let finding = Finding {
            code,
            path: file.path.clone(),
            line,
            message,
            snippet,
        };
        if file.is_allowed(line, code) {
            self.suppressed.push(finding);
        } else {
            self.findings.push(finding);
        }
    }

    /// Emits unconditionally (used for findings that are not tied to a
    /// suppressible source line, e.g. spec drift and malformed allows).
    pub fn emit_raw(&mut self, finding: Finding) {
        self.findings.push(finding);
    }
}

fn truncate(s: &str) -> String {
    const MAX: usize = 160;
    if s.chars().count() <= MAX {
        s.to_string()
    } else {
        let cut: String = s.chars().take(MAX).collect();
        format!("{cut}…")
    }
}

/// Minimal JSON string escaping (the report contains only source text).
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Renders the full report as a single JSON object. Hand-rolled — the
/// workspace is hermetic and the schema is flat.
pub fn render_json(
    findings: &[Finding],
    new_findings: &[Finding],
    suppressed: usize,
    baselined: usize,
    stale_baseline: &[String],
) -> String {
    let one = |f: &Finding| {
        format!(
            "{{\"code\":\"{}\",\"path\":\"{}\",\"line\":{},\"message\":\"{}\",\"snippet\":\"{}\",\"key\":\"{}\"}}",
            f.code,
            json_escape(&f.path),
            f.line,
            json_escape(&f.message),
            json_escape(&f.snippet),
            json_escape(&f.key()),
        )
    };
    let all: Vec<String> = findings.iter().map(one).collect();
    let fresh: Vec<String> = new_findings.iter().map(one).collect();
    let stale: Vec<String> = stale_baseline
        .iter()
        .map(|k| format!("\"{}\"", json_escape(k)))
        .collect();
    format!(
        "{{\"findings\":[{}],\"new_findings\":[{}],\"counts\":{{\"total\":{},\"new\":{},\"suppressed\":{},\"baselined\":{}}},\"stale_baseline\":[{}]}}",
        all.join(","),
        fresh.join(","),
        findings.len(),
        new_findings.len(),
        suppressed,
        baselined,
        stale.join(","),
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(code: &'static str, snippet: &str) -> Finding {
        Finding {
            code,
            path: "crates/x/src/a.rs".into(),
            line: 3,
            message: "m".into(),
            snippet: snippet.into(),
        }
    }

    #[test]
    fn key_collapses_whitespace_and_omits_line() {
        let a = f("DL001", "let  x =\t1;");
        let b = Finding {
            line: 99,
            ..f("DL001", "let x = 1;")
        };
        assert_eq!(a.key(), b.key());
    }

    #[test]
    fn json_report_escapes_quotes() {
        let out = render_json(&[f("DL001", "say \"hi\"")], &[], 0, 1, &[]);
        assert!(out.contains("say \\\"hi\\\""));
        assert!(out.contains("\"baselined\":1"));
    }

    #[test]
    fn suppression_routes_to_suppressed() {
        let file = SourceFile::parse(
            "crates/x/src/a.rs",
            "let v = m.keys(); // lint: allow(DL006, proven sorted)\n",
        );
        let mut sink = Sink::default();
        sink.emit(&file, 1, "DL006", "msg".into());
        assert!(sink.findings.is_empty());
        assert_eq!(sink.suppressed.len(), 1);
    }
}
