//! DL012 / DL013 / DL014 — interprocedural passes over the workspace
//! call graph ([`crate::model`]).
//!
//! The token-level passes (DL006/DL007, DL001/DL009) flag direct
//! occurrences inside their scoped files and go blind the moment the
//! pattern is wrapped in a helper. These passes follow facts *across*
//! functions:
//!
//! **DL012 determinism-taint v2.** Hash-container iteration, wall-clock
//! reads, and pointer-address ordering are *facts* extracted per
//! function; the pass walks the call graph from the determinism
//! entry points — `DcatController::tick*`, every `CachePolicy` impl,
//! and the public surface of `host::engine`/`host::multi` — and reports
//! any reachable fact with the entry→sink call chain as a trace.
//! Crucially, fact extraction sees locals whose hash type arrives by
//! *call-return inference* (`let m = make_map();` where `make_map`
//! resolves to a workspace fn returning `HashMap<…>`), the exact
//! laundering shape DL006's file-local tracker provably misses. The
//! order-insensitive-fold exemption and `lint: allow(DL006/DL007/DL012)`
//! escapes are honored at the fact site; `bench::timing` keeps its
//! wall-clock license. v3 refines the name set with the def-use layer
//! ([`crate::dataflow`]): a file-level hash name shadowed by a provably
//! non-hash local no longer taints the fn, and plain aliases
//! (`let renamed = m;` / `.clone()`) of a hash value are tracked to a
//! fixpoint even though their names carry no type anywhere.
//!
//! **DL013 panic-reachability.** `unwrap`/`expect`/`panic!`-family
//! macros, slice indexing, and integer `/`/`%` by a variable divisor are
//! facts; entry points are the paths PR 3 promised never die mid-tick:
//! `run_daemon_observed`/`run_daemon_with` and the controller's
//! `tick*`/two-pass `apply`. Indexing by a loop variable bound as
//! `for i in 0..…` in the same body is exempt (the dominant safe shape
//! in the controller), as are the `assert!` family (deliberate contract
//! checks, not accidental panics). Allows: DL001/DL009/DL013.
//!
//! **DL014 unit-safety.** Not reachability-based: every non-test fn in
//! the unit-bearing crates is checked for (a) arithmetic or comparison
//! mixing identifiers of different unit suffixes (`*_ways` vs `*_bytes`
//! vs `*_cycles` vs `*_epochs` — `*`/`/` are excluded as legitimate
//! conversions) and (b) returns from unit-promising fn names that
//! contradict the canonical widths in DESIGN.md §12: `ways` are `u32`,
//! `bytes`/`cycles`/`epochs` are `u64`. Named (newtype) returns pass;
//! a float or a wrong-width integer does not. v3 propagates units
//! through suffix-free bindings: a `let` whose initializer reads only
//! one unit's values (with no calls, which may convert, and no later
//! reassignment) inherits that unit, so `let w = total_ways;
//! w + slab_bytes` is still a mix. Allow: DL014.

use crate::dataflow::UseKind;
use crate::diagnostics::{Finding, Sink};
use crate::model::Workspace;
use crate::tokens::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub const TAINT_CODE: &str = "DL012";
pub const PANIC_REACH_CODE: &str = "DL013";
pub const UNIT_CODE: &str = "DL014";

/// How entry points are chosen.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EntryMode {
    /// The repo gate: the dCat-specific entry sets documented above.
    Repo,
    /// Fixture scans: every graph root (fn with no incoming edges).
    Roots,
}

pub fn run_all(ws: &Workspace, mode: EntryMode, sink: &mut Sink) {
    run_taint(ws, mode, sink);
    run_panic_reach(ws, mode, sink);
    run_unit_safety(ws, mode, sink);
    super::flow::run_pool_discipline(ws, mode, sink);
    super::flow::run_hot_alloc(ws, mode, sink);
    super::flow::run_io_completeness(ws, mode, sink);
}

// ---------------------------------------------------------------------
// Shared reachability machinery
// ---------------------------------------------------------------------

/// Multi-source BFS; returns `parent[f] = Some(pred)` for every reached
/// fn (entries point at themselves). Deterministic: entries are visited
/// in index order and adjacency lists are sorted.
pub(super) fn reach(ws: &Workspace, entries: &[usize]) -> Vec<Option<usize>> {
    let mut parent: Vec<Option<usize>> = vec![None; ws.fns.len()];
    let mut q = VecDeque::new();
    for &e in entries {
        if parent[e].is_none() {
            parent[e] = Some(e);
            q.push_back(e);
        }
    }
    while let Some(f) = q.pop_front() {
        for &(c, _) in &ws.edges[f] {
            if parent[c].is_none() && !ws.fns[c].is_test {
                parent[c] = Some(f);
                q.push_back(c);
            }
        }
    }
    parent
}

/// Entry→`f` chain of qualified names, following BFS parents.
pub(super) fn trace_to(ws: &Workspace, parent: &[Option<usize>], mut f: usize) -> Vec<String> {
    let mut chain = vec![ws.fns[f].qualified.clone()];
    while let Some(p) = parent[f] {
        if p == f {
            break;
        }
        chain.push(ws.fns[p].qualified.clone());
        f = p;
    }
    chain.reverse();
    chain
}

pub(super) fn roots(ws: &Workspace) -> Vec<usize> {
    let mut has_caller = vec![false; ws.fns.len()];
    for (f, es) in ws.edges.iter().enumerate() {
        if ws.fns[f].is_test {
            continue;
        }
        for &(c, _) in es {
            has_caller[c] = true;
        }
    }
    (0..ws.fns.len())
        .filter(|&f| !has_caller[f] && !ws.fns[f].is_test)
        .collect()
}

/// Crates whose bodies never contribute facts: the analyzer itself (its
/// sources and fixtures spell every banned token) and the build tool.
pub(super) fn fact_exempt_crate(cr: &str) -> bool {
    cr == "dcat_lint" || cr == "xtask"
}

/// One extracted fact, pre-resolved to an emission site.
pub(super) struct Fact {
    pub(super) f: usize,
    pub(super) line: usize,
    pub(super) message: String,
}

/// Emits `fact` if its line is not covered by `code` or any of
/// `also_allowed` (the fact kinds map onto the token-level pass codes,
/// whose existing allows stay honored).
pub(super) fn emit_fact(
    ws: &Workspace,
    sink: &mut Sink,
    code: &'static str,
    also_allowed: &[&str],
    fact: &Fact,
    trace: Vec<String>,
) {
    let unit = ws.unit_of(fact.f);
    if also_allowed
        .iter()
        .any(|c| unit.file.is_allowed(fact.line, c))
    {
        return;
    }
    let snippet = unit
        .file
        .lines
        .get(fact.line - 1)
        .map(|l| l.raw.trim().to_string())
        .unwrap_or_default();
    let finding = Finding {
        code,
        path: unit.file.path.clone(),
        line: fact.line,
        message: fact.message.clone(),
        snippet,
        trace,
    };
    if unit.file.is_allowed(fact.line, code) {
        sink.suppressed.push(finding);
    } else {
        sink.findings.push(finding);
    }
}

/// Non-test code lines of a fn body, as `(line_no, scrubbed_text)`.
pub(super) fn body_code_lines(ws: &Workspace, f: usize) -> Vec<(usize, String)> {
    let unit = ws.unit_of(f);
    let Some((lo, hi)) = ws.fn_item(f).body_lines else {
        return Vec::new();
    };
    unit.file
        .lines
        .iter()
        .enumerate()
        .skip(lo.saturating_sub(1))
        .take(hi.saturating_sub(lo) + 1)
        .filter(|(_, l)| !l.in_test)
        .map(|(i, l)| (i + 1, l.scrubbed.clone()))
        .collect()
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Is this token a Rust keyword (so `kw […]` is an array literal or a
/// pattern, never an indexing expression)?
fn is_rust_kw(t: &crate::tokens::Tok) -> bool {
    [
        "in", "return", "match", "if", "else", "for", "while", "loop", "break", "continue", "move",
        "ref", "mut", "as", "let", "box", "await", "yield", "static", "const",
    ]
    .iter()
    .any(|k| t.is_kw(k))
}

// ---------------------------------------------------------------------
// DL012 — determinism taint v2
// ---------------------------------------------------------------------

fn taint_entries(ws: &Workspace, mode: EntryMode) -> Vec<usize> {
    if mode == EntryMode::Roots {
        return roots(ws);
    }
    let mut out = Vec::new();
    for (f, n) in ws.fns.iter().enumerate() {
        if n.is_test {
            continue;
        }
        let ctl_tick = n.crate_ident == "dcat"
            && n.impl_ty.as_deref() == Some("DcatController")
            && n.name.starts_with("tick");
        let policy_impl = n.trait_name.as_deref() == Some("CachePolicy") && n.impl_ty.is_some();
        let host_surface = n.crate_ident == "host"
            && matches!(
                n.module.first().map(String::as_str),
                Some("engine") | Some("multi")
            )
            && ws.fn_item(f).is_pub;
        if ctl_tick || policy_impl || host_surface {
            out.push(f);
        }
    }
    out
}

/// Hash-typed names visible in fn `f`: the file-level tracker's names
/// plus locals whose type (declared or call-return-inferred) is a hash
/// container, refined by the fn's def-use chains (v3): a file-level
/// name shadowed in this fn by a provably non-hash local is dropped,
/// and a local bound directly from a hash-typed value (a plain alias
/// or `.clone()`) is added even though its name carries no type.
fn hash_names(ws: &Workspace, f: usize) -> BTreeSet<String> {
    let mut names = super::determinism::collect_hash_names(&ws.unit_of(f).file);
    for (name, ty) in &ws.locals[f] {
        if ty.contains("HashMap") || ty.contains("HashSet") {
            names.insert(name.clone());
        }
    }
    let Some(flow) = super::flow::flow_of(ws, f) else {
        return names;
    };
    let is_hash = |t: &str| t.contains("HashMap") || t.contains("HashSet");
    // Shadowing cut: every def of the name in this fn is known non-hash
    // (by annotation, call-return inference, or a non-hash constructor)
    // → occurrences here are that local, not the file-level binding.
    names.retain(|name| {
        let mut defs = flow.defs.iter().filter(|d| &d.name == name).peekable();
        if defs.peek().is_none() {
            return true; // not bound locally; trust the file tracker
        }
        defs.any(|d| {
            let known =
                d.ty.as_deref()
                    .or_else(|| ws.locals[f].get(name).map(String::as_str));
            match known {
                Some(t) => is_hash(t),
                // No type anywhere: a non-hash constructor call proves
                // it clean; anything else stays suspect.
                None => !d.init_calls.iter().any(|c| {
                    let tail = c.rsplit("::").next().unwrap_or(c);
                    matches!(tail, "new" | "default" | "with_capacity") && !is_hash(c)
                }),
            }
        })
    });
    // Alias propagation to a fixpoint: `let alias = m;` (or `m.clone()`)
    // carries the hash container under a new, suffix-free name.
    loop {
        let mut changed = false;
        for def in &flow.defs {
            if names.contains(&def.name) {
                continue;
            }
            let pure_alias = def
                .init_calls
                .iter()
                .all(|c| c.rsplit("::").next().unwrap_or(c) == "clone");
            if pure_alias
                && def.init_reads.len() == 1
                && names.contains(&flow.defs[def.init_reads[0]].name)
            {
                names.insert(def.name.clone());
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    names
}

fn run_taint(ws: &Workspace, mode: EntryMode, sink: &mut Sink) {
    use super::determinism::{for_loop_over, is_order_insensitive, iter_method_on};
    let entries = taint_entries(ws, mode);
    let parent = reach(ws, &entries);
    let mut facts: Vec<Fact> = Vec::new();
    for f in 0..ws.fns.len() {
        if parent[f].is_none() || fact_exempt_crate(&ws.fns[f].crate_ident) {
            continue;
        }
        let node = &ws.fns[f];
        let timing_license = node.crate_ident == "dcat_bench"
            && node.module.first().map(String::as_str) == Some("timing");
        let names = hash_names(ws, f);
        let unit = ws.unit_of(f);
        let mut seen_lines = BTreeSet::new();
        for (n, line) in body_code_lines(ws, f) {
            // Hash iteration (DL006 semantics, + inferred locals).
            if !names.is_empty() && names.iter().any(|x| line.contains(x.as_str())) {
                let chain = unit.file.chain_text(n);
                for name in &names {
                    let method_hit = iter_method_on(&chain, name);
                    let loop_hit = for_loop_over(&line, name);
                    if !method_hit && !loop_hit {
                        continue;
                    }
                    if method_hit && !loop_hit && is_order_insensitive(&chain) {
                        continue;
                    }
                    if seen_lines.insert(n) {
                        facts.push(Fact {
                            f,
                            line: n,
                            message: format!(
                                "iteration over HashMap/HashSet `{name}` is \
                                 order-nondeterministic and reachable from a determinism \
                                 entry point"
                            ),
                        });
                    }
                    break;
                }
            }
            // Wall clock / pointer order (DL007 semantics).
            if !timing_license {
                if line.contains("Instant::now") || line.contains("SystemTime") {
                    facts.push(Fact {
                        f,
                        line: n,
                        message: "wall-clock time source reachable from a determinism entry \
                                  point (results must be a pure function of seed and config)"
                            .into(),
                    });
                } else if line.contains(".as_ptr() as ")
                    || ((line.contains(" as *const") || line.contains(" as *mut"))
                        && line.contains(" as usize"))
                {
                    facts.push(Fact {
                        f,
                        line: n,
                        message: "pointer-address ordering reachable from a determinism \
                                  entry point"
                            .into(),
                    });
                }
            }
        }
    }
    for fact in &facts {
        let trace = trace_to(ws, &parent, fact.f);
        emit_fact(ws, sink, TAINT_CODE, &["DL006", "DL007"], fact, trace);
    }
}

// ---------------------------------------------------------------------
// DL013 — panic reachability
// ---------------------------------------------------------------------

fn panic_entries(ws: &Workspace, mode: EntryMode) -> Vec<usize> {
    if mode == EntryMode::Roots {
        return roots(ws);
    }
    let mut out = Vec::new();
    for (f, n) in ws.fns.iter().enumerate() {
        if n.is_test || n.crate_ident != "dcat" {
            continue;
        }
        let daemon = n.module.first().map(String::as_str) == Some("daemon")
            && n.name.starts_with("run_daemon");
        let ctl = n.impl_ty.as_deref() == Some("DcatController")
            && (n.name == "apply" || n.name.starts_with("tick"));
        if daemon || ctl {
            out.push(f);
        }
    }
    out
}

const PANIC_MACROS: [&str; 4] = ["panic!(", "unreachable!(", "todo!(", "unimplemented!("];

/// Identifiers bound by iteration or pattern destructuring anywhere in
/// the body: `for i in …` / `for (k, v) in …`, closure parameters
/// (`|&i|`, `|(i, x)|`), and `Some(i)` / `Ok(i)` patterns. Indexing by
/// such a binding is range-derived (the value flows from an iterator or
/// a search over valid indices), so it is exempt from the DL013 index
/// fact; raw parameters, struct fields, literals, and computed indices
/// stay flagged.
fn loop_bound_idents(toks: &[Tok], start: usize, end: usize) -> BTreeSet<String> {
    let mut out = BTreeSet::new();
    let mut i = start;
    while i < end {
        let t = &toks[i];
        // for-loop patterns: everything between `for` and `in`.
        if t.is_kw("for") {
            let mut j = i + 1;
            while j < end && !toks[j].is_kw("in") && !toks[j].is("{") {
                if toks[j].kind == TokKind::Ident && !toks[j].is_kw("mut") {
                    out.insert(toks[j].text.clone());
                }
                j += 1;
            }
            i = j + 1;
            continue;
        }
        // Option/Result destructure: `Some(i)`, `Ok(i)`.
        if (t.is_kw("Some") || t.is_kw("Ok"))
            && i + 3 < end
            && toks[i + 1].is("(")
            && toks[i + 2].kind == TokKind::Ident
            && toks[i + 3].is(")")
        {
            out.insert(toks[i + 2].text.clone());
            i += 4;
            continue;
        }
        // Closure header: `|` pattern-ish tokens `|` within a short
        // window. Idents after a `:` are types, not bindings.
        if t.is("|") {
            let mut j = i + 1;
            let mut in_type = false;
            let mut names = Vec::new();
            let mut ok = false;
            while j < end && j - i < 24 {
                let u = &toks[j];
                if u.is("|") {
                    ok = true;
                    break;
                }
                match u.text.as_str() {
                    "," => in_type = false,
                    ":" => in_type = true,
                    "&" | "(" | ")" | "_" | "mut" | "<" | ">" | "::" => {}
                    _ if u.kind == TokKind::Ident || u.kind == TokKind::Lifetime => {
                        if !in_type && u.kind == TokKind::Ident {
                            names.push(u.text.clone());
                        }
                    }
                    _ => break, // not a closure header
                }
                j += 1;
            }
            if ok {
                out.extend(names);
                i = j + 1;
                continue;
            }
        }
        i += 1;
    }
    out
}

/// Integer-typed locals/params of fn `f` (for the divisor fact).
fn int_locals(ws: &Workspace, f: usize) -> BTreeSet<String> {
    const INTS: [&str; 12] = [
        "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize",
    ];
    ws.locals[f]
        .iter()
        .filter(|(_, ty)| INTS.contains(&ty.trim_start_matches('&').trim()))
        .map(|(n, _)| n.clone())
        .collect()
}

fn run_panic_reach(ws: &Workspace, mode: EntryMode, sink: &mut Sink) {
    let entries = panic_entries(ws, mode);
    let parent = reach(ws, &entries);
    let mut facts: Vec<Fact> = Vec::new();
    for f in 0..ws.fns.len() {
        if parent[f].is_none() || fact_exempt_crate(&ws.fns[f].crate_ident) {
            continue;
        }
        for (n, line) in body_code_lines(ws, f) {
            if line.contains(".unwrap()") || line.contains(".expect(") {
                facts.push(Fact {
                    f,
                    line: n,
                    message: "unwrap()/expect() reachable from the daemon tick path \
                              (PR 3: ticks degrade, they never die)"
                        .into(),
                });
            }
            if PANIC_MACROS.iter().any(|m| line.contains(m)) {
                facts.push(Fact {
                    f,
                    line: n,
                    message: "explicit panic reachable from the daemon tick path".into(),
                });
            }
        }
        // Token-level facts: indexing and variable divisors.
        let item = ws.fn_item(f);
        let Some((bs, be)) = item.body else { continue };
        let toks = &ws.unit_of(f).parsed.tokens;
        let bound = loop_bound_idents(toks, bs, be);
        let ints = int_locals(ws, f);
        let mut i = bs;
        while i < be {
            let t = &toks[i];
            let prev_is_value = i > bs
                && (toks[i - 1].kind == TokKind::Ident && !is_rust_kw(&toks[i - 1])
                    || toks[i - 1].is(")")
                    || toks[i - 1].is("]"));
            if t.is("[") && prev_is_value {
                // Contract checks (`assert!`/`debug_assert!`) are
                // deliberate panics, not accidental ones.
                let line_text = ws
                    .unit_of(f)
                    .file
                    .lines
                    .get(t.line - 1)
                    .map(|l| l.scrubbed.clone())
                    .unwrap_or_default();
                if line_text.contains("assert") {
                    i += 1;
                    continue;
                }
                // Slice/array indexing: find the matching `]`.
                let mut depth = 0isize;
                let mut j = i;
                while j < be {
                    match toks[j].text.as_str() {
                        "[" => depth += 1,
                        "]" => {
                            depth -= 1;
                            if depth == 0 {
                                break;
                            }
                        }
                        _ => {}
                    }
                    j += 1;
                }
                let inner = &toks[i + 1..j.min(be)];
                let loop_safe = inner.len() == 1
                    && inner[0].kind == TokKind::Ident
                    && bound.contains(&inner[0].text);
                if !loop_safe {
                    facts.push(Fact {
                        f,
                        line: t.line,
                        message: "panicking index reachable from the daemon tick path \
                                  (use .get()/.get_mut() or a loop-bounded index)"
                            .into(),
                    });
                }
                i = j + 1;
                continue;
            }
            if (t.is("/") || t.is("%") || t.is("/=") || t.is("%="))
                && i + 1 < be
                && toks[i + 1].kind == TokKind::Ident
                && ints.contains(&toks[i + 1].text)
            {
                facts.push(Fact {
                    f,
                    line: t.line,
                    message: format!(
                        "integer division/remainder by variable `{}` reachable from the \
                         daemon tick path (zero divisor panics; guard or use checked_div)",
                        toks[i + 1].text
                    ),
                });
            }
            i += 1;
        }
    }
    facts.sort_by(|a, b| (a.f, a.line).cmp(&(b.f, b.line)));
    facts.dedup_by(|a, b| a.f == b.f && a.line == b.line && a.message == b.message);
    for fact in &facts {
        let trace = trace_to(ws, &parent, fact.f);
        emit_fact(ws, sink, PANIC_REACH_CODE, &["DL001", "DL009"], fact, trace);
    }
}

// ---------------------------------------------------------------------
// DL014 — unit safety
// ---------------------------------------------------------------------

/// Crates that traffic in ways/bytes/cycles quantities.
fn unit_scoped(cr: &str, mode: EntryMode) -> bool {
    if mode == EntryMode::Roots {
        return !fact_exempt_crate(cr);
    }
    matches!(
        cr,
        "dcat" | "host" | "llc_sim" | "resctrl" | "dcat_bench" | "perf_events"
    )
}

fn unit_of(ident: &str) -> Option<&'static str> {
    for u in ["ways", "bytes", "cycles", "epochs"] {
        if ident == u || ident.ends_with(&format!("_{u}")) {
            return Some(u);
        }
    }
    None
}

/// Canonical integer width for a unit (DESIGN.md §12).
fn canonical_width(unit: &str) -> &'static str {
    match unit {
        "ways" => "u32",
        _ => "u64",
    }
}

/// Operators whose operands must agree on units. `*`/`/` are excluded:
/// `ways * way_bytes` is the sanctioned conversion shape.
fn unit_strict_op(op: &str) -> bool {
    matches!(
        op,
        "+" | "-" | "+=" | "-=" | "<" | "<=" | ">" | "==" | "!=" | "="
    )
}

fn run_unit_safety(ws: &Workspace, mode: EntryMode, sink: &mut Sink) {
    let mut facts: Vec<Fact> = Vec::new();
    for f in 0..ws.fns.len() {
        let node = &ws.fns[f];
        if node.is_test || !unit_scoped(&node.crate_ident, mode) {
            continue;
        }
        let item = ws.fn_item(f);
        // (b) unit-promising name must return the canonical width.
        if let (Some(unit), Some(ret)) = (unit_of(&node.name), item.ret.as_ref()) {
            if let Some(bad) = width_violation(unit, ret) {
                facts.push(Fact {
                    f,
                    line: item.line,
                    message: format!(
                        "fn `{}` promises {unit} but returns `{ret}` ({bad}; canonical \
                         {unit} width is {})",
                        node.name,
                        canonical_width(unit)
                    ),
                });
            }
        }
        // (a) mixed-unit arithmetic/comparison/assignment.
        let Some((bs, be)) = item.body else { continue };
        let toks = &ws.unit_of(f).parsed.tokens;
        // v3 dataflow: a suffix-free binding whose initializer reads
        // only values of one unit (and is never reassigned) inherits
        // that unit, so `let w = total_ways; w + size_bytes` is caught.
        let mut inherited: BTreeMap<String, &'static str> = BTreeMap::new();
        if let Some(flow) = super::flow::flow_of(ws, f) {
            loop {
                let mut changed = false;
                for def in &flow.defs {
                    if unit_of(&def.name).is_some()
                        || inherited.contains_key(&def.name)
                        || !def.init_calls.is_empty()
                        || def.init_reads.is_empty()
                        || def.uses.iter().any(|u| matches!(u.kind, UseKind::Write))
                    {
                        continue;
                    }
                    let units: BTreeSet<&'static str> = def
                        .init_reads
                        .iter()
                        .filter_map(|&r| {
                            let src = &flow.defs[r].name;
                            unit_of(src).or_else(|| inherited.get(src).copied())
                        })
                        .collect();
                    if units.len() == 1
                        && def.init_reads.iter().all(|&r| {
                            let src = &flow.defs[r].name;
                            unit_of(src).is_some() || inherited.contains_key(src)
                        })
                    {
                        inherited.insert(def.name.clone(), units.iter().next().copied().unwrap());
                        changed = true;
                    }
                }
                if !changed {
                    break;
                }
            }
        }
        let unit_of_ident = |ident: &str| unit_of(ident).or_else(|| inherited.get(ident).copied());
        for i in bs..be {
            let t = &toks[i];
            if t.kind != TokKind::Punct || !unit_strict_op(&t.text) {
                continue;
            }
            if i == bs || i + 1 >= be {
                continue;
            }
            // `->` never reaches here (own token); `>` only fires between
            // two unit-suffixed idents, which generics never produce.
            let (l, r) = (&toks[i - 1], &toks[i + 1]);
            if l.kind != TokKind::Ident || r.kind != TokKind::Ident {
                continue;
            }
            if let (Some(ul), Some(ur)) = (unit_of_ident(&l.text), unit_of_ident(&r.text)) {
                if ul != ur {
                    facts.push(Fact {
                        f,
                        line: t.line,
                        message: format!(
                            "`{}` ({ul}) {} `{}` ({ur}) mixes units; convert explicitly \
                             before combining",
                            l.text, t.text, r.text
                        ),
                    });
                }
            }
        }
    }
    for fact in &facts {
        let trace = vec![ws.fns[fact.f].qualified.clone()];
        emit_fact(ws, sink, UNIT_CODE, &[], fact, trace);
    }
}

/// Does return type `ret` contradict the canonical width of `unit`?
/// Returns a short description of the violation, or `None` if fine.
fn width_violation(unit: &str, ret: &str) -> Option<&'static str> {
    let canonical = canonical_width(unit);
    let words: Vec<String> = split_idents(ret);
    let ints: Vec<&str> = words
        .iter()
        .map(String::as_str)
        .filter(|w| {
            matches!(
                *w,
                "u8" | "u16"
                    | "u32"
                    | "u64"
                    | "u128"
                    | "usize"
                    | "i8"
                    | "i16"
                    | "i32"
                    | "i64"
                    | "i128"
                    | "isize"
            )
        })
        .collect();
    if ints.iter().any(|w| *w == canonical) {
        return None;
    }
    if !ints.is_empty() {
        return Some("wrong integer width");
    }
    if words.iter().any(|w| w == "f32" || w == "f64") {
        return Some("floats cannot carry a discrete unit");
    }
    // A named (newtype) return carries its own unit discipline.
    None
}

fn split_idents(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut cur = String::new();
    for c in s.chars() {
        if is_ident_char(c) {
            cur.push(c);
        } else if !cur.is_empty() {
            out.push(std::mem::take(&mut cur));
        }
    }
    if !cur.is_empty() {
        out.push(cur);
    }
    out
}

// ---------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------

#[cfg(test)]
use std::collections::BTreeMap as TestMap;

pub(super) fn fixture_ws(files: &[(&str, &str)]) -> Workspace {
    let sources: Vec<(String, String)> = files
        .iter()
        .map(|(p, t)| (p.to_string(), t.to_string()))
        .collect();
    Workspace::from_sources(&sources, &BTreeMap::new())
}

pub(super) fn run_on(files: &[(&str, &str)], mode: EntryMode) -> Sink {
    let ws = fixture_ws(files);
    let mut sink = Sink::default();
    run_all(&ws, mode, &mut sink);
    sink
}

pub(super) fn expect_codes(
    name: &str,
    files: &[(&str, &str)],
    mode: EntryMode,
    code: &str,
    want: usize,
) -> Result<(), String> {
    let sink = run_on(files, mode);
    let got = sink.findings.iter().filter(|f| f.code == code).count();
    if got == want {
        Ok(())
    } else {
        Err(format!(
            "{name}: expected {want} {code} finding(s), got {got}: {:?}",
            sink.findings
                .iter()
                .map(|f| format!("{} {}:{} {}", f.code, f.path, f.line, f.message))
                .collect::<Vec<_>>()
        ))
    }
}

pub fn self_test() -> Result<(), String> {
    // DL012: hash map laundered through a helper's return value — the
    // file-local DL006 tracker cannot see `m` is a HashMap.
    let laundered = [(
        "a.rs",
        "use std::collections::HashMap;\n\
             pub fn make_map() -> HashMap<u32, u64> { HashMap::new() }\n\
             pub fn entry() -> Vec<u64> {\n\
                 let m = make_map();\n\
                 m.values().copied().collect()\n\
             }\n",
    )];
    expect_codes(
        "DL012 laundering",
        &laundered,
        EntryMode::Roots,
        TAINT_CODE,
        1,
    )?;
    {
        // …and the token-level DL006 pass indeed misses it.
        let file = super::lex(laundered[0].1);
        let mut sink = Sink::default();
        super::determinism::run_hash_iter(&file, &mut sink);
        if !sink.findings.is_empty() {
            return Err("DL012 self-test: fixture must be invisible to DL006".into());
        }
    }
    // Order-insensitive fold stays exempt even through laundering.
    expect_codes(
        "DL012 fold exemption",
        &[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn make_map() -> HashMap<u32, u64> { HashMap::new() }\n\
             pub fn entry() -> u64 {\n\
                 let m = make_map();\n\
                 m.values().sum()\n\
             }\n",
        )],
        EntryMode::Roots,
        TAINT_CODE,
        0,
    )?;
    // The allow escape is honored at the fact site.
    expect_codes(
        "DL012 allow",
        &[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn make_map() -> HashMap<u32, u64> { HashMap::new() }\n\
             pub fn entry() -> Vec<u64> {\n\
                 let m = make_map();\n\
                 m.values().copied().collect() // lint: allow(DL006, order folded by caller)\n\
             }\n",
        )],
        EntryMode::Roots,
        TAINT_CODE,
        0,
    )?;
    // v3 shadow cut: `counts` is a HashMap in `other` (so the
    // file-level tracker collects the name) but a Vec in `entry`; the
    // def-use layer sees the non-hash annotation and stays silent.
    expect_codes(
        "DL012 shadowed non-hash local",
        &[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn other() -> u64 {\n\
                 let counts: HashMap<u32, u64> = HashMap::new();\n\
                 counts.len() as u64\n\
             }\n\
             pub fn entry() -> u64 {\n\
                 let counts: Vec<u64> = vec![1, 2];\n\
                 let mut acc = 0;\n\
                 for c in counts.iter() {\n\
                     acc += c;\n\
                 }\n\
                 acc\n\
             }\n",
        )],
        EntryMode::Roots,
        TAINT_CODE,
        0,
    )?;
    // v3 alias catch: the hash container is renamed through a plain
    // alias before iteration; only value tracking connects the two.
    expect_codes(
        "DL012 hash alias",
        &[(
            "a.rs",
            "use std::collections::HashMap;\n\
             pub fn make_map() -> HashMap<u32, u64> { HashMap::new() }\n\
             pub fn entry() -> Vec<u64> {\n\
                 let m = make_map();\n\
                 let renamed = m;\n\
                 renamed.values().copied().collect()\n\
             }\n",
        )],
        EntryMode::Roots,
        TAINT_CODE,
        1,
    )?;
    // Wall clock two calls deep.
    expect_codes(
        "DL012 wall clock depth 2",
        &[(
            "a.rs",
            "fn leaf() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n\
             fn mid() -> u64 { leaf() }\n\
             pub fn entry() -> u64 { mid() }\n",
        )],
        EntryMode::Roots,
        TAINT_CODE,
        1,
    )?;

    // DL013: unwrap hidden behind a helper in another module.
    expect_codes(
        "DL013 laundering",
        &[
            (
                "tick.rs",
                "pub fn entry() -> u64 { crate::help::first() }\n",
            ),
            (
                "help.rs",
                "pub fn first() -> u64 { parse_row().unwrap() }\n\
                 fn parse_row() -> Option<u64> { None }\n",
            ),
        ],
        EntryMode::Roots,
        PANIC_REACH_CODE,
        1,
    )?;
    // Loop-bounded indexing is the sanctioned shape.
    expect_codes(
        "DL013 loop-bounded index",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64]) -> u64 {\n\
                 let mut acc = 0;\n\
                 for i in 0..xs.len() {\n\
                     acc += xs[i];\n\
                 }\n\
                 acc\n\
             }\n",
        )],
        EntryMode::Roots,
        PANIC_REACH_CODE,
        0,
    )?;
    // Unbounded indexing is not.
    expect_codes(
        "DL013 raw index",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64], k: usize) -> u64 { xs[k] }\n",
        )],
        EntryMode::Roots,
        PANIC_REACH_CODE,
        1,
    )?;
    // Variable divisor with a known integer type.
    expect_codes(
        "DL013 divisor",
        &[(
            "a.rs",
            "pub fn entry(total: u64, n: u64) -> u64 { total / n }\n",
        )],
        EntryMode::Roots,
        PANIC_REACH_CODE,
        1,
    )?;
    // Unreachable helpers stay unreported.
    expect_codes(
        "DL013 unreachable",
        &[(
            "a.rs",
            "pub fn entry() -> u64 { 7 }\n\
             pub fn lonely() -> u64 { None::<u64>.unwrap() }\n",
        )],
        EntryMode::Roots,
        PANIC_REACH_CODE,
        1, // `lonely` is itself a root; reachable-from-itself still counts
    )?;

    // DL014: mixing ways with bytes across + is flagged…
    expect_codes(
        "DL014 mixing",
        &[(
            "a.rs",
            "pub fn entry(alloc_ways: u64, slab_bytes: u64) -> u64 { alloc_ways + slab_bytes }\n",
        )],
        EntryMode::Roots,
        UNIT_CODE,
        1,
    )?;
    // …while * stays a conversion.
    expect_codes(
        "DL014 conversion",
        &[(
            "a.rs",
            "pub fn entry(n_ways: u64, way_bytes: u64) -> u64 { n_ways * way_bytes }\n",
        )],
        EntryMode::Roots,
        UNIT_CODE,
        0,
    )?;
    // v3 unit propagation: a suffix-free alias inherits the unit its
    // initializer read, so the mix is still caught one hop later.
    expect_codes(
        "DL014 propagated unit",
        &[(
            "a.rs",
            "pub fn entry(total_ways: u64, slab_bytes: u64) -> u64 {\n\
                 let w = total_ways;\n\
                 w + slab_bytes\n\
             }\n",
        )],
        EntryMode::Roots,
        UNIT_CODE,
        1,
    )?;
    // …but a value that went through a call keeps no unit (the call
    // may convert), and neither does a reassigned binding.
    expect_codes(
        "DL014 propagation stops at calls",
        &[(
            "a.rs",
            "fn scale(v: u64) -> u64 { v * 64 }\n\
             pub fn entry(total_ways: u64, slab_bytes: u64) -> u64 {\n\
                 let w = scale(total_ways);\n\
                 w + slab_bytes\n\
             }\n",
        )],
        EntryMode::Roots,
        UNIT_CODE,
        0,
    )?;
    // Width promise: ways are u32.
    expect_codes(
        "DL014 width",
        &[("a.rs", "pub fn peak_ways() -> u64 { 4 }\n")],
        EntryMode::Roots,
        UNIT_CODE,
        1,
    )?;
    expect_codes(
        "DL014 width ok",
        &[(
            "a.rs",
            "pub fn peak_ways() -> u32 { 4 }\n\
             pub fn capacity_bytes() -> Option<u64> { None }\n",
        )],
        EntryMode::Roots,
        UNIT_CODE,
        0,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().unwrap();
    }

    #[test]
    fn repo_mode_entry_selection() {
        let ws = fixture_ws(&[
            (
                "crates/dcat/src/controller.rs",
                "pub struct DcatController;\n\
                 impl DcatController {\n\
                     pub fn tick_observed(&mut self) { self.collect(); }\n\
                     fn collect(&mut self) { let t = Instant::now(); let _ = t; }\n\
                 }\n",
            ),
            (
                "crates/dcat/src/daemon.rs",
                "pub fn run_daemon_observed() { helper(); }\n\
                 fn helper() { let x: Option<u64> = None; let _ = x.unwrap(); }\n",
            ),
        ]);
        let mut sink = Sink::default();
        run_all(&ws, EntryMode::Repo, &mut sink);
        let taint: Vec<_> = sink
            .findings
            .iter()
            .filter(|f| f.code == TAINT_CODE)
            .collect();
        assert_eq!(taint.len(), 1, "{:?}", sink.findings);
        assert_eq!(
            taint[0].trace,
            vec![
                "dcat::controller::DcatController::tick_observed".to_string(),
                "dcat::controller::DcatController::collect".to_string(),
            ]
        );
        let panics: Vec<_> = sink
            .findings
            .iter()
            .filter(|f| f.code == PANIC_REACH_CODE)
            .collect();
        assert_eq!(panics.len(), 1, "{:?}", sink.findings);
        assert_eq!(
            panics[0].trace.first().unwrap(),
            "dcat::daemon::run_daemon_observed"
        );
    }

    #[test]
    fn bench_timing_keeps_its_clock() {
        let ws = fixture_ws(&[(
            "crates/bench/src/timing.rs",
            "pub fn now_cycles() -> u64 { Instant::now().elapsed().as_nanos() as u64 }\n",
        )]);
        // Map the dir name to the package ident like check_repo does.
        let sources = vec![(
            "crates/bench/src/timing.rs".to_string(),
            ws.units[0]
                .file
                .lines
                .iter()
                .map(|l| l.raw.clone())
                .collect::<Vec<_>>()
                .join("\n"),
        )];
        let mut idents = TestMap::new();
        idents.insert("bench".to_string(), "dcat_bench".to_string());
        let ws = Workspace::from_sources(&sources, &idents);
        let mut sink = Sink::default();
        run_taint(&ws, EntryMode::Roots, &mut sink);
        assert!(sink.findings.is_empty(), "{:?}", sink.findings);
    }
}
