//! DL015 / DL016 / DL017 — pass families over the intraprocedural
//! dataflow layer ([`crate::dataflow`]) joined with the workspace call
//! graph ([`crate::model`]).
//!
//! **DL015 pool-discipline race pass.** `host::pool::Pool::map` promises
//! byte-identical merges at any worker count, which holds only while
//! tasks are self-contained. The pass finds every closure handed to a
//! `Pool::map` call site and walks its captures through the def-use
//! chains: a captured interior-mutability cell (`RefCell`, `Mutex`,
//! `Atomic*`), a laundered `&mut` borrow (`let shared = &mut totals;`
//! then capture `shared` — invisible to any token pass), a capture the
//! closure writes to, or a call inside the closure that transitively
//! reaches the coordinator-only `bench::report` sink is a finding, with
//! an entry→capture trace like DL012's.
//!
//! **DL016 hot-path allocation pass.** Functions reachable from the
//! perfbench-pinned paths — `Engine`/`MultiSocketEngine::run_epoch*`,
//! `CacheSet` methods, and `CachePolicy::tick` impls — must not allocate
//! per call. Facts: a binding initialized from `Vec::new()` that later
//! grows (`push`/`extend`/`insert`/…) without a capacity reservation,
//! `.collect()` behind a size-losing adapter (`filter`, `flat_map`, …;
//! exact-size chains single-allocate via `size_hint` and stay
//! sanctioned), `Box::new(…)`, and `format!(…)`. Escape hatch:
//! `// lint: allow(DL016, reason)` for allocations that are genuinely
//! bounded and once-per-call.
//!
//! **DL017 I/O error-completeness pass.** Every `Result` produced by the
//! I/O-classified surface (fns in `resctrl`/`perf_events` returning
//! `Result`, or any fn returning a `ResctrlError`-typed error) must flow
//! into `severity()` classification, retry wrapping, propagation, or an
//! explicit structured event. Findings: `unwrap()`/`expect(…)` on such a
//! Result, `let _ =` discards, bindings that are never consumed or
//! consumed only by a later `let _ =` (the two-hop discard only dataflow
//! can see), and `_` wildcard arms in `severity()` matches (including
//! matches on a binding the def-use chains trace back to `severity()`).
//! Calls the resolver cannot follow (field receivers like
//! `self.policy.tick(…)`) are covered by a name-set fallback: a method
//! name is I/O-fallible when every workspace fn of that name is.
//! Binaries (`src/bin/`, `main.rs`) own their exit path and are exempt,
//! as are tests.

use super::interproc::{
    body_code_lines, emit_fact, fact_exempt_crate, reach, roots, trace_to, EntryMode, Fact,
};
use crate::dataflow::{Def, DefKind, FnFlow, UseKind};
use crate::diagnostics::Sink;
use crate::model::Workspace;
use crate::tokens::{Tok, TokKind};
use std::collections::{BTreeMap, BTreeSet, VecDeque};

pub const POOL_CODE: &str = "DL015";
pub const ALLOC_CODE: &str = "DL016";
pub const IO_CODE: &str = "DL017";

/// Def-use chains for fn `f`, when it has a body.
pub(super) fn flow_of(ws: &Workspace, f: usize) -> Option<FnFlow> {
    let item = ws.fn_item(f);
    let body = item.body?;
    Some(FnFlow::analyze(
        &ws.unit_of(f).parsed.tokens,
        body,
        &item.params,
    ))
}

/// Entry→`f` chain when the roots BFS reached `f`; the fn's own
/// qualified name otherwise (caller cycles with no root).
fn root_trace(ws: &Workspace, parent: &[Option<usize>], f: usize) -> Vec<String> {
    if parent[f].is_some() {
        trace_to(ws, parent, f)
    } else {
        vec![ws.fns[f].qualified.clone()]
    }
}

fn line_in_test(ws: &Workspace, f: usize, line: usize) -> bool {
    ws.unit_of(f)
        .file
        .lines
        .get(line - 1)
        .is_some_and(|l| l.in_test)
}

/// Index of the close matching the opener at `open` (same bracket kind).
fn matching(toks: &[Tok], open: usize, end: usize, close_s: &str) -> usize {
    let open_s = &toks[open].text.clone();
    let mut depth = 0i32;
    let mut i = open;
    while i <= end {
        if toks[i].text == *open_s {
            depth += 1;
        } else if toks[i].is(close_s) {
            depth -= 1;
            if depth == 0 {
                return i;
            }
        }
        i += 1;
    }
    end
}

/// Does `u`'s innermost closure sit inside closure `c` (transitively)?
fn in_closure(flow: &FnFlow, mut inner: Option<usize>, c: usize) -> bool {
    while let Some(ci) = inner {
        if ci == c {
            return true;
        }
        inner = flow.closures[ci].parent;
    }
    false
}

fn sort_dedup(facts: &mut Vec<Fact>) {
    facts.sort_by(|a, b| (a.f, a.line, &a.message).cmp(&(b.f, b.line, &b.message)));
    facts.dedup_by(|a, b| a.f == b.f && a.line == b.line && a.message == b.message);
}

// ---------------------------------------------------------------------
// DL015 — pool-discipline races
// ---------------------------------------------------------------------

/// Types whose captures smuggle shared mutability into a worker task.
fn is_interior_mut(ws: &Workspace, f: usize, def: &Def) -> bool {
    let cell = |t: &str| {
        ["RefCell", "Cell<", "Mutex", "RwLock", "Atomic"]
            .iter()
            .any(|p| t.contains(p))
    };
    if def.ty.as_deref().is_some_and(cell) {
        return true;
    }
    if ws.locals[f]
        .get(&def.name)
        .map(String::as_str)
        .is_some_and(cell)
    {
        return true;
    }
    def.init_calls.iter().any(|c| {
        let head = c.split("::").next().unwrap_or("");
        matches!(head, "RefCell" | "Cell" | "Mutex" | "RwLock") || head.starts_with("Atomic")
    })
}

/// `reaches[g]` = fn `g` can (transitively) call into the coordinator's
/// report module (`bench::report` — ordered replay and metrics sinks).
fn report_sink_reachers(ws: &Workspace) -> Vec<bool> {
    let mut flag = vec![false; ws.fns.len()];
    let seeds: Vec<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.is_test
                && matches!(n.crate_ident.as_str(), "dcat_bench" | "bench")
                && n.module.first().map(String::as_str) == Some("report")
        })
        .map(|(g, _)| g)
        .collect();
    if seeds.is_empty() {
        return flag;
    }
    let mut rev: Vec<Vec<usize>> = vec![Vec::new(); ws.fns.len()];
    for (f, es) in ws.edges.iter().enumerate() {
        if ws.fns[f].is_test {
            continue;
        }
        for &(c, _) in es {
            rev[c].push(f);
        }
    }
    let mut q: VecDeque<usize> = VecDeque::new();
    for &s in &seeds {
        flag[s] = true;
        q.push_back(s);
    }
    while let Some(x) = q.pop_front() {
        for &p in &rev[x] {
            if !flag[p] {
                flag[p] = true;
                q.push_back(p);
            }
        }
    }
    flag
}

pub(super) fn run_pool_discipline(ws: &Workspace, _mode: EntryMode, sink: &mut Sink) {
    let pool_map: BTreeSet<usize> = ws
        .fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            !n.is_test
                && n.name == "map"
                && n.impl_ty.as_deref().is_some_and(|t| t.contains("Pool"))
        })
        .map(|(g, _)| g)
        .collect();
    if pool_map.is_empty() {
        return;
    }
    let reaches_sink = report_sink_reachers(ws);
    let parent = reach(ws, &roots(ws));
    let mut facts: Vec<Fact> = Vec::new();
    for f in 0..ws.fns.len() {
        let node = &ws.fns[f];
        if node.is_test || fact_exempt_crate(&node.crate_ident) {
            continue;
        }
        let map_lines: Vec<usize> = ws.edges[f]
            .iter()
            .filter(|(c, _)| pool_map.contains(c))
            .map(|&(_, l)| l)
            .collect();
        if map_lines.is_empty() {
            continue;
        }
        let item = ws.fn_item(f);
        let Some((bs, be)) = item.body else { continue };
        let toks = &ws.unit_of(f).parsed.tokens;
        let Some(flow) = flow_of(ws, f) else { continue };
        for line in map_lines {
            // The `.map(` tokens of this call site.
            let Some(m) = (bs..=be).find(|&i| {
                toks[i].line == line
                    && toks[i].is("map")
                    && i > bs
                    && toks[i - 1].is(".")
                    && toks.get(i + 1).is_some_and(|t| t.is("("))
            }) else {
                continue;
            };
            let close = matching(toks, m + 1, be, ")");
            let (alo, ahi) = (m + 2, close.saturating_sub(1));
            for (c, cl) in flow.closures.iter().enumerate() {
                if cl.tok < alo || cl.tok > ahi {
                    continue;
                }
                // Nested closures report through their outermost parent.
                if cl
                    .parent
                    .is_some_and(|p| flow.closures[p].tok >= alo && flow.closures[p].tok <= ahi)
                {
                    continue;
                }
                for cap in flow.captures(c) {
                    let def = &flow.defs[cap.def];
                    let at = def
                        .uses
                        .iter()
                        .find(|u| in_closure(&flow, u.closure, c))
                        .map(|u| u.line)
                        .unwrap_or(cl.line);
                    if is_interior_mut(ws, f, def) {
                        facts.push(Fact {
                            f,
                            line: at,
                            message: format!(
                                "closure passed to Pool::map captures interior-mutability \
                                 cell `{}` — pool tasks must be self-contained for \
                                 byte-identical merges",
                                def.name
                            ),
                        });
                    } else if def.init_mut_borrow {
                        let src = def
                            .init_reads
                            .first()
                            .map(|&s| flow.defs[s].name.clone())
                            .unwrap_or_else(|| "outer state".into());
                        facts.push(Fact {
                            f,
                            line: at,
                            message: format!(
                                "closure passed to Pool::map captures `{}`, a `&mut` borrow \
                                 of `{src}` — laundering the borrow through a binding does \
                                 not make the task self-contained",
                                def.name
                            ),
                        });
                    } else if cap.written {
                        facts.push(Fact {
                            f,
                            line: at,
                            message: format!(
                                "closure passed to Pool::map mutates captured `{}` — workers \
                                 race on shared state; return per-item results and merge in \
                                 the coordinator",
                                def.name
                            ),
                        });
                    }
                }
                // Coordinator-sink calls from inside the worker closure.
                let (lo, hi) = (toks[cl.body.0].line, toks[cl.body.1].line);
                for &(g2, l2) in &ws.edges[f] {
                    if reaches_sink[g2] && !pool_map.contains(&g2) && l2 >= lo && l2 <= hi {
                        facts.push(Fact {
                            f,
                            line: l2,
                            message: format!(
                                "closure passed to Pool::map calls `{}`, which reaches the \
                                 coordinator report/metrics sink — workers must not emit; \
                                 queue results for ordered replay",
                                ws.fns[g2].qualified
                            ),
                        });
                    }
                }
            }
        }
    }
    sort_dedup(&mut facts);
    for fact in &facts {
        let trace = root_trace(ws, &parent, fact.f);
        emit_fact(ws, sink, POOL_CODE, &[], fact, trace);
    }
}

// ---------------------------------------------------------------------
// DL016 — hot-path allocations
// ---------------------------------------------------------------------

/// Iterator adapters that lose the exact size hint, so a following
/// `collect()` grows geometrically instead of allocating once.
const SIZE_LOSING: [&str; 7] = [
    "filter",
    "filter_map",
    "flat_map",
    "flatten",
    "chain",
    "take_while",
    "skip_while",
];

/// Mutating methods that grow a container.
const GROW_METHODS: [&str; 6] = [
    "push",
    "push_str",
    "extend",
    "extend_from_slice",
    "insert",
    "append",
];

fn alloc_entries(ws: &Workspace, mode: EntryMode) -> Vec<usize> {
    if mode == EntryMode::Roots {
        return roots(ws);
    }
    ws.fns
        .iter()
        .enumerate()
        .filter(|(_, n)| {
            if n.is_test {
                return false;
            }
            let epoch_loop = n.crate_ident == "host"
                && matches!(
                    n.impl_ty.as_deref(),
                    Some("Engine") | Some("MultiSocketEngine")
                )
                && n.name.starts_with("run_epoch");
            let cache_set = n.crate_ident == "llc_sim" && n.impl_ty.as_deref() == Some("CacheSet");
            let policy_tick = n.trait_name.as_deref() == Some("CachePolicy") && n.name == "tick";
            epoch_loop || cache_set || policy_tick
        })
        .map(|(f, _)| f)
        .collect()
}

/// Crates whose reachable bodies contribute DL016 facts in Repo mode.
/// The control-plane crates (`resctrl`, `perf_events`) are DL017's
/// domain — their paths are I/O-bound, not perfbench-pinned.
fn alloc_fact_crate(cr: &str, mode: EntryMode) -> bool {
    if mode == EntryMode::Roots {
        return !fact_exempt_crate(cr);
    }
    matches!(cr, "host" | "llc_sim" | "dcat" | "dcat_bench" | "workloads")
}

/// Names of the adapters between a chain tail (e.g. `collect`) and its
/// receiver, walking the token chain backwards across lines.
fn chain_adapters_before(toks: &[Tok], tail: usize, bs: usize) -> Vec<String> {
    let mut out = Vec::new();
    let mut i = tail;
    while i > bs && toks[i - 1].is(".") {
        if i < 2 {
            break;
        }
        i -= 2; // skip the `.`; now at the token ending the previous link
        if toks[i].is(")") {
            // `(args)` group: rewind to its opener, then the callee name.
            let mut depth = 0i32;
            while i > bs {
                match toks[i].text.as_str() {
                    ")" => depth += 1,
                    "(" => {
                        depth -= 1;
                        if depth == 0 {
                            break;
                        }
                    }
                    _ => {}
                }
                i -= 1;
            }
            if i > bs && toks[i - 1].kind == TokKind::Ident {
                i -= 1;
                out.push(toks[i].text.clone());
                continue;
            }
            break;
        } else if toks[i].kind == TokKind::Ident {
            // Field hop (`self.buf.iter()…`): keep walking.
            continue;
        }
        break;
    }
    out
}

pub(super) fn run_hot_alloc(ws: &Workspace, mode: EntryMode, sink: &mut Sink) {
    let entries = alloc_entries(ws, mode);
    if entries.is_empty() {
        return;
    }
    let parent = reach(ws, &entries);
    let mut facts: Vec<Fact> = Vec::new();
    for f in 0..ws.fns.len() {
        if parent[f].is_none() {
            continue;
        }
        let node = &ws.fns[f];
        if node.is_test
            || fact_exempt_crate(&node.crate_ident)
            || !alloc_fact_crate(&node.crate_ident, mode)
        {
            continue;
        }
        // (1) bindings that grow from Vec::new().
        if let Some(flow) = flow_of(ws, f) {
            for def in &flow.defs {
                let from_vec_new = def
                    .init_calls
                    .iter()
                    .any(|c| c == "Vec::new" || c.ends_with("::Vec::new"));
                let grows = def.uses.iter().any(
                    |u| matches!(&u.kind, UseKind::MutMethod(m) if GROW_METHODS.contains(&m.as_str())),
                );
                if from_vec_new && grows && !line_in_test(ws, f, def.line) {
                    facts.push(Fact {
                        f,
                        line: def.line,
                        message: format!(
                            "`{}` grows from Vec::new() on a perfbench-pinned path — reserve \
                             with with_capacity or reuse a scratch buffer (or annotate \
                             `lint: allow(DL016, reason)`)",
                            def.name
                        ),
                    });
                }
            }
        }
        // (2)–(4) token facts: size-losing collect, Box::new, format!.
        let item = ws.fn_item(f);
        let Some((bs, be)) = item.body else { continue };
        let toks = &ws.unit_of(f).parsed.tokens;
        let mut seen: BTreeSet<(usize, &'static str)> = BTreeSet::new();
        for i in bs..=be {
            let t = &toks[i];
            if t.kind != TokKind::Ident || line_in_test(ws, f, t.line) {
                continue;
            }
            let next_opens = toks.get(i + 1).is_some_and(|n| n.is("(") || n.is("::"));
            if t.is("collect") && i > bs && toks[i - 1].is(".") && next_opens {
                let adapters = chain_adapters_before(toks, i, bs);
                if adapters.iter().any(|a| SIZE_LOSING.contains(&a.as_str()))
                    && seen.insert((t.line, "collect"))
                {
                    facts.push(Fact {
                        f,
                        line: t.line,
                        message: ".collect() behind a size-losing adapter grows geometrically \
                                  on a perfbench-pinned path — count and reserve, or reuse a \
                                  buffer (or annotate `lint: allow(DL016, reason)`)"
                            .into(),
                    });
                }
            } else if t.is("new")
                && i >= bs + 2
                && toks[i - 1].is("::")
                && toks[i - 2].is("Box")
                && toks.get(i + 1).is_some_and(|n| n.is("("))
                && seen.insert((t.line, "box"))
            {
                facts.push(Fact {
                    f,
                    line: t.line,
                    message: "Box::new allocates per call on a perfbench-pinned path — hoist \
                              the allocation out of the hot loop (or annotate \
                              `lint: allow(DL016, reason)`)"
                        .into(),
                });
            } else if t.is("format")
                && toks.get(i + 1).is_some_and(|n| n.is("!"))
                && seen.insert((t.line, "format"))
            {
                facts.push(Fact {
                    f,
                    line: t.line,
                    message: "format! allocates a String on a perfbench-pinned path — \
                              precompute labels or write into a reused buffer (or annotate \
                              `lint: allow(DL016, reason)`)"
                        .into(),
                });
            }
        }
    }
    sort_dedup(&mut facts);
    for fact in &facts {
        let trace = root_trace(ws, &parent, fact.f);
        emit_fact(ws, sink, ALLOC_CODE, &[], fact, trace);
    }
}

// ---------------------------------------------------------------------
// DL017 — I/O error completeness
// ---------------------------------------------------------------------

/// Is fn `g` part of the I/O-classified fallible surface?
fn io_fallible(ws: &Workspace, g: usize) -> bool {
    let n = &ws.fns[g];
    if n.is_test {
        return false;
    }
    let Some(ret) = ws.fn_item(g).ret.as_ref() else {
        return false;
    };
    (matches!(n.crate_ident.as_str(), "resctrl" | "perf_events") && ret.contains("Result"))
        || ret.contains("ResctrlError")
}

pub(super) fn run_io_completeness(ws: &Workspace, _mode: EntryMode, sink: &mut Sink) {
    let fallible: Vec<bool> = (0..ws.fns.len()).map(|g| io_fallible(ws, g)).collect();
    // A method name is fallible-by-name when every workspace fn wearing
    // it is I/O-fallible — the escape hatch for field-receiver calls the
    // resolver cannot follow (`self.policy.tick(…)`).
    let mut by_name: BTreeMap<&str, (usize, usize)> = BTreeMap::new();
    for (g, n) in ws.fns.iter().enumerate() {
        if n.is_test {
            continue;
        }
        let e = by_name.entry(n.name.as_str()).or_insert((0, 0));
        e.0 += 1;
        if fallible[g] {
            e.1 += 1;
        }
    }
    let name_set: BTreeSet<&str> = by_name
        .iter()
        .filter(|(_, (total, hit))| *hit >= 1 && hit == total)
        .map(|(n, _)| *n)
        .collect();
    let parent = reach(ws, &roots(ws));
    let mut facts: Vec<Fact> = Vec::new();
    for f in 0..ws.fns.len() {
        let node = &ws.fns[f];
        if node.is_test || fact_exempt_crate(&node.crate_ident) {
            continue;
        }
        let unit = ws.unit_of(f);
        // Binaries own their exit path: a top-level expect in main is the
        // structured event.
        if unit.file.path.contains("/bin/") || unit.file.path.ends_with("main.rs") {
            continue;
        }
        let mut covered: BTreeSet<usize> = BTreeSet::new();
        let mut resolved_names: BTreeSet<&str> = BTreeSet::new();
        for &(g, line) in &ws.edges[f] {
            if !fallible[g] {
                continue;
            }
            resolved_names.insert(ws.fns[g].name.as_str());
            if line_in_test(ws, f, line) {
                continue;
            }
            let chain = unit.file.chain_text(line);
            if chain.contains(".unwrap()") || chain.contains(".expect(") {
                if covered.insert(line) {
                    facts.push(Fact {
                        f,
                        line,
                        message: format!(
                            "`{}` returns an I/O-classified Result; unwrap/expect skips \
                             severity() classification — match on severity, wrap in \
                             with_retries, or propagate",
                            ws.fns[g].name
                        ),
                    });
                }
            } else if line_starts_let_underscore(unit.file.lines.get(line - 1)) {
                if covered.insert(line) {
                    facts.push(Fact {
                        f,
                        line,
                        message: format!(
                            "Result from `{}` discarded with `let _ =` — classify its \
                             severity or emit a structured event before dropping it",
                            ws.fns[g].name
                        ),
                    });
                }
            }
        }
        // Two-hop shapes only dataflow sees: bound then discarded/unused.
        let flow = flow_of(ws, f);
        if let Some(flow) = &flow {
            // A tuple pattern binds several names from one initializer,
            // but the Result lands in only one of them; if any sibling
            // from the same `let` is consumed, assume it took the Result.
            let sibling_consumed = |d: &crate::dataflow::Def| {
                flow.defs.iter().any(|s| {
                    s.name != d.name
                        && s.kind == DefKind::Let
                        && s.line == d.line
                        && s.init_calls == d.init_calls
                        && s.uses.iter().any(|u| !matches!(u.kind, UseKind::Discard))
                })
            };
            for def in &flow.defs {
                if def.kind != DefKind::Let || line_in_test(ws, f, def.line) {
                    continue;
                }
                let from_fallible = def.init_calls.iter().any(|c| {
                    let tail = c.rsplit("::").next().unwrap_or(c);
                    resolved_names.contains(tail) || name_set.contains(tail)
                });
                if !from_fallible || sibling_consumed(def) {
                    continue;
                }
                if def.uses.is_empty() {
                    if covered.insert(def.line) {
                        facts.push(Fact {
                            f,
                            line: def.line,
                            message: format!(
                                "I/O Result bound to `{}` is never consumed — it must reach \
                                 severity() classification, a retry wrapper, or a structured \
                                 event",
                                def.name
                            ),
                        });
                    }
                } else if def.uses.iter().all(|u| matches!(u.kind, UseKind::Discard)) {
                    let at = def.uses[0].line;
                    if covered.insert(at) {
                        facts.push(Fact {
                            f,
                            line: at,
                            message: format!(
                                "I/O Result bound to `{}` and then discarded with `let _ =` — \
                                 the two-hop discard still loses the error; classify or \
                                 propagate it",
                                def.name
                            ),
                        });
                    }
                }
            }
        }
        // Name-set fallback for calls the resolver could not follow.
        for (n, line) in body_code_lines(ws, f) {
            if covered.contains(&n) {
                continue;
            }
            let Some(name) = name_set
                .iter()
                .find(|name| line.contains(&format!(".{name}(")))
            else {
                continue;
            };
            let chain = unit.file.chain_text(n);
            if chain.contains(".unwrap()") || chain.contains(".expect(") {
                covered.insert(n);
                facts.push(Fact {
                    f,
                    line: n,
                    message: format!(
                        "`.{name}(…)` resolves only to I/O-classified Results; unwrap/expect \
                         skips severity() classification — match on severity, wrap in \
                         with_retries, or propagate"
                    ),
                });
            } else if line.trim_start().starts_with("let _ =") {
                covered.insert(n);
                facts.push(Fact {
                    f,
                    line: n,
                    message: format!(
                        "Result from `.{name}(…)` discarded with `let _ =` — classify its \
                         severity or emit a structured event before dropping it"
                    ),
                });
            }
        }
        severity_wildcards(ws, f, flow.as_ref(), &mut facts);
    }
    sort_dedup(&mut facts);
    for fact in &facts {
        let trace = root_trace(ws, &parent, fact.f);
        emit_fact(ws, sink, IO_CODE, &["DL001"], fact, trace);
    }
}

fn line_starts_let_underscore(line: Option<&crate::lexer::Line>) -> bool {
    line.is_some_and(|l| {
        let t = l.scrubbed.trim_start();
        t.starts_with("let _ =") || t.starts_with("let _=")
    })
}

/// `_` wildcard arms in matches over `severity()` — directly
/// (`match e.severity() { … }`) or through a binding whose def-use chain
/// starts at a `severity()` call (`let sev = e.severity(); match sev`).
fn severity_wildcards(ws: &Workspace, f: usize, flow: Option<&FnFlow>, facts: &mut Vec<Fact>) {
    let item = ws.fn_item(f);
    let Some((bs, be)) = item.body else { return };
    let toks = &ws.unit_of(f).parsed.tokens;
    let severity_bound: BTreeSet<&str> = flow
        .map(|fl| {
            fl.defs
                .iter()
                .filter(|d| {
                    d.init_calls
                        .iter()
                        .any(|c| c.rsplit("::").next().unwrap_or(c) == "severity")
                })
                .map(|d| d.name.as_str())
                .collect()
        })
        .unwrap_or_default();
    let mut i = bs;
    while i <= be {
        if !toks[i].is_kw("match") {
            i += 1;
            continue;
        }
        // Scrutinee: tokens up to the first `{` at bracket depth 0.
        let mut j = i + 1;
        let mut depth = 0i32;
        let mut over_severity = false;
        while j <= be {
            match toks[j].text.as_str() {
                "(" | "[" => depth += 1,
                ")" | "]" => depth -= 1,
                "{" if depth == 0 => break,
                _ => {}
            }
            if toks[j].is("severity")
                && toks[j - 1].is(".")
                && toks.get(j + 1).is_some_and(|t| t.is("("))
            {
                over_severity = true;
            }
            if toks[j].kind == TokKind::Ident && severity_bound.contains(toks[j].text.as_str()) {
                over_severity = true;
            }
            j += 1;
        }
        if j > be {
            break;
        }
        if !over_severity {
            i = j + 1;
            continue;
        }
        let close = matching(toks, j, be, "}");
        let mut d = 0i32;
        for k in j..=close {
            match toks[k].text.as_str() {
                "{" | "(" | "[" => d += 1,
                "}" | ")" | "]" => d -= 1,
                _ => {}
            }
            if d == 1
                && toks[k].is("_")
                && toks.get(k + 1).is_some_and(|t| t.is("=>"))
                && (toks[k - 1].is("{") || toks[k - 1].is(","))
                && !line_in_test(ws, f, toks[k].line)
            {
                facts.push(Fact {
                    f,
                    line: toks[k].line,
                    message: "wildcard arm in a severity() match — classify every \
                              ErrorSeverity explicitly so a new severity is a compile \
                              decision, not a silent fallthrough"
                        .into(),
                });
            }
        }
        i = close + 1;
    }
}

// ---------------------------------------------------------------------
// Self-tests
// ---------------------------------------------------------------------

use super::interproc::{expect_codes, fixture_ws, run_on};

/// The fixture Pool used by the DL015 self-tests: a typed receiver the
/// resolver follows, same shape as `host::pool::Pool::map`.
const POOL_SRC: &str = "pub struct Pool;\n\
     impl Pool {\n\
         pub fn map(&self, items: Vec<u64>, f: impl Fn(usize, u64) -> u64) -> Vec<u64> {\n\
             items.into_iter().enumerate().map(|(i, x)| f(i, x)).collect()\n\
         }\n\
     }\n";

/// Runs every token-level pass on `src`; Err if any finding appears.
/// The seeded dataflow fixtures must be invisible to the v1/v2 passes.
fn assert_token_passes_miss(name: &str, src: &str) -> Result<(), String> {
    let file = super::lex(src);
    let mut sink = Sink::default();
    for code in super::FILE_PASS_CODES {
        super::run_pass(code, &file, &mut sink);
    }
    if sink.findings.is_empty() {
        Ok(())
    } else {
        Err(format!(
            "{name}: fixture must be invisible to the token passes, got {:?}",
            sink.findings
                .iter()
                .map(|f| format!("{} {}", f.code, f.message))
                .collect::<Vec<_>>()
        ))
    }
}

pub fn self_test() -> Result<(), String> {
    // DL015: a laundered `&mut` capture — the binding hides the borrow
    // from every token pass; only the def-use chain connects them.
    let laundered_entry = "pub fn entry(pool: &crate::pool::Pool) -> u64 {\n\
             let mut totals = 0u64;\n\
             let sink = &mut totals;\n\
             let out = pool.map(vec![1, 2, 3], |_i, x| { *sink += x; x });\n\
             let total: u64 = out.iter().copied().sum();\n\
             totals + total\n\
         }\n";
    expect_codes(
        "DL015 laundered &mut capture",
        &[("pool.rs", POOL_SRC), ("entry.rs", laundered_entry)],
        EntryMode::Roots,
        POOL_CODE,
        1,
    )?;
    assert_token_passes_miss("DL015 laundered &mut capture", laundered_entry)?;
    // Params-only closures and read-only Copy captures are the
    // sanctioned shape (fleet stepping, MultiSocketEngine::run_epoch).
    expect_codes(
        "DL015 clean worker",
        &[
            ("pool.rs", POOL_SRC),
            (
                "entry.rs",
                "pub fn entry(pool: &crate::pool::Pool, items: Vec<u64>) -> Vec<u64> {\n\
                     let epoch = 7u64;\n\
                     pool.map(items, |i, x| x + epoch + i as u64)\n\
                 }\n",
            ),
        ],
        EntryMode::Roots,
        POOL_CODE,
        0,
    )?;
    // Interior mutability smuggled into a worker task.
    expect_codes(
        "DL015 interior-mutability capture",
        &[
            ("pool.rs", POOL_SRC),
            (
                "entry.rs",
                "pub fn entry(pool: &crate::pool::Pool, items: Vec<u64>) -> Vec<u64> {\n\
                     let hits = RefCell::new(0u64);\n\
                     pool.map(items, |_i, x| { hits.borrow_mut(); x })\n\
                 }\n",
            ),
        ],
        EntryMode::Roots,
        POOL_CODE,
        1,
    )?;
    // A worker that calls into the coordinator's report sink.
    {
        let sources = vec![
            (
                "crates/bench/src/report.rs".to_string(),
                "pub fn say(line: &str) { let n = line.len(); assert!(n < 4096); }\n".to_string(),
            ),
            ("crates/bench/src/pool.rs".to_string(), POOL_SRC.to_string()),
            (
                "crates/bench/src/drive.rs".to_string(),
                "pub fn entry(pool: &crate::pool::Pool, items: Vec<u64>) -> Vec<u64> {\n\
                     pool.map(items, |_i, x| { crate::report::say(\"step\"); x })\n\
                 }\n"
                .to_string(),
            ),
        ];
        let mut idents = BTreeMap::new();
        idents.insert("bench".to_string(), "dcat_bench".to_string());
        let ws = Workspace::from_sources(&sources, &idents);
        let mut sink = Sink::default();
        run_pool_discipline(&ws, EntryMode::Roots, &mut sink);
        let got = sink.findings.iter().filter(|f| f.code == POOL_CODE).count();
        if got != 1 {
            return Err(format!(
                "DL015 coordinator sink: expected 1 finding, got {got}: {:?}",
                sink.findings
            ));
        }
    }

    // DL016: growth from Vec::new on a hot path…
    expect_codes(
        "DL016 Vec::new growth",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64]) -> Vec<u64> {\n\
                 let mut out = Vec::new();\n\
                 for x in xs {\n\
                     out.push(*x);\n\
                 }\n\
                 out\n\
             }\n",
        )],
        EntryMode::Roots,
        ALLOC_CODE,
        1,
    )?;
    // …while with_capacity is the sanctioned reservation.
    expect_codes(
        "DL016 with_capacity",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64]) -> Vec<u64> {\n\
                 let mut out = Vec::with_capacity(xs.len());\n\
                 for x in xs {\n\
                     out.push(*x);\n\
                 }\n\
                 out\n\
             }\n",
        )],
        EntryMode::Roots,
        ALLOC_CODE,
        0,
    )?;
    // Size-losing collect is flagged; exact-size collect single-allocates.
    expect_codes(
        "DL016 size-losing collect",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64]) -> Vec<u64> {\n\
                 xs.iter().filter(|x| **x > 0).copied().collect()\n\
             }\n",
        )],
        EntryMode::Roots,
        ALLOC_CODE,
        1,
    )?;
    expect_codes(
        "DL016 exact-size collect",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64]) -> Vec<u64> {\n\
                 xs.iter().map(|x| x + 1).collect()\n\
             }\n",
        )],
        EntryMode::Roots,
        ALLOC_CODE,
        0,
    )?;
    // Box::new and format! on the hot path.
    expect_codes(
        "DL016 box + format",
        &[(
            "a.rs",
            "pub fn entry(n: u64) -> Box<u64> {\n\
                 let label = format!(\"n={n}\");\n\
                 let w = label.len() as u64;\n\
                 Box::new(n + w)\n\
             }\n",
        )],
        EntryMode::Roots,
        ALLOC_CODE,
        2,
    )?;
    // The allow escape hatch.
    expect_codes(
        "DL016 allow",
        &[(
            "a.rs",
            "pub fn entry(xs: &[u64]) -> Vec<u64> {\n\
                 let mut out = Vec::new(); // lint: allow(DL016, one-shot setup outside the epoch loop)\n\
                 for x in xs {\n\
                     out.push(*x);\n\
                 }\n\
                 out\n\
             }\n",
        )],
        EntryMode::Roots,
        ALLOC_CODE,
        0,
    )?;

    // DL017: the two-hop discard — bound, then dropped. No unwrap text
    // anywhere, so the token passes have nothing to see.
    let two_hop = "pub struct ResctrlError;\n\
         fn poke() -> Result<u32, ResctrlError> {\n\
             Ok(3)\n\
         }\n\
         pub fn entry() {\n\
             let st = poke();\n\
             let _ = st;\n\
         }\n";
    expect_codes(
        "DL017 two-hop discard",
        &[("a.rs", two_hop)],
        EntryMode::Roots,
        IO_CODE,
        1,
    )?;
    assert_token_passes_miss("DL017 two-hop discard", two_hop)?;
    // Tuple destructure: the Result lands in `r`, which IS consumed;
    // the unused sibling `_aux` must not be mistaken for the Result.
    expect_codes(
        "DL017 tuple sibling consumed",
        &[(
            "a.rs",
            "pub struct ResctrlError;\n\
             fn poke() -> (Result<u32, ResctrlError>, u64) {\n\
                 (Ok(3), 7)\n\
             }\n\
             pub fn entry() -> u32 {\n\
                 let (r, _aux) = poke();\n\
                 match r {\n\
                     Ok(v) => v,\n\
                     Err(_e) => 0,\n\
                 }\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        0,
    )?;
    // unwrap/expect on a resolved I/O Result.
    expect_codes(
        "DL017 expect",
        &[(
            "a.rs",
            "pub struct ResctrlError;\n\
             fn poke() -> Result<u32, ResctrlError> {\n\
                 Ok(3)\n\
             }\n\
             pub fn entry() -> u32 {\n\
                 poke().expect(\"resctrl poke\")\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        1,
    )?;
    // Propagation and explicit matching are the sanctioned shapes.
    expect_codes(
        "DL017 handled",
        &[(
            "a.rs",
            "pub struct ResctrlError;\n\
             fn poke() -> Result<u32, ResctrlError> {\n\
                 Ok(3)\n\
             }\n\
             pub fn entry() -> u32 {\n\
                 match poke() {\n\
                     Ok(v) => v,\n\
                     Err(e) => {\n\
                         drop(e);\n\
                         0\n\
                     }\n\
                 }\n\
             }\n\
             pub fn entry2() -> Result<u32, ResctrlError> {\n\
                 let v = poke()?;\n\
                 Ok(v)\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        0,
    )?;
    // Field-receiver call the resolver cannot follow: caught by the
    // fallible-name fallback.
    expect_codes(
        "DL017 field-receiver fallback",
        &[(
            "a.rs",
            "pub struct ResctrlError;\n\
             pub struct P;\n\
             impl P {\n\
                 pub fn tick(&self) -> Result<u32, ResctrlError> {\n\
                     Ok(1)\n\
                 }\n\
             }\n\
             pub struct Q;\n\
             impl Q {\n\
                 pub fn tick(&self) -> Result<u32, ResctrlError> {\n\
                     Ok(2)\n\
                 }\n\
             }\n\
             pub struct H {\n\
                 p: P,\n\
             }\n\
             impl H {\n\
                 pub fn step(&mut self) -> u32 {\n\
                     self.p.tick().expect(\"policy tick\")\n\
                 }\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        1,
    )?;
    // Wildcard severity arms — direct…
    expect_codes(
        "DL017 severity wildcard",
        &[(
            "a.rs",
            "pub enum Sev { Fatal, Transient }\n\
             pub struct E;\n\
             impl E {\n\
                 pub fn severity(&self) -> Sev {\n\
                     Sev::Fatal\n\
                 }\n\
             }\n\
             pub fn entry(e: &E) -> u32 {\n\
                 match e.severity() {\n\
                     Sev::Fatal => 1,\n\
                     _ => 0,\n\
                 }\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        1,
    )?;
    // …and through a binding only the def-use chain ties to severity().
    expect_codes(
        "DL017 severity wildcard via binding",
        &[(
            "a.rs",
            "pub enum Sev { Fatal, Transient }\n\
             pub struct E;\n\
             impl E {\n\
                 pub fn severity(&self) -> Sev {\n\
                     Sev::Fatal\n\
                 }\n\
             }\n\
             pub fn entry(e: &E) -> u32 {\n\
                 let sev = e.severity();\n\
                 match sev {\n\
                     Sev::Fatal => 1,\n\
                     _ => 0,\n\
                 }\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        1,
    )?;
    // Exhaustive severity matches are the contract.
    expect_codes(
        "DL017 exhaustive severity",
        &[(
            "a.rs",
            "pub enum Sev { Fatal, Transient }\n\
             pub struct E;\n\
             impl E {\n\
                 pub fn severity(&self) -> Sev {\n\
                     Sev::Fatal\n\
                 }\n\
             }\n\
             pub fn entry(e: &E) -> u32 {\n\
                 match e.severity() {\n\
                     Sev::Fatal => 1,\n\
                     Sev::Transient => 0,\n\
                 }\n\
             }\n",
        )],
        EntryMode::Roots,
        IO_CODE,
        0,
    )?;
    // Keep the shared fixture machinery honest: a clean multi-pass run.
    let sink = run_on(
        &[("a.rs", "pub fn entry() -> u64 { 7 }\n")],
        EntryMode::Roots,
    );
    if !sink.findings.is_empty() {
        return Err(format!(
            "flow self-test: trivial fixture must be clean, got {:?}",
            sink.findings
        ));
    }
    let _ = fixture_ws(&[("a.rs", "pub fn entry() {}\n")]);
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn self_test_passes() {
        self_test().unwrap();
    }
}
