//! DL005 — no direct filesystem I/O in the daemon loop.
//!
//! Telemetry reads go through `TelemetryFeed` + `with_retries`, resctrl
//! writes through the retry-wrapped backend. A bare `std::fs` call in
//! `dcat::daemon` would dodge the transient/fatal error taxonomy and
//! the degraded-tick machinery.

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const CODE: &str = "DL005";

const PATTERNS: [&str; 3] = ["std::fs::", "fs::read_to_string(", "fs::write("];

pub fn run(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if PATTERNS.iter().any(|p| line.contains(p)) {
            sink.emit(
                file,
                n,
                CODE,
                "direct filesystem I/O in the daemon loop (go through TelemetryFeed \
                 and the retry-wrapped controller)"
                    .into(),
            );
        }
    }
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL005",
        run,
        "let t = std::fs::read_to_string(&path)?;\nfs::write(&path, text)?;\n",
        2,
    )?;
    expect_count(
        "DL005",
        run,
        "let t = feed.read(tick)?;\n// std::fs:: in a comment\nlet s = \"std::fs::\";\n#[cfg(test)]\nstd::fs::write(&p, t).unwrap();\n",
        0,
    )?;
    Ok(())
}
