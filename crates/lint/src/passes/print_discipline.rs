//! DL011 — no ad-hoc `println!` / `eprintln!` / `dbg!` in library code.
//!
//! All report text funnels through `bench::report::say`, which is what
//! makes `--jobs N` output byte-identical: capture scopes buffer each
//! task's lines and the coordinator replays them in item order. A stray
//! `println!` in library code bypasses the sink stack, interleaves
//! nondeterministically under parallel sweeps, and never reaches the
//! captured report. `dbg!` additionally writes file/line noise to
//! stderr. Binaries own their stdio, `bench::report` and the obs crate
//! *are* the sanctioned sinks, and `prop-lite` reports shrunk
//! counterexamples straight to the developer.

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const CODE: &str = "DL011";

const PATTERNS: [&str; 6] = [
    "println!(",
    "eprintln!(",
    "print!(",
    "eprint!(",
    "dbg!(",
    "dbg!()",
];

pub fn run(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if PATTERNS.iter().any(|p| line.contains(p)) {
            sink.emit(
                file,
                n,
                CODE,
                "direct stdio macro in library code (route text through \
                 bench::report::say so capture scopes stay byte-deterministic)"
                    .into(),
            );
        }
    }
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL011",
        run,
        "println!(\"x = {x}\");\neprintln!(\"warn\");\nlet y = dbg!(x + 1);\n",
        3,
    )?;
    expect_count(
        "DL011",
        run,
        "report::say(format!(\"x = {x}\"));\n// println!(\"in a comment\")\nlet s = \"println!(\";\n",
        0,
    )?;
    Ok(())
}
