//! DL003 — no float `==` on telemetry-derived metrics.
//!
//! IPC, miss rates, and normalized values are compared against
//! thresholds, never for exact equality; sentinel checks use
//! `is_infinite` / `is_finite`.

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const CODE: &str = "DL003";

const METRICS: [&str; 7] = [
    "ipc",
    "miss_rate",
    "llc_miss_rate",
    "llc_ref_per_instr",
    "mem_access_per_instr",
    "norm",
    "baseline",
];

pub fn run(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        let float_eq = line.contains("== f64::")
            || line.contains("f64::NEG_INFINITY ==")
            || line.contains("f64::INFINITY ==")
            || eq_against_float_literal(line);
        let metric_eq = METRICS
            .iter()
            .any(|m| line.contains(&format!("{m} == ")) || line.contains(&format!(" == {m}")));
        if float_eq || metric_eq {
            sink.emit(
                file,
                n,
                CODE,
                "float equality on a telemetry metric (compare against a threshold)".into(),
            );
        }
    }
}

/// Whether the line compares something with `==` against a float literal
/// (`== 0.0`, `0.5 ==`, ...).
///
/// The operand is extracted as the maximal run of literal characters
/// touching the `==` (not a whitespace split), so literals nested in
/// calls — `assert!(0.5 == y)` — are still seen.
fn eq_against_float_literal(line: &str) -> bool {
    let lit_char = |c: char| c.is_ascii_digit() || c == '.' || c == '_' || c == 'f';
    line.match_indices("==").any(|(i, _)| {
        let before: String = line[..i]
            .trim_end()
            .chars()
            .rev()
            .take_while(|&c| lit_char(c))
            .collect();
        let after: String = line[i + 2..]
            .trim_start()
            .chars()
            .take_while(|&c| lit_char(c))
            .collect();
        // `before` is reversed, but a float literal's shape survives
        // mirroring for this check: digits around a single dot.
        is_float_literal(&before) || is_float_literal(&after)
    })
}

fn is_float_literal(tok: &str) -> bool {
    let mut parts = tok.splitn(2, '.');
    match (parts.next(), parts.next()) {
        (Some(a), Some(b)) => {
            !a.is_empty()
                && a.chars()
                    .all(|c| c.is_ascii_digit() || c == '_' || c == 'f')
                && !b.is_empty()
                && b.chars()
                    .all(|c| c.is_ascii_digit() || c == '_' || c == 'f')
        }
        _ => false,
    }
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL003",
        run,
        "if max == f64::NEG_INFINITY { }\nif m.ipc == 0.0 { }\nif miss_rate == thr { }\n",
        3,
    )?;
    expect_count(
        "DL003",
        run,
        "if max.is_infinite() { }\nif m.ipc > 0.0 { }\nif count == 0 { }\nlet s = \"ipc == 0.0\";\n",
        0,
    )?;
    if !eq_against_float_literal("assert!(0.5 == y);") || eq_against_float_literal("if x == 0 {") {
        return Err("DL003 self-test: float-literal extraction broke".into());
    }
    Ok(())
}
