//! DL001 / DL009 — panic-path audit for privileged I/O code.
//!
//! `resctrl::fs` writes kernel interfaces and `dcat::daemon` +
//! `dcat::telemetry` form the long-running control loop: none of them
//! may abort. DL001 flags `.unwrap()` / `.expect(` (the `unwrap_or*`
//! combinators are fine); DL009 flags slice/array indexing expressions
//! (`xs[i]`, `text[..cut]`), which panic on out-of-bounds — use `get`,
//! iterators, or an inline `lint: allow(DL009, why-it-cannot-panic)`.

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const UNWRAP_CODE: &str = "DL001";
pub const INDEX_CODE: &str = "DL009";

pub fn run_unwrap(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if line.contains(".unwrap()") || line.contains(".expect(") {
            sink.emit(
                file,
                n,
                UNWRAP_CODE,
                "unwrap()/expect() in privileged I/O path (propagate the error)".into(),
            );
        }
    }
}

pub fn run_index(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if has_index_expr(line) {
            sink.emit(
                file,
                n,
                INDEX_CODE,
                "slice/array indexing can panic in a privileged path (use get()/iterators, \
                 or annotate why the index is in bounds)"
                    .into(),
            );
        }
    }
}

/// A `[` directly preceded by an identifier character, `)`, or `]` is an
/// index expression. Macro invocations (`vec![`), attributes (`#[`),
/// slice types (`&[u8]`), and array literals (`= [`) all have a
/// different preceding character and never match.
fn has_index_expr(line: &str) -> bool {
    let bytes = line.as_bytes();
    line.match_indices('[').any(|(i, _)| {
        i > 0 && {
            let prev = bytes[i - 1];
            prev == b')' || prev == b']' || prev == b'_' || prev.is_ascii_alphanumeric()
        }
    })
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL001",
        run_unwrap,
        "let x = file.read().unwrap();\nlet y = map.get(&k).expect(\"present\");\n",
        2,
    )?;
    expect_count(
        "DL001",
        run_unwrap,
        "let x = v.unwrap_or_default();\n// .unwrap() in a comment\nlet m = \".unwrap()\";\n#[cfg(test)]\nlet z = v.unwrap();\n",
        0,
    )?;
    expect_count(
        "DL009",
        run_index,
        "let a = xs[i];\nlet b = &text[..cut];\nlet c = rows[0][1];\n",
        3,
    )?;
    expect_count(
        "DL009",
        run_index,
        "let v = vec![1, 2];\n#[derive(Debug)]\nlet s: &[u8] = &raw;\nlet a = [0u64; 5];\nlet g = xs.get(i);\n",
        0,
    )?;
    expect_count(
        "DL009",
        run_index,
        "let ok = xs[i]; // lint: allow(DL009, i < len checked above)\n",
        0,
    )?;
    Ok(())
}
