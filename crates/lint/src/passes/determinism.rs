//! DL006 / DL007 — determinism taint.
//!
//! PR 2 promised bit-identical experiment output at any `--jobs N`;
//! these passes mechanically defend that promise.
//!
//! **DL006** bans iteration over `HashMap` / `HashSet` values: the
//! iteration order depends on the hasher's per-process seed, so any
//! result that threads it through (output order, first-match wins,
//! float accumulation order) is nondeterministic. The pass tracks
//! identifiers declared with a hash type in the same file (let
//! bindings, struct fields, parameters) and flags order-producing calls
//! (`.iter()`, `.keys()`, `.values()`, `.drain()`, …) and `for` loops
//! over them, unless the surrounding method chain is provably
//! order-insensitive (`.sum()`, `.count()`, `.min()`, `.max()`,
//! `.all(…)`, `.any(…)`, or a `collect` into a `BTree*`). Fix by
//! switching to `BTreeMap`/`BTreeSet`, sorting first, or annotating
//! `// lint: allow(DL006, reason)` when order genuinely cannot escape.
//!
//! The tracker is token-level, not type inference: a map returned by a
//! function into an untyped `let` is invisible to it. That is the
//! trade-off for a hermetic no-`syn` engine; the paired convention is
//! that fallible constructors return `BTreeMap` in the first place.
//!
//! **DL007** bans wall-clock reads (`Instant::now`, `SystemTime`) and
//! pointer-address ordering (`.as_ptr() as usize`, `as *const … as
//! usize`) outside `bench::timing`, the one module allowed to observe
//! real time.

use super::{expect_count, lex};
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;
use std::collections::BTreeSet;

pub const HASH_ITER_CODE: &str = "DL006";
pub const WALL_CLOCK_CODE: &str = "DL007";

/// Methods on a hash container that expose iteration order.
const ITER_METHODS: [&str; 10] = [
    "iter",
    "iter_mut",
    "keys",
    "values",
    "values_mut",
    "drain",
    "into_iter",
    "into_keys",
    "into_values",
    "retain",
];

/// Chain fragments that reduce an iterator order-insensitively.
const ORDER_INSENSITIVE: [&str; 9] = [
    ".sum()",
    ".sum::<",
    ".count()",
    ".min()",
    ".max()",
    ".all(",
    ".any(",
    ".collect::<BTree",
    ".collect::<std::collections::BTree",
];

pub fn run_hash_iter(file: &SourceFile, sink: &mut Sink) {
    let names = collect_hash_names(file);
    if names.is_empty() {
        return;
    }
    for (n, line) in file.code_lines() {
        if !names.iter().any(|name| line.contains(name.as_str())) {
            continue;
        }
        // Method calls can sit on rustfmt continuation lines, so the
        // match runs over the whole chain anchored at this line.
        let chain = file.chain_text(n);
        for name in &names {
            let method_hit = iter_method_on(&chain, name);
            let loop_hit = for_loop_over(line, name);
            if !method_hit && !loop_hit {
                continue;
            }
            // A for-loop body is out of reach of a chain check; only
            // method chains can earn the order-insensitive exemption.
            if method_hit && !loop_hit && is_order_insensitive(&chain) {
                continue;
            }
            sink.emit(
                file,
                n,
                HASH_ITER_CODE,
                format!(
                    "iteration over HashMap/HashSet `{name}` is order-nondeterministic \
                     (use BTreeMap/BTreeSet, sort first, or reduce order-insensitively)"
                ),
            );
            break; // one finding per line
        }
    }
}

pub fn run_wall_clock(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if line.contains("Instant::now") || line.contains("SystemTime") {
            sink.emit(
                file,
                n,
                WALL_CLOCK_CODE,
                "wall-clock time source outside bench::timing (results must be a pure \
                 function of seed and config)"
                    .into(),
            );
        } else if line.contains(".as_ptr() as ")
            || ((line.contains(" as *const") || line.contains(" as *mut"))
                && line.contains(" as usize"))
        {
            sink.emit(
                file,
                n,
                WALL_CLOCK_CODE,
                "pointer-address ordering (allocator addresses vary run to run; derive \
                 order from data, not addresses)"
                    .into(),
            );
        }
    }
}

fn is_ident_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Identifiers declared with a hash-container type anywhere in the
/// file's non-test code: `let [mut] NAME … HashMap/HashSet …` and
/// `NAME: [&[mut]] [std::collections::]Hash{Map,Set}<…` (struct fields
/// and fn parameters).
pub(crate) fn collect_hash_names(file: &SourceFile) -> BTreeSet<String> {
    let mut names = BTreeSet::new();
    for (_, line) in file.code_lines() {
        if !line.contains("HashMap") && !line.contains("HashSet") {
            continue;
        }
        let t = line.trim_start();
        if let Some(rest) = t.strip_prefix("let ") {
            let rest = rest.strip_prefix("mut ").unwrap_or(rest);
            let ident: String = rest.chars().take_while(|c| is_ident_char(*c)).collect();
            if !ident.is_empty() {
                names.insert(ident);
            }
        }
        for marker in ["HashMap<", "HashSet<"] {
            for (idx, _) in line.match_indices(marker) {
                if let Some(name) = decl_name_before(line, idx) {
                    names.insert(name);
                }
            }
        }
    }
    names
}

/// Extracts `NAME` from `NAME: [&[mut ]][std::collections::]` ending at
/// byte `idx` (the start of `HashMap<`/`HashSet<`).
fn decl_name_before(line: &str, idx: usize) -> Option<String> {
    let mut before = &line[..idx];
    for prefix in ["std::collections::", "collections::"] {
        if let Some(s) = before.strip_suffix(prefix) {
            before = s;
        }
    }
    before = before.trim_end();
    before = before.strip_suffix("&mut").unwrap_or(before).trim_end();
    before = before.strip_suffix('&').unwrap_or(before).trim_end();
    let before = before.strip_suffix(':')?.trim_end();
    let rev: String = before
        .chars()
        .rev()
        .take_while(|c| is_ident_char(*c))
        .collect();
    let ident: String = rev.chars().rev().collect();
    (!ident.is_empty()).then_some(ident)
}

/// Does `line` call an order-exposing method on `name` (word-boundary
/// match, `self.name` included)?
pub(crate) fn iter_method_on(line: &str, name: &str) -> bool {
    let bytes = line.as_bytes();
    line.match_indices(name).any(|(i, _)| {
        let left_ok = i == 0 || !is_ident_char(bytes[i - 1] as char);
        // The chain text joins continuation lines with a space, so the
        // dot may be separated from the receiver by whitespace.
        let after = line[i + name.len()..].trim_start();
        if !left_ok || !after.starts_with('.') {
            return false;
        }
        let method: String = after[1..]
            .chars()
            .take_while(|c| is_ident_char(*c))
            .collect();
        ITER_METHODS.contains(&method.as_str())
    })
}

/// Does `line` loop `for … in [&[mut ]][self.]name`?
pub(crate) fn for_loop_over(line: &str, name: &str) -> bool {
    let t = line.trim_start();
    if !t.starts_with("for ") {
        return false;
    }
    let Some(pos) = t.find(" in ") else {
        return false;
    };
    let mut rest = t[pos + 4..].trim_start();
    rest = rest.strip_prefix("&mut ").unwrap_or(rest);
    rest = rest.strip_prefix('&').unwrap_or(rest);
    rest = rest.strip_prefix("self.").unwrap_or(rest);
    match rest.strip_prefix(name) {
        Some(tail) => matches!(tail.chars().next(), None | Some(' ') | Some('{')),
        None => false,
    }
}

pub(crate) fn is_order_insensitive(chain: &str) -> bool {
    ORDER_INSENSITIVE.iter().any(|m| chain.contains(m))
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL006",
        run_hash_iter,
        "let mut m: HashMap<String, u64> = HashMap::new();\n\
         for (k, v) in &m { out.push(k); }\n\
         let ks: Vec<_> = m.keys().collect();\n\
         m.retain(|_, v| *v > 0);\n",
        3,
    )?;
    expect_count(
        "DL006",
        run_hash_iter,
        "let mut m: HashMap<String, u64> = HashMap::new();\n\
         let total: u64 = m.values().sum();\n\
         let n = m.keys().count();\n\
         let any_hot = m.values().any(|v| *v > 9);\n\
         let hit = m.get(&k);\nm.insert(k, v);\n",
        0,
    )?;
    // Struct fields and multi-line chains.
    expect_count(
        "DL006",
        run_hash_iter,
        "struct S {\n    per_set: HashMap<u32, u64>,\n}\n\
         fn f(s: &S) -> u64 {\n    s.per_set.values().copied().max().unwrap_or(0)\n}\n\
         fn g(s: &S) -> Vec<u64> {\n    s.per_set\n        .values()\n        .copied()\n        .collect()\n}\n",
        1,
    )?;
    // Suppression with a reason is honored.
    expect_count(
        "DL006",
        run_hash_iter,
        "let pages: HashMap<u64, u64> = HashMap::new();\n\
         pages.retain(|_, v| *v > 0); // lint: allow(DL006, retain predicate is pure per-entry)\n",
        0,
    )?;
    // A Vec with the same method name must not be flagged.
    expect_count(
        "DL006",
        run_hash_iter,
        "let v: Vec<u64> = Vec::new();\nfor x in &v { }\nlet s: Vec<_> = v.iter().collect();\n",
        0,
    )?;
    let file = lex("let m: HashMap<u8, u8> = HashMap::new();\nfor k in m.keys() { }\n");
    let mut sink = crate::diagnostics::Sink::default();
    run_hash_iter(&file, &mut sink);
    if sink.findings.len() != 1 {
        return Err(
            "DL006 self-test: for-loop over .keys() must not earn the chain exemption".into(),
        );
    }

    expect_count(
        "DL007",
        run_wall_clock,
        "let t0 = Instant::now();\nlet now = SystemTime::now();\nlet addr = slot.as_ptr() as usize;\n",
        3,
    )?;
    expect_count(
        "DL007",
        run_wall_clock,
        "let tick = clock.tick();\n// Instant::now in a comment\nlet s = \"SystemTime\";\n",
        0,
    )?;
    Ok(())
}
