//! DL010 — spec drift between `FIGURE6` and DESIGN.md.
//!
//! The Figure 6 state machine exists twice: as the `FIGURE6` rule-table
//! literal in `dcat/src/transitions.rs` (the code the controller runs)
//! and as the machine-readable table in DESIGN.md between
//! `<!-- figure6:begin -->` / `<!-- figure6:end -->` markers (the
//! documentation reviewers audit against the paper). This pass parses
//! both and diffs them rule by rule so they cannot silently diverge.
//!
//! The doc grammar, one rule per line inside the marked block (code
//! fences and blank lines ignored):
//!
//! ```text
//! rule N: FROM -> TO [stall] when GUARD
//! ```
//!
//! `FROM` is a class name or `any` (a `from: None` row); `TO` is a
//! class name; `[stall]` marks `records_stall: true`; `GUARD` is the
//! guard closure body with the `|o|`/`|_|` head stripped and
//! whitespace collapsed, or `always` for `|_| true`.

use crate::diagnostics::{Finding, Sink};
use crate::lexer;

pub const CODE: &str = "DL010";

/// One Figure-6 edge in normalized form, from either source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RuleSpec {
    pub from: String,
    pub to: String,
    pub stall: bool,
    pub guard: String,
    /// 1-based line in the originating file.
    pub line: usize,
}

impl RuleSpec {
    fn render(&self) -> String {
        let stall = if self.stall { " [stall]" } else { "" };
        format!("{} -> {}{} when {}", self.from, self.to, stall, self.guard)
    }
}

/// Diffs the code table against the doc table, emitting findings into
/// `sink`. `transitions_text` is raw source (it is scrubbed here so the
/// `edge:` strings and comments cannot confuse the field parser).
pub fn run(
    transitions_text: &str,
    transitions_path: &str,
    design_text: &str,
    design_path: &str,
    sink: &mut Sink,
) {
    let scrubbed = lexer::scrub(transitions_text).0;
    let code = match parse_code_rules(&scrubbed) {
        Ok(r) => r,
        Err(e) => {
            sink.emit_raw(drift(
                transitions_path,
                1,
                format!("cannot parse FIGURE6: {e}"),
                "",
            ));
            return;
        }
    };
    let doc = match parse_doc_rules(design_text) {
        Ok(r) => r,
        Err(e) => {
            sink.emit_raw(drift(
                design_path,
                1,
                format!("cannot parse the figure6 doc table: {e}"),
                "",
            ));
            return;
        }
    };
    if code.len() != doc.len() {
        sink.emit_raw(drift(
            design_path,
            doc.first().map(|r| r.line).unwrap_or(1),
            format!(
                "FIGURE6 has {} rules but the doc table lists {} (the tables must \
                 stay row-for-row identical)",
                code.len(),
                doc.len()
            ),
            "",
        ));
    }
    for (i, (c, d)) in code.iter().zip(doc.iter()).enumerate() {
        if (c.from.as_str(), c.to.as_str(), c.stall, c.guard.as_str())
            != (d.from.as_str(), d.to.as_str(), d.stall, d.guard.as_str())
        {
            sink.emit_raw(drift(
                design_path,
                d.line,
                format!(
                    "figure6 rule {} drifted: code says `{}` ({}:{}), doc says `{}`",
                    i + 1,
                    c.render(),
                    transitions_path,
                    c.line,
                    d.render()
                ),
                &format!("rule {}: {}", i + 1, d.render()),
            ));
        }
    }
}

fn drift(path: &str, line: usize, message: String, snippet: &str) -> Finding {
    Finding {
        code: CODE,
        path: path.to_string(),
        line,
        message,
        snippet: snippet.to_string(),
        trace: Vec::new(),
    }
}

/// Parses the `FIGURE6` const literal out of scrubbed transitions source.
pub fn parse_code_rules(scrubbed: &str) -> Result<Vec<RuleSpec>, String> {
    let anchor = scrubbed.find("FIGURE6").ok_or("no FIGURE6 symbol")?;
    // Skip the `: &[Rule]` type annotation: the table literal starts at
    // the first `[` after the `=`.
    let eq = scrubbed[anchor..]
        .find('=')
        .map(|i| anchor + i)
        .ok_or("no `=` after FIGURE6")?;
    let open = scrubbed[eq..]
        .find('[')
        .map(|i| eq + i)
        .ok_or("no `[` after FIGURE6 =")?;
    let mut depth = 0usize;
    let mut close = None;
    for (i, c) in scrubbed[open..].char_indices() {
        match c {
            '[' => depth += 1,
            ']' => {
                depth -= 1;
                if depth == 0 {
                    close = Some(open + i);
                    break;
                }
            }
            _ => {}
        }
    }
    let close = close.ok_or("unclosed FIGURE6 table")?;
    let body = &scrubbed[open + 1..close];
    let body_offset = open + 1;

    let mut rules = Vec::new();
    let mut cursor = 0usize;
    while let Some(rel) = body[cursor..].find("Rule {") {
        let rule_start = cursor + rel;
        let brace = rule_start + "Rule ".len();
        let mut depth = 0usize;
        let mut end = None;
        for (i, c) in body[brace..].char_indices() {
            match c {
                '{' => depth += 1,
                '}' => {
                    depth -= 1;
                    if depth == 0 {
                        end = Some(brace + i);
                        break;
                    }
                }
                _ => {}
            }
        }
        let end = end.ok_or("unclosed Rule literal")?;
        let fields_text = &body[brace + 1..end];
        let line = 1 + scrubbed[..body_offset + rule_start].matches('\n').count();
        rules.push(parse_rule_fields(fields_text, line)?);
        cursor = end + 1;
    }
    if rules.is_empty() {
        return Err("FIGURE6 contains no Rule literals".into());
    }
    Ok(rules)
}

/// Parses one `Rule { … }` body (already brace-stripped, scrubbed).
fn parse_rule_fields(text: &str, line: usize) -> Result<RuleSpec, String> {
    let mut from = None;
    let mut to = None;
    let mut stall = None;
    let mut guard = None;
    for field in split_top_level_commas(text) {
        let field = field.trim();
        if field.is_empty() {
            continue;
        }
        let Some((name, value)) = field.split_once(':') else {
            return Err(format!("rule at line {line}: field without `:`: `{field}`"));
        };
        let value = collapse_ws(value.trim());
        match name.trim() {
            "from" => {
                from = Some(if value == "None" {
                    "any".to_string()
                } else {
                    value
                        .strip_prefix("Some(WorkloadClass::")
                        .and_then(|v| v.strip_suffix(')'))
                        .ok_or(format!("rule at line {line}: unparseable from `{value}`"))?
                        .to_string()
                });
            }
            "to" => {
                to = Some(
                    value
                        .strip_prefix("WorkloadClass::")
                        .ok_or(format!("rule at line {line}: unparseable to `{value}`"))?
                        .to_string(),
                );
            }
            "records_stall" => {
                stall = Some(match value.as_str() {
                    "true" => true,
                    "false" => false,
                    other => return Err(format!("rule at line {line}: records_stall `{other}`")),
                });
            }
            "when" => {
                let body = value
                    .strip_prefix("|_|")
                    .or_else(|| value.strip_prefix("|o|"))
                    .unwrap_or(&value)
                    .trim();
                guard = Some(if body == "true" {
                    "always".to_string()
                } else {
                    collapse_ws(body)
                });
            }
            "edge" => {} // a string, scrubbed to spaces; the doc table is the prose
            other => return Err(format!("rule at line {line}: unknown field `{other}`")),
        }
    }
    Ok(RuleSpec {
        from: from.ok_or(format!("rule at line {line}: missing from"))?,
        to: to.ok_or(format!("rule at line {line}: missing to"))?,
        stall: stall.ok_or(format!("rule at line {line}: missing records_stall"))?,
        guard: guard.ok_or(format!("rule at line {line}: missing when"))?,
        line,
    })
}

/// Splits on commas at paren/brace/bracket depth zero.
fn split_top_level_commas(text: &str) -> Vec<&str> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut start = 0usize;
    for (i, c) in text.char_indices() {
        match c {
            '(' | '[' | '{' => depth += 1,
            ')' | ']' | '}' => depth = depth.saturating_sub(1),
            ',' if depth == 0 => {
                out.push(&text[start..i]);
                start = i + 1;
            }
            _ => {}
        }
    }
    out.push(&text[start..]);
    out
}

fn collapse_ws(s: &str) -> String {
    s.split_whitespace().collect::<Vec<_>>().join(" ")
}

/// Parses the marked doc table out of DESIGN.md.
pub fn parse_doc_rules(design_text: &str) -> Result<Vec<RuleSpec>, String> {
    const BEGIN: &str = "<!-- figure6:begin -->";
    const END: &str = "<!-- figure6:end -->";
    let mut rules = Vec::new();
    let mut inside = false;
    let mut seen_block = false;
    for (i, line) in design_text.lines().enumerate() {
        let t = line.trim();
        if t == BEGIN {
            inside = true;
            seen_block = true;
            continue;
        }
        if t == END {
            inside = false;
            continue;
        }
        if !inside || t.is_empty() || t.starts_with("```") {
            continue;
        }
        let rest = t.strip_prefix("rule ").ok_or(format!(
            "line {}: doc rule must start with `rule N:`",
            i + 1
        ))?;
        let (num, rest) = rest
            .split_once(':')
            .ok_or(format!("line {}: missing `:` after rule number", i + 1))?;
        let num: usize = num
            .trim()
            .parse()
            .map_err(|_| format!("line {}: bad rule number `{num}`", i + 1))?;
        if num != rules.len() + 1 {
            return Err(format!(
                "line {}: rule numbered {num}, expected {}",
                i + 1,
                rules.len() + 1
            ));
        }
        let (lhs, guard) = rest
            .split_once(" when ")
            .ok_or(format!("line {}: missing ` when ` clause", i + 1))?;
        let (from, to_part) = lhs
            .split_once("->")
            .ok_or(format!("line {}: missing `->`", i + 1))?;
        let mut to = to_part.trim();
        let stall = to.ends_with("[stall]");
        if stall {
            to = to.trim_end_matches("[stall]").trim_end();
        }
        rules.push(RuleSpec {
            from: from.trim().to_string(),
            to: to.to_string(),
            stall,
            guard: collapse_ws(guard.trim()),
            line: i + 1,
        });
    }
    if !seen_block {
        return Err("no `<!-- figure6:begin -->` block".into());
    }
    if rules.is_empty() {
        return Err("the figure6 block lists no rules".into());
    }
    Ok(rules)
}

/// Renders the doc table body that matches `scrubbed` transitions source
/// (used by `--write-figure6` style tooling and the self-test).
pub fn render_doc_table(code: &[RuleSpec]) -> String {
    let mut out = String::new();
    for (i, r) in code.iter().enumerate() {
        out.push_str(&format!("rule {}: {}\n", i + 1, r.render()));
    }
    out
}

const FIXTURE_CODE: &str = r#"
pub const FIGURE6: &[Rule] = &[
    Rule {
        from: Some(WorkloadClass::Reclaim),
        when: |_| true,
        to: WorkloadClass::Keeper,
        records_stall: false,
        edge: "Reclaim -> Keeper: re-measured",
    },
    Rule {
        from: None,
        when: |o| o.low_llc_use,
        to: WorkloadClass::Donor,
        records_stall: false,
        edge: "any -> Donor (fast)",
    },
    Rule {
        from: Some(WorkloadClass::Unknown),
        when: |o| o.improvement == ImprovementSignal::Stalled && o.ever_improved,
        to: WorkloadClass::Keeper,
        records_stall: true,
        edge: "Unknown -> Keeper",
    },
];
"#;

const FIXTURE_DOC_OK: &str = "\
<!-- figure6:begin -->\n\
```text\n\
rule 1: Reclaim -> Keeper when always\n\
rule 2: any -> Donor when o.low_llc_use\n\
rule 3: Unknown -> Keeper [stall] when o.improvement == ImprovementSignal::Stalled && o.ever_improved\n\
```\n\
<!-- figure6:end -->\n";

pub fn self_test() -> Result<(), String> {
    let check = |doc: &str| {
        let mut sink = Sink::default();
        run(FIXTURE_CODE, "transitions.rs", doc, "DESIGN.md", &mut sink);
        sink.findings.len()
    };
    if check(FIXTURE_DOC_OK) != 0 {
        return Err("DL010 self-test: matching tables reported drift".into());
    }
    let drifted = FIXTURE_DOC_OK.replace("any -> Donor", "any -> Keeper");
    if check(&drifted) == 0 {
        return Err("DL010 self-test: destination drift went undetected".into());
    }
    let destalled = FIXTURE_DOC_OK.replace(" [stall]", "");
    if check(&destalled) == 0 {
        return Err("DL010 self-test: stall-flag drift went undetected".into());
    }
    let truncated = FIXTURE_DOC_OK.replace(
        "rule 3: Unknown -> Keeper [stall] when o.improvement == ImprovementSignal::Stalled && o.ever_improved\n",
        "",
    );
    if check(&truncated) == 0 {
        return Err("DL010 self-test: missing doc row went undetected".into());
    }
    if check("no block here at all") == 0 {
        return Err("DL010 self-test: absent doc block went undetected".into());
    }
    let parsed = parse_code_rules(&lexer::scrub(FIXTURE_CODE).0)
        .map_err(|e| format!("DL010 self-test: fixture unparseable: {e}"))?;
    if parsed.len() != 3 || !parsed[2].stall || parsed[1].from != "any" {
        return Err("DL010 self-test: code parse normalized wrongly".into());
    }
    Ok(())
}
