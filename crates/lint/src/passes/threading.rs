//! DL004 — no `thread::spawn` / `thread::scope` outside `host::pool`.
//!
//! The deterministic pool is the only sanctioned way to go parallel: it
//! claims work by item index and merges results in item order, which is
//! what keeps `--jobs N` output bit-identical to `--jobs 1`. A stray
//! spawn would reintroduce completion-order nondeterminism.

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const CODE: &str = "DL004";

pub fn run(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if line.contains("thread::spawn") || line.contains("thread::scope") {
            sink.emit(
                file,
                n,
                CODE,
                "ad-hoc threading (go through host::pool::Pool)".into(),
            );
        }
    }
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL004",
        run,
        "let h = std::thread::spawn(move || work());\nthread::scope(|s| { s.spawn(|| ()); });\n",
        2,
    )?;
    expect_count(
        "DL004",
        run,
        "let out = pool.map(items, worker);\n// thread::spawn in a comment\nlet s = \"thread::spawn\";\nlet t = thread_count;\n",
        0,
    )?;
    Ok(())
}
