//! DL008 — cast safety in counter/delta math.
//!
//! `as` casts between numeric types silently truncate, sign-flip, or
//! round (`u64 as f64` loses precision above 2^53 — reachable by a
//! rebased 48-bit cycle counter in about a month at 3 GHz; `f64 as u64`
//! saturates). In the measurement pipeline — `perf-events`,
//! `llc-sim::counters`, and the controller's delta math — every numeric
//! `as` must be replaced by `From`/`TryFrom`/checked/wrapping ops, or
//! carry a `lint: allow(DL008, reason)` proving it cannot lose
//! information.

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const CODE: &str = "DL008";

const NUMERIC_TYPES: [&str; 14] = [
    "u8", "u16", "u32", "u64", "u128", "usize", "i8", "i16", "i32", "i64", "i128", "isize", "f32",
    "f64",
];

pub fn run(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        if has_numeric_as_cast(line) {
            sink.emit(
                file,
                n,
                CODE,
                "lossy `as` cast in counter/delta math (use From/TryFrom/checked ops, \
                 or annotate why no information can be lost)"
                    .into(),
            );
        }
    }
}

/// Matches ` as <numeric-type>` with word boundaries on both sides
/// (`as_ref`, `as_ptr` and type names inside identifiers never match).
fn has_numeric_as_cast(line: &str) -> bool {
    line.match_indices(" as ").any(|(i, _)| {
        let ty: String = line[i + 4..]
            .chars()
            .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
            .collect();
        NUMERIC_TYPES.contains(&ty.as_str())
    })
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL008",
        run,
        "let x = total as f64;\nlet y = (delta as u32) + 1;\nlet i = idx as usize;\n",
        3,
    )?;
    expect_count(
        "DL008",
        run,
        "let x = f64::from(v);\nlet y = u64::from(small);\nlet r = v.as_ref();\n\
         let s = \"cycles as f64\";\nlet ok = usize::try_from(n)?;\n",
        0,
    )?;
    expect_count(
        "DL008",
        run,
        "let q = (sig / quantum).round() as u64; // lint: allow(DL008, saturating is fine here)\n",
        0,
    )?;
    // `as` casts to non-numeric types (trait objects, pointers) are the
    // wall-clock pass's concern, not this one's.
    expect_count("DL008", run, "let d = x as &dyn Display;\n", 0)?;
    Ok(())
}
