//! The pass catalog. Each pass module exposes
//! `run(&SourceFile, &mut Sink)` plus a `self_test()` over embedded
//! positive/negative fixtures; a pass that stops detecting its own
//! pattern fails the whole lint run.

pub mod cast_safety;
pub mod cbm_bits;
pub mod determinism;
pub mod direct_io;
pub mod float_eq;
pub mod flow;
pub mod interproc;
pub mod panic_path;
pub mod print_discipline;
pub mod spec_drift;
pub mod threading;

use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

/// Code for malformed/unknown `lint: allow` annotations.
pub const DL000: &str = "DL000";

/// All per-file pass codes in catalog order (DL010 is repo-level).
pub const FILE_PASS_CODES: [&str; 10] = [
    panic_path::UNWRAP_CODE,
    cbm_bits::CODE,
    float_eq::CODE,
    threading::CODE,
    direct_io::CODE,
    determinism::HASH_ITER_CODE,
    determinism::WALL_CLOCK_CODE,
    cast_safety::CODE,
    panic_path::INDEX_CODE,
    print_discipline::CODE,
];

/// Every diagnostic code the engine can emit (for allow validation).
pub fn known_codes() -> Vec<&'static str> {
    let mut v = vec![DL000];
    v.extend(FILE_PASS_CODES);
    v.push(spec_drift::CODE);
    v.push(interproc::TAINT_CODE);
    v.push(interproc::PANIC_REACH_CODE);
    v.push(interproc::UNIT_CODE);
    v.push(flow::POOL_CODE);
    v.push(flow::ALLOC_CODE);
    v.push(flow::IO_CODE);
    v
}

/// Runs one pass by code against a file.
pub fn run_pass(code: &str, file: &SourceFile, sink: &mut Sink) {
    match code {
        c if c == panic_path::UNWRAP_CODE => panic_path::run_unwrap(file, sink),
        c if c == panic_path::INDEX_CODE => panic_path::run_index(file, sink),
        c if c == cbm_bits::CODE => cbm_bits::run(file, sink),
        c if c == float_eq::CODE => float_eq::run(file, sink),
        c if c == threading::CODE => threading::run(file, sink),
        c if c == direct_io::CODE => direct_io::run(file, sink),
        c if c == determinism::HASH_ITER_CODE => determinism::run_hash_iter(file, sink),
        c if c == determinism::WALL_CLOCK_CODE => determinism::run_wall_clock(file, sink),
        c if c == cast_safety::CODE => cast_safety::run(file, sink),
        c if c == print_discipline::CODE => print_discipline::run(file, sink),
        other => unreachable!("unknown pass code {other}"),
    }
}

/// Runs the self-tests of every pass (and the allow grammar).
pub fn self_test_all() -> Result<(), String> {
    panic_path::self_test()?;
    cbm_bits::self_test()?;
    float_eq::self_test()?;
    threading::self_test()?;
    direct_io::self_test()?;
    determinism::self_test()?;
    cast_safety::self_test()?;
    print_discipline::self_test()?;
    spec_drift::self_test()?;
    interproc::self_test()?;
    flow::self_test()?;
    Ok(())
}

/// Fixture helper shared by the pass self-tests.
pub(crate) fn lex(src: &str) -> SourceFile {
    SourceFile::parse("fixture.rs", src)
}

/// Self-test helper: run one pass over a fixture, count findings.
pub(crate) fn count(run: impl Fn(&SourceFile, &mut Sink), src: &str) -> usize {
    let file = lex(src);
    let mut sink = Sink::default();
    run(&file, &mut sink);
    sink.findings.len()
}

/// Self-test assertion: `src` must yield exactly `want` findings.
pub(crate) fn expect_count(
    pass: &str,
    run: impl Fn(&SourceFile, &mut Sink),
    src: &str,
    want: usize,
) -> Result<(), String> {
    let got = count(run, src);
    if got == want {
        Ok(())
    } else {
        Err(format!(
            "{pass} self-test: expected {want} finding(s), got {got} on fixture:\n{src}"
        ))
    }
}
