//! DL002 — no raw CBM bit arithmetic outside `resctrl::cbm`.
//!
//! Way masks are built and inspected through the `Cbm` API so the
//! contiguity and bounds rules live in one audited module. Flags
//! space-delimited shifts (generics like `Vec<Option<Cbm>>` have none)
//! and single `&`/`|`/`^` applied to a `.0` field access (logical
//! `&&`/`||` and float literals like `0.0` do not match).

use super::expect_count;
use crate::diagnostics::Sink;
use crate::lexer::SourceFile;

pub const CODE: &str = "DL002";

pub fn run(file: &SourceFile, sink: &mut Sink) {
    for (n, line) in file.code_lines() {
        let shift = line.contains(" << ") || line.contains(" >> ");
        let field_bitop = [".0 & ", ".0 | ", ".0 ^ "].iter().any(|pat| {
            line.match_indices(pat).any(|(i, _)| {
                // `.0` must be a field access, not the tail of a float
                // literal, and the single operator must not be doubled
                // (`prev > 0.0 && x` is logical, not bitwise).
                let after = &line[i + pat.len()..];
                let op = pat.as_bytes()[3];
                !after.starts_with(op as char) && !line[..i].ends_with(|c: char| c.is_ascii_digit())
            })
        });
        if shift || field_bitop {
            sink.emit(
                file,
                n,
                CODE,
                "raw CBM bit arithmetic (use the resctrl::cbm API)".into(),
            );
        }
    }
}

pub fn self_test() -> Result<(), String> {
    expect_count(
        "DL002",
        run,
        "let m = Cbm(mask.0 & !mask2.0);\nlet top = bits << shift;\n",
        2,
    )?;
    expect_count("DL002", run, "let x = 1 << 4;\n", 1)?;
    expect_count(
        "DL002",
        run,
        "let prev: Vec<Option<Cbm>> = masks.clone();\nif prev > 0.0 && x { }\nlet u = a.union(b);\nlet s = \"a << b\";\n",
        0,
    )?;
    Ok(())
}
