//! Intraprocedural def-use dataflow over function-body token streams.
//!
//! The v2 layers (`tokens.rs` → `parse.rs` → `model.rs`) stop at the
//! function boundary: the workspace model knows a body's *calls* and a
//! flat name→type map of its locals, but nothing about how values move
//! **inside** the body. That gap is why the v2 passes lean on identifier
//! names — and why laundering a value through one extra binding
//! (`let shared = &mut totals;`) makes it invisible to them.
//!
//! [`FnFlow::analyze`] closes the gap with a single linear walk of the
//! body tokens that produces def-use chains:
//!
//! * every binding (`fn` param, `let` / `let`-else pattern, `for`
//!   pattern, closure param) becomes a [`Def`], scoped by the real brace
//!   structure, so shadowing creates a *new* def instead of mutating the
//!   old one;
//! * every later mention of a visible binding becomes a [`Use`] on its
//!   def — classified as a read, a write (assignment targets and `&mut`
//!   borrows), a mutating method call (`.push(…)`, `.lock(…)`, …), or an
//!   explicit `let _ =` discard;
//! * a def records what its initializer *read*: the defs it copies or
//!   borrows from ([`Def::init_reads`]), the calls it captures a result
//!   from ([`Def::init_calls`]), and whether a `&mut` borrow was taken
//!   ([`Def::init_mut_borrow`]) — the ingredients of value propagation;
//! * closure literals become [`Closure`] records; a use inside a closure
//!   of a def declared outside it is a **capture**, queryable with
//!   [`FnFlow::captures`].
//!
//! Like the item parser, this is a loss-tolerant recognizer, not a full
//! expression grammar: match-arm pattern bindings are not tracked (a use
//! of an arm binding that shadows an outer def is attributed to the
//! outer def), and field types are unknown. The passes that consume the
//! flow (`passes/flow.rs`, plus the DL012/DL014 retrofits) are written
//! so both limitations can only cost precision on exotic shapes, never
//! silence a self-test-pinned finding.

use crate::parse::join_tokens;
use crate::tokens::{Tok, TokKind};
use std::collections::BTreeMap;

/// Where a binding came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DefKind {
    /// Function parameter.
    Param,
    /// `let` / `let`-else / `if let` / `while let` binding.
    Let,
    /// `for` loop pattern binding.
    LoopPat,
    /// Closure parameter (owned by [`Def::closure`]).
    ClosureParam,
}

/// How a binding is mentioned.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum UseKind {
    /// Plain read.
    Read,
    /// Assignment target (`x = …`, `x += …`, `x.field = …`) or `&mut x`.
    Write,
    /// Receiver of a mutating method call; carries the method name.
    MutMethod(String),
    /// Explicitly thrown away with `let _ = x;`.
    Discard,
}

/// One mention of a binding.
#[derive(Debug, Clone)]
pub struct Use {
    /// 1-based source line.
    pub line: usize,
    /// Token index of the mention.
    pub tok: usize,
    /// Classification.
    pub kind: UseKind,
    /// Innermost closure containing the mention, if any.
    pub closure: Option<usize>,
}

/// One binding and everything known about it.
#[derive(Debug, Clone)]
pub struct Def {
    /// Binding name.
    pub name: String,
    /// 1-based line of the binding.
    pub line: usize,
    /// Token index of the binding ident.
    pub tok: usize,
    /// Binding origin.
    pub kind: DefKind,
    /// `let mut` / `mut` pattern binding.
    pub mutable: bool,
    /// Declared type text, when the binding carried an annotation.
    pub ty: Option<String>,
    /// Call names appearing in the initializer (`Vec::new`, `tick`, …).
    pub init_calls: Vec<String>,
    /// Defs the initializer read (value flows from them into this def).
    pub init_reads: Vec<usize>,
    /// The initializer took a `&mut` borrow.
    pub init_mut_borrow: bool,
    /// Innermost closure the def was declared in, if any.
    pub closure: Option<usize>,
    /// Every later mention, in token order.
    pub uses: Vec<Use>,
}

impl Def {
    /// All mentions inside closure `c`.
    pub fn uses_in_closure(&self, c: usize) -> impl Iterator<Item = &Use> {
        self.uses.iter().filter(move |u| u.closure == Some(c))
    }
}

/// One closure literal.
#[derive(Debug, Clone)]
pub struct Closure {
    /// Token index of the opening `|` (or `||`).
    pub tok: usize,
    /// 1-based line of the header.
    pub line: usize,
    /// Body token range, inclusive.
    pub body: (usize, usize),
    /// Parameter names.
    pub params: Vec<String>,
    /// Innermost enclosing closure, if nested.
    pub parent: Option<usize>,
}

/// A captured binding: a def declared outside a closure, used inside it.
#[derive(Debug, Clone)]
pub struct Capture {
    /// Index into [`FnFlow::defs`].
    pub def: usize,
    /// The closure writes to or mutably borrows the capture.
    pub written: bool,
}

/// Def-use chains for one function body.
#[derive(Debug, Default)]
pub struct FnFlow {
    /// Every binding, in declaration order.
    pub defs: Vec<Def>,
    /// Every closure literal, in source order.
    pub closures: Vec<Closure>,
}

/// Method names treated as mutating their receiver.
const MUT_METHODS: [&str; 26] = [
    "push",
    "push_str",
    "push_back",
    "push_front",
    "pop",
    "insert",
    "remove",
    "extend",
    "extend_from_slice",
    "append",
    "clear",
    "truncate",
    "resize",
    "retain",
    "drain",
    "take",
    "replace",
    "set",
    "store",
    "fetch_add",
    "fetch_sub",
    "lock",
    "borrow_mut",
    "get_mut",
    "iter_mut",
    "record",
]; // `sort*` receivers are reordered, not grown; the flow passes don't care.

/// Compound and plain assignment operators (as single tokens).
fn is_assign_op(t: &Tok) -> bool {
    t.kind == TokKind::Punct
        && matches!(
            t.text.as_str(),
            "=" | "+=" | "-=" | "*=" | "/=" | "%=" | "^=" | "|=" | "<<="
        )
}

fn is_rust_kw(t: &Tok) -> bool {
    [
        "in", "return", "match", "if", "else", "for", "while", "loop", "break", "continue", "move",
        "ref", "mut", "as", "let", "fn", "impl", "struct", "enum", "trait", "use", "pub", "where",
        "self", "Self", "crate", "super", "static", "const", "unsafe", "dyn", "true", "false",
        "await",
    ]
    .iter()
    .any(|k| t.is_kw(k))
}

/// Tokens that may directly precede a closure's opening pipe.
fn closure_can_follow(prev: Option<&Tok>) -> bool {
    match prev {
        None => true,
        Some(t) if t.is_kw("move") || t.is_kw("return") || t.is_kw("else") => true,
        Some(t) if t.kind == TokKind::Punct => matches!(
            t.text.as_str(),
            "(" | "," | "=" | "{" | "[" | "=>" | "&&" | "||" | ";" | ":" | "+="
        ),
        _ => false,
    }
}

struct Pending {
    def_ids: Vec<usize>,
    bind_at: usize,
    has_init: bool,
}

enum Frame {
    Brace,
    Expr { end: usize },
}

struct Walker<'a> {
    toks: &'a [Tok],
    flow: FnFlow,
    visible: BTreeMap<String, Vec<usize>>,
    scopes: Vec<(Frame, Vec<String>)>,
    closure_stack: Vec<(usize, usize)>,
    pendings: Vec<Pending>,
}

impl FnFlow {
    /// Analyzes one body token range (`body` as produced by the item
    /// parser: inclusive indices, braces excluded) given the fn's
    /// parameter list.
    pub fn analyze(toks: &[Tok], body: (usize, usize), params: &[(String, String)]) -> FnFlow {
        let mut w = Walker {
            toks,
            flow: FnFlow::default(),
            visible: BTreeMap::new(),
            scopes: vec![(Frame::Brace, Vec::new())],
            closure_stack: Vec::new(),
            pendings: Vec::new(),
        };
        let line0 = toks.get(body.0).map_or(1, |t| t.line);
        for (name, ty) in params {
            let id = w.flow.defs.len();
            w.flow.defs.push(Def {
                name: name.clone(),
                line: line0,
                tok: body.0,
                kind: DefKind::Param,
                mutable: ty.contains("&mut") || ty.contains("& mut"),
                ty: Some(ty.clone()),
                init_calls: Vec::new(),
                init_reads: Vec::new(),
                init_mut_borrow: false,
                closure: None,
                uses: Vec::new(),
            });
            w.bind(name, id);
        }
        w.walk(body);
        w.flow
    }

    /// The bindings closure `c` captures from enclosing scopes, with a
    /// `written` flag when the closure assigns to, mutably borrows, or
    /// calls a mutating method on the capture.
    pub fn captures(&self, c: usize) -> Vec<Capture> {
        let mut out = Vec::new();
        for (d, def) in self.defs.iter().enumerate() {
            if self.owned_by(def, c) {
                continue;
            }
            let mut seen = false;
            let mut written = false;
            for u in &def.uses {
                let mut inner = u.closure;
                while let Some(ci) = inner {
                    if ci == c {
                        seen = true;
                        written |= matches!(u.kind, UseKind::Write | UseKind::MutMethod(_));
                        break;
                    }
                    inner = self.closures[ci].parent;
                }
            }
            if seen {
                out.push(Capture { def: d, written });
            }
        }
        out
    }

    /// Is `def` declared inside closure `c` (directly or transitively)?
    fn owned_by(&self, def: &Def, c: usize) -> bool {
        let mut cur = def.closure;
        while let Some(ci) = cur {
            if ci == c {
                return true;
            }
            cur = self.closures[ci].parent;
        }
        false
    }

    /// Def indices whose value (transitively, via `init_reads`) flows
    /// from any def satisfying `source` — including the sources. The
    /// closure receives the candidate def.
    pub fn flows_from(&self, source: impl Fn(&Def) -> bool) -> Vec<bool> {
        let mut tainted: Vec<bool> = self.defs.iter().map(&source).collect();
        // init_reads always reference earlier defs, so one forward pass
        // per possible chain length converges; chains are short.
        let mut changed = true;
        while changed {
            changed = false;
            for d in 0..self.defs.len() {
                if tainted[d] {
                    continue;
                }
                if self.defs[d].init_reads.iter().any(|&s| tainted[s]) {
                    tainted[d] = true;
                    changed = true;
                }
            }
        }
        tainted
    }
}

impl Walker<'_> {
    fn bind(&mut self, name: &str, id: usize) {
        self.visible.entry(name.to_string()).or_default().push(id);
        if let Some((_, bound)) = self.scopes.last_mut() {
            bound.push(name.to_string());
        }
    }

    fn unbind_scope(&mut self, bound: Vec<String>) {
        for name in bound {
            if let Some(stack) = self.visible.get_mut(&name) {
                stack.pop();
            }
        }
    }

    fn lookup(&self, name: &str) -> Option<usize> {
        self.visible.get(name).and_then(|s| s.last().copied())
    }

    fn innermost_closure(&self) -> Option<usize> {
        self.closure_stack.last().map(|&(c, _)| c)
    }

    /// The innermost pending initializer covering token `i`.
    fn active_pending(&mut self, i: usize) -> Option<&mut Pending> {
        self.pendings
            .iter_mut()
            .filter(|p| p.has_init && p.bind_at > i)
            .min_by_key(|p| p.bind_at)
    }

    fn record_use(&mut self, def: usize, i: usize, kind: UseKind) {
        let closure = self.innermost_closure();
        let line = self.toks[i].line;
        self.flow.defs[def].uses.push(Use {
            line,
            tok: i,
            kind,
            closure,
        });
        // Any mention inside an active initializer feeds the pending
        // def's value flow (reads copy, `&mut` borrows alias).
        if let Some(p) = self.active_pending(i) {
            let targets = p.def_ids.clone();
            for t in targets {
                if t != def && !self.flow.defs[t].init_reads.contains(&def) {
                    self.flow.defs[t].init_reads.push(def);
                }
            }
        }
    }

    fn record_call(&mut self, name: String, i: usize) {
        if let Some(p) = self.active_pending(i) {
            let targets = p.def_ids.clone();
            for t in targets {
                if !self.flow.defs[t].init_calls.contains(&name) {
                    self.flow.defs[t].init_calls.push(name.clone());
                }
            }
        }
    }

    /// Index of the matching close for the opener at `open`, scanning
    /// `( ) [ ] { }` only.
    fn matching(&self, open: usize, end: usize) -> usize {
        let mut depth = 0i32;
        let mut i = open;
        while i <= end {
            match self.toks[i].text.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    depth -= 1;
                    if depth == 0 {
                        return i;
                    }
                }
                _ => {}
            }
            i += 1;
        }
        end
    }

    /// First index in `from..=end` holding `what` at bracket depth 0.
    fn at_depth0(&self, from: usize, end: usize, what: &[&str]) -> Option<usize> {
        let mut depth = 0i32;
        let mut i = from;
        while i <= end {
            let t = &self.toks[i].text;
            if depth == 0 && what.iter().any(|w| t == w) {
                return Some(i);
            }
            match t.as_str() {
                "(" | "[" | "{" => depth += 1,
                ")" | "]" | "}" => {
                    if depth == 0 {
                        return None;
                    }
                    depth -= 1;
                }
                _ => {}
            }
            i += 1;
        }
        None
    }

    fn walk(&mut self, body: (usize, usize)) {
        let (start, end) = body;
        let mut i = start;
        while i <= end && i < self.toks.len() {
            // Close expression scopes and closures the walk has passed.
            while matches!(self.scopes.last(), Some((Frame::Expr { end: e }, _)) if *e < i) {
                if let Some((_, bound)) = self.scopes.pop() {
                    self.unbind_scope(bound);
                }
            }
            while matches!(self.closure_stack.last(), Some(&(_, e)) if e < i) {
                self.closure_stack.pop();
            }

            let t = &self.toks[i];
            if t.is("{") {
                self.scopes.push((Frame::Brace, Vec::new()));
                self.bind_pendings_at(i);
                i += 1;
                continue;
            }
            if t.is("}") {
                while let Some((frame, bound)) = self.scopes.pop() {
                    self.unbind_scope(bound);
                    if matches!(frame, Frame::Brace) {
                        break;
                    }
                }
                if self.scopes.is_empty() {
                    self.scopes.push((Frame::Brace, Vec::new()));
                }
                i += 1;
                continue;
            }
            if t.is_kw("let") {
                i = self.handle_let(i, end);
                continue;
            }
            if t.is_kw("for") {
                i = self.handle_for(i, end);
                continue;
            }
            if (t.is("|") || t.is("||"))
                && closure_can_follow(i.checked_sub(1).map(|p| &self.toks[p]))
            {
                i = self.handle_closure(i, end);
                continue;
            }
            if t.kind == TokKind::Ident && !is_rust_kw(t) && !t.raw_ident {
                i = self.handle_ident(i, end);
                continue;
            }
            if t.is("&") && i + 1 <= end && self.toks[i + 1].is_kw("mut") {
                if let Some(p) = self.active_pending(i) {
                    let targets = p.def_ids.clone();
                    for d in targets {
                        self.flow.defs[d].init_mut_borrow = true;
                    }
                }
            }
            if t.is(";") {
                self.bind_pendings_at(i);
            }
            i += 1;
        }
        // Bind any pending that never saw its terminator (truncated body).
        let leftovers: Vec<usize> = self.pendings.drain(..).flat_map(|p| p.def_ids).collect();
        for id in leftovers {
            let name = self.flow.defs[id].name.clone();
            self.bind(&name, id);
        }
    }

    fn bind_pendings_at(&mut self, i: usize) {
        let mut ready: Vec<usize> = Vec::new();
        self.pendings.retain(|p| {
            if p.bind_at == i {
                ready.extend(p.def_ids.iter().copied());
                false
            } else {
                true
            }
        });
        for id in ready {
            let name = self.flow.defs[id].name.clone();
            self.bind(&name, id);
        }
    }

    /// Binding idents of a pattern region, with their `mut` flags.
    fn pattern_idents(&self, from: usize, to: usize) -> Vec<(usize, bool)> {
        let mut out = Vec::new();
        let mut i = from;
        while i <= to {
            let t = &self.toks[i];
            if t.kind == TokKind::Ident
                && !is_rust_kw(t)
                && !t.text.starts_with(char::is_uppercase)
                && t.text != "_"
                // Path segments (`mod::Variant`) and struct-pattern field
                // names (`Point { x: px }` — `x` is not a binding) skip.
                && !(i + 1 <= to && (self.toks[i + 1].is("::") || self.toks[i + 1].is(":")))
                && !(i > from && self.toks[i - 1].is("::"))
            {
                let mutable = i > from && self.toks[i - 1].is_kw("mut");
                out.push((i, mutable));
            }
            i += 1;
        }
        out
    }

    fn make_defs(
        &mut self,
        idents: &[(usize, bool)],
        kind: DefKind,
        ty: Option<String>,
    ) -> Vec<usize> {
        let closure = self.innermost_closure();
        idents
            .iter()
            .map(|&(tok, mutable)| {
                let id = self.flow.defs.len();
                self.flow.defs.push(Def {
                    name: self.toks[tok].text.clone(),
                    line: self.toks[tok].line,
                    tok,
                    kind,
                    mutable,
                    ty: ty.clone(),
                    init_calls: Vec::new(),
                    init_reads: Vec::new(),
                    init_mut_borrow: false,
                    closure,
                    uses: Vec::new(),
                });
                id
            })
            .collect()
    }

    /// `let [mut] PAT [: TY] [= INIT [else { … }]] ;` — creates pending
    /// defs bound at the statement end and returns the resume index
    /// (just after the pattern/type, so the initializer is walked by the
    /// main loop).
    fn handle_let(&mut self, i: usize, end: usize) -> usize {
        let in_cond = i > 0 && (self.toks[i - 1].is_kw("if") || self.toks[i - 1].is_kw("while"));
        let Some(stop) = self.at_depth0(i + 1, end, &[":", "=", ";"]) else {
            return i + 1;
        };
        let pat_end = stop.saturating_sub(1);
        // `let _ = x;` — an explicit discard of a single binding.
        let lone_underscore = stop == i + 2
            && self.toks[i + 1].kind == TokKind::Ident
            && self.toks[i + 1].text == "_";
        let (ty, eq) = if self.toks[stop].is(":") {
            let Some(after_ty) = self.at_depth0(stop + 1, end, &["=", ";"]) else {
                return stop + 1;
            };
            let ty = join_tokens(&self.toks[stop + 1..after_ty]);
            (Some(ty), after_ty)
        } else {
            (None, stop)
        };
        let idents = self.pattern_idents(i + 1, pat_end);
        if self.toks[eq].is(";") {
            // `let x;` — deferred init; bind immediately.
            let ids = self.make_defs(&idents, DefKind::Let, ty);
            for id in ids {
                let name = self.flow.defs[id].name.clone();
                self.bind(&name, id);
            }
            return eq + 1;
        }
        if lone_underscore {
            // `let _ = ident;` discards a binding; `let _ = call(…);`
            // just evaluates — the main loop records its reads.
            if eq + 2 <= end
                && self.toks[eq + 1].kind == TokKind::Ident
                && self.toks[eq + 2].is(";")
            {
                if let Some(def) = self.lookup(&self.toks[eq + 1].text) {
                    self.record_use(def, eq + 1, UseKind::Discard);
                    return eq + 3;
                }
            }
            return eq + 1;
        }
        let bind_at = if in_cond {
            self.at_depth0(eq + 1, end, &["{"]).unwrap_or(end)
        } else {
            self.at_depth0(eq + 1, end, &[";"]).unwrap_or(end)
        };
        let ids = self.make_defs(&idents, DefKind::Let, ty);
        self.pendings.push(Pending {
            def_ids: ids,
            bind_at,
            has_init: true,
        });
        eq + 1
    }

    /// `for PAT in EXPR { … }` — pattern defs bind at the block brace.
    fn handle_for(&mut self, i: usize, end: usize) -> usize {
        let Some(kw_in) = self.at_depth0(i + 1, end, &["in"]) else {
            return i + 1;
        };
        let idents = self.pattern_idents(i + 1, kw_in.saturating_sub(1));
        let bind_at = self.at_depth0(kw_in + 1, end, &["{"]).unwrap_or(end);
        let ids = self.make_defs(&idents, DefKind::LoopPat, None);
        self.pendings.push(Pending {
            def_ids: ids,
            bind_at,
            has_init: true,
        });
        kw_in + 1
    }

    /// `|params| body` / `move |params| body` — registers the closure,
    /// binds its params in a scope spanning the body, and resumes inside
    /// the body so nested content is walked normally.
    fn handle_closure(&mut self, i: usize, end: usize) -> usize {
        let (params_end, param_idents) = if self.toks[i].is("||") {
            (i, Vec::new())
        } else {
            let mut j = i + 1;
            let mut depth = 0i32;
            while j <= end {
                match self.toks[j].text.as_str() {
                    "(" | "[" | "<" => depth += 1,
                    ")" | "]" | ">" => depth -= 1,
                    "|" if depth <= 0 => break,
                    _ => {}
                }
                j += 1;
            }
            if j > end {
                return i + 1;
            }
            // Param names: idents not in type position (skip `: TY`
            // spans up to the next `,` or the closing pipe).
            let mut idents = Vec::new();
            let mut k = i + 1;
            while k < j {
                let t = &self.toks[k];
                if t.is(":") {
                    let mut d = 0i32;
                    while k < j {
                        match self.toks[k].text.as_str() {
                            "(" | "[" | "<" => d += 1,
                            ")" | "]" | ">" => d -= 1,
                            "," if d <= 0 => break,
                            _ => {}
                        }
                        k += 1;
                    }
                    continue;
                }
                if t.kind == TokKind::Ident && !is_rust_kw(t) && t.text != "_" {
                    idents.push((k, k > i + 1 && self.toks[k - 1].is_kw("mut")));
                }
                k += 1;
            }
            (j, idents)
        };
        let mut after = params_end + 1;
        if after <= end && self.toks[after].is("->") {
            // Return-typed closures require a braced body.
            while after <= end && !self.toks[after].is("{") {
                after += 1;
            }
        }
        if after > end {
            return params_end + 1;
        }
        let body_end = if self.toks[after].is("{") {
            self.matching(after, end)
        } else {
            // Expression body: up to the call/tuple boundary.
            let mut depth = 0i32;
            let mut j = after;
            let mut stop = end;
            while j <= end {
                match self.toks[j].text.as_str() {
                    "(" | "[" | "{" => depth += 1,
                    ")" | "]" | "}" => {
                        if depth == 0 {
                            stop = j.saturating_sub(1);
                            break;
                        }
                        depth -= 1;
                    }
                    "," | ";" if depth == 0 => {
                        stop = j.saturating_sub(1);
                        break;
                    }
                    _ => {}
                }
                j += 1;
            }
            stop
        };
        let idx = self.flow.closures.len();
        let parent = self.innermost_closure();
        self.flow.closures.push(Closure {
            tok: i,
            line: self.toks[i].line,
            body: (after, body_end),
            params: param_idents
                .iter()
                .map(|&(k, _)| self.toks[k].text.clone())
                .collect(),
            parent,
        });
        self.closure_stack.push((idx, body_end));
        self.scopes
            .push((Frame::Expr { end: body_end }, Vec::new()));
        let ids = self.make_defs(&param_idents, DefKind::ClosureParam, None);
        for id in &ids {
            // Re-own the params by the new closure (make_defs ran after
            // the push, so innermost_closure already reported it).
            self.flow.defs[*id].closure = Some(idx);
            let name = self.flow.defs[*id].name.clone();
            self.bind(&name, *id);
        }
        after
    }

    /// A (possibly resolvable) identifier mention: classify the use via
    /// the token chain that follows it, and record calls for pending
    /// initializers.
    fn handle_ident(&mut self, i: usize, end: usize) -> usize {
        let t = &self.toks[i];
        // Path segment or macro: not a local mention.
        if (i > 0 && self.toks[i - 1].is("::")) || (i + 1 <= end && self.toks[i + 1].is("!")) {
            return i + 1;
        }
        if i + 1 <= end && self.toks[i + 1].is("::") {
            // Head of a path (`Vec::new`, `mod::f`): record as a call if
            // the path ends in `(…)`.
            let mut j = i;
            let mut path = vec![t.text.clone()];
            while j + 2 <= end
                && self.toks[j + 1].is("::")
                && self.toks[j + 2].kind == TokKind::Ident
            {
                path.push(self.toks[j + 2].text.clone());
                j += 2;
            }
            if j + 1 <= end && self.toks[j + 1].is("(") {
                self.record_call(path.join("::"), i);
            }
            return j + 1;
        }
        // Method name (preceded by `.`): mutation is classified at the
        // receiver; nothing to do at the name itself.
        if i > 0 && self.toks[i - 1].is(".") {
            if i + 1 <= end && self.toks[i + 1].is("(") {
                self.record_call(t.text.clone(), i);
            }
            return i + 1;
        }
        // Struct-literal field name / type ascription: skip.
        if i + 1 <= end && self.toks[i + 1].is(":") {
            return i + 1;
        }
        let Some(def) = self.lookup(&t.text) else {
            if i + 1 <= end && self.toks[i + 1].is("(") {
                self.record_call(t.text.clone(), i);
            }
            return i + 1;
        };
        // `&mut x` — a mutable borrow of the binding.
        if i >= 2 && self.toks[i - 1].is_kw("mut") && self.toks[i - 2].is("&") {
            self.record_use(def, i, UseKind::Write);
            if let Some(p) = self.active_pending(i) {
                let targets = p.def_ids.clone();
                for d in targets {
                    self.flow.defs[d].init_mut_borrow = true;
                }
            }
            return i + 1;
        }
        // Walk the access chain: fields, indexing, then the verdict.
        let mut j = i + 1;
        while j <= end {
            if self.toks[j].is(".") && j + 1 <= end && self.toks[j + 1].kind == TokKind::Ident {
                if j + 2 <= end && self.toks[j + 2].is("(") {
                    let m = self.toks[j + 1].text.clone();
                    let kind = if MUT_METHODS.contains(&m.as_str()) {
                        UseKind::MutMethod(m)
                    } else {
                        UseKind::Read
                    };
                    self.record_use(def, i, kind);
                    return i + 1;
                }
                j += 2;
                continue;
            }
            if self.toks[j].is("[") {
                j = self.matching(j, end) + 1;
                continue;
            }
            break;
        }
        if j <= end && is_assign_op(&self.toks[j]) {
            self.record_use(def, i, UseKind::Write);
        } else {
            self.record_use(def, i, UseKind::Read);
        }
        i + 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::scrub;
    use crate::parse::parse_file;

    fn flow_of(src: &str, fn_name: &str) -> FnFlow {
        let (scrubbed, _) = scrub(src);
        let parsed = parse_file(&scrubbed);
        let f = parsed
            .fns
            .iter()
            .find(|f| f.name == fn_name)
            .unwrap_or_else(|| panic!("fixture must define {fn_name}"));
        let body = f.body.expect("fixture fn must have a body");
        FnFlow::analyze(&parsed.tokens, body, &f.params)
    }

    fn defs_named<'a>(flow: &'a FnFlow, name: &str) -> Vec<&'a Def> {
        flow.defs.iter().filter(|d| d.name == name).collect()
    }

    #[test]
    fn shadowing_creates_a_second_def_and_splits_uses() {
        let flow = flow_of(
            "fn f() -> u64 {\n\
                 let x = seed();\n\
                 let a = x;\n\
                 let x = 3u64;\n\
                 x + a\n\
             }\n\
             fn seed() -> u64 { 7 }\n",
            "f",
        );
        let xs = defs_named(&flow, "x");
        assert_eq!(xs.len(), 2, "shadowing must mint a new def");
        assert_eq!(xs[0].init_calls, vec!["seed".to_string()]);
        // `a` copies from the FIRST x; the final read hits the SECOND.
        let a = defs_named(&flow, "a")[0];
        let first_x = flow.defs.iter().position(|d| d.name == "x").unwrap();
        assert_eq!(a.init_reads, vec![first_x]);
        assert_eq!(xs[0].uses.len(), 1, "first x: read by `a`'s init only");
        assert_eq!(xs[1].uses.len(), 1, "second x: the final expression");
    }

    #[test]
    fn block_scoped_shadow_unbinds_at_the_brace() {
        let flow = flow_of(
            "fn f() -> u64 {\n\
                 let x = 1u64;\n\
                 { let x = 2u64; drop(x); }\n\
                 x\n\
             }\n",
            "f",
        );
        let xs = defs_named(&flow, "x");
        assert_eq!(xs.len(), 2);
        assert_eq!(xs[1].uses.len(), 1, "inner x used once inside the block");
        assert_eq!(
            xs[0].uses.len(),
            1,
            "trailing read resolves to the outer def again"
        );
    }

    #[test]
    fn let_else_binds_in_the_outer_scope_not_the_else_block() {
        let flow = flow_of(
            "fn f(v: Option<u32>) -> u32 {\n\
                 let Some(x) = v else { return 0; };\n\
                 x + 1\n\
             }\n",
            "f",
        );
        let xs = defs_named(&flow, "x");
        assert_eq!(xs.len(), 1);
        assert_eq!(xs[0].kind, DefKind::Let);
        assert_eq!(xs[0].uses.len(), 1, "visible after the statement");
        let v = defs_named(&flow, "v")[0];
        assert!(
            xs[0]
                .init_reads
                .contains(&flow.defs.iter().position(|d| std::ptr::eq(d, v)).unwrap()),
            "x flows from v"
        );
    }

    #[test]
    fn closure_captures_split_params_from_environment() {
        let flow = flow_of(
            "fn f() -> u64 {\n\
                 let mut total = 0u64;\n\
                 let bump = |x: u64| { total += x; };\n\
                 bump(3);\n\
                 total\n\
             }\n",
            "f",
        );
        assert_eq!(flow.closures.len(), 1);
        let caps = flow.captures(0);
        assert_eq!(caps.len(), 1, "only `total` is captured, not `x`");
        let cap = &caps[0];
        assert_eq!(flow.defs[cap.def].name, "total");
        assert!(cap.written, "`total += x` writes the capture");
    }

    #[test]
    fn mut_borrow_laundering_is_visible_in_init_flags() {
        let flow = flow_of(
            "fn f() {\n\
                 let mut totals = 0u64;\n\
                 let sink = &mut totals;\n\
                 consume(sink);\n\
             }\n\
             fn consume(_s: &mut u64) {}\n",
            "f",
        );
        let sink = defs_named(&flow, "sink")[0];
        assert!(
            sink.init_mut_borrow,
            "`&mut` in the initializer is recorded"
        );
        let totals = flow.defs.iter().position(|d| d.name == "totals").unwrap();
        assert_eq!(sink.init_reads, vec![totals]);
        let tainted = flow.flows_from(|d| d.name == "totals");
        let sink_idx = flow.defs.iter().position(|d| d.name == "sink").unwrap();
        assert!(
            tainted[sink_idx],
            "value flow propagates through the borrow"
        );
    }

    #[test]
    fn discard_and_mut_method_uses_are_classified() {
        let flow = flow_of(
            "fn f() {\n\
                 let st = fetch();\n\
                 let _ = st;\n\
                 let mut v: Vec<u32> = Vec::new();\n\
                 v.push(1);\n\
             }\n\
             fn fetch() -> u32 { 1 }\n",
            "f",
        );
        let st = defs_named(&flow, "st")[0];
        assert_eq!(st.uses.len(), 1);
        assert_eq!(st.uses[0].kind, UseKind::Discard);
        let v = defs_named(&flow, "v")[0];
        assert!(v.init_calls.iter().any(|c| c == "Vec::new"));
        assert!(v
            .uses
            .iter()
            .any(|u| u.kind == UseKind::MutMethod("push".into())));
    }

    #[test]
    fn for_patterns_and_if_let_bind_inside_their_blocks() {
        let flow = flow_of(
            "fn f(items: Vec<u32>) -> u32 {\n\
                 let mut acc = 0;\n\
                 for it in items {\n\
                     acc += it;\n\
                 }\n\
                 if let Some(first) = probe() {\n\
                     acc += first;\n\
                 }\n\
                 acc\n\
             }\n\
             fn probe() -> Option<u32> { None }\n",
            "f",
        );
        let it = defs_named(&flow, "it")[0];
        assert_eq!(it.kind, DefKind::LoopPat);
        assert_eq!(it.uses.len(), 1);
        let first = defs_named(&flow, "first")[0];
        assert_eq!(first.uses.len(), 1);
        let acc = defs_named(&flow, "acc")[0];
        assert!(acc
            .uses
            .iter()
            .all(|u| u.kind == UseKind::Write || u.kind == UseKind::Read));
        assert!(acc.uses.iter().filter(|u| u.kind == UseKind::Write).count() >= 2);
    }
}
