//! Token-aware source preparation.
//!
//! The passes in this crate match on *scrubbed* lines: a copy of the
//! source in which the contents of comments, string literals, raw
//! strings, byte strings, and char literals have been replaced by
//! spaces, one space per character, with newlines preserved. Column
//! positions therefore line up between the raw and scrubbed text, and a
//! pattern such as `.unwrap()` appearing inside a doc comment or a log
//! message can never trigger a finding.
//!
//! The scrubber is a hand-rolled state machine, not a full parser; it
//! understands exactly the lexical shapes that can hide pass patterns:
//!
//! - `//` line comments (doc comments included),
//! - `/* ... */` block comments with nesting,
//! - `"..."` strings with `\"` / `\\` escapes, spanning lines,
//! - `r"..."`, `r#"..."#`, … raw strings (any `#` depth), and their
//!   `br` byte variants,
//! - `b"..."` byte strings, `'x'` / `b'x'` / `'\n'` char literals,
//! - lifetimes (`'a`, `'static`) and loop labels, which start with a
//!   quote but are *not* literals and are left intact.

/// One `// lint: allow(DLxxx, reason)` annotation attached to a line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Allow {
    pub code: String,
    pub reason: String,
}

/// A single source line with its scrubbed twin and attached metadata.
#[derive(Debug, Clone)]
pub struct Line {
    /// The original text (no trailing newline).
    pub raw: String,
    /// Same text with comment/literal contents blanked to spaces.
    pub scrubbed: String,
    /// True from the first `#[cfg(test)]` line onward. The workspace
    /// convention keeps unit tests in a trailing `mod tests`, so
    /// everything after the marker is test-only code, which the passes
    /// skip.
    pub in_test: bool,
    /// Suppressions that apply to this line (trailing annotation, or a
    /// comment-only annotation on the lines directly above).
    pub allows: Vec<Allow>,
}

/// A lexed source file ready for the passes.
#[derive(Debug)]
pub struct SourceFile {
    /// Repo-relative path with `/` separators (display + baseline key).
    pub path: String,
    pub lines: Vec<Line>,
    /// `lint: allow(...)` annotations that could not be parsed, with
    /// the 1-based line they sit on. Reported as DL000.
    pub malformed_allows: Vec<(usize, String)>,
}

impl SourceFile {
    pub fn parse(path: &str, text: &str) -> SourceFile {
        let (scrubbed_text, comments) = scrub(text);
        let raw_lines: Vec<&str> = text.lines().collect();
        let scrub_lines: Vec<&str> = scrubbed_text.lines().collect();
        let mut lines: Vec<Line> = Vec::with_capacity(raw_lines.len());
        let mut in_test = false;
        for (i, raw) in raw_lines.iter().enumerate() {
            if raw.trim() == "#[cfg(test)]" {
                in_test = true;
            }
            lines.push(Line {
                raw: (*raw).to_string(),
                scrubbed: scrub_lines.get(i).copied().unwrap_or("").to_string(),
                in_test,
                allows: Vec::new(),
            });
        }
        let mut malformed_allows = Vec::new();
        for (line_no, comment) in &comments {
            let Some(parsed) = parse_allow(comment) else {
                continue;
            };
            let target = attach_line(&lines, *line_no);
            match parsed {
                Ok(allow) => {
                    if let Some(target) = target {
                        lines[target - 1].allows.push(allow);
                    } else {
                        malformed_allows
                            .push((*line_no, "allow annotation attaches to no code line".into()));
                    }
                }
                Err(why) => malformed_allows.push((*line_no, why)),
            }
        }
        SourceFile {
            path: path.to_string(),
            lines,
            malformed_allows,
        }
    }

    /// Non-test scrubbed lines as `(1-based line number, scrubbed text)`.
    pub fn code_lines(&self) -> impl Iterator<Item = (usize, &str)> {
        self.lines
            .iter()
            .enumerate()
            .filter(|(_, l)| !l.in_test)
            .map(|(i, l)| (i + 1, l.scrubbed.as_str()))
    }

    /// True when `code` is suppressed on the given 1-based line.
    pub fn is_allowed(&self, line: usize, code: &str) -> bool {
        self.lines
            .get(line - 1)
            .map(|l| l.allows.iter().any(|a| a.code == code))
            .unwrap_or(false)
    }

    /// The scrubbed method chain starting at `line`: the line itself
    /// plus following lines whose trimmed text begins with `.` (the
    /// rustfmt continuation style). Used by order-insensitivity checks.
    pub fn chain_text(&self, line: usize) -> String {
        let mut out = String::new();
        if let Some(l) = self.lines.get(line - 1) {
            out.push_str(&l.scrubbed);
        }
        for l in self.lines.iter().skip(line) {
            let t = l.scrubbed.trim_start();
            if t.starts_with('.') || t.starts_with(')') {
                out.push(' ');
                out.push_str(t);
            } else {
                break;
            }
        }
        out
    }
}

/// Where a comment-borne allow annotation lands: the comment's own line
/// when that line has code on it (trailing comment), otherwise the
/// first following line with non-blank scrubbed content.
fn attach_line(lines: &[Line], comment_line: usize) -> Option<usize> {
    let idx = comment_line - 1;
    if lines.get(idx)?.scrubbed.trim().is_empty() {
        lines
            .iter()
            .enumerate()
            .skip(idx + 1)
            .find(|(_, l)| !l.scrubbed.trim().is_empty())
            .map(|(i, _)| i + 1)
    } else {
        Some(comment_line)
    }
}

/// Parses `lint: allow(CODE, reason)` out of one comment's text.
/// Returns `None` when the comment carries no annotation at all.
fn parse_allow(comment: &str) -> Option<Result<Allow, String>> {
    let marker = "lint: allow(";
    let at = comment.find(marker)?;
    let rest = &comment[at + marker.len()..];
    let Some(close) = rest.find(')') else {
        return Some(Err("unterminated `lint: allow(` annotation".into()));
    };
    let inner = &rest[..close];
    match inner.split_once(',') {
        Some((code, reason)) if !reason.trim().is_empty() && code.trim().starts_with("DL") => {
            Some(Ok(Allow {
                code: code.trim().to_string(),
                reason: reason.trim().to_string(),
            }))
        }
        _ => Some(Err(format!(
            "allow annotation must be `lint: allow(DLxxx, reason)`, got `({inner})`"
        ))),
    }
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Replaces comment and literal contents with spaces (newlines kept) and
/// collects `//` comment texts with their 1-based starting line.
pub fn scrub(text: &str) -> (String, Vec<(usize, String)>) {
    let chars: Vec<char> = text.chars().collect();
    let mut out = String::with_capacity(text.len());
    let mut comments: Vec<(usize, String)> = Vec::new();
    let mut line = 1usize;
    let mut prev_code = '\0';
    let mut i = 0usize;

    // Blank one char: preserve newlines so line/column structure holds.
    let blank = |out: &mut String, line: &mut usize, c: char| {
        if c == '\n' {
            out.push('\n');
            *line += 1;
        } else {
            out.push(' ');
        }
    };

    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            out.push('\n');
            line += 1;
            prev_code = '\0';
            i += 1;
            continue;
        }
        // Line comment.
        if c == '/' && chars.get(i + 1) == Some(&'/') {
            let start = line;
            let mut text_buf = String::new();
            while i < chars.len() && chars[i] != '\n' {
                text_buf.push(chars[i]);
                out.push(' ');
                i += 1;
            }
            comments.push((start, text_buf));
            prev_code = ' ';
            continue;
        }
        // Block comment, possibly nested.
        if c == '/' && chars.get(i + 1) == Some(&'*') {
            let mut depth = 0usize;
            while i < chars.len() {
                if chars[i] == '/' && chars.get(i + 1) == Some(&'*') {
                    depth += 1;
                    out.push_str("  ");
                    i += 2;
                } else if chars[i] == '*' && chars.get(i + 1) == Some(&'/') {
                    depth -= 1;
                    out.push_str("  ");
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    blank(&mut out, &mut line, chars[i]);
                    i += 1;
                }
            }
            prev_code = ' ';
            continue;
        }
        // Raw / byte string prefixes: r", r#", br", b", b' — only when
        // the previous code char cannot extend an identifier (so the
        // trailing `r` of `for` or `var` is never taken as a prefix).
        if (c == 'r' || c == 'b') && !is_ident(prev_code) {
            if let Some((skip, kind)) = literal_prefix(&chars, i) {
                for _ in 0..skip {
                    blank(&mut out, &mut line, chars[i]);
                    i += 1;
                }
                match kind {
                    PrefixKind::Raw(hashes) => {
                        i = scrub_raw_string(&chars, i, hashes, &mut out, &mut line, blank);
                    }
                    PrefixKind::Str => {
                        i = scrub_string(&chars, i, &mut out, &mut line, blank);
                    }
                    PrefixKind::Char => {
                        i = scrub_char(&chars, i, &mut out, &mut line, blank);
                    }
                }
                prev_code = ' ';
                continue;
            }
        }
        // Plain string literal.
        if c == '"' {
            blank(&mut out, &mut line, c);
            i += 1;
            i = scrub_string(&chars, i, &mut out, &mut line, blank);
            prev_code = ' ';
            continue;
        }
        // Char literal vs lifetime/label.
        if c == '\'' {
            let next = chars.get(i + 1);
            let is_char_lit = match next {
                Some('\\') => true,
                Some(_) => chars.get(i + 2) == Some(&'\''),
                None => false,
            };
            if is_char_lit {
                blank(&mut out, &mut line, c);
                i += 1;
                i = scrub_char(&chars, i, &mut out, &mut line, blank);
                prev_code = ' ';
                continue;
            }
            out.push('\'');
            prev_code = '\'';
            i += 1;
            continue;
        }
        out.push(c);
        prev_code = c;
        i += 1;
    }
    (out, comments)
}

enum PrefixKind {
    /// Raw (byte) string with this many `#`s.
    Raw(usize),
    /// `b"..."` byte string body (escape rules like a normal string).
    Str,
    /// `b'x'` byte char body.
    Char,
}

/// Matches a raw/byte literal prefix at `i`. Returns the prefix length
/// *including the opening quote* and the body kind, or `None`.
fn literal_prefix(chars: &[char], i: usize) -> Option<(usize, PrefixKind)> {
    let mut j = i;
    if chars[j] == 'b' {
        j += 1;
        match chars.get(j) {
            Some('\'') => return Some((j + 1 - i, PrefixKind::Char)),
            Some('"') => return Some((j + 1 - i, PrefixKind::Str)),
            Some('r') => j += 1,
            _ => return None,
        }
    } else {
        // chars[j] == 'r'
        j += 1;
    }
    let hash_start = j;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    if chars.get(j) == Some(&'"') {
        Some((j + 1 - i, PrefixKind::Raw(j - hash_start)))
    } else {
        None
    }
}

/// Scrubs a normal/byte string body starting *after* the opening quote.
fn scrub_string(
    chars: &[char],
    mut i: usize,
    out: &mut String,
    line: &mut usize,
    blank: impl Fn(&mut String, &mut usize, char),
) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            blank(out, line, c);
            blank(out, line, chars[i + 1]);
            i += 2;
            continue;
        }
        blank(out, line, c);
        i += 1;
        if c == '"' {
            break;
        }
    }
    i
}

/// Scrubs a raw string body starting *after* `r#…#"`; stops past the
/// closing quote followed by `hashes` `#`s.
fn scrub_raw_string(
    chars: &[char],
    mut i: usize,
    hashes: usize,
    out: &mut String,
    line: &mut usize,
    blank: impl Fn(&mut String, &mut usize, char),
) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c == '"' {
            let closes = (1..=hashes).all(|k| chars.get(i + k) == Some(&'#'));
            if closes {
                for _ in 0..=hashes {
                    blank(out, line, chars[i]);
                    i += 1;
                }
                break;
            }
        }
        blank(out, line, c);
        i += 1;
    }
    i
}

/// Scrubs a char/byte-char body starting *after* the opening quote.
fn scrub_char(
    chars: &[char],
    mut i: usize,
    out: &mut String,
    line: &mut usize,
    blank: impl Fn(&mut String, &mut usize, char),
) -> usize {
    while i < chars.len() {
        let c = chars[i];
        if c == '\\' && i + 1 < chars.len() {
            blank(out, line, c);
            blank(out, line, chars[i + 1]);
            i += 2;
            continue;
        }
        blank(out, line, c);
        i += 1;
        if c == '\'' {
            break;
        }
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scrubbed(text: &str) -> String {
        scrub(text).0
    }

    #[test]
    fn line_comment_is_blanked_and_collected() {
        let (s, comments) = scrub("let x = 1; // .unwrap() here\nlet y = 2;");
        assert!(!s.contains("unwrap"));
        assert!(s.starts_with("let x = 1; "));
        assert_eq!(comments.len(), 1);
        assert_eq!(comments[0].0, 1);
        assert!(comments[0].1.contains(".unwrap()"));
    }

    #[test]
    fn nested_block_comments_close_at_matching_depth() {
        let s = scrubbed("a /* x /* y */ z */ b.unwrap()");
        assert!(s.contains("b.unwrap()"));
        assert!(!s.contains('x'));
        assert!(!s.contains('z'));
    }

    #[test]
    fn strings_hide_patterns_and_preserve_columns() {
        let src = "let m = \".unwrap()\"; m.len()";
        let s = scrubbed(src);
        assert!(!s.contains("unwrap"));
        assert_eq!(s.len(), src.len());
        assert!(s.ends_with("m.len()"));
    }

    #[test]
    fn raw_strings_with_hashes_and_embedded_quotes() {
        let src = r##"let m = r#"say ".unwrap()" loudly"#; x"##;
        let s = scrubbed(src);
        assert!(!s.contains("unwrap"));
        assert!(s.trim_end().ends_with("; x"));
    }

    #[test]
    fn char_literal_quote_does_not_open_a_string() {
        let s = scrubbed("let q = '\"'; a.unwrap()");
        assert!(s.contains("a.unwrap()"));
    }

    #[test]
    fn lifetimes_survive() {
        let s = scrubbed("fn f<'a>(x: &'a str) -> &'a str { x }");
        assert_eq!(s, "fn f<'a>(x: &'a str) -> &'a str { x }");
    }

    #[test]
    fn slash_slash_inside_string_is_not_a_comment() {
        let s = scrubbed("let url = \"http://x\"; y.unwrap()");
        assert!(s.contains("y.unwrap()"));
    }

    #[test]
    fn byte_and_raw_byte_strings() {
        let s = scrubbed(r##"let a = b"un\"wrap"; let c = br#"x"#; z"##);
        assert!(!s.contains("un"));
        assert!(s.trim_end().ends_with('z'));
    }

    #[test]
    fn identifier_ending_in_r_is_not_a_raw_string() {
        let s = scrubbed("for item in iter { var\u{22}a\u{22}; }");
        // `var"a"` is nonsense Rust but the scrubber must not treat the
        // trailing r of `var` as a raw-string prefix and eat the rest.
        assert!(s.starts_with("for item in iter"));
    }

    #[test]
    fn cfg_test_marker_flags_following_lines() {
        let f = SourceFile::parse("x.rs", "fn a() {}\n#[cfg(test)]\nmod tests {}\n");
        assert!(!f.lines[0].in_test);
        assert!(f.lines[1].in_test);
        assert!(f.lines[2].in_test);
        assert_eq!(f.code_lines().count(), 1);
    }

    #[test]
    fn trailing_allow_attaches_to_its_own_line() {
        let f = SourceFile::parse(
            "x.rs",
            "let x = m.keys(); // lint: allow(DL006, sorted later)\n",
        );
        assert!(f.is_allowed(1, "DL006"));
        assert!(f.malformed_allows.is_empty());
    }

    #[test]
    fn standalone_allow_attaches_to_next_code_line() {
        let src =
            "// lint: allow(DL008, cast is width-checked)\n// more prose\nlet x = y as u64;\n";
        let f = SourceFile::parse("x.rs", src);
        assert!(f.is_allowed(3, "DL008"));
        assert!(!f.is_allowed(1, "DL008"));
    }

    #[test]
    fn allow_without_reason_is_malformed() {
        let f = SourceFile::parse("x.rs", "let x = 1; // lint: allow(DL006)\n");
        assert!(!f.is_allowed(1, "DL006"));
        assert_eq!(f.malformed_allows.len(), 1);
    }

    #[test]
    fn chain_text_spans_continuation_lines() {
        let src = "let s = m.values()\n    .copied()\n    .sum::<u64>();\nlet t = 1;\n";
        let f = SourceFile::parse("x.rs", src);
        let chain = f.chain_text(1);
        assert!(chain.contains(".sum::<u64>()"));
        assert!(!chain.contains("let t"));
    }
}
