//! A real tokenizer over *scrubbed* source text.
//!
//! The per-line passes match substrings; the item parser ([`crate::parse`])
//! needs a token stream. The tokenizer runs on the scrubbed text (see
//! [`crate::lexer::scrub`]) so comments and literal *contents* are already
//! spaces — what remains is identifiers, numbers, lifetimes, and
//! punctuation.
//!
//! Shapes the parser leans on, each pinned by a property-test family in
//! `tests/lexer_props.rs`:
//!
//! - **`>>` in nested generics vs. shift.** `>`s are never joined into a
//!   `>>` token: `Vec<Vec<u64>>` yields two `>` puncts, so the parser's
//!   generic-depth scanner closes both levels. Consumers that care about
//!   shift semantics (none today) can check [`Tok::joined`] adjacency.
//! - **Float literals with exponents.** `1e-6`, `2.5E+10`, `1e6f64` are a
//!   single number token; the `-`/`+` inside the exponent must never leak
//!   out as a punct (it would look like an arithmetic operator — or half
//!   of an `->` — to the parser and the unit-safety pass).
//! - **Raw identifiers.** `r#match` is an identifier token with text
//!   `match`, not a raw-string opener (the scrubber already guarantees
//!   `r#"…"#` never reaches us) and not the keyword `match`.

/// Token classes the parser distinguishes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (including raw `r#ident`, with the `r#`
    /// stripped from [`Tok::text`]).
    Ident,
    /// `'a`, `'static`, loop labels.
    Lifetime,
    /// Integer or float literal, suffix included (`1_000u64`, `1e-6`).
    Number,
    /// Punctuation; multi-character operators arrive as one token
    /// (`::`, `->`, `..=`) **except** `>`, which always stands alone.
    Punct,
}

/// One token with its 1-based source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Tok {
    pub kind: TokKind,
    pub text: String,
    pub line: usize,
    /// True when the next token follows with no whitespace between
    /// (e.g. the two `>`s of a shift). Meaningless on the last token.
    pub joined: bool,
    /// True for identifiers spelled `r#ident` in the source.
    pub raw_ident: bool,
}

impl Tok {
    pub fn is(&self, text: &str) -> bool {
        self.text == text
    }

    /// Identifier check that refuses raw identifiers for keyword
    /// positions: `r#fn` is a name, never the `fn` keyword.
    pub fn is_kw(&self, kw: &str) -> bool {
        self.kind == TokKind::Ident && !self.raw_ident && self.text == kw
    }
}

/// Multi-character puncts, longest first so maximal munch wins.
/// `>>`, `>>=`, and `>=` are deliberately absent: a lone `>` keeps the
/// generic-depth scanner honest (see module docs).
const MULTI_PUNCTS: [&str; 20] = [
    "..=", "...", "<<=", "::", "->", "=>", "..", "&&", "||", "<<", "==", "!=", "<=", "+=", "-=",
    "*=", "/=", "%=", "^=", "|=",
];

fn is_ident_start(c: char) -> bool {
    c.is_ascii_alphabetic() || c == '_'
}

fn is_ident_continue(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

/// Tokenizes scrubbed text. Never fails: unknown bytes become
/// single-char puncts, which the parser skips.
pub fn tokenize(scrubbed: &str) -> Vec<Tok> {
    let chars: Vec<char> = scrubbed.chars().collect();
    let mut toks: Vec<Tok> = Vec::new();
    let mut line = 1usize;
    let mut i = 0usize;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            line += 1;
            i += 1;
            continue;
        }
        if c.is_whitespace() {
            i += 1;
            continue;
        }
        let start = i;
        let tok = if c == 'r'
            && chars.get(i + 1) == Some(&'#')
            && matches!(chars.get(i + 2), Some(&c2) if is_ident_start(c2))
        {
            // Raw identifier: r#ident. (r#"…" never reaches the
            // tokenizer — the scrubber blanks raw strings.)
            i += 2;
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            Tok {
                kind: TokKind::Ident,
                text,
                line,
                joined: false,
                raw_ident: true,
            }
        } else if is_ident_start(c) {
            let mut text = String::new();
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            Tok {
                kind: TokKind::Ident,
                text,
                line,
                joined: false,
                raw_ident: false,
            }
        } else if c.is_ascii_digit() {
            i = scan_number(&chars, i);
            Tok {
                kind: TokKind::Number,
                text: chars[start..i].iter().collect(),
                line,
                joined: false,
                raw_ident: false,
            }
        } else if c == '\'' && matches!(chars.get(i + 1), Some(&c2) if is_ident_start(c2)) {
            // Lifetime or loop label (char literals are scrubbed away).
            i += 1;
            let mut text = String::from("'");
            while i < chars.len() && is_ident_continue(chars[i]) {
                text.push(chars[i]);
                i += 1;
            }
            Tok {
                kind: TokKind::Lifetime,
                text,
                line,
                joined: false,
                raw_ident: false,
            }
        } else {
            let mut text = None;
            for p in MULTI_PUNCTS {
                if chars[i..].iter().take(p.len()).collect::<String>() == p {
                    text = Some(p.to_string());
                    i += p.len();
                    break;
                }
            }
            let text = text.unwrap_or_else(|| {
                i += 1;
                c.to_string()
            });
            Tok {
                kind: TokKind::Punct,
                text,
                line,
                joined: false,
                raw_ident: false,
            }
        };
        let joined = matches!(chars.get(i), Some(&n) if !n.is_whitespace());
        let mut tok = tok;
        tok.joined = joined;
        toks.push(tok);
    }
    toks
}

/// Consumes a numeric literal starting at `i` (a digit). Handles ints,
/// underscores, hex/oct/bin prefixes, floats, exponents with signs, and
/// type suffixes. Returns the index one past the literal.
fn scan_number(chars: &[char], mut i: usize) -> usize {
    let radix_prefixed = chars[i] == '0'
        && matches!(
            chars.get(i + 1),
            Some(&'x') | Some(&'X') | Some(&'o') | Some(&'O') | Some(&'b') | Some(&'B')
        );
    if radix_prefixed {
        i += 2;
        while i < chars.len() && (chars[i].is_ascii_alphanumeric() || chars[i] == '_') {
            i += 1;
        }
        return i;
    }
    while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
        i += 1;
    }
    // A fractional part only when `.` is followed by a digit: `0..10`
    // stays a range, `1.max(2)` stays a method call.
    if chars.get(i) == Some(&'.') && matches!(chars.get(i + 1), Some(d) if d.is_ascii_digit()) {
        i += 1;
        while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
            i += 1;
        }
    }
    // Exponent: e/E, optional sign, at least one digit — otherwise the
    // `e` is a suffix-ish identifier char handled below.
    if matches!(chars.get(i), Some(&'e') | Some(&'E')) {
        let mut j = i + 1;
        if matches!(chars.get(j), Some(&'+') | Some(&'-')) {
            j += 1;
        }
        if matches!(chars.get(j), Some(d) if d.is_ascii_digit()) {
            i = j;
            while i < chars.len() && (chars[i].is_ascii_digit() || chars[i] == '_') {
                i += 1;
            }
        }
    }
    // Type suffix (`u64`, `f32`, `usize`) glued onto the literal.
    while i < chars.len() && is_ident_continue(chars[i]) {
        i += 1;
    }
    i
}

#[cfg(test)]
mod tests {
    use super::*;

    fn texts(src: &str) -> Vec<String> {
        tokenize(src).into_iter().map(|t| t.text).collect()
    }

    #[test]
    fn nested_generics_emit_single_gt_tokens() {
        let t = texts("Vec<Vec<u64>>");
        assert_eq!(t, vec!["Vec", "<", "Vec", "<", "u64", ">", ">"]);
        let toks = tokenize("x >> 2");
        assert_eq!(toks[1].text, ">");
        assert!(toks[1].joined, "shift `>`s are adjacent");
        assert_eq!(toks[2].text, ">");
        assert!(!toks[2].joined);
    }

    #[test]
    fn float_exponents_are_one_token() {
        assert_eq!(texts("1e-6"), vec!["1e-6"]);
        assert_eq!(texts("2.5E+10_f64"), vec!["2.5E+10_f64"]);
        assert_eq!(texts("1e6f64 + 2"), vec!["1e6f64", "+", "2"]);
        // Not an exponent: `e` with no digit after.
        assert_eq!(texts("1end"), vec!["1end"]); // suffix-glued, single token
        assert_eq!(texts("7 - 1e-6"), vec!["7", "-", "1e-6"]);
    }

    #[test]
    fn ranges_and_method_calls_do_not_eat_dots() {
        assert_eq!(texts("0..10"), vec!["0", "..", "10"]);
        assert_eq!(texts("1.max(2)"), vec!["1", ".", "max", "(", "2", ")"]);
        assert_eq!(texts("1.5.floor()"), vec!["1.5", ".", "floor", "(", ")"]);
    }

    #[test]
    fn raw_identifiers_are_idents_not_keywords() {
        let toks = tokenize("r#match + r#type");
        assert_eq!(toks[0].kind, TokKind::Ident);
        assert_eq!(toks[0].text, "match");
        assert!(toks[0].raw_ident);
        assert!(!toks[0].is_kw("match"));
        assert_eq!(toks[2].text, "type");
    }

    #[test]
    fn multi_char_puncts_munch_maximally() {
        assert_eq!(
            texts("a::b->c=>d..=e"),
            vec!["a", "::", "b", "->", "c", "=>", "d", "..=", "e"]
        );
        assert_eq!(texts("x <<= 1"), vec!["x", "<<=", "1"]);
        // but never >>: generics stay parseable.
        assert_eq!(texts("x >>= 1"), vec!["x", ">", ">", "=", "1"]);
    }

    #[test]
    fn lifetimes_and_lines() {
        let toks = tokenize("fn f<'a>(x: &'a str)\n-> u32");
        let lt: Vec<_> = toks
            .iter()
            .filter(|t| t.kind == TokKind::Lifetime)
            .collect();
        assert_eq!(lt.len(), 2);
        assert_eq!(toks.last().unwrap().line, 2);
        assert_eq!(toks.last().unwrap().text, "u32");
    }

    #[test]
    fn hex_and_binary_literals() {
        assert_eq!(texts("0xFF_u64 | 0b1010"), vec!["0xFF_u64", "|", "0b1010"]);
    }
}
