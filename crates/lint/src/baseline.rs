//! Checked-in baseline of grandfathered findings.
//!
//! The baseline file holds one [`Finding::key`] per line (blank lines
//! and `#` comments ignored). CI fails only on findings whose key is
//! absent from the baseline, so legacy debt can be burned down
//! incrementally without blocking unrelated work. Keys that no longer
//! match any finding are reported as *stale* so the file shrinks as
//! debt is paid.

use crate::diagnostics::Finding;
use std::collections::BTreeSet;
use std::path::Path;

/// Loads baseline keys. A missing file is an empty baseline.
pub fn load(path: &Path) -> Result<BTreeSet<String>, String> {
    if !path.exists() {
        return Ok(BTreeSet::new());
    }
    let text = std::fs::read_to_string(path)
        .map_err(|e| format!("read baseline {}: {e}", path.display()))?;
    Ok(parse(&text))
}

pub fn parse(text: &str) -> BTreeSet<String> {
    text.lines()
        .map(str::trim)
        .filter(|l| !l.is_empty() && !l.starts_with('#'))
        .map(str::to_string)
        .collect()
}

/// Splits findings into (new, grandfathered) and lists stale keys.
pub fn partition<'a>(
    findings: &'a [Finding],
    baseline: &BTreeSet<String>,
) -> (Vec<&'a Finding>, Vec<&'a Finding>, Vec<String>) {
    let mut new = Vec::new();
    let mut old = Vec::new();
    let mut seen: BTreeSet<String> = BTreeSet::new();
    for f in findings {
        let key = f.key();
        if baseline.contains(&key) {
            old.push(f);
        } else {
            new.push(f);
        }
        seen.insert(key);
    }
    let stale = baseline
        .iter()
        .filter(|k| !seen.contains(*k))
        .cloned()
        .collect();
    (new, old, stale)
}

/// The header written when the baseline file has none of its own.
pub const DEFAULT_HEADER: &str =
    "# dcat-lint baseline: grandfathered finding keys (code|path|snippet).\n\
     # CI fails only on findings NOT listed here. Regenerate with\n\
     # `cargo run -p dcat-lint -- --write-baseline lint-baseline.txt`.\n";

/// Extracts the leading comment/blank block of an existing baseline file
/// so a rewrite keeps any hand-written notes above the keys.
pub fn header_of(text: &str) -> Option<String> {
    let mut header = String::new();
    for line in text.lines() {
        let t = line.trim();
        if t.starts_with('#') || t.is_empty() {
            header.push_str(line);
            header.push('\n');
        } else {
            break;
        }
    }
    (!header.trim().is_empty()).then_some(header)
}

/// Serializes findings as a baseline file body.
pub fn render(findings: &[Finding]) -> String {
    render_with_header(findings, None)
}

/// Serializes findings under `header` (the default header when `None`).
pub fn render_with_header(findings: &[Finding], header: Option<&str>) -> String {
    let mut keys: Vec<String> = findings.iter().map(Finding::key).collect();
    keys.sort();
    keys.dedup();
    render_keys(keys.iter().map(String::as_str), header)
}

/// Serializes an already-deduplicated key sequence under `header`.
pub fn render_keys<'a>(keys: impl Iterator<Item = &'a str>, header: Option<&str>) -> String {
    let mut out = String::from(header.unwrap_or(DEFAULT_HEADER));
    for k in keys {
        out.push_str(k);
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn f(code: &'static str, snippet: &str) -> Finding {
        Finding {
            code,
            path: "p.rs".into(),
            line: 1,
            message: String::new(),
            snippet: snippet.into(),
            trace: Vec::new(),
        }
    }

    #[test]
    fn partition_splits_and_reports_stale() {
        let findings = vec![f("DL001", "a"), f("DL002", "b")];
        let mut base = BTreeSet::new();
        base.insert(findings[0].key());
        base.insert("DL009|gone.rs|x".to_string());
        let (new, old, stale) = partition(&findings, &base);
        assert_eq!(new.len(), 1);
        assert_eq!(old.len(), 1);
        assert_eq!(stale, vec!["DL009|gone.rs|x".to_string()]);
    }

    #[test]
    fn parse_skips_comments_and_blanks() {
        let b = parse("# header\n\nDL001|p.rs|a\n  DL002|p.rs|b  \n");
        assert_eq!(b.len(), 2);
    }

    #[test]
    fn render_round_trips() {
        let findings = vec![f("DL001", "a"), f("DL001", "a")];
        let text = render(&findings);
        let parsed = parse(&text);
        assert_eq!(parsed.len(), 1);
        assert!(parsed.contains(&findings[0].key()));
    }

    #[test]
    fn rewrite_preserves_hand_written_header() {
        let old = "# team notes: keep until Q3\n# second line\n\nDL001|p.rs|a\n";
        let header = header_of(old).expect("header detected");
        let text = render_with_header(&[f("DL002", "b")], Some(&header));
        assert!(text.starts_with("# team notes: keep until Q3\n# second line\n\n"));
        assert!(text.ends_with("DL002|p.rs|b\n"));
        // A body with no header block falls back to the default.
        assert_eq!(header_of("DL001|p.rs|a\n"), None);
        assert!(render_with_header(&[], None).starts_with("# dcat-lint baseline"));
    }

    #[test]
    fn render_keys_keeps_given_order() {
        let text = render_keys(["k2", "k1"].into_iter(), Some("# h\n"));
        assert_eq!(text, "# h\nk2\nk1\n");
    }
}
