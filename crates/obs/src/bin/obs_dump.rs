//! obs-dump: pretty-print and validate dcat-obs artifacts.
//!
//! ```text
//! obs-dump [--check] <file>...
//! ```
//!
//! Formats are detected per file: `.jsonl` (or a leading `{`) is treated as
//! JSONL (metrics export, flight-recorder dump, or `dcat-frames/v1`
//! stream); anything else as Prometheus text. With `--check`, each file is
//! validated and the process exits non-zero on the first malformed
//! artifact — the mode CI uses. Flight dumps must carry the
//! `dcat-flight/v1` schema in their header; headerless or unknown-version
//! dumps are rejected. Frame streams go through the same
//! [`dcat_obs::frames::parse_stream`] validator `dcat-top --replay` uses.

use dcat_obs::frames;
use dcat_obs::json::{self, Value};
use dcat_obs::promcheck;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut check = false;
    let mut files = Vec::new();
    for a in &args {
        match a.as_str() {
            "--check" => check = true,
            "--help" | "-h" => {
                println!("usage: obs-dump [--check] <file>...");
                return;
            }
            other if other.starts_with('-') => {
                eprintln!("obs-dump: unknown flag {other}");
                std::process::exit(2);
            }
            path => files.push(path.to_string()),
        }
    }
    if files.is_empty() {
        eprintln!("usage: obs-dump [--check] <file>...");
        std::process::exit(2);
    }

    let mut failed = false;
    for path in &files {
        let text = match std::fs::read_to_string(path) {
            Ok(t) => t,
            Err(e) => {
                eprintln!("obs-dump: {path}: {e}");
                failed = true;
                continue;
            }
        };
        let jsonl = path.ends_with(".jsonl") || text.trim_start().starts_with('{');
        let result = if jsonl {
            dump_jsonl(path, &text, check)
        } else {
            dump_prometheus(path, &text, check)
        };
        if let Err(e) = result {
            eprintln!("obs-dump: {path}: {e}");
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
}

fn dump_prometheus(path: &str, text: &str, check: bool) -> Result<(), String> {
    let summary = promcheck::check_prometheus(text)?;
    if check {
        println!(
            "{path}: OK prometheus ({} families, {} samples)",
            summary.families, summary.samples
        );
        return Ok(());
    }
    println!(
        "{path}: prometheus text, {} families, {} samples",
        summary.families, summary.samples
    );
    let mut family = String::new();
    let mut series = 0usize;
    let flush = |family: &str, series: usize| {
        if !family.is_empty() {
            println!("  {family:<40} {series} series");
        }
    };
    for line in text.lines() {
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            flush(&family, series);
            family = rest.to_string();
            series = 0;
        } else if !line.is_empty() && !line.starts_with('#') {
            series += 1;
        }
    }
    flush(&family, series);
    Ok(())
}

/// What a JSONL file claims to be, from its first non-empty line.
enum JsonlKind {
    Frames,
    Flight,
    /// Tick-shaped records with no `flight_header` — a pre-v1 dump.
    HeaderlessFlight,
    Generic,
}

fn classify_jsonl(text: &str) -> JsonlKind {
    let first = text.lines().find(|l| !l.trim().is_empty()).unwrap_or("");
    let Ok(v) = json::parse(first) else {
        return JsonlKind::Generic;
    };
    match v.get("record").and_then(Value::as_str) {
        Some("frames_header") | Some("frame") => JsonlKind::Frames,
        Some("flight_header") => JsonlKind::Flight,
        _ if v.get("tick").is_some() && v.get("spans").is_some() => JsonlKind::HeaderlessFlight,
        _ => JsonlKind::Generic,
    }
}

fn dump_jsonl(path: &str, text: &str, check: bool) -> Result<(), String> {
    let lines = match classify_jsonl(text) {
        JsonlKind::Frames => {
            let summary = frames::check_frames(text)?;
            if check {
                println!(
                    "{path}: OK frames ({} segments, {} frames)",
                    summary.segments, summary.frames
                );
                return Ok(());
            }
            summary.segments + summary.frames
        }
        JsonlKind::Flight => {
            let ticks = frames::check_flight(text)?;
            if check {
                println!("{path}: OK flight ({ticks} ticks)");
                return Ok(());
            }
            ticks + 1
        }
        JsonlKind::HeaderlessFlight => {
            return Err(
                "flight dump has no flight_header (headerless pre-v1 dump is rejected)".to_string(),
            );
        }
        JsonlKind::Generic => {
            let lines = promcheck::check_jsonl(text)?;
            if check {
                println!("{path}: OK jsonl ({lines} records)");
                return Ok(());
            }
            lines
        }
    };
    println!("{path}: jsonl, {lines} records");
    for line in text.lines() {
        if line.trim().is_empty() {
            continue;
        }
        let v = json::parse(line)?;
        println!("  {}", summarize(&v));
    }
    Ok(())
}

fn summarize(v: &Value) -> String {
    if let Some(kind) = v.get("record").and_then(Value::as_str) {
        if kind == "flight_header" {
            return format!(
                "flight header: schema={} capacity={} retained={} dropped={}",
                v.get("schema").and_then(Value::as_str).unwrap_or("?"),
                num(v, "capacity"),
                num(v, "retained"),
                num(v, "dropped"),
            );
        }
        if kind == "frames_header" {
            return format!(
                "frames header: schema={} source={}",
                v.get("schema").and_then(Value::as_str).unwrap_or("?"),
                v.get("source").and_then(Value::as_str).unwrap_or("?"),
            );
        }
        if kind == "frame" {
            let domains = match v.get("domains") {
                Some(Value::Arr(d)) => d.len(),
                _ => 0,
            };
            let degraded = matches!(v.get("degraded"), Some(Value::Bool(true)));
            return format!(
                "frame {:>6}: {domains} domains, cos={} ways_moved={}{}",
                num(v, "tick"),
                num(v, "cos"),
                num(v, "ways_moved"),
                if degraded { ", DEGRADED" } else { "" },
            );
        }
    }
    if v.get("tick").is_some() && v.get("spans").is_some() {
        let spans = match v.get("spans") {
            Some(Value::Arr(s)) => s.len(),
            _ => 0,
        };
        let events = match v.get("events") {
            Some(Value::Arr(e)) => e.len(),
            _ => 0,
        };
        let degraded = matches!(v.get("degraded"), Some(Value::Bool(true)));
        return format!(
            "tick {:>6}: {spans} spans, {events} events{}",
            num(v, "tick"),
            if degraded { ", DEGRADED" } else { "" },
        );
    }
    if let (Some(name), Some(kind)) = (
        v.get("name").and_then(Value::as_str),
        v.get("kind").and_then(Value::as_str),
    ) {
        return format!("metric {name} ({kind})");
    }
    "record".to_string()
}

fn num(v: &Value, key: &str) -> u64 {
    v.get(key).and_then(Value::as_num).unwrap_or(0.0) as u64
}
