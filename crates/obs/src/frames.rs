//! `dcat-frames/v1`: a deterministic per-tick frame stream for `dcat-top`.
//!
//! One JSONL record per tick, carrying everything an operator watches
//! live: per-domain way occupancy and CBM, Figure-6 state class, IPC vs.
//! baseline, degraded-tick reason, quarantine status, and a policy
//! decision summary (ways moved, COS count, LFOC clustering / Memshare
//! ledger when those policies are active). The encoder lives here — below
//! the daemon and the bench harness — so `run_daemon_observed` and
//! `bench::scenario`/`bench::fleet` all emit identical bytes for
//! identical ticks, and the determinism regression can diff streams
//! across `--jobs` widths.
//!
//! A stream is a sequence of *segments*: a `frames_header` record
//! (schema and source) followed by `frame` records with strictly
//! increasing ticks.
//! Concatenating streams concatenates segments, which is how multi-run
//! exports (e.g. fig07's streaming/non-streaming pair) stay valid.
//!
//! [`parse_stream`] is the single validator: `obs-dump --check` and
//! `dcat-top --replay` both go through it, so a stream the dashboard can
//! step is exactly a stream CI accepts. [`check_flight`] is the matching
//! validator for `dcat-flight/v1` recorder dumps.

use crate::json::{self, array, Obj, Value};
use std::collections::BTreeMap;

/// Schema tag carried by every `frames_header` record.
pub const FRAMES_SCHEMA: &str = "dcat-frames/v1";

/// Schema tag carried by every `flight_header` record
/// (see [`crate::recorder::FlightRecorder::dump_jsonl`]).
pub const FLIGHT_SCHEMA: &str = "dcat-flight/v1";

/// The state-machine class strings `dcat::state::WorkloadClass` renders;
/// any other `class` value fails validation.
pub const KNOWN_CLASSES: &[&str] = &[
    "Keeper",
    "Donor",
    "Receiver",
    "Streaming",
    "Unknown",
    "Reclaim",
];

/// Degraded-tick reasons `dcat::events::DegradeReason` renders.
pub const KNOWN_REASONS: &[&str] = &["telemetry", "resctrl"];

/// One domain's slice of a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct DomainFrame {
    pub name: String,
    /// State-machine class, rendered (one of [`KNOWN_CLASSES`]).
    pub class: String,
    /// Ways currently granted.
    pub ways: u32,
    /// Raw capacity bitmask when the policy programs one.
    pub cbm: Option<u64>,
    pub ipc: f64,
    /// IPC normalized to the recorded baseline, when a baseline exists.
    pub norm_ipc: Option<f64>,
    pub miss_rate: f64,
    pub baseline_ipc: Option<f64>,
    /// Domain is quarantined (telemetry dead, allocation frozen).
    pub quarantined: bool,
    /// This tick skipped the domain (no usable interval).
    pub held: bool,
}

/// LFOC decision summary (present when the LFOC policy is active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LfocExt {
    /// Occupied sensitive clusters this tick.
    pub clusters: u32,
    /// Domains fenced into the shared insensitive bucket.
    pub insensitive: u32,
}

/// Memshare ledger summary (present when the Memshare policy is active).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct MemshareExt {
    /// Ways currently lent out of their entitlements.
    pub lent: u32,
    pub credit_min: i64,
    pub credit_max: i64,
}

/// Policy decision summary attached to every frame. The default is what
/// a policy with no COS bookkeeping reports.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct PolicyExt {
    /// COS (partitions) in use this tick; 0 when the policy has none.
    pub cos: u32,
    pub lfoc: Option<LfocExt>,
    pub memshare: Option<MemshareExt>,
}

/// One tick of the stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Frame {
    pub tick: u64,
    /// Policy name (e.g. `dcat`, `lfoc`, `static`).
    pub policy: String,
    pub degraded: bool,
    /// Required when `degraded` (one of [`KNOWN_REASONS`]).
    pub reason: Option<String>,
    /// Total |Δways| vs. the previous frame ([`FrameWriter::push`] fills
    /// this in; the first frame of a segment reports 0).
    pub ways_moved: u32,
    /// Events the daemon emitted this tick.
    pub events: u64,
    pub ext: PolicyExt,
    pub domains: Vec<DomainFrame>,
}

/// Finite floats render `{v:?}`; non-finite render `null`, mirroring the
/// metrics JSONL export.
fn f64_raw(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn opt_f64_raw(v: Option<f64>) -> String {
    v.map_or_else(|| "null".to_string(), f64_raw)
}

fn opt_u64_raw(v: Option<u64>) -> String {
    v.map_or_else(|| "null".to_string(), |n| n.to_string())
}

/// Render a segment header line (no trailing newline).
pub fn header_line(source: &str) -> String {
    Obj::new()
        .str_field("record", "frames_header")
        .str_field("schema", FRAMES_SCHEMA)
        .str_field("source", source)
        .finish()
}

fn encode_domain(d: &DomainFrame) -> String {
    Obj::new()
        .str_field("name", &d.name)
        .str_field("class", &d.class)
        .u64_field("ways", u64::from(d.ways))
        .raw_field("cbm", &opt_u64_raw(d.cbm))
        .raw_field("ipc", &f64_raw(d.ipc))
        .raw_field("norm_ipc", &opt_f64_raw(d.norm_ipc))
        .raw_field("miss_rate", &f64_raw(d.miss_rate))
        .raw_field("baseline_ipc", &opt_f64_raw(d.baseline_ipc))
        .bool_field("quarantined", d.quarantined)
        .bool_field("held", d.held)
        .finish()
}

/// Encode one frame as a single JSONL line (no trailing newline). Pure:
/// the per-tick daemon cost of the export is exactly one call of this
/// (tracked by the `frame_encode_tick` perfbench case).
pub fn encode_frame(f: &Frame) -> String {
    let mut obj = Obj::new()
        .str_field("record", "frame")
        .u64_field("tick", f.tick)
        .str_field("policy", &f.policy)
        .bool_field("degraded", f.degraded);
    if let Some(reason) = &f.reason {
        obj = obj.str_field("reason", reason);
    }
    obj = obj
        .u64_field("ways_moved", u64::from(f.ways_moved))
        .u64_field("cos", u64::from(f.ext.cos));
    if let Some(l) = f.ext.lfoc {
        let nested = Obj::new()
            .u64_field("clusters", u64::from(l.clusters))
            .u64_field("insensitive", u64::from(l.insensitive))
            .finish();
        obj = obj.raw_field("lfoc", &nested);
    }
    if let Some(m) = f.ext.memshare {
        let nested = Obj::new()
            .u64_field("lent", u64::from(m.lent))
            .raw_field("credit_min", &m.credit_min.to_string())
            .raw_field("credit_max", &m.credit_max.to_string())
            .finish();
        obj = obj.raw_field("memshare", &nested);
    }
    let domains: Vec<String> = f.domains.iter().map(encode_domain).collect();
    obj.u64_field("events", f.events)
        .raw_field("domains", &array(&domains))
        .finish()
}

/// Incremental stream writer: emits the segment header at construction,
/// computes `ways_moved` against the previous frame, and accumulates the
/// rendered lines so batch producers (scenario, fleet) can hand the whole
/// segment to the coordinator while live producers (`dcatd`) append each
/// returned line to a file as it is produced.
#[derive(Debug)]
pub struct FrameWriter {
    header: String,
    buf: String,
    prev_ways: BTreeMap<String, u32>,
}

impl FrameWriter {
    /// Start a segment. `source` names the producer (`dcatd`,
    /// `scenario:dcat`, `fleet-host:3`, ...).
    pub fn new(source: &str) -> Self {
        let mut header = header_line(source);
        header.push('\n');
        FrameWriter {
            buf: header.clone(),
            header,
            prev_ways: BTreeMap::new(),
        }
    }

    /// The rendered header line this writer opened with (with newline).
    pub fn header(&self) -> &str {
        &self.header
    }

    /// Fill in `ways_moved`, encode, append to the buffer, and return the
    /// rendered line (newline-terminated) for incremental sinks.
    pub fn push(&mut self, mut frame: Frame) -> String {
        let mut moved = 0u32;
        for d in &frame.domains {
            let prev = self.prev_ways.get(&d.name).copied().unwrap_or(d.ways);
            moved += d.ways.abs_diff(prev);
        }
        frame.ways_moved = moved;
        self.prev_ways = frame
            .domains
            .iter()
            .map(|d| (d.name.clone(), d.ways))
            .collect();
        let mut line = encode_frame(&frame);
        line.push('\n');
        self.buf.push_str(&line);
        line
    }

    /// The whole segment rendered so far (header + frames, one per line).
    pub fn buffer(&self) -> &str {
        &self.buf
    }

    /// Drop the accumulated text (the `ways_moved` state is kept).
    /// Incremental sinks that persist each line returned by
    /// [`FrameWriter::push`] — a long-running `dcatd` — call this per tick
    /// so the in-memory buffer stays bounded.
    pub fn clear_buffer(&mut self) {
        self.buf.clear();
    }

    pub fn into_string(self) -> String {
        self.buf
    }
}

impl Default for FrameWriter {
    fn default() -> Self {
        FrameWriter::new("unknown")
    }
}

/// One validated segment of a stream.
#[derive(Debug, Clone, PartialEq)]
pub struct Segment {
    pub source: String,
    pub frames: Vec<Frame>,
}

/// Validation summary returned by [`check_frames`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FramesSummary {
    pub segments: usize,
    pub frames: usize,
}

fn field<'v>(v: &'v Value, key: &str, line: usize) -> Result<&'v Value, String> {
    v.get(key)
        .ok_or_else(|| format!("line {line}: missing field '{key}'"))
}

fn num_field(v: &Value, key: &str, line: usize) -> Result<f64, String> {
    field(v, key, line)?
        .as_num()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a number"))
}

fn str_field(v: &Value, key: &str, line: usize) -> Result<String, String> {
    Ok(field(v, key, line)?
        .as_str()
        .ok_or_else(|| format!("line {line}: field '{key}' is not a string"))?
        .to_string())
}

fn bool_field(v: &Value, key: &str, line: usize) -> Result<bool, String> {
    match field(v, key, line)? {
        Value::Bool(b) => Ok(*b),
        _ => Err(format!("line {line}: field '{key}' is not a bool")),
    }
}

fn opt_num(v: &Value, key: &str) -> Option<f64> {
    v.get(key).and_then(Value::as_num)
}

fn parse_domain(v: &Value, line: usize) -> Result<DomainFrame, String> {
    let class = str_field(v, "class", line)?;
    if !KNOWN_CLASSES.contains(&class.as_str()) {
        return Err(format!("line {line}: unknown state class '{class}'"));
    }
    Ok(DomainFrame {
        name: str_field(v, "name", line)?,
        class,
        ways: num_field(v, "ways", line)? as u32,
        cbm: opt_num(v, "cbm").map(|n| n as u64),
        ipc: num_field(v, "ipc", line)?,
        norm_ipc: opt_num(v, "norm_ipc"),
        miss_rate: num_field(v, "miss_rate", line)?,
        baseline_ipc: opt_num(v, "baseline_ipc"),
        quarantined: bool_field(v, "quarantined", line)?,
        held: bool_field(v, "held", line)?,
    })
}

fn parse_frame(v: &Value, line: usize) -> Result<Frame, String> {
    let degraded = bool_field(v, "degraded", line)?;
    let reason = v.get("reason").and_then(Value::as_str).map(str::to_string);
    if degraded {
        match &reason {
            Some(r) if KNOWN_REASONS.contains(&r.as_str()) => {}
            Some(r) => return Err(format!("line {line}: unknown degrade reason '{r}'")),
            None => return Err(format!("line {line}: degraded frame without a reason")),
        }
    }
    let ext = PolicyExt {
        cos: num_field(v, "cos", line)? as u32,
        lfoc: match v.get("lfoc") {
            Some(l) => Some(LfocExt {
                clusters: num_field(l, "clusters", line)? as u32,
                insensitive: num_field(l, "insensitive", line)? as u32,
            }),
            None => None,
        },
        memshare: match v.get("memshare") {
            Some(m) => Some(MemshareExt {
                lent: num_field(m, "lent", line)? as u32,
                credit_min: num_field(m, "credit_min", line)? as i64,
                credit_max: num_field(m, "credit_max", line)? as i64,
            }),
            None => None,
        },
    };
    let domains = match field(v, "domains", line)? {
        Value::Arr(items) => {
            let mut out = Vec::with_capacity(items.len());
            for item in items {
                out.push(parse_domain(item, line)?);
            }
            out
        }
        _ => return Err(format!("line {line}: field 'domains' is not an array")),
    };
    Ok(Frame {
        tick: num_field(v, "tick", line)? as u64,
        policy: str_field(v, "policy", line)?,
        degraded,
        reason,
        ways_moved: num_field(v, "ways_moved", line)? as u32,
        events: num_field(v, "events", line)? as u64,
        ext,
        domains,
    })
}

/// Parse and validate a `dcat-frames/v1` stream. This is the one
/// validator: `obs-dump --check` summarizes its result and
/// `dcat-top --replay` renders its segments, so anything the dashboard
/// can step is exactly what CI accepts. Enforced per segment: header
/// first, known schema, strictly increasing ticks, known state classes,
/// degraded frames carry a known reason.
pub fn parse_stream(text: &str) -> Result<Vec<Segment>, String> {
    let mut segments: Vec<Segment> = Vec::new();
    let mut last_tick: Option<u64> = None;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        match v.get("record").and_then(Value::as_str) {
            Some("frames_header") => {
                let schema = str_field(&v, "schema", line)?;
                if schema != FRAMES_SCHEMA {
                    return Err(format!("line {line}: unsupported frames schema '{schema}'"));
                }
                segments.push(Segment {
                    source: str_field(&v, "source", line)?,
                    frames: Vec::new(),
                });
                last_tick = None;
            }
            Some("frame") => {
                let seg = segments
                    .last_mut()
                    .ok_or_else(|| format!("line {line}: frame before any frames_header"))?;
                let frame = parse_frame(&v, line)?;
                if let Some(prev) = last_tick {
                    if frame.tick <= prev {
                        return Err(format!(
                            "line {line}: tick {} is not greater than previous tick {prev}",
                            frame.tick
                        ));
                    }
                }
                last_tick = Some(frame.tick);
                seg.frames.push(frame);
            }
            Some(other) => {
                return Err(format!("line {line}: unknown record kind '{other}'"));
            }
            None => return Err(format!("line {line}: missing 'record' field")),
        }
    }
    if segments.is_empty() {
        return Err("stream has no frames_header record".to_string());
    }
    Ok(segments)
}

/// Validate a frame stream and summarize it (the `obs-dump --check` path).
pub fn check_frames(text: &str) -> Result<FramesSummary, String> {
    let segments = parse_stream(text)?;
    let frames = segments.iter().map(|s| s.frames.len()).sum();
    Ok(FramesSummary {
        segments: segments.len(),
        frames,
    })
}

/// One tick of a parsed flight-recorder dump, summarized for replay.
#[derive(Debug, Clone, PartialEq)]
pub struct FlightTick {
    pub tick: u64,
    pub degraded: bool,
    pub spans: usize,
    /// Event summaries: the event name plus its domain or reason when one
    /// is present (e.g. `domain_quarantined(vm3)`).
    pub events: Vec<String>,
}

fn event_summary(v: &Value) -> String {
    let name = v
        .get("event")
        .and_then(Value::as_str)
        .unwrap_or("event")
        .to_string();
    let detail = v
        .get("domain")
        .or_else(|| v.get("reason"))
        .and_then(Value::as_str);
    match detail {
        Some(d) => format!("{name}({d})"),
        None => name,
    }
}

/// Parse and validate a `dcat-flight/v1` recorder dump: a `flight_header`
/// carrying the schema field first, then tick records with strictly
/// increasing ticks. Headerless or unknown-version dumps are rejected —
/// the satellite contract behind `obs-dump --check`.
pub fn parse_flight(text: &str) -> Result<Vec<FlightTick>, String> {
    let mut ticks: Vec<FlightTick> = Vec::new();
    let mut saw_header = false;
    for (idx, raw) in text.lines().enumerate() {
        let line = idx + 1;
        if raw.trim().is_empty() {
            continue;
        }
        let v = json::parse(raw).map_err(|e| format!("line {line}: {e}"))?;
        if !saw_header {
            if v.get("record").and_then(Value::as_str) != Some("flight_header") {
                return Err(format!(
                    "line {line}: flight dump does not start with a flight_header (headerless pre-v1 dump?)"
                ));
            }
            let schema = v.get("schema").and_then(Value::as_str).ok_or_else(|| {
                format!("line {line}: flight_header has no schema field (pre-v1 dump)")
            })?;
            if schema != FLIGHT_SCHEMA {
                return Err(format!("line {line}: unsupported flight schema '{schema}'"));
            }
            saw_header = true;
            continue;
        }
        let tick = num_field(&v, "tick", line)? as u64;
        if let Some(prev) = ticks.last() {
            if tick <= prev.tick {
                return Err(format!(
                    "line {line}: tick {tick} is not greater than previous tick {}",
                    prev.tick
                ));
            }
        }
        let spans = match field(&v, "spans", line)? {
            Value::Arr(s) => s.len(),
            _ => return Err(format!("line {line}: field 'spans' is not an array")),
        };
        let events = match field(&v, "events", line)? {
            Value::Arr(e) => e.iter().map(event_summary).collect(),
            _ => return Err(format!("line {line}: field 'events' is not an array")),
        };
        ticks.push(FlightTick {
            tick,
            degraded: bool_field(&v, "degraded", line)?,
            spans,
            events,
        });
    }
    if !saw_header {
        return Err("flight dump is empty (no flight_header)".to_string());
    }
    Ok(ticks)
}

/// Validate a flight dump and return the number of tick records.
pub fn check_flight(text: &str) -> Result<usize, String> {
    parse_flight(text).map(|ticks| ticks.len())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn domain(name: &str, ways: u32) -> DomainFrame {
        DomainFrame {
            name: name.to_string(),
            class: "Keeper".to_string(),
            ways,
            cbm: Some(0xf0),
            ipc: 1.25,
            norm_ipc: Some(1.01),
            miss_rate: 0.02,
            baseline_ipc: Some(1.23),
            quarantined: false,
            held: false,
        }
    }

    fn frame(tick: u64, ways: &[u32]) -> Frame {
        Frame {
            tick,
            policy: "dcat".to_string(),
            degraded: false,
            reason: None,
            ways_moved: 0,
            events: 0,
            ext: PolicyExt {
                cos: ways.len() as u32,
                ..PolicyExt::default()
            },
            domains: ways
                .iter()
                .enumerate()
                .map(|(i, &w)| domain(&format!("vm{i}"), w))
                .collect(),
        }
    }

    #[test]
    fn writer_emits_header_then_frames_and_computes_ways_moved() {
        let mut w = FrameWriter::new("scenario:dcat");
        let l1 = w.push(frame(1, &[4, 4]));
        let l2 = w.push(frame(2, &[6, 2]));
        assert!(l1.ends_with('\n') && l2.ends_with('\n'));
        let segs = parse_stream(w.buffer()).expect("writer output validates");
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].source, "scenario:dcat");
        // First frame of a segment moves nothing; the second moved
        // |6-4| + |2-4| = 4 ways.
        assert_eq!(segs[0].frames[0].ways_moved, 0);
        assert_eq!(segs[0].frames[1].ways_moved, 4);
        assert_eq!(w.header(), format!("{}\n", header_line("scenario:dcat")));
    }

    #[test]
    fn fully_populated_frame_round_trips() {
        let mut f = frame(9, &[3]);
        f.degraded = true;
        f.reason = Some("resctrl".to_string());
        f.events = 2;
        f.ways_moved = 1;
        f.ext.lfoc = Some(LfocExt {
            clusters: 3,
            insensitive: 5,
        });
        f.ext.memshare = Some(MemshareExt {
            lent: 4,
            credit_min: -7,
            credit_max: 12,
        });
        f.domains[0].quarantined = true;
        f.domains[0].held = true;
        f.domains[0].cbm = None;
        f.domains[0].norm_ipc = None;
        let line = encode_frame(&f);
        let v = json::parse(&line).expect("frame encodes as JSON");
        let back = parse_frame(&v, 1).expect("frame parses back");
        assert_eq!(back, f);
    }

    #[test]
    fn non_finite_floats_render_as_null() {
        let mut f = frame(1, &[2]);
        f.domains[0].ipc = f64::NAN;
        let line = encode_frame(&f);
        assert!(line.contains("\"ipc\":null"));
        json::parse(&line).expect("null ipc still parses");
    }

    #[test]
    fn concatenated_segments_validate_and_reset_tick_monotonicity() {
        let mut a = FrameWriter::new("scenario:a");
        a.push(frame(1, &[4]));
        a.push(frame(2, &[4]));
        let mut b = FrameWriter::new("scenario:b");
        b.push(frame(1, &[4]));
        let text = format!("{}{}", a.buffer(), b.buffer());
        let summary = check_frames(&text).expect("two segments validate");
        assert_eq!(
            summary,
            FramesSummary {
                segments: 2,
                frames: 3
            }
        );
    }

    #[test]
    fn validator_rejects_malformed_streams() {
        // Headerless.
        let bare = encode_frame(&frame(1, &[4]));
        assert!(parse_stream(&bare).unwrap_err().contains("frames_header"));
        // Unknown schema version.
        let bad = "{\"record\":\"frames_header\",\"schema\":\"dcat-frames/v9\",\"source\":\"x\"}";
        assert!(parse_stream(bad).unwrap_err().contains("unsupported"));
        // Non-monotonic ticks.
        let mut w = FrameWriter::new("x");
        w.push(frame(2, &[4]));
        w.push(frame(2, &[4]));
        assert!(parse_stream(w.buffer())
            .unwrap_err()
            .contains("not greater"));
        // Unknown state class.
        let mut w = FrameWriter::new("x");
        let mut f = frame(1, &[4]);
        f.domains[0].class = "Sleeper".to_string();
        w.push(f);
        assert!(parse_stream(w.buffer())
            .unwrap_err()
            .contains("unknown state class"));
        // Degraded without a reason.
        let mut w = FrameWriter::new("x");
        let mut f = frame(1, &[4]);
        f.degraded = true;
        w.push(f);
        assert!(parse_stream(w.buffer())
            .unwrap_err()
            .contains("without a reason"));
        // Empty input.
        assert!(check_frames("").is_err());
    }

    #[test]
    fn flight_validator_requires_versioned_header() {
        let good = "{\"record\":\"flight_header\",\"schema\":\"dcat-flight/v1\",\"capacity\":4,\"retained\":1,\"dropped\":0}\n\
                    {\"tick\":3,\"degraded\":false,\"spans\":[],\"events\":[{\"event\":\"domain_quarantined\",\"domain\":\"vm3\",\"after_ticks\":5}]}\n";
        let ticks = parse_flight(good).expect("v1 dump validates");
        assert_eq!(ticks.len(), 1);
        assert_eq!(ticks[0].events, vec!["domain_quarantined(vm3)".to_string()]);

        let headerless = "{\"tick\":3,\"degraded\":false,\"spans\":[],\"events\":[]}\n";
        assert!(check_flight(headerless).unwrap_err().contains("headerless"));

        let unversioned =
            "{\"record\":\"flight_header\",\"capacity\":4,\"retained\":0,\"dropped\":0}\n";
        assert!(check_flight(unversioned).unwrap_err().contains("schema"));

        let wrong =
            "{\"record\":\"flight_header\",\"schema\":\"dcat-flight/v2\",\"capacity\":4,\"retained\":0,\"dropped\":0}\n";
        assert!(check_flight(wrong).unwrap_err().contains("unsupported"));

        let regressing = format!(
            "{}\n{}\n{}\n",
            "{\"record\":\"flight_header\",\"schema\":\"dcat-flight/v1\",\"capacity\":4,\"retained\":2,\"dropped\":0}",
            "{\"tick\":5,\"degraded\":false,\"spans\":[],\"events\":[]}",
            "{\"tick\":4,\"degraded\":false,\"spans\":[],\"events\":[]}",
        );
        assert!(check_flight(&regressing)
            .unwrap_err()
            .contains("not greater"));
    }
}
