//! Hand-rolled JSON support: string escaping, an insertion-ordered object
//! builder, and a minimal recursive-descent parser.
//!
//! The workspace is dependency-free by policy, so there is no serde. The
//! builder is what every producer in this crate (and `dcat::events`) uses to
//! render records; the parser exists so `obs-dump --check` and the round-trip
//! tests can validate the producers without a second implementation of the
//! escaping rules.

/// Append `s` to `out` with JSON string escaping applied.
pub fn escape_into(out: &mut String, s: &str) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let code = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (code >> shift) & 0xf;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// Escape `s` and wrap it in double quotes.
pub fn quote(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    out.push('"');
    escape_into(&mut out, s);
    out.push('"');
    out
}

/// Insertion-ordered JSON object builder.
#[derive(Debug, Default)]
pub struct Obj {
    buf: String,
}

impl Obj {
    pub fn new() -> Self {
        Obj { buf: String::new() }
    }

    fn key(&mut self, k: &str) {
        if !self.buf.is_empty() {
            self.buf.push(',');
        }
        self.buf.push('"');
        escape_into(&mut self.buf, k);
        self.buf.push_str("\":");
    }

    pub fn str_field(mut self, k: &str, v: &str) -> Self {
        self.key(k);
        self.buf.push('"');
        escape_into(&mut self.buf, v);
        self.buf.push('"');
        self
    }

    pub fn u64_field(mut self, k: &str, v: u64) -> Self {
        self.key(k);
        self.buf.push_str(&v.to_string());
        self
    }

    pub fn bool_field(mut self, k: &str, v: bool) -> Self {
        self.key(k);
        self.buf.push_str(if v { "true" } else { "false" });
        self
    }

    /// Append a field whose value is already-rendered JSON (object, array,
    /// number...). The caller is responsible for `raw` being valid.
    pub fn raw_field(mut self, k: &str, raw: &str) -> Self {
        self.key(k);
        self.buf.push_str(raw);
        self
    }

    pub fn finish(self) -> String {
        let mut out = String::with_capacity(self.buf.len() + 2);
        out.push('{');
        out.push_str(&self.buf);
        out.push('}');
        out
    }
}

/// Render a JSON array from already-rendered element strings.
pub fn array(elems: &[String]) -> String {
    let mut out = String::new();
    out.push('[');
    for (i, e) in elems.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(e);
    }
    out.push(']');
    out
}

/// A parsed JSON value. Object member order is preserved.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    Num(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Look up a member of an object value by key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        match self {
            Value::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_num(&self) -> Option<f64> {
        match self {
            Value::Num(n) => Some(*n),
            _ => None,
        }
    }
}

/// Parse a complete JSON document. Trailing non-whitespace is an error.
pub fn parse(text: &str) -> Result<Value, String> {
    let mut p = Parser {
        bytes: text.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(format!("trailing data at byte {}", p.pos));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), String> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(format!("expected '{}' at byte {}", b as char, self.pos))
        }
    }

    fn value(&mut self) -> Result<Value, String> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::Str(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => Err(format!("unexpected value at byte {}", self.pos)),
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, String> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(format!("bad literal at byte {}", self.pos))
        }
    }

    fn object(&mut self) -> Result<Value, String> {
        self.expect(b'{')?;
        let mut members = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(members));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            members.push((key, val));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(members));
                }
                _ => return Err(format!("expected ',' or '}}' at byte {}", self.pos)),
            }
        }
    }

    fn array(&mut self) -> Result<Value, String> {
        self.expect(b'[')?;
        let mut elems = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(elems));
        }
        loop {
            self.skip_ws();
            elems.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(elems));
                }
                _ => return Err(format!("expected ',' or ']' at byte {}", self.pos)),
            }
        }
    }

    fn string(&mut self) -> Result<String, String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let b = self
                .peek()
                .ok_or_else(|| "unterminated string".to_string())?;
            self.pos += 1;
            match b {
                b'"' => return Ok(out),
                b'\\' => {
                    let esc = self
                        .peek()
                        .ok_or_else(|| "unterminated escape".to_string())?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            if self.pos + 4 > self.bytes.len() {
                                return Err("truncated \\u escape".to_string());
                            }
                            let hex = std::str::from_utf8(&self.bytes[self.pos..self.pos + 4])
                                .map_err(|_| "non-utf8 \\u escape".to_string())?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| "bad \\u escape".to_string())?;
                            self.pos += 4;
                            // Surrogate pairs are not produced by this crate's
                            // writers; map lone surrogates to the replacement
                            // character rather than failing the whole parse.
                            out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        }
                        _ => return Err(format!("bad escape at byte {}", self.pos)),
                    }
                }
                _ => {
                    // Re-decode multi-byte UTF-8 sequences from the source.
                    let start = self.pos - 1;
                    let width = utf8_width(b);
                    let end = start + width;
                    if width == 1 {
                        out.push(b as char);
                    } else {
                        if end > self.bytes.len() {
                            return Err("truncated utf-8 sequence".to_string());
                        }
                        let s = std::str::from_utf8(&self.bytes[start..end])
                            .map_err(|_| "invalid utf-8 in string".to_string())?;
                        out.push_str(s);
                        self.pos = end;
                    }
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, String> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e') | Some(b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+') | Some(b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b) if b.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| "non-utf8 number".to_string())?;
        text.parse::<f64>()
            .map(Value::Num)
            .map_err(|_| format!("bad number '{text}' at byte {start}"))
    }
}

fn utf8_width(lead: u8) -> usize {
    if lead < 0x80 {
        1
    } else if lead >> 5 == 0b110 {
        2
    } else if lead >> 4 == 0b1110 {
        3
    } else {
        4
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_quotes_backslashes_and_control_chars() {
        assert_eq!(quote("plain"), "\"plain\"");
        assert_eq!(quote("a\"b"), "\"a\\\"b\"");
        assert_eq!(quote("a\\b"), "\"a\\\\b\"");
        assert_eq!(quote("a\nb\tc"), "\"a\\nb\\tc\"");
        assert_eq!(quote("\u{1}"), "\"\\u0001\"");
    }

    #[test]
    fn object_builder_renders_in_insertion_order() {
        let s = Obj::new()
            .str_field("event", "x")
            .u64_field("tick", 7)
            .bool_field("ok", true)
            .raw_field("spans", "[]")
            .finish();
        assert_eq!(s, "{\"event\":\"x\",\"tick\":7,\"ok\":true,\"spans\":[]}");
    }

    #[test]
    fn parser_round_trips_builder_output() {
        let s = Obj::new()
            .str_field("msg", "quote \" slash \\ nl \n done")
            .u64_field("n", 42)
            .finish();
        let v = parse(&s).unwrap();
        assert_eq!(
            v.get("msg").and_then(Value::as_str),
            Some("quote \" slash \\ nl \n done")
        );
        assert_eq!(v.get("n").and_then(Value::as_num), Some(42.0));
    }

    #[test]
    fn parser_handles_nesting_arrays_and_literals() {
        let v = parse("{\"a\":[1,2.5,-3e2,true,false,null],\"b\":{\"c\":\"d\"}}").unwrap();
        match v.get("a") {
            Some(Value::Arr(elems)) => {
                assert_eq!(elems.len(), 6);
                assert_eq!(elems[1], Value::Num(2.5));
                assert_eq!(elems[2], Value::Num(-300.0));
            }
            other => panic!("expected array, got {other:?}"),
        }
        assert_eq!(
            v.get("b").and_then(|b| b.get("c")).and_then(Value::as_str),
            Some("d")
        );
    }

    #[test]
    fn parser_handles_unicode_text() {
        let s = Obj::new().str_field("vm", "vm-ü-7").finish();
        let v = parse(&s).unwrap();
        assert_eq!(v.get("vm").and_then(Value::as_str), Some("vm-ü-7"));
    }

    #[test]
    fn parser_rejects_malformed_documents() {
        assert!(parse("{").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,2,]").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("\"unterminated").is_err());
    }
}
