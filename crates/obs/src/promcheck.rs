//! Validators for the two export formats, used by `obs-dump --check` and CI.
//!
//! `check_prometheus` enforces the subset of the text exposition format this
//! crate emits: `# TYPE` headers before samples, well-formed sample lines,
//! parseable values, and — for histograms — cumulative buckets ending in
//! `+Inf` with consistent `_sum`/`_count` lines.

use std::collections::BTreeMap;

/// What a successful Prometheus check saw.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PromSummary {
    pub families: usize,
    pub samples: usize,
}

/// Validate Prometheus exposition text. Returns family/sample counts or the
/// first violation found.
pub fn check_prometheus(text: &str) -> Result<PromSummary, String> {
    // family name -> declared kind
    let mut families: BTreeMap<String, String> = BTreeMap::new();
    // (histogram family, label set minus `le`) -> bucket state
    let mut hist: BTreeMap<(String, String), HistSeries> = BTreeMap::new();
    let mut samples = 0usize;

    for (lineno, line) in text.lines().enumerate() {
        let n = lineno + 1;
        let line = line.trim_end();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let name = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a name"))?;
            let kind = parts
                .next()
                .ok_or_else(|| format!("line {n}: TYPE without a kind"))?;
            if !matches!(kind, "counter" | "gauge" | "histogram") {
                return Err(format!("line {n}: unknown metric kind `{kind}`"));
            }
            if families
                .insert(name.to_string(), kind.to_string())
                .is_some()
            {
                return Err(format!("line {n}: duplicate TYPE for `{name}`"));
            }
            continue;
        }
        if line.starts_with('#') {
            continue; // HELP or comment
        }

        let sample = parse_sample(line).map_err(|e| format!("line {n}: {e}"))?;
        samples += 1;

        // Resolve the family: histogram samples use _bucket/_sum/_count.
        let (family, role) = split_family(&sample.name, &families);
        let kind = families
            .get(family)
            .ok_or_else(|| format!("line {n}: sample `{}` has no preceding TYPE", sample.name))?;
        match (kind.as_str(), role) {
            ("histogram", Some(role)) => {
                let mut labels = sample.labels.clone();
                let le = labels.remove("le");
                let series_key = (family.to_string(), render_labels(&labels));
                let entry = hist.entry(series_key).or_default();
                match role {
                    "bucket" => {
                        let le = le.ok_or_else(|| format!("line {n}: bucket without le"))?;
                        let count = sample.value;
                        if count < 0.0 || count.fract() != 0.0 {
                            return Err(format!("line {n}: bucket count must be a whole number"));
                        }
                        if let Some(prev) = entry.last_bucket {
                            if count < prev {
                                return Err(format!(
                                    "line {n}: bucket counts must be cumulative (saw {count} after {prev})"
                                ));
                            }
                        }
                        entry.last_bucket = Some(count);
                        if le == "+Inf" {
                            entry.inf = Some(count);
                        } else {
                            le.parse::<f64>()
                                .map_err(|_| format!("line {n}: bad le `{le}`"))?;
                            if entry.inf.is_some() {
                                return Err(format!("line {n}: bucket after +Inf"));
                            }
                        }
                    }
                    "sum" => entry.sum = Some(sample.value),
                    "count" => {
                        entry.count = Some(sample.value);
                        if le.is_some() {
                            return Err(format!("line {n}: _count must not carry le"));
                        }
                    }
                    _ => unreachable!(),
                }
            }
            ("histogram", None) => {
                return Err(format!(
                    "line {n}: bare sample `{}` for histogram family `{family}`",
                    sample.name
                ));
            }
            (_, Some(_)) | (_, None) if sample.labels.contains_key("le") => {
                return Err(format!("line {n}: le label outside a histogram"));
            }
            _ => {}
        }
    }

    for ((family, labels), series) in &hist {
        let at = format!("histogram `{family}{{{labels}}}`");
        let inf = series
            .inf
            .ok_or_else(|| format!("{at}: missing +Inf bucket"))?;
        let count = series
            .count
            .ok_or_else(|| format!("{at}: missing _count"))?;
        if series.sum.is_none() {
            return Err(format!("{at}: missing _sum"));
        }
        if inf != count {
            return Err(format!("{at}: _count {count} != +Inf bucket {inf}"));
        }
    }

    Ok(PromSummary {
        families: families.len(),
        samples,
    })
}

/// Validate a JSONL artifact (metrics export or flight-recorder dump): every
/// non-empty line must parse as a JSON object. Returns the line count.
pub fn check_jsonl(text: &str) -> Result<usize, String> {
    let mut lines = 0usize;
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        let v = crate::json::parse(line).map_err(|e| format!("line {}: {e}", lineno + 1))?;
        if !matches!(v, crate::json::Value::Obj(_)) {
            return Err(format!("line {}: not a JSON object", lineno + 1));
        }
        lines += 1;
    }
    Ok(lines)
}

#[derive(Debug, Default)]
struct HistSeries {
    last_bucket: Option<f64>,
    inf: Option<f64>,
    sum: Option<f64>,
    count: Option<f64>,
}

struct Sample {
    name: String,
    labels: BTreeMap<String, String>,
    value: f64,
}

fn render_labels(labels: &BTreeMap<String, String>) -> String {
    labels
        .iter()
        .map(|(k, v)| format!("{k}={v}"))
        .collect::<Vec<_>>()
        .join(",")
}

/// Map a sample name to its TYPE family. Histogram samples are declared
/// under the base name but rendered as `<base>_bucket` / `_sum` / `_count`.
fn split_family<'a>(
    name: &'a str,
    families: &BTreeMap<String, String>,
) -> (&'a str, Option<&'static str>) {
    for (suffix, role) in [("_bucket", "bucket"), ("_sum", "sum"), ("_count", "count")] {
        if let Some(base) = name.strip_suffix(suffix) {
            if families.get(base).is_some_and(|k| k == "histogram") {
                return (base, Some(role));
            }
        }
    }
    (name, None)
}

fn parse_sample(line: &str) -> Result<Sample, String> {
    let bytes = line.as_bytes();
    let mut i = 0;
    while i < bytes.len()
        && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_' || bytes[i] == b':')
    {
        i += 1;
    }
    if i == 0 {
        return Err("sample line does not start with a metric name".to_string());
    }
    let name = &line[..i];
    let mut labels = BTreeMap::new();
    if i < bytes.len() && bytes[i] == b'{' {
        i += 1;
        loop {
            if i >= bytes.len() {
                return Err("unterminated label set".to_string());
            }
            if bytes[i] == b'}' {
                i += 1;
                break;
            }
            let key_start = i;
            while i < bytes.len() && (bytes[i].is_ascii_alphanumeric() || bytes[i] == b'_') {
                i += 1;
            }
            let key = &line[key_start..i];
            if key.is_empty() {
                return Err("empty label name".to_string());
            }
            if i + 1 >= bytes.len() || bytes[i] != b'=' || bytes[i + 1] != b'"' {
                return Err(format!("label `{key}` is not followed by =\""));
            }
            i += 2;
            let mut value = String::new();
            loop {
                if i >= bytes.len() {
                    return Err("unterminated label value".to_string());
                }
                match bytes[i] {
                    b'"' => {
                        i += 1;
                        break;
                    }
                    b'\\' => {
                        if i + 1 >= bytes.len() {
                            return Err("dangling escape in label value".to_string());
                        }
                        match bytes[i + 1] {
                            b'\\' => value.push('\\'),
                            b'"' => value.push('"'),
                            b'n' => value.push('\n'),
                            other => {
                                return Err(format!(
                                    "bad escape \\{} in label value",
                                    other as char
                                ))
                            }
                        }
                        i += 2;
                    }
                    _ => {
                        value.push(bytes[i] as char);
                        i += 1;
                    }
                }
            }
            labels.insert(key.to_string(), value);
            if i < bytes.len() && bytes[i] == b',' {
                i += 1;
            }
        }
    }
    let rest = line[i..].trim();
    if rest.is_empty() {
        return Err("sample has no value".to_string());
    }
    let value = match rest {
        "+Inf" => f64::INFINITY,
        "-Inf" => f64::NEG_INFINITY,
        "NaN" => f64::NAN,
        other => other
            .parse::<f64>()
            .map_err(|_| format!("bad sample value `{other}`"))?,
    };
    Ok(Sample {
        name: name.to_string(),
        labels,
        value,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::{Registry, DEFAULT_STEP_BUCKETS};

    fn sample_registry() -> Registry {
        let mut r = Registry::new();
        r.counter_add("ticks_total", &[], 4);
        r.counter_add("events_total", &[("event", "degraded_tick")], 1);
        r.gauge_set("domain_ways", &[("domain", "vm \"0\"")], 6.0);
        r.histogram_observe("span_steps", &[("span", "apply")], DEFAULT_STEP_BUCKETS, 5);
        r
    }

    #[test]
    fn validator_accepts_our_own_renderer() {
        let snap = sample_registry().snapshot();
        let summary = check_prometheus(&snap.to_prometheus()).unwrap();
        assert_eq!(summary.families, 4);
        assert!(summary.samples >= 4);
        let lines = check_jsonl(&snap.to_jsonl()).unwrap();
        assert_eq!(lines, snap.len());
    }

    #[test]
    fn rejects_sample_without_type_header() {
        let err = check_prometheus("loose_metric 1\n").unwrap_err();
        assert!(err.contains("no preceding TYPE"), "{err}");
    }

    #[test]
    fn rejects_non_cumulative_histogram_buckets() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 5
h_bucket{le=\"2\"} 3
h_bucket{le=\"+Inf\"} 5
h_sum 9
h_count 5
";
        let err = check_prometheus(text).unwrap_err();
        assert!(err.contains("cumulative"), "{err}");
    }

    #[test]
    fn rejects_histogram_count_mismatch() {
        let text = "\
# TYPE h histogram
h_bucket{le=\"1\"} 2
h_bucket{le=\"+Inf\"} 2
h_sum 2
h_count 3
";
        let err = check_prometheus(text).unwrap_err();
        assert!(err.contains("!="), "{err}");
    }

    #[test]
    fn rejects_garbage_values_and_labels() {
        assert!(check_prometheus("# TYPE x counter\nx{a=b} 1\n").is_err());
        assert!(check_prometheus("# TYPE x counter\nx notanumber\n").is_err());
        assert!(check_prometheus("# TYPE x widget\n").is_err());
    }

    #[test]
    fn jsonl_checker_rejects_non_objects_and_garbage() {
        assert!(check_jsonl("[1,2,3]\n").is_err());
        assert!(check_jsonl("{\"a\":1}\nnot json\n").is_err());
        assert_eq!(check_jsonl("{\"a\":1}\n\n{\"b\":2}\n").unwrap(), 2);
    }
}
