//! Logical-clock tracing for the daemon pipeline and engine epochs.
//!
//! Spans are timed on a logical clock: every enter/exit advances a
//! monotonically increasing step counter, so span extents are deterministic
//! and byte-identical across `--jobs N`. Wall-clock cycles are strictly
//! opt-in through a [`CycleSource`] — the only sanctioned implementation
//! lives in `bench::timing` — and default to 0 everywhere the determinism
//! regression runs.

use crate::json::Obj;

/// Opt-in wall-clock provider. Installing one makes `SpanRecord::cycles`
/// non-zero; never install one on a path whose output is compared
/// byte-for-byte across runs.
pub trait CycleSource: Send {
    fn now_cycles(&mut self) -> u64;
}

/// One completed span.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SpanRecord {
    pub name: &'static str,
    /// Daemon tick / engine epoch the span belongs to.
    pub tick: u64,
    /// Nesting depth at enter (0 = top-level).
    pub depth: u32,
    /// Logical-clock step at enter.
    pub enter_step: u64,
    /// Logical-clock step at exit.
    pub exit_step: u64,
    /// Elapsed cycles from the installed [`CycleSource`], or 0 when none is
    /// installed (the deterministic default).
    pub cycles: u64,
}

impl SpanRecord {
    /// Span extent on the logical clock.
    pub fn steps(&self) -> u64 {
        self.exit_step - self.enter_step
    }

    pub fn to_json(&self) -> String {
        Obj::new()
            .str_field("span", self.name)
            .u64_field("tick", self.tick)
            .u64_field("depth", u64::from(self.depth))
            .u64_field("enter", self.enter_step)
            .u64_field("exit", self.exit_step)
            .u64_field("steps", self.steps())
            .u64_field("cycles", self.cycles)
            .finish()
    }
}

/// Span collector. Disabled tracers make every operation a no-op so
/// instrumented code paths cost nothing on untraced runs.
pub struct Tracer {
    enabled: bool,
    tick: u64,
    step: u64,
    open: Vec<(&'static str, u64, u64)>,
    done: Vec<SpanRecord>,
    cycles: Option<Box<dyn CycleSource>>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.enabled)
            .field("tick", &self.tick)
            .field("step", &self.step)
            .field("open", &self.open.len())
            .field("done", &self.done.len())
            .field("has_cycle_source", &self.cycles.is_some())
            .finish()
    }
}

impl Default for Tracer {
    fn default() -> Self {
        Tracer::new()
    }
}

impl Tracer {
    /// An enabled tracer on the logical clock only.
    pub fn new() -> Self {
        Tracer {
            enabled: true,
            tick: 0,
            step: 0,
            open: Vec::new(),
            done: Vec::new(),
            cycles: None,
        }
    }

    /// A tracer whose every operation is a no-op.
    pub fn disabled() -> Self {
        Tracer {
            enabled: false,
            ..Tracer::new()
        }
    }

    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Install a wall-clock source (see [`CycleSource`] for the caveats).
    pub fn set_cycle_source(&mut self, source: Box<dyn CycleSource>) {
        self.cycles = Some(source);
    }

    /// Set the tick/epoch stamped on subsequently completed spans.
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
    }

    fn now(&mut self) -> u64 {
        match &mut self.cycles {
            Some(src) => src.now_cycles(),
            None => 0,
        }
    }

    pub fn enter(&mut self, name: &'static str) {
        if !self.enabled {
            return;
        }
        self.step += 1;
        let at = self.now();
        self.open.push((name, self.step, at));
    }

    pub fn exit(&mut self) {
        if !self.enabled {
            return;
        }
        self.step += 1;
        let (name, enter_step, enter_cycles) = match self.open.pop() {
            Some(frame) => frame,
            None => return, // unbalanced exit; drop rather than panic
        };
        let exit_cycles = self.now();
        self.done.push(SpanRecord {
            name,
            tick: self.tick,
            depth: self.open.len() as u32,
            enter_step,
            exit_step: self.step,
            cycles: exit_cycles.saturating_sub(enter_cycles),
        });
    }

    /// Run `f` inside a span named `name`. The closure receives the tracer
    /// back so stages can open nested spans.
    pub fn scope<T>(&mut self, name: &'static str, f: impl FnOnce(&mut Tracer) -> T) -> T {
        self.enter(name);
        let value = f(self);
        self.exit();
        value
    }

    /// Take all completed spans, in completion order (nested spans precede
    /// their parents). Open spans are left untouched.
    pub fn drain(&mut self) -> Vec<SpanRecord> {
        std::mem::take(&mut self.done)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_and_advance_the_logical_clock() {
        let mut t = Tracer::new();
        t.set_tick(3);
        t.scope("tick", |t| {
            t.scope("collect", |_| {});
            t.scope("apply", |_| {});
        });
        let spans = t.drain();
        let names: Vec<_> = spans.iter().map(|s| s.name).collect();
        assert_eq!(names, ["collect", "apply", "tick"]);
        let collect = &spans[0];
        assert_eq!(collect.tick, 3);
        assert_eq!(collect.depth, 1);
        assert_eq!((collect.enter_step, collect.exit_step), (2, 3));
        let tick = &spans[2];
        assert_eq!(tick.depth, 0);
        assert_eq!((tick.enter_step, tick.exit_step), (1, 6));
        assert_eq!(tick.steps(), 5);
        // No cycle source installed: cycles stay 0 (the deterministic default).
        assert!(spans.iter().all(|s| s.cycles == 0));
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let mut t = Tracer::disabled();
        t.set_tick(9);
        let v = t.scope("tick", |t| {
            t.enter("inner");
            t.exit();
            41 + 1
        });
        assert_eq!(v, 42);
        assert!(t.drain().is_empty());
    }

    #[test]
    fn cycle_source_times_span_extents() {
        struct Fake(u64);
        impl CycleSource for Fake {
            fn now_cycles(&mut self) -> u64 {
                self.0 += 100;
                self.0
            }
        }
        let mut t = Tracer::new();
        t.set_cycle_source(Box::new(Fake(0)));
        t.scope("tick", |_| {});
        let spans = t.drain();
        assert_eq!(spans[0].cycles, 100);
    }

    #[test]
    fn span_json_shape_is_stable() {
        let s = SpanRecord {
            name: "apply",
            tick: 7,
            depth: 1,
            enter_step: 2,
            exit_step: 5,
            cycles: 0,
        };
        assert_eq!(
            s.to_json(),
            "{\"span\":\"apply\",\"tick\":7,\"depth\":1,\"enter\":2,\"exit\":5,\"steps\":3,\"cycles\":0}"
        );
        crate::json::parse(&s.to_json()).expect("span json parses");
    }

    #[test]
    fn unbalanced_exit_is_dropped_not_panicked() {
        let mut t = Tracer::new();
        t.exit();
        assert!(t.drain().is_empty());
    }
}
