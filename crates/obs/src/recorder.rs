//! Flight recorder: a bounded ring buffer of the last K ticks' spans and
//! events, dumped as JSONL on invariant violations, quarantines, or exit.
//!
//! The dump format is line-oriented: a header object first, then one object
//! per retained tick, oldest first. Everything is rendered through
//! [`crate::json`], so `obs-dump --check` can validate a dump with the same
//! escaping rules the writer used.

use crate::json::{array, Obj};
use crate::trace::SpanRecord;
use std::collections::VecDeque;

/// Everything the recorder retains about one tick.
#[derive(Debug, Clone, PartialEq)]
pub struct TickRecord {
    pub tick: u64,
    pub degraded: bool,
    pub spans: Vec<SpanRecord>,
    /// Pre-rendered JSON objects (e.g. `Event::to_json`).
    pub events: Vec<String>,
}

impl TickRecord {
    pub fn to_json(&self) -> String {
        let spans: Vec<String> = self.spans.iter().map(SpanRecord::to_json).collect();
        Obj::new()
            .u64_field("tick", self.tick)
            .bool_field("degraded", self.degraded)
            .raw_field("spans", &array(&spans))
            .raw_field("events", &array(&self.events))
            .finish()
    }
}

/// Bounded ring of [`TickRecord`]s. Capacity 0 disables recording.
#[derive(Debug, Default)]
pub struct FlightRecorder {
    capacity: usize,
    ring: VecDeque<TickRecord>,
    dropped: u64,
}

impl FlightRecorder {
    pub fn new(capacity: usize) -> Self {
        FlightRecorder {
            capacity,
            ring: VecDeque::with_capacity(capacity),
            dropped: 0,
        }
    }

    pub fn capacity(&self) -> usize {
        self.capacity
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    pub fn record(&mut self, rec: TickRecord) {
        if self.capacity == 0 {
            self.dropped += 1;
            return;
        }
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(rec);
    }

    /// Render the retained window as JSONL: a header line, then one line per
    /// tick, oldest first. The header carries the `dcat-flight/v1` schema
    /// tag; `obs-dump --check` rejects dumps without it.
    pub fn dump_jsonl(&self) -> String {
        let mut out = Obj::new()
            .str_field("record", "flight_header")
            .str_field("schema", crate::frames::FLIGHT_SCHEMA)
            .u64_field("capacity", self.capacity as u64)
            .u64_field("retained", self.ring.len() as u64)
            .u64_field("dropped", self.dropped)
            .finish();
        out.push('\n');
        for rec in &self.ring {
            out.push_str(&rec.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rec(tick: u64) -> TickRecord {
        TickRecord {
            tick,
            degraded: tick % 2 == 0,
            spans: vec![SpanRecord {
                name: "tick",
                tick,
                depth: 0,
                enter_step: 1,
                exit_step: 2,
                cycles: 0,
            }],
            events: vec!["{\"event\":\"degraded_tick\",\"reason\":\"telemetry\"}".to_string()],
        }
    }

    #[test]
    fn ring_keeps_the_last_k_ticks() {
        let mut fr = FlightRecorder::new(3);
        for t in 1..=5 {
            fr.record(rec(t));
        }
        assert_eq!(fr.len(), 3);
        let dump = fr.dump_jsonl();
        let lines: Vec<&str> = dump.lines().collect();
        assert_eq!(lines.len(), 4);
        let header = crate::json::parse(lines[0]).unwrap();
        assert_eq!(
            header.get("schema").and_then(|v| v.as_str()),
            Some(crate::frames::FLIGHT_SCHEMA)
        );
        assert_eq!(header.get("capacity").and_then(|v| v.as_num()), Some(3.0));
        assert_eq!(header.get("retained").and_then(|v| v.as_num()), Some(3.0));
        assert_eq!(header.get("dropped").and_then(|v| v.as_num()), Some(2.0));
        let first = crate::json::parse(lines[1]).unwrap();
        assert_eq!(first.get("tick").and_then(|v| v.as_num()), Some(3.0));
        let last = crate::json::parse(lines[3]).unwrap();
        assert_eq!(last.get("tick").and_then(|v| v.as_num()), Some(5.0));
    }

    #[test]
    fn zero_capacity_disables_recording() {
        let mut fr = FlightRecorder::new(0);
        fr.record(rec(1));
        assert!(fr.is_empty());
        let dump = fr.dump_jsonl();
        assert_eq!(dump.lines().count(), 1);
    }

    #[test]
    fn every_dump_line_parses_as_json() {
        let mut fr = FlightRecorder::new(8);
        for t in 1..=4 {
            fr.record(rec(t));
        }
        for line in fr.dump_jsonl().lines() {
            crate::json::parse(line).expect("dump line parses");
        }
    }

    #[test]
    fn dumps_pass_the_flight_validator() {
        let mut fr = FlightRecorder::new(8);
        for t in 1..=4 {
            fr.record(rec(t));
        }
        assert_eq!(crate::frames::check_flight(&fr.dump_jsonl()), Ok(4));
        assert_eq!(
            crate::frames::check_flight(&FlightRecorder::new(2).dump_jsonl()),
            Ok(0)
        );
    }
}
