//! dcat-obs: deterministic observability for the dCat reproduction.
//!
//! Three pillars, all dependency-free and all safe to leave enabled in the
//! byte-identity determinism regression:
//!
//! 1. **Metrics registry** ([`metrics`]) — counters, gauges, and fixed-bucket
//!    histograms keyed by static name + label set. Snapshots are B-tree
//!    backed and merge commutatively, so per-worker registries from
//!    `host::pool` / `MultiSocketEngine` collapse to the same bytes in any
//!    permutation. Exports: Prometheus text and JSONL via [`MetricsSink`].
//! 2. **Logical-clock tracing** ([`trace`]) — span enter/exit for each daemon
//!    pipeline stage and engine epoch, timed in ticks/epochs by default and
//!    in cycles only when a [`CycleSource`] (implemented in `bench::timing`,
//!    the one wall-clock-sanctioned module) is explicitly installed.
//! 3. **Flight recorder** ([`recorder`]) — a bounded ring of the last K
//!    ticks' spans + events, dumped as JSONL on `InvariantViolation`,
//!    `DomainQuarantined`, or daemon exit.
//!
//! [`json`] holds the hand-rolled escaping/builder/parser shared by all
//! renderers, [`promcheck`] the validators behind `obs-dump --check`, and
//! [`frames`] the `dcat-frames/v1` per-tick stream `dcat-top` renders.

pub mod frames;
pub mod json;
pub mod metrics;
pub mod promcheck;
pub mod recorder;
pub mod trace;

pub use frames::{
    check_flight, check_frames, DomainFrame, Frame, FrameWriter, FramesSummary, LfocExt,
    MemshareExt, PolicyExt, FLIGHT_SCHEMA, FRAMES_SCHEMA,
};
pub use metrics::{
    write_text, FileSink, Histogram, MetricKey, MetricValue, MetricsSink, Registry, Snapshot,
    CYCLE_BUCKETS, DEFAULT_STEP_BUCKETS,
};
pub use promcheck::{check_jsonl, check_prometheus, PromSummary};
pub use recorder::{FlightRecorder, TickRecord};
pub use trace::{CycleSource, SpanRecord, Tracer};
