//! Metrics registry: counters, gauges, and fixed-bucket histograms keyed by
//! static name + label set.
//!
//! Determinism contract: a [`Snapshot`] is a B-tree over (name, labels), so
//! rendering order never depends on insertion order, and [`Snapshot::merge`]
//! is commutative and associative (counters add, gauges max, histograms add
//! element-wise over identical static buckets). Per-worker registries merged
//! in any permutation therefore produce byte-identical exports — the property
//! `host::pool` and `MultiSocketEngine` rely on under `--jobs N`.

use std::collections::BTreeMap;
use std::fmt::Write as _;

/// Default bucket bounds for logical-step histograms (spans measured in
/// logical-clock steps).
pub const DEFAULT_STEP_BUCKETS: &[u64] = &[1, 2, 4, 8, 16, 32, 64];

/// Default bucket bounds for cycle histograms (spans measured by an opt-in
/// wall-clock [`crate::trace::CycleSource`]).
pub const CYCLE_BUCKETS: &[u64] = &[1_000, 10_000, 100_000, 1_000_000, 10_000_000, 100_000_000];

/// Identity of one time series: metric name plus sorted label pairs.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
pub struct MetricKey {
    pub name: &'static str,
    /// Sorted by label name at construction.
    pub labels: Vec<(&'static str, String)>,
}

impl MetricKey {
    fn new(name: &'static str, labels: &[(&'static str, &str)]) -> Self {
        let mut labels: Vec<(&'static str, String)> =
            labels.iter().map(|(k, v)| (*k, (*v).to_string())).collect();
        labels.sort_by(|a, b| a.0.cmp(b.0));
        MetricKey { name, labels }
    }
}

/// Fixed-bucket histogram over `u64` observations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Histogram {
    /// Inclusive upper bounds, strictly increasing. The implicit final
    /// bucket is +Inf.
    pub bounds: &'static [u64],
    /// One count per bound, plus the +Inf bucket at the end.
    pub counts: Vec<u64>,
    pub sum: u64,
    pub count: u64,
}

impl Histogram {
    fn new(bounds: &'static [u64]) -> Self {
        debug_assert!(bounds.windows(2).all(|w| w[0] < w[1]));
        Histogram {
            bounds,
            counts: vec![0; bounds.len() + 1],
            sum: 0,
            count: 0,
        }
    }

    fn observe(&mut self, v: u64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| v <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.sum = self.sum.saturating_add(v);
        self.count += 1;
    }

    fn merge(&mut self, other: &Histogram) {
        assert_eq!(
            self.bounds, other.bounds,
            "histogram merge with mismatched bucket bounds"
        );
        for (c, o) in self.counts.iter_mut().zip(&other.counts) {
            *c += o;
        }
        self.sum = self.sum.saturating_add(other.sum);
        self.count += other.count;
    }
}

/// One metric value. The kind is fixed by the first touch of a key; mixing
/// kinds under one name is a programmer error and panics.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    Counter(u64),
    Gauge(f64),
    Histogram(Histogram),
}

impl MetricValue {
    fn kind(&self) -> &'static str {
        match self {
            MetricValue::Counter(_) => "counter",
            MetricValue::Gauge(_) => "gauge",
            MetricValue::Histogram(_) => "histogram",
        }
    }

    /// Commutative merge: counters add, gauges keep the max, histograms add
    /// element-wise.
    fn merge(&mut self, other: &MetricValue) {
        match (self, other) {
            (MetricValue::Counter(a), MetricValue::Counter(b)) => *a += b,
            (MetricValue::Gauge(a), MetricValue::Gauge(b)) => {
                if *b > *a {
                    *a = *b;
                }
            }
            (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(b),
            (a, b) => panic!(
                "metric kind mismatch in merge: {} vs {}",
                a.kind(),
                b.kind()
            ),
        }
    }
}

/// A mutable metrics registry. Writers call the typed record methods; readers
/// take a [`Snapshot`].
///
/// Recording a metric under a name already registered with a *different*
/// kind is a programming bug, but the registry sits on the daemon tick
/// path where panics are forbidden (ticks degrade, they never die): the
/// mismatched write is dropped and counted in [`Registry::type_conflicts`]
/// so tests and dashboards can still surface the bug.
#[derive(Debug, Default, Clone)]
pub struct Registry {
    entries: BTreeMap<MetricKey, MetricValue>,
    type_conflicts: u64,
}

impl Registry {
    pub fn new() -> Self {
        Registry::default()
    }

    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Writes dropped because the metric name was already registered with
    /// a different kind. Nonzero means a code bug, never a data problem.
    pub fn type_conflicts(&self) -> u64 {
        self.type_conflicts
    }

    pub fn counter_add(&mut self, name: &'static str, labels: &[(&'static str, &str)], delta: u64) {
        let key = MetricKey::new(name, labels);
        match self.entries.entry(key).or_insert(MetricValue::Counter(0)) {
            MetricValue::Counter(v) => *v += delta,
            _ => self.type_conflicts += 1,
        }
    }

    pub fn gauge_set(&mut self, name: &'static str, labels: &[(&'static str, &str)], value: f64) {
        let key = MetricKey::new(name, labels);
        match self.entries.entry(key).or_insert(MetricValue::Gauge(value)) {
            MetricValue::Gauge(v) => *v = value,
            _ => self.type_conflicts += 1,
        }
    }

    pub fn histogram_observe(
        &mut self,
        name: &'static str,
        labels: &[(&'static str, &str)],
        bounds: &'static [u64],
        value: u64,
    ) {
        let key = MetricKey::new(name, labels);
        match self
            .entries
            .entry(key)
            .or_insert_with(|| MetricValue::Histogram(Histogram::new(bounds)))
        {
            MetricValue::Histogram(h) => h.observe(value),
            _ => self.type_conflicts += 1,
        }
    }

    /// Copy the current contents into an immutable snapshot.
    pub fn snapshot(&self) -> Snapshot {
        Snapshot {
            entries: self.entries.clone(),
        }
    }

    /// Drain the registry into a snapshot, leaving it empty.
    pub fn take(&mut self) -> Snapshot {
        Snapshot {
            entries: std::mem::take(&mut self.entries),
        }
    }

    /// Fold a snapshot back into this registry (same merge rules as
    /// [`Snapshot::merge`]).
    pub fn merge_snapshot(&mut self, snap: &Snapshot) {
        merge_maps(&mut self.entries, &snap.entries);
    }
}

fn merge_maps(
    into: &mut BTreeMap<MetricKey, MetricValue>,
    from: &BTreeMap<MetricKey, MetricValue>,
) {
    for (key, value) in from {
        match into.get_mut(key) {
            Some(existing) => existing.merge(value),
            None => {
                into.insert(key.clone(), value.clone());
            }
        }
    }
}

/// An immutable, order-insensitive view of a registry, suitable for merging
/// across workers and rendering.
#[derive(Debug, Default, Clone, PartialEq)]
pub struct Snapshot {
    entries: BTreeMap<MetricKey, MetricValue>,
}

impl Snapshot {
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    pub fn len(&self) -> usize {
        self.entries.len()
    }

    pub fn iter(&self) -> impl Iterator<Item = (&MetricKey, &MetricValue)> {
        self.entries.iter()
    }

    pub fn get(&self, name: &'static str, labels: &[(&'static str, &str)]) -> Option<&MetricValue> {
        self.entries.get(&MetricKey::new(name, labels))
    }

    /// Merge another snapshot into this one. Commutative and associative:
    /// counters add, gauges keep the max, histograms add element-wise.
    pub fn merge(&mut self, other: &Snapshot) {
        merge_maps(&mut self.entries, &other.entries);
    }

    /// Render in Prometheus text exposition format. Families appear in name
    /// order with a `# TYPE` header each; series within a family follow
    /// label order.
    pub fn to_prometheus(&self) -> String {
        let mut out = String::new();
        let mut last_name = "";
        for (key, value) in &self.entries {
            if key.name != last_name {
                let _ = writeln!(out, "# TYPE {} {}", key.name, value.kind());
                last_name = key.name;
            }
            match value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(out, "{}{} {v}", key.name, prom_labels(&key.labels, &[]));
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(out, "{}{} {v:?}", key.name, prom_labels(&key.labels, &[]));
                }
                MetricValue::Histogram(h) => {
                    let mut cumulative = 0u64;
                    for (i, bound) in h.bounds.iter().enumerate() {
                        cumulative += h.counts[i];
                        let _ = writeln!(
                            out,
                            "{}_bucket{} {cumulative}",
                            key.name,
                            prom_labels(&key.labels, &[("le", &bound.to_string())]),
                        );
                    }
                    let _ = writeln!(
                        out,
                        "{}_bucket{} {}",
                        key.name,
                        prom_labels(&key.labels, &[("le", "+Inf")]),
                        h.count,
                    );
                    let _ = writeln!(
                        out,
                        "{}_sum{} {}",
                        key.name,
                        prom_labels(&key.labels, &[]),
                        h.sum
                    );
                    let _ = writeln!(
                        out,
                        "{}_count{} {}",
                        key.name,
                        prom_labels(&key.labels, &[]),
                        h.count,
                    );
                }
            }
        }
        out
    }

    /// Render as JSONL: one self-describing object per series.
    pub fn to_jsonl(&self) -> String {
        use crate::json::{array, Obj};
        let mut out = String::new();
        for (key, value) in &self.entries {
            let mut obj = Obj::new().str_field("name", key.name);
            let mut labels = Obj::new();
            for (k, v) in &key.labels {
                labels = labels.str_field(k, v);
            }
            obj = obj.raw_field("labels", &labels.finish());
            let line = match value {
                MetricValue::Counter(v) => obj
                    .str_field("kind", "counter")
                    .u64_field("value", *v)
                    .finish(),
                MetricValue::Gauge(v) => obj
                    .str_field("kind", "gauge")
                    .raw_field("value", &format_json_f64(*v))
                    .finish(),
                MetricValue::Histogram(h) => {
                    let buckets: Vec<String> = h
                        .bounds
                        .iter()
                        .enumerate()
                        .map(|(i, b)| {
                            Obj::new()
                                .u64_field("le", *b)
                                .u64_field("count", h.counts[i])
                                .finish()
                        })
                        .collect();
                    obj.str_field("kind", "histogram")
                        .raw_field("buckets", &array(&buckets))
                        .u64_field("inf_count", h.counts[h.bounds.len()])
                        .u64_field("sum", h.sum)
                        .u64_field("count", h.count)
                        .finish()
                }
            };
            out.push_str(&line);
            out.push('\n');
        }
        out
    }
}

/// Render an f64 as a JSON-safe token (`NaN`/`inf` are not valid JSON; the
/// registry never produces them from deterministic sims, but don't emit
/// garbage if one slips through).
fn format_json_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v:?}")
    } else {
        "null".to_string()
    }
}

fn prom_labels(labels: &[(&'static str, String)], extra: &[(&str, &str)]) -> String {
    if labels.is_empty() && extra.is_empty() {
        return String::new();
    }
    let mut out = String::from("{");
    let mut first = true;
    let push = |out: &mut String, first: &mut bool, k: &str, v: &str| {
        if !*first {
            out.push(',');
        }
        *first = false;
        out.push_str(k);
        out.push_str("=\"");
        for c in v.chars() {
            match c {
                '\\' => out.push_str("\\\\"),
                '"' => out.push_str("\\\""),
                '\n' => out.push_str("\\n"),
                c => out.push(c),
            }
        }
        out.push('"');
    };
    for (k, v) in labels {
        push(&mut out, &mut first, k, v);
    }
    for (k, v) in extra {
        push(&mut out, &mut first, k, v);
    }
    out.push('}');
    out
}

/// Destination for exported snapshots.
pub trait MetricsSink {
    fn export(&mut self, snap: &Snapshot) -> Result<(), String>;
}

/// File-backed sink. The format follows the extension: `.jsonl` writes JSONL,
/// anything else writes Prometheus text.
#[derive(Debug)]
pub struct FileSink {
    path: std::path::PathBuf,
}

impl FileSink {
    pub fn new(path: impl Into<std::path::PathBuf>) -> Self {
        FileSink { path: path.into() }
    }
}

impl MetricsSink for FileSink {
    fn export(&mut self, snap: &Snapshot) -> Result<(), String> {
        let text = if self.path.extension().is_some_and(|e| e == "jsonl") {
            snap.to_jsonl()
        } else {
            snap.to_prometheus()
        };
        write_text(&self.path, &text)
    }
}

/// Write a text artifact (metrics export, flight-recorder dump) to disk.
pub fn write_text(path: &std::path::Path, text: &str) -> Result<(), String> {
    std::fs::write(path, text).map_err(|e| format!("write {}: {e}", path.display()))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Registry {
        let mut r = Registry::new();
        r.counter_add("ticks_total", &[], 3);
        r.counter_add("events_total", &[("event", "degraded_tick")], 2);
        r.counter_add("events_total", &[("event", "counter_reset")], 1);
        r.gauge_set("domain_ways", &[("domain", "vm0")], 6.0);
        r.histogram_observe("span_steps", &[("span", "apply")], DEFAULT_STEP_BUCKETS, 3);
        r.histogram_observe("span_steps", &[("span", "apply")], DEFAULT_STEP_BUCKETS, 70);
        r
    }

    #[test]
    fn counters_accumulate_and_keys_are_label_order_insensitive() {
        let mut r = Registry::new();
        r.counter_add("x", &[("a", "1"), ("b", "2")], 1);
        r.counter_add("x", &[("b", "2"), ("a", "1")], 2);
        let snap = r.snapshot();
        assert_eq!(snap.len(), 1);
        assert_eq!(
            snap.get("x", &[("a", "1"), ("b", "2")]),
            Some(&MetricValue::Counter(3))
        );
    }

    #[test]
    fn merge_is_commutative() {
        let mut a = sample().snapshot();
        let mut extra = Registry::new();
        extra.counter_add("ticks_total", &[], 5);
        extra.gauge_set("domain_ways", &[("domain", "vm0")], 4.0);
        extra.histogram_observe("span_steps", &[("span", "apply")], DEFAULT_STEP_BUCKETS, 1);
        let b = extra.snapshot();

        let mut ab = a.clone();
        ab.merge(&b);
        let mut ba = b.clone();
        ba.merge(&a);
        assert_eq!(ab, ba);
        assert_eq!(ab.to_prometheus(), ba.to_prometheus());
        // Counter added, gauge kept the max.
        assert_eq!(ab.get("ticks_total", &[]), Some(&MetricValue::Counter(8)));
        assert_eq!(
            ab.get("domain_ways", &[("domain", "vm0")]),
            Some(&MetricValue::Gauge(6.0))
        );
        a.merge(&b);
        assert_eq!(a, ab);
    }

    #[test]
    fn prometheus_rendering_is_stable_and_complete() {
        let text = sample().snapshot().to_prometheus();
        let expected = "\
# TYPE domain_ways gauge
domain_ways{domain=\"vm0\"} 6.0
# TYPE events_total counter
events_total{event=\"counter_reset\"} 1
events_total{event=\"degraded_tick\"} 2
# TYPE span_steps histogram
span_steps_bucket{span=\"apply\",le=\"1\"} 0
span_steps_bucket{span=\"apply\",le=\"2\"} 0
span_steps_bucket{span=\"apply\",le=\"4\"} 1
span_steps_bucket{span=\"apply\",le=\"8\"} 1
span_steps_bucket{span=\"apply\",le=\"16\"} 1
span_steps_bucket{span=\"apply\",le=\"32\"} 1
span_steps_bucket{span=\"apply\",le=\"64\"} 1
span_steps_bucket{span=\"apply\",le=\"+Inf\"} 2
span_steps_sum{span=\"apply\"} 73
span_steps_count{span=\"apply\"} 2
# TYPE ticks_total counter
ticks_total 3
";
        assert_eq!(text, expected);
    }

    #[test]
    fn jsonl_rendering_parses_line_by_line() {
        let text = sample().snapshot().to_jsonl();
        for line in text.lines() {
            let v = crate::json::parse(line).expect("every JSONL line parses");
            assert!(v.get("name").is_some());
            assert!(v.get("kind").is_some());
        }
        assert_eq!(text.lines().count(), sample().snapshot().len());
    }

    #[test]
    fn take_drains_the_registry() {
        let mut r = sample();
        let snap = r.take();
        assert!(!snap.is_empty());
        assert!(r.is_empty());
    }

    #[test]
    fn kind_mismatch_is_dropped_and_counted() {
        let mut r = Registry::new();
        r.counter_add("x", &[], 1);
        r.gauge_set("x", &[], 1.0);
        r.histogram_observe("x", &[], DEFAULT_STEP_BUCKETS, 1);
        assert_eq!(r.type_conflicts(), 2);
        // The original counter survives untouched.
        r.counter_add("x", &[], 2);
        let snap = r.snapshot();
        let text = snap.to_prometheus();
        assert!(text.contains("x 3"), "counter kept its value: {text}");
    }

    #[test]
    fn histogram_buckets_are_cumulative_in_prometheus_output() {
        let mut r = Registry::new();
        for v in [1, 1, 2, 5, 100] {
            r.histogram_observe("h", &[], DEFAULT_STEP_BUCKETS, v);
        }
        let text = r.snapshot().to_prometheus();
        assert!(text.contains("h_bucket{le=\"1\"} 2\n"));
        assert!(text.contains("h_bucket{le=\"2\"} 3\n"));
        assert!(text.contains("h_bucket{le=\"8\"} 4\n"));
        assert!(text.contains("h_bucket{le=\"+Inf\"} 5\n"));
        assert!(text.contains("h_sum 109\n"));
        assert!(text.contains("h_count 5\n"));
    }
}
