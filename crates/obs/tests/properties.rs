//! Property tests for the merge semantics the `--jobs N` byte-identity
//! regression depends on: folding per-worker registries together in ANY
//! permutation must yield the same snapshot, the same Prometheus text, and
//! the same JSONL.

use dcat_obs::{Registry, Snapshot, DEFAULT_STEP_BUCKETS};
use prop_lite::{run_cases, Gen};

const NAMES: &[&str] = &[
    "ticks_total",
    "ways_moved_total",
    "span_steps",
    "domain_ways",
];
const DOMAINS: &[&str] = &["vm0", "vm1", "vm2", "redis", "pg\"weird\""];

/// Build one worker's registry from the generator. Metric kind is fixed per
/// name (the registry panics on kind mixing, which the generator must never
/// trigger).
fn worker_registry(g: &mut Gen) -> Registry {
    let mut r = Registry::new();
    for _ in 0..g.usize_in(0, 12) {
        let name = *g.pick(NAMES);
        let domain = *g.pick(DOMAINS);
        match name {
            "ticks_total" => r.counter_add("ticks_total", &[], g.u64_in(0, 100)),
            "ways_moved_total" => {
                r.counter_add("ways_moved_total", &[("domain", domain)], g.u64_in(0, 20))
            }
            "span_steps" => r.histogram_observe(
                "span_steps",
                &[("span", "apply")],
                DEFAULT_STEP_BUCKETS,
                g.u64_in(0, 200),
            ),
            _ => r.gauge_set("domain_ways", &[("domain", domain)], g.u64_in(1, 11) as f64),
        }
    }
    r
}

/// Fold snapshots into an accumulator in the order given by `order`.
fn merge_in_order(snaps: &[Snapshot], order: &[usize]) -> Snapshot {
    let mut acc = Snapshot::default();
    for &i in order {
        acc.merge(&snaps[i]);
    }
    acc
}

#[test]
fn merging_worker_registries_is_permutation_invariant() {
    run_cases("obs_merge_permutation", 200, |g| {
        let workers = g.usize_in(1, 6);
        let snaps: Vec<Snapshot> = (0..workers)
            .map(|_| worker_registry(g).snapshot())
            .collect();

        let identity: Vec<usize> = (0..workers).collect();
        let reference = merge_in_order(&snaps, &identity);

        // A generated permutation (Fisher–Yates off the case's own stream).
        let mut perm = identity.clone();
        for i in (1..perm.len()).rev() {
            let j = g.usize_in(0, i);
            perm.swap(i, j);
        }
        let shuffled = merge_in_order(&snaps, &perm);

        assert_eq!(
            reference, shuffled,
            "snapshot differs under permutation {perm:?}"
        );
        assert_eq!(reference.to_prometheus(), shuffled.to_prometheus());
        assert_eq!(reference.to_jsonl(), shuffled.to_jsonl());
    });
}

#[test]
fn merge_is_associative_pairwise_vs_linear() {
    run_cases("obs_merge_associative", 100, |g| {
        let snaps: Vec<Snapshot> = (0..4).map(|_| worker_registry(g).snapshot()).collect();

        // Linear: ((a+b)+c)+d
        let linear = merge_in_order(&snaps, &[0, 1, 2, 3]);

        // Tree: (a+b)+(c+d)
        let mut left = snaps[0].clone();
        left.merge(&snaps[1]);
        let mut right = snaps[2].clone();
        right.merge(&snaps[3]);
        left.merge(&right);

        assert_eq!(linear, left);
        assert_eq!(linear.to_prometheus(), left.to_prometheus());
    });
}

#[test]
fn rendered_exports_always_validate() {
    run_cases("obs_render_validates", 100, |g| {
        let snap = worker_registry(g).snapshot();
        dcat_obs::check_prometheus(&snap.to_prometheus())
            .expect("renderer output must satisfy the exposition validator");
        dcat_obs::check_jsonl(&snap.to_jsonl()).expect("JSONL output must parse line by line");
    });
}
