//! A scoped, work-stealing-free thread pool with deterministic results.
//!
//! The whole workspace is built around replayable simulation: the same
//! seed must give the same bytes of output whether a sweep runs on one
//! core or sixteen. That rules out conventional work-stealing executors,
//! where task-to-thread placement (and therefore any per-thread state or
//! output interleaving) depends on timing. This pool makes determinism
//! structural instead of aspirational:
//!
//! * every task is **self-contained** — it receives its index and its
//!   input, and returns a value; tasks never share mutable state,
//! * tasks are claimed from a single atomic cursor in index order (no
//!   stealing, no per-thread deques, no timing-dependent placement of
//!   *which results exist*),
//! * results are merged and **sorted by task index** after all workers
//!   join, so the output vector is identical regardless of completion
//!   order, and
//! * a pool of one job runs every task inline on the calling thread,
//!   making `--jobs 1` trivially the reference ordering.
//!
//! Threads are scoped ([`std::thread::scope`]), so borrowed task closures
//! work and no thread outlives the call. This is the only module in the
//! workspace allowed to create threads — an `xtask` lint enforces it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// A fixed-width scoped thread pool.
///
/// `Pool` is cheap to construct (it owns no threads between calls); each
/// [`Pool::map`] call spawns its scoped workers and joins them before
/// returning.
#[derive(Debug, Clone, Copy)]
pub struct Pool {
    jobs: usize,
}

impl Pool {
    /// Creates a pool that runs up to `jobs` tasks concurrently.
    /// `jobs` is clamped to at least 1.
    pub fn new(jobs: usize) -> Self {
        Pool { jobs: jobs.max(1) }
    }

    /// The configured concurrency width.
    pub fn jobs(&self) -> usize {
        self.jobs
    }

    /// Applies `f` to every item, returning results in **item order**
    /// regardless of which worker ran which item or when it finished.
    ///
    /// `f` receives `(index, item)`. With one job (or one item) everything
    /// runs inline on the calling thread; otherwise `min(jobs, len)`
    /// scoped workers claim items from a shared cursor. The calling thread
    /// works too, so a pool of N uses N threads total, not N + 1.
    pub fn map<I, T, F>(&self, items: Vec<I>, f: F) -> Vec<T>
    where
        I: Send,
        T: Send,
        F: Fn(usize, I) -> T + Sync,
    {
        let n = items.len();
        let workers = self.jobs.min(n);
        if workers <= 1 {
            return items
                .into_iter()
                .enumerate()
                .map(|(i, item)| f(i, item))
                .collect();
        }

        // Each slot is taken exactly once: the cursor hands out indices,
        // and the Mutex only serializes the one `take` per slot (it is
        // never contended after that).
        let slots: Vec<Mutex<Option<I>>> = items.into_iter().map(|i| Mutex::new(Some(i))).collect();
        let cursor = AtomicUsize::new(0);

        let run_worker = || {
            // The cursor balances work, so a worker's fair share is
            // n/workers; reserve that up front (skew can still grow it).
            let mut local: Vec<(usize, T)> = Vec::with_capacity(n / workers + 1);
            loop {
                let idx = cursor.fetch_add(1, Ordering::Relaxed);
                if idx >= n {
                    break;
                }
                let item = slots[idx]
                    .lock()
                    .unwrap_or_else(|poisoned| poisoned.into_inner())
                    .take()
                    .unwrap_or_else(|| unreachable!("slot {idx} claimed twice"));
                local.push((idx, f(idx, item)));
            }
            local
        };

        let mut indexed: Vec<(usize, T)> = Vec::with_capacity(n);
        std::thread::scope(|scope| {
            let handles: Vec<_> = (1..workers).map(|_| scope.spawn(run_worker)).collect();
            indexed.extend(run_worker());
            for h in handles {
                match h.join() {
                    Ok(part) => indexed.extend(part),
                    Err(payload) => std::panic::resume_unwind(payload),
                }
            }
        });

        // Completion order is timing-dependent; item order is not.
        indexed.sort_by_key(|(idx, _)| *idx);
        indexed.into_iter().map(|(_, value)| value).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobs_clamped_to_one() {
        assert_eq!(Pool::new(0).jobs(), 1);
        assert_eq!(Pool::new(3).jobs(), 3);
    }

    #[test]
    fn map_preserves_item_order() {
        let items: Vec<u64> = (0..64).collect();
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        for jobs in [1, 2, 4, 16] {
            let got = Pool::new(jobs).map(items.clone(), |_, x| x * x);
            assert_eq!(got, expected, "jobs={jobs}");
        }
    }

    #[test]
    fn map_passes_the_item_index() {
        let got = Pool::new(4).map(vec!["a", "b", "c"], |i, s| format!("{i}:{s}"));
        assert_eq!(got, vec!["0:a", "1:b", "2:c"]);
    }

    #[test]
    fn map_handles_empty_and_singleton_inputs() {
        let empty: Vec<u32> = Vec::new();
        assert!(Pool::new(8).map(empty, |_, x: u32| x).is_empty());
        assert_eq!(Pool::new(8).map(vec![7], |_, x| x + 1), vec![8]);
    }

    #[test]
    fn parallel_map_matches_serial_map_on_stateful_work() {
        // Each task runs its own seeded RNG; parallel execution must not
        // perturb any stream.
        let work = |i: usize, seed: u64| {
            let mut rng = smallrng::SmallRng::seed_from_u64(seed);
            (0..1000 + i)
                .map(|_| rng.next_u64())
                .fold(0u64, u64::wrapping_add)
        };
        let seeds: Vec<u64> = (0..32).map(|i| 1000 + i).collect();
        let serial = Pool::new(1).map(seeds.clone(), work);
        let parallel = Pool::new(8).map(seeds, work);
        assert_eq!(serial, parallel);
    }

    #[test]
    fn uses_at_most_jobs_threads() {
        use std::sync::atomic::AtomicUsize;
        let live = AtomicUsize::new(0);
        let peak = Mutex::new(0usize);
        let items: Vec<u32> = (0..64).collect();
        Pool::new(3).map(items, |_, _| {
            let now = live.fetch_add(1, Ordering::SeqCst) + 1;
            {
                let mut p = peak.lock().unwrap();
                *p = (*p).max(now);
            }
            std::thread::sleep(std::time::Duration::from_millis(1));
            live.fetch_sub(1, Ordering::SeqCst);
        });
        assert!(*peak.lock().unwrap() <= 3);
    }
}
