//! Socket/VM topology and the epoch-based execution engine.
//!
//! This crate ties the substrates together the way the paper's testbed
//! does: a socket ([`SocketConfig`]) hosts several VMs ([`VmSpec`]) with
//! dedicated, pinned cores; each VM runs at most one workload (an
//! [`workloads::AccessStream`]); the [`Engine`] interleaves their execution
//! against the shared [`llc_sim::Hierarchy`] in fixed-length **epochs**
//! (one epoch = one controller interval, the paper's 1 s sampling period).
//!
//! After each epoch the engine exposes:
//!
//! * per-VM [`perf_events::CounterSnapshot`]s (what an MSR reader would
//!   return on real hardware), and
//! * an [`EngineCat`] adapter implementing [`resctrl::CacheController`],
//!   so the dCat controller programs the simulated socket exactly as it
//!   would program `/sys/fs/resctrl`.

//! # Examples
//!
//! ```
//! use host::{Engine, EngineConfig, VmSpec};
//! use workloads::Lookbusy;
//!
//! let mut engine = Engine::new(
//!     EngineConfig::xeon_e5_v4(),
//!     vec![VmSpec::new("tenant", vec![0, 1], 4)],
//! )
//! .unwrap();
//! engine.start_workload(0, Box::new(Lookbusy::new()));
//! let stats = engine.run_epoch();
//! assert!(stats[0].instructions > 0);
//! assert_eq!(stats[0].ways, 20); // unmanaged: full mask
//! ```

pub mod engine;
pub mod multi;
pub mod pool;
pub mod topology;

pub use engine::{Engine, EngineCat, EngineConfig, VmEpochStats};
pub use multi::MultiSocketEngine;
pub use pool::Pool;
pub use topology::{SocketConfig, VmSpec};
