//! The epoch-based execution engine.
//!
//! One **epoch** models one controller interval (the paper samples every
//! second). Within an epoch every VM's core receives the same *cycle
//! budget* — cores run in parallel in real time, so equal wall-clock time
//! means equal cycles, not equal instructions. Execution is interleaved in
//! small instruction **slices**, round-robin across VMs, so that the cache
//! sees concurrent access streams (a noisy neighbor evicts its victim's
//! lines *while* the victim runs, exactly as on hardware). A core whose
//! budget is exhausted stops issuing until the next epoch; a fast,
//! compute-bound core therefore retires many more instructions per epoch
//! than a memory-stalled one.
//!
//! Cycle accounting per slice uses the [`llc_sim::CyclesModel`]:
//! instructions × CPI_exec plus per-level miss penalties divided by the
//! workload's memory-level parallelism.

use dcat_obs::{Registry, Snapshot};
use llc_sim::{
    CoreCounters, CyclesModel, FrameAllocator, Hierarchy, LatencyModel, PageMapper, WayMask,
};
use perf_events::CounterSnapshot;
use resctrl::{CacheController, CatCapabilities, Cbm, CosId, ResctrlError};
use smallrng::SmallRng;
use workloads::AccessStream;

use crate::topology::{validate_vm_placement, SocketConfig, VmSpec};

/// Engine construction parameters.
#[derive(Debug, Clone, Copy)]
pub struct EngineConfig {
    /// Socket model.
    pub socket: SocketConfig,
    /// Cycle budget per core per epoch. The default (10 M cycles) keeps
    /// simulations fast; the ratio between workloads is what matters, not
    /// the absolute wall-clock length of an interval.
    pub cycles_per_epoch: u64,
    /// Instructions per interleaving slice.
    pub slice_instructions: u64,
    /// Physical memory pool backing all VMs.
    pub memory_bytes: u64,
    /// Frame placement policy.
    pub frame_policy: llc_sim::FramePolicy,
    /// Latency parameters.
    pub latency: LatencyModel,
    /// Root RNG seed. Each VM's frame-placement stream is derived from it
    /// with [`smallrng::split_seed`] over the VM index, so adding or
    /// removing one VM never reshuffles another VM's physical frames.
    pub seed: u64,
    /// LLC simulation fidelity. `Full` (the default) simulates every set
    /// and carries the byte-identity guarantees; `Sampled { one_in }`
    /// trades bounded miss-rate error for speed (UMON-style set
    /// sampling). See [`llc_sim::SimFidelity`].
    pub llc_fidelity: llc_sim::SimFidelity,
}

impl EngineConfig {
    /// Defaults on the paper's Xeon-E5 v4 socket.
    pub fn xeon_e5_v4() -> Self {
        EngineConfig {
            socket: SocketConfig::xeon_e5_v4(),
            cycles_per_epoch: 10_000_000,
            slice_instructions: 2_000,
            memory_bytes: 4 * 1024 * 1024 * 1024,
            frame_policy: llc_sim::FramePolicy::Randomized,
            latency: LatencyModel::default(),
            seed: 0xD_CA7,
            llc_fidelity: llc_sim::SimFidelity::Full,
        }
    }
}

/// Per-VM results of one epoch.
#[derive(Debug, Clone)]
pub struct VmEpochStats {
    /// VM name (copied from the spec).
    pub name: String,
    /// Instructions retired this epoch (all the VM's cores).
    pub instructions: u64,
    /// Cycles consumed this epoch.
    pub cycles: u64,
    /// Instructions per cycle (0 when idle).
    pub ipc: f64,
    /// L1 references.
    pub l1_ref: u64,
    /// LLC references.
    pub llc_ref: u64,
    /// LLC misses.
    pub llc_miss: u64,
    /// `llc_miss / llc_ref`, 0 when no references.
    pub llc_miss_rate: f64,
    /// Average data-access latency in cycles.
    pub avg_access_latency: f64,
    /// LLC ways currently granted to the VM's cores.
    pub ways: u32,
    /// Requests completed this epoch (service workloads only).
    pub requests_completed: u64,
    /// LLC lines attributed to the VM at the end of the epoch (the
    /// simulator's CMT-style occupancy monitoring).
    pub llc_occupancy_lines: u64,
}

struct WorkloadRt {
    stream: Box<dyn AccessStream>,
    mapper: PageMapper,
    carry_refs: f64,
    open_request_cycles: f64,
    request_latencies: Vec<f64>,
    /// Reusable buffer for batched access generation: `run_slice` pulls
    /// a whole slice of references with one virtual `next_batch` call
    /// instead of one `next_access` dispatch per reference. The
    /// capacity persists across slices, so steady state allocates
    /// nothing.
    batch: Vec<workloads::MemRef>,
}

struct VmSlot {
    spec: VmSpec,
    workload: Option<WorkloadRt>,
    /// Private frame-placement stream, derived from the engine seed and
    /// the VM index. It lives on the slot (not the workload) so restarting
    /// a workload continues the stream rather than rewinding it.
    placement_rng: SmallRng,
}

/// The multi-VM socket simulator.
pub struct Engine {
    config: EngineConfig,
    hierarchy: Hierarchy,
    frames: FrameAllocator,
    vms: Vec<VmSlot>,
    cos_masks: Vec<Cbm>,
    core_cos: Vec<CosId>,
    epoch: u64,
    metrics: Registry,
}

impl Engine {
    /// Creates an engine hosting `vms` on the configured socket.
    ///
    /// Every core starts with the full LLC mask (the unmanaged shared-cache
    /// configuration); policies then program masks through [`Engine::cat`].
    pub fn new(config: EngineConfig, vms: Vec<VmSpec>) -> Result<Self, String> {
        validate_vm_placement(&config.socket, &vms)?;
        let caps = CatCapabilities::with_ways(config.socket.llc_ways());
        let mut hierarchy = Hierarchy::new(config.socket.hierarchy);
        hierarchy.set_fidelity(config.llc_fidelity);
        Ok(Engine {
            hierarchy,
            frames: FrameAllocator::new(config.memory_bytes, config.frame_policy, config.seed),
            vms: vms
                .into_iter()
                .enumerate()
                .map(|(vm, spec)| VmSlot {
                    spec,
                    workload: None,
                    placement_rng: SmallRng::seed_from_u64(smallrng::split_seed(
                        config.seed,
                        vm as u64,
                    )),
                })
                .collect(),
            cos_masks: vec![caps.full_mask(); caps.num_closids as usize],
            core_cos: vec![CosId(0); config.socket.hierarchy.cores as usize],
            epoch: 0,
            metrics: Registry::new(),
            config,
        })
    }

    /// The engine's configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of hosted VMs.
    pub fn num_vms(&self) -> usize {
        self.vms.len()
    }

    /// The spec of VM `vm`.
    pub fn vm_spec(&self, vm: usize) -> &VmSpec {
        &self.vms[vm].spec
    }

    /// Epochs executed so far.
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Direct read access to the hierarchy (for occupancy assertions).
    pub fn hierarchy(&self) -> &Hierarchy {
        &self.hierarchy
    }

    /// Starts (or replaces) the workload of VM `vm`.
    pub fn start_workload(&mut self, vm: usize, stream: Box<dyn AccessStream>) {
        let mapper = PageMapper::new(stream.page_size());
        self.stop_workload(vm);
        self.vms[vm].workload = Some(WorkloadRt {
            stream,
            mapper,
            carry_refs: 0.0,
            open_request_cycles: 0.0,
            request_latencies: Vec::new(),
            batch: Vec::new(),
        });
    }

    /// Stops the workload of VM `vm`, returning its frames to the pool.
    pub fn stop_workload(&mut self, vm: usize) {
        if let Some(mut rt) = self.vms[vm].workload.take() {
            rt.mapper.clear(&mut self.frames);
        }
    }

    /// Whether VM `vm` currently runs a workload.
    pub fn has_workload(&self, vm: usize) -> bool {
        self.vms[vm].workload.is_some()
    }

    /// LLC ways currently granted to VM `vm` (its primary core's mask).
    pub fn vm_ways(&self, vm: usize) -> u32 {
        self.hierarchy
            .fill_mask(self.vms[vm].spec.primary_core())
            .count()
    }

    /// LLC lines currently attributed to VM `vm` across its cores.
    pub fn vm_llc_occupancy(&self, vm: usize) -> u64 {
        self.vms[vm]
            .spec
            .cores
            .iter()
            .map(|&c| self.hierarchy.llc_occupancy_of_core(c))
            .sum()
    }

    /// Drains the request-latency samples (in cycles) recorded for VM `vm`
    /// since the last drain.
    pub fn take_request_latencies(&mut self, vm: usize) -> Vec<f64> {
        match &mut self.vms[vm].workload {
            Some(rt) => std::mem::take(&mut rt.request_latencies),
            None => Vec::new(),
        }
    }

    /// Monotonic per-VM counter snapshots (sums over each VM's cores) —
    /// what dCat would read from MSRs.
    pub fn snapshots(&self) -> Vec<CounterSnapshot> {
        self.vms
            .iter()
            .map(|slot| {
                let sum = slot
                    .spec
                    .cores
                    .iter()
                    .fold(CoreCounters::default(), |acc, &c| {
                        acc.merged_with(&self.hierarchy.counters(c))
                    });
                CounterSnapshot::from(sum)
            })
            .collect()
    }

    /// The CAT control-plane adapter for this socket.
    pub fn cat(&mut self) -> EngineCat<'_> {
        EngineCat { engine: self }
    }

    /// Runs one epoch and returns per-VM statistics.
    pub fn run_epoch(&mut self) -> Vec<VmEpochStats> {
        let before = self.snapshots();
        let requests_before: Vec<usize> = self
            .vms
            .iter()
            .map(|s| s.workload.as_ref().map_or(0, |w| w.request_latencies.len()))
            .collect();

        let budget = self.config.cycles_per_epoch as i64;
        let mut remaining = vec![budget; self.vms.len()];
        loop {
            let mut progressed = false;
            for (vm, rem) in remaining.iter_mut().enumerate() {
                if *rem <= 0 || self.vms[vm].workload.is_none() {
                    continue;
                }
                let cycles = self.run_slice(vm);
                *rem -= cycles as i64;
                progressed = true;
            }
            if !progressed {
                break;
            }
        }
        self.epoch += 1;

        let after = self.snapshots();
        let stats: Vec<VmEpochStats> = (0..self.vms.len())
            .map(|vm| {
                let delta = after[vm].delta_since(&before[vm]);
                let counters = CoreCounters {
                    l1_ref: delta.l1_ref,
                    // The snapshot does not carry l1_miss; reconstruct a
                    // lower bound for latency purposes from llc_ref (every
                    // LLC reference was an L1 and L2 miss).
                    l1_miss: delta.llc_ref,
                    llc_ref: delta.llc_ref,
                    llc_miss: delta.llc_miss,
                    ret_ins: delta.ret_ins,
                    cycles: delta.cycles,
                };
                let requests_now = self.vms[vm]
                    .workload
                    .as_ref()
                    .map_or(0, |w| w.request_latencies.len());
                VmEpochStats {
                    name: self.vms[vm].spec.name.clone(),
                    instructions: delta.ret_ins,
                    cycles: delta.cycles,
                    ipc: if delta.cycles == 0 {
                        0.0
                    } else {
                        delta.ret_ins as f64 / delta.cycles as f64
                    },
                    l1_ref: delta.l1_ref,
                    llc_ref: delta.llc_ref,
                    llc_miss: delta.llc_miss,
                    llc_miss_rate: if delta.llc_ref == 0 {
                        0.0
                    } else {
                        delta.llc_miss as f64 / delta.llc_ref as f64
                    },
                    avg_access_latency: self.config.latency.average_access_latency(&counters),
                    ways: self.vm_ways(vm),
                    requests_completed: (requests_now - requests_before[vm]) as u64,
                    llc_occupancy_lines: self.vm_llc_occupancy(vm),
                }
            })
            .collect();
        self.metrics.counter_add("engine_epochs_total", &[], 1);
        for s in &stats {
            let vm = [("vm", s.name.as_str())];
            self.metrics
                .counter_add("engine_instructions_total", &vm, s.instructions);
            self.metrics
                .counter_add("engine_cycles_total", &vm, s.cycles);
            self.metrics
                .counter_add("engine_llc_misses_total", &vm, s.llc_miss);
            self.metrics
                .counter_add("engine_requests_total", &vm, s.requests_completed);
            self.metrics
                .gauge_set("engine_vm_ways", &vm, f64::from(s.ways));
        }
        stats
    }

    /// Snapshot of the engine's cumulative metrics (epochs run, per-VM
    /// instruction/cycle/miss totals, current way grants). Pure data —
    /// merging snapshots from several sockets is order-insensitive.
    pub fn metrics_snapshot(&self) -> Snapshot {
        self.metrics.snapshot()
    }

    /// Executes one instruction slice of VM `vm`; returns consumed cycles.
    fn run_slice(&mut self, vm: usize) -> u64 {
        let core = self.vms[vm].spec.primary_core();
        let instrs = self.config.slice_instructions;
        let slot = &mut self.vms[vm];
        let rt = slot.workload.as_mut().expect("run_slice on idle VM");
        let profile = rt.stream.profile();

        let refs_f = instrs as f64 * profile.mem_refs_per_instr + rt.carry_refs;
        let n_refs = refs_f as u64;
        rt.carry_refs = refs_f - n_refs as f64;

        // Compute cycles attributed to each reference for request latency
        // accounting (the instructions executed between two references).
        let instr_share = if profile.mem_refs_per_instr > 0.0 {
            profile.cpi_exec / profile.mem_refs_per_instr
        } else {
            0.0
        };

        let placement_rng = &mut slot.placement_rng;
        let before = self.hierarchy.counters(core);
        // One virtual call generates the whole slice's references; the
        // sequence is exactly what per-reference next_access would yield.
        rt.stream
            .next_batch(&mut rt.batch, usize::try_from(n_refs).unwrap_or(usize::MAX));
        for i in 0..rt.batch.len() {
            let mref = rt.batch[i];
            let paddr = rt
                .mapper
                .translate_with(mref.vaddr, &mut self.frames, placement_rng)
                .expect("physical memory pool exhausted; raise EngineConfig::memory_bytes");
            let level = self.hierarchy.access(core, paddr.0, mref.kind);
            let lat = self.config.latency.latency_of(level);
            rt.open_request_cycles += lat / profile.mlp + instr_share;
            if mref.ends_request {
                rt.request_latencies.push(rt.open_request_cycles);
                rt.open_request_cycles = 0.0;
            }
        }
        let mut delta = self.hierarchy.counters(core).delta_since(&before);
        delta.ret_ins = instrs;
        let cycles =
            CyclesModel::new(self.config.latency, profile.cpi_exec, profile.mlp).cycles_for(&delta);
        self.hierarchy.record_instructions(core, instrs);
        self.hierarchy.record_cycles(core, cycles);
        cycles
    }

    fn apply_mask_to_core(&mut self, core: u32) {
        // Both tables are sized from the validated socket config; an
        // out-of-range id means the caller skipped validation, and
        // leaving the fill mask untouched beats panicking mid-apply.
        let Some(&cos) = self.core_cos.get(core as usize) else {
            return;
        };
        let Some(&cbm) = self.cos_masks.get(cos.0 as usize) else {
            return;
        };
        self.hierarchy.set_fill_mask(core, WayMask(cbm.0));
    }
}

/// [`CacheController`] adapter over an [`Engine`].
///
/// Programming a class re-applies its mask to every associated core, and
/// associating a core applies the class's mask to it — matching how CAT
/// MSthe hardware behaves when `IA32_PQR_ASSOC`/`IA32_L3_QOS_MASK` change.
pub struct EngineCat<'a> {
    engine: &'a mut Engine,
}

impl CacheController for EngineCat<'_> {
    fn capabilities(&self) -> CatCapabilities {
        CatCapabilities::with_ways(self.engine.config.socket.llc_ways())
    }

    fn num_cores(&self) -> u32 {
        self.engine.config.socket.hierarchy.cores
    }

    fn program_cos(&mut self, cos: CosId, cbm: Cbm) -> Result<(), ResctrlError> {
        self.validate_cos(cos)?;
        self.validate_cbm(cbm)?;
        let Some(slot) = self.engine.cos_masks.get_mut(cos.0 as usize) else {
            return Err(ResctrlError::InvalidCos(cos));
        };
        *slot = cbm;
        for core in 0..self.num_cores() {
            if self.engine.core_cos.get(core as usize) == Some(&cos) {
                self.engine.apply_mask_to_core(core);
            }
        }
        Ok(())
    }

    fn assign_core(&mut self, core: u32, cos: CosId) -> Result<(), ResctrlError> {
        self.validate_cos(cos)?;
        let Some(slot) = self.engine.core_cos.get_mut(core as usize) else {
            return Err(ResctrlError::InvalidCore(core));
        };
        *slot = cos;
        self.engine.apply_mask_to_core(core);
        Ok(())
    }

    fn cos_mask(&self, cos: CosId) -> Result<Cbm, ResctrlError> {
        self.validate_cos(cos)?;
        Ok(self.engine.cos_masks[cos.0 as usize])
    }

    fn core_cos(&self, core: u32) -> Result<CosId, ResctrlError> {
        if core >= self.num_cores() {
            return Err(ResctrlError::InvalidCore(core));
        }
        Ok(self.engine.core_cos[core as usize])
    }

    fn flush_cbm(&mut self, cbm: Cbm) -> Result<(), ResctrlError> {
        self.engine.hierarchy.flush_mask(llc_sim::WayMask(cbm.0));
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::CacheGeometry;
    use workloads::{Lookbusy, Mlr, RedisModel};

    fn small_config() -> EngineConfig {
        let mut cfg = EngineConfig::xeon_e5_v4();
        cfg.socket.hierarchy = llc_sim::HierarchyConfig {
            cores: 4,
            l1: CacheGeometry::new(64, 8, 64),
            l2: CacheGeometry::new(128, 8, 64),
            llc: CacheGeometry::from_capacity(2 * 1024 * 1024, 8),
            llc_policy: Default::default(),
        };
        cfg.cycles_per_epoch = 500_000;
        cfg.memory_bytes = 64 * 1024 * 1024;
        cfg
    }

    fn two_vm_engine() -> Engine {
        Engine::new(
            small_config(),
            vec![
                VmSpec::new("a", vec![0, 1], 2),
                VmSpec::new("b", vec![2, 3], 2),
            ],
        )
        .unwrap()
    }

    #[test]
    fn idle_vms_retire_nothing() {
        let mut e = two_vm_engine();
        let stats = e.run_epoch();
        assert_eq!(stats[0].instructions, 0);
        assert_eq!(stats[0].ipc, 0.0);
        assert_eq!(e.epoch(), 1);
    }

    #[test]
    fn active_vm_consumes_its_cycle_budget() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(Lookbusy::new()));
        let stats = e.run_epoch();
        let budget = e.config().cycles_per_epoch;
        assert!(
            stats[0].cycles >= budget,
            "budget not consumed: {}",
            stats[0].cycles
        );
        // One slice of overshoot at most.
        assert!(stats[0].cycles < budget + 100_000);
        assert!(stats[0].instructions > 0);
        assert_eq!(stats[1].instructions, 0);
    }

    #[test]
    fn memory_bound_vm_retires_fewer_instructions() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(Lookbusy::new()));
        e.start_workload(1, Box::new(Mlr::new(8 * 1024 * 1024, 1))); // thrashes 2MB LLC
        let _ = e.run_epoch();
        let stats = e.run_epoch();
        assert!(
            stats[0].instructions > 3 * stats[1].instructions,
            "lookbusy {} vs mlr {}",
            stats[0].instructions,
            stats[1].instructions
        );
        assert!(stats[1].llc_miss_rate > 0.3);
        assert!(stats[1].avg_access_latency > stats[0].avg_access_latency);
    }

    #[test]
    fn stop_workload_frees_frames_and_goes_idle() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(Mlr::new(1024 * 1024, 2)));
        let _ = e.run_epoch();
        assert!(e.has_workload(0));
        e.stop_workload(0);
        assert!(!e.has_workload(0));
        let stats = e.run_epoch();
        assert_eq!(stats[0].instructions, 0);
    }

    #[test]
    fn cat_adapter_programs_fill_masks() {
        let mut e = two_vm_engine();
        {
            let mut cat = e.cat();
            cat.program_cos(CosId(1), Cbm(0b11)).unwrap();
            cat.assign_core(0, CosId(1)).unwrap();
            cat.assign_core(1, CosId(1)).unwrap();
        }
        assert_eq!(e.vm_ways(0), 2);
        assert_eq!(e.vm_ways(1), 8); // still full mask
        {
            let mut cat = e.cat();
            // Growing the class updates the already-assigned cores.
            cat.program_cos(CosId(1), Cbm(0b1111)).unwrap();
        }
        assert_eq!(e.vm_ways(0), 4);
    }

    #[test]
    fn cat_adapter_validates() {
        let mut e = two_vm_engine();
        let mut cat = e.cat();
        assert!(cat.program_cos(CosId(1), Cbm(0)).is_err());
        assert!(cat.program_cos(CosId(1), Cbm(0b101)).is_err());
        assert!(cat.program_cos(CosId(16), Cbm(1)).is_err());
        assert!(cat.assign_core(99, CosId(1)).is_err());
    }

    #[test]
    fn partitioning_isolates_vm_from_noisy_neighbor() {
        // Victim: small MLR that fits 4 ways; three streaming neighbors.
        fn build(isolate: bool) -> Engine {
            let vms: Vec<VmSpec> = (0..4)
                .map(|i| VmSpec::new(format!("vm{i}"), vec![i as u32], 2))
                .collect();
            let mut e = Engine::new(small_config(), vms).unwrap();
            e.start_workload(0, Box::new(Mlr::new(256 * 1024, 3)));
            for vm in 1..4 {
                e.start_workload(vm, Box::new(workloads::Mload::new(8 * 1024 * 1024)));
            }
            if isolate {
                let mut cat = e.cat();
                cat.program_cos(CosId(1), Cbm(0b1111)).unwrap();
                cat.program_cos(CosId(2), Cbm(0b1111_0000)).unwrap();
                cat.assign_core(0, CosId(1)).unwrap();
                for c in 1..4 {
                    cat.assign_core(c, CosId(2)).unwrap();
                }
            }
            e
        }

        let mut shared = build(false);
        let mut isolated = build(true);
        for _ in 0..5 {
            shared.run_epoch();
            isolated.run_epoch();
        }
        let shared_stats = shared.run_epoch();
        let iso_stats = isolated.run_epoch();

        assert!(
            iso_stats[0].ipc > 1.5 * shared_stats[0].ipc,
            "CAT isolation should protect the victim: isolated {} vs shared {}",
            iso_stats[0].ipc,
            shared_stats[0].ipc
        );
    }

    #[test]
    fn request_latencies_recorded_for_service_workloads() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(RedisModel::new(10_000, 128, 0.99, 7)));
        let stats = e.run_epoch();
        assert!(stats[0].requests_completed > 0);
        let lats = e.take_request_latencies(0);
        assert_eq!(lats.len() as u64, stats[0].requests_completed);
        assert!(lats.iter().all(|&l| l > 0.0));
        // Drained: second take is empty.
        assert!(e.take_request_latencies(0).is_empty());
    }

    #[test]
    fn occupancy_monitoring_tracks_the_working_set() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(Mlr::new(64 * 1024, 5)));
        let mut stats = Vec::new();
        for _ in 0..4 {
            stats = e.run_epoch();
        }
        // 64 KiB = 1024 lines; once warm, occupancy approaches that.
        let occ = stats[0].llc_occupancy_lines;
        assert!(occ > 500, "occupancy {occ} too small for a 1024-line WSS");
        assert!(occ <= 1024 + 128, "occupancy {occ} exceeds the working set");
        assert_eq!(stats[1].llc_occupancy_lines, 0, "idle VM owns nothing");
    }

    #[test]
    fn replacing_a_workload_frees_its_frames() {
        let mut cfg = small_config();
        // Pool just big enough for ~2 working sets: leaks would exhaust it.
        cfg.memory_bytes = 8 * 1024 * 1024;
        let mut e = Engine::new(cfg, vec![VmSpec::new("a", vec![0, 1], 2)]).unwrap();
        for round in 0..6 {
            e.start_workload(0, Box::new(Mlr::new(3 * 1024 * 1024, round)));
            let _ = e.run_epoch();
        }
        // Reaching here without the "pool exhausted" panic proves reuse.
        assert!(e.has_workload(0));
    }

    #[test]
    fn identical_seeds_give_identical_runs() {
        let build = || {
            let mut e = two_vm_engine();
            e.start_workload(0, Box::new(Mlr::new(512 * 1024, 9)));
            e.start_workload(1, Box::new(workloads::Mload::new(2 * 1024 * 1024)));
            e
        };
        let mut a = build();
        let mut b = build();
        for _ in 0..4 {
            let sa = a.run_epoch();
            let sb = b.run_epoch();
            for (x, y) in sa.iter().zip(sb.iter()) {
                assert_eq!(x.instructions, y.instructions);
                assert_eq!(x.cycles, y.cycles);
                assert_eq!(x.llc_miss, y.llc_miss);
            }
        }
    }

    #[test]
    fn neighbor_churn_does_not_reshuffle_a_vms_frames() {
        // Regression test for per-VM placement sub-seeds. VM "a" is CAT-
        // isolated in the low 4 ways, so its miss trajectory depends only
        // on its own access stream and its own frame placement. Swapping
        // the neighbor's workload (and therefore how many frames the
        // neighbor allocates) must leave "a" bit-identical — under the old
        // engine-global placement RNG the neighbor's allocations advanced
        // the shared stream and reshuffled "a"'s frames.
        let run = |neighbor_wss: u64| {
            let mut e = two_vm_engine();
            {
                let mut cat = e.cat();
                cat.program_cos(CosId(1), Cbm(0b1111)).unwrap();
                cat.program_cos(CosId(2), Cbm(0b1111_0000)).unwrap();
                cat.assign_core(0, CosId(1)).unwrap();
                cat.assign_core(1, CosId(1)).unwrap();
                cat.assign_core(2, CosId(2)).unwrap();
                cat.assign_core(3, CosId(2)).unwrap();
            }
            e.start_workload(0, Box::new(Mlr::new(768 * 1024, 9)));
            e.start_workload(1, Box::new(Mlr::new(neighbor_wss, 5)));
            let mut trace = Vec::new();
            for _ in 0..3 {
                let stats = e.run_epoch();
                trace.push((
                    stats[0].instructions,
                    stats[0].cycles,
                    stats[0].llc_ref,
                    stats[0].llc_miss,
                ));
            }
            trace
        };
        assert_eq!(run(256 * 1024), run(4 * 1024 * 1024));
    }

    #[test]
    fn request_latency_accounting_spans_epochs() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(RedisModel::new(5_000, 128, 0.9, 3)));
        let mut total_requests = 0;
        let mut total_samples = 0;
        for _ in 0..3 {
            let stats = e.run_epoch();
            total_requests += stats[0].requests_completed;
            total_samples += e.take_request_latencies(0).len() as u64;
        }
        assert!(total_requests > 0);
        assert_eq!(
            total_requests, total_samples,
            "every request yields one sample"
        );
    }

    #[test]
    fn cat_adapter_flush_cbm_clears_the_masked_ways() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(Mlr::new(128 * 1024, 5)));
        let _ = e.run_epoch();
        assert!(e.vm_llc_occupancy(0) > 0);
        {
            let mut cat = e.cat();
            // Everything was filled under the full default mask.
            cat.flush_cbm(Cbm(0xff)).unwrap();
        }
        assert_eq!(e.hierarchy().llc_occupancy(), 0, "flush must empty the LLC");
        assert_eq!(e.vm_llc_occupancy(0), 0);
    }

    #[test]
    fn snapshots_aggregate_vm_cores() {
        let mut e = two_vm_engine();
        e.start_workload(0, Box::new(Lookbusy::new()));
        e.run_epoch();
        let snaps = e.snapshots();
        assert!(snaps[0].ret_ins > 0);
        assert_eq!(snaps[1].ret_ins, 0);
    }
}
