//! Multi-socket topologies: several independent sockets simulated in
//! parallel.
//!
//! A dCat deployment manages each socket independently — every socket has
//! its own LLC, its own CAT classes, and its own controller instance
//! (the paper runs one daemon per socket). The sockets therefore share
//! nothing at simulation time, which makes socket-level parallelism safe:
//! [`MultiSocketEngine::run_epoch`] moves each socket's whole state
//! (engine, hierarchy, page tables, workload streams) onto a pool worker
//! for the duration of the epoch and reassembles the per-socket stats in
//! socket order afterwards.
//!
//! Controller ticks stay on the coordinating thread: between epochs the
//! caller walks sockets with [`MultiSocketEngine::socket_mut`] and drives
//! each socket's [`crate::EngineCat`] exactly as in the single-socket
//! flow. Only the data-plane epoch is fanned out.
//!
//! Determinism: each socket derives its frame-placement root seed from
//! the shared config seed with [`smallrng::split_seed`] over the socket
//! index (and each VM splits again over its VM index), so no RNG stream
//! is ever shared across threads and the results are bit-identical
//! whatever the pool width.

use crate::engine::{Engine, EngineConfig, VmEpochStats};
use crate::pool::Pool;
use crate::topology::VmSpec;

// Socket state crosses thread boundaries in `run_epoch`; assert the whole
// engine (hierarchy, frame allocator, page tables, boxed workload streams)
// is `Send` at compile time so a non-`Send` field added anywhere below
// fails here with a readable error.
const _: () = {
    const fn assert_send<T: Send>() {}
    assert_send::<Engine>();
    assert_send::<VmEpochStats>();
};

/// Several independent sockets behind one façade.
pub struct MultiSocketEngine {
    sockets: Vec<Engine>,
}

impl MultiSocketEngine {
    /// Creates one engine per entry of `sockets`, all sharing `config`
    /// except for the seed: socket `s` uses
    /// `split_seed(config.seed, s as u64)` as its root seed, so sockets
    /// hosting identical VM mixes still place frames independently.
    pub fn new(config: EngineConfig, sockets: Vec<Vec<VmSpec>>) -> Result<Self, String> {
        if sockets.is_empty() {
            return Err("a topology needs at least one socket".to_string());
        }
        let engines = sockets
            .into_iter()
            .enumerate()
            .map(|(s, vms)| {
                let mut socket_cfg = config;
                socket_cfg.seed = smallrng::split_seed(config.seed, s as u64);
                Engine::new(socket_cfg, vms).map_err(|e| format!("socket {s}: {e}"))
            })
            .collect::<Result<Vec<_>, _>>()?;
        Ok(MultiSocketEngine { sockets: engines })
    }

    /// Number of sockets.
    pub fn num_sockets(&self) -> usize {
        self.sockets.len()
    }

    /// Read access to socket `s`.
    pub fn socket(&self, s: usize) -> &Engine {
        &self.sockets[s]
    }

    /// Mutable access to socket `s` — this is where per-socket controller
    /// ticks happen, on the coordinating thread, between epochs.
    pub fn socket_mut(&mut self, s: usize) -> &mut Engine {
        &mut self.sockets[s]
    }

    /// Runs one epoch on every socket, fanning sockets out across `pool`.
    ///
    /// Returns per-socket stats in **socket order** (never completion
    /// order). Bit-identical for any pool width because sockets share no
    /// state and no RNG.
    pub fn run_epoch(&mut self, pool: &Pool) -> Vec<Vec<VmEpochStats>> {
        let engines = std::mem::take(&mut self.sockets);
        let mut ran = pool.map(engines, |_, mut engine| {
            let stats = engine.run_epoch();
            (engine, stats)
        });
        let mut all_stats = Vec::with_capacity(ran.len());
        for (engine, stats) in ran.drain(..) {
            self.sockets.push(engine);
            all_stats.push(stats);
        }
        all_stats
    }

    /// Merged metrics across all sockets. Counters sum and gauges take
    /// the maximum, so a VM name shared by several sockets aggregates;
    /// the merge is order-insensitive, hence identical for any pool
    /// width (each socket's registry travels with its engine).
    pub fn metrics_snapshot(&self) -> dcat_obs::Snapshot {
        let mut merged = dcat_obs::Snapshot::default();
        for engine in &self.sockets {
            merged.merge(&engine.metrics_snapshot());
        }
        merged
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::CacheGeometry;
    use resctrl::{CacheController, Cbm, CosId};
    use workloads::{Lookbusy, Mlr};

    fn small_config() -> EngineConfig {
        let mut cfg = EngineConfig::xeon_e5_v4();
        cfg.socket.hierarchy = llc_sim::HierarchyConfig {
            cores: 4,
            l1: CacheGeometry::new(64, 8, 64),
            l2: CacheGeometry::new(128, 8, 64),
            llc: CacheGeometry::from_capacity(2 * 1024 * 1024, 8),
            llc_policy: Default::default(),
        };
        cfg.cycles_per_epoch = 500_000;
        cfg.memory_bytes = 64 * 1024 * 1024;
        cfg
    }

    fn two_socket_engine() -> MultiSocketEngine {
        let vms = || {
            vec![
                VmSpec::new("a", vec![0, 1], 2),
                VmSpec::new("b", vec![2, 3], 2),
            ]
        };
        let mut m = MultiSocketEngine::new(small_config(), vec![vms(), vms()]).unwrap();
        for s in 0..2 {
            let e = m.socket_mut(s);
            e.start_workload(0, Box::new(Mlr::new(512 * 1024, 9)));
            e.start_workload(1, Box::new(Lookbusy::new()));
        }
        m
    }

    #[test]
    fn empty_topology_rejected() {
        assert!(MultiSocketEngine::new(small_config(), vec![]).is_err());
    }

    #[test]
    fn parallel_epochs_match_serial_epochs_exactly() {
        let mut serial = two_socket_engine();
        let mut parallel = two_socket_engine();
        let one = Pool::new(1);
        let many = Pool::new(4);
        for _ in 0..4 {
            let a = serial.run_epoch(&one);
            let b = parallel.run_epoch(&many);
            assert_eq!(a.len(), b.len());
            for (sa, sb) in a.iter().zip(b.iter()) {
                for (x, y) in sa.iter().zip(sb.iter()) {
                    assert_eq!(x.instructions, y.instructions);
                    assert_eq!(x.cycles, y.cycles);
                    assert_eq!(x.llc_ref, y.llc_ref);
                    assert_eq!(x.llc_miss, y.llc_miss);
                    assert_eq!(x.ipc.to_bits(), y.ipc.to_bits());
                    assert_eq!(x.llc_occupancy_lines, y.llc_occupancy_lines);
                }
            }
        }
    }

    #[test]
    fn sockets_place_frames_independently() {
        // Identical VM mixes on two sockets: same workloads, but distinct
        // placement sub-seeds, so the cache behaviour need not be equal
        // line-for-line. What must hold: both sockets make progress and
        // the stats vectors have the socket-order shape.
        let mut m = two_socket_engine();
        let stats = m.run_epoch(&Pool::new(2));
        assert_eq!(stats.len(), 2);
        for socket_stats in &stats {
            assert_eq!(socket_stats.len(), 2);
            assert!(socket_stats[0].instructions > 0);
            assert!(socket_stats[1].instructions > 0);
        }
    }

    #[test]
    fn controller_ticks_stay_on_the_coordinator() {
        // Programming CAT between epochs through socket_mut must only
        // affect that socket.
        let mut m = two_socket_engine();
        let _ = m.run_epoch(&Pool::new(2));
        {
            let mut cat = m.socket_mut(0).cat();
            cat.program_cos(CosId(1), Cbm(0b11)).unwrap();
            cat.assign_core(0, CosId(1)).unwrap();
            cat.assign_core(1, CosId(1)).unwrap();
        }
        let stats = m.run_epoch(&Pool::new(2));
        assert_eq!(stats[0][0].ways, 2, "socket 0 VM a throttled");
        assert_eq!(stats[1][0].ways, 8, "socket 1 untouched");
    }

    #[test]
    fn merged_metrics_are_pool_width_invariant() {
        let mut serial = two_socket_engine();
        let mut parallel = two_socket_engine();
        for _ in 0..3 {
            let _ = serial.run_epoch(&Pool::new(1));
            let _ = parallel.run_epoch(&Pool::new(4));
        }
        let a = serial.metrics_snapshot();
        let b = parallel.metrics_snapshot();
        assert_eq!(a, b);
        assert_eq!(a.to_prometheus(), b.to_prometheus());
        assert_eq!(
            a.get("engine_epochs_total", &[]),
            Some(&dcat_obs::MetricValue::Counter(6)),
            "3 epochs x 2 sockets"
        );
        // Both sockets host a VM named "a"; their instruction counters sum.
        assert!(matches!(
            a.get("engine_instructions_total", &[("vm", "a")]),
            Some(&dcat_obs::MetricValue::Counter(n)) if n > 0
        ));
    }
}
