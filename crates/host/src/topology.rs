//! Socket and VM descriptions.

use llc_sim::HierarchyConfig;

/// Physical socket configuration.
#[derive(Debug, Clone, Copy)]
pub struct SocketConfig {
    /// Cache hierarchy shape.
    pub hierarchy: HierarchyConfig,
    /// Core frequency in GHz, for converting cycles to wall time.
    pub freq_ghz: f64,
}

impl SocketConfig {
    /// The paper's evaluation machine: Xeon E5-2697 v4, 18 cores at
    /// 2.3 GHz, 20-way 45 MiB LLC.
    pub fn xeon_e5_v4() -> Self {
        SocketConfig {
            hierarchy: HierarchyConfig::default(),
            freq_ghz: 2.3,
        }
    }

    /// The paper's Xeon-D machine: 8 cores, 12-way 12 MiB LLC.
    pub fn xeon_d() -> Self {
        SocketConfig {
            hierarchy: HierarchyConfig::xeon_d(),
            freq_ghz: 2.0,
        }
    }

    /// Number of LLC ways.
    pub fn llc_ways(&self) -> u32 {
        self.hierarchy.llc.ways
    }

    /// Bytes per LLC way.
    pub fn way_bytes(&self) -> u64 {
        self.hierarchy.llc.way_bytes()
    }

    /// Converts cycles to nanoseconds at this socket's frequency.
    pub fn cycles_to_ns(&self, cycles: f64) -> f64 {
        cycles / self.freq_ghz
    }
}

/// A tenant VM: a set of dedicated cores plus the contracted LLC share.
///
/// The paper's setup pins each VM's vCPUs to dedicated physical threads
/// (no CPU overprovisioning), which is what makes per-core CAT masks
/// equivalent to per-VM masks.
#[derive(Debug, Clone)]
pub struct VmSpec {
    /// Display name.
    pub name: String,
    /// Physical cores owned exclusively by this VM.
    pub cores: Vec<u32>,
    /// Contracted ("paid-for") LLC ways — dCat's baseline allocation.
    pub reserved_ways: u32,
}

impl VmSpec {
    /// Creates a VM spec.
    ///
    /// # Panics
    ///
    /// Panics if the VM has no cores or no reserved ways.
    pub fn new(name: impl Into<String>, cores: Vec<u32>, reserved_ways: u32) -> Self {
        assert!(!cores.is_empty(), "a VM needs at least one core");
        assert!(reserved_ways >= 1, "CAT cannot reserve zero ways");
        VmSpec {
            name: name.into(),
            cores,
            reserved_ways,
        }
    }

    /// The core that runs the VM's (single-threaded) workload.
    pub fn primary_core(&self) -> u32 {
        self.cores[0]
    }
}

/// Checks that the VMs' core sets are disjoint and fit the socket.
pub fn validate_vm_placement(socket: &SocketConfig, vms: &[VmSpec]) -> Result<(), String> {
    // BTreeSet for hygiene: membership-only today, but nothing downstream
    // should ever observe hasher-seed iteration order if this grows.
    let mut seen = std::collections::BTreeSet::new();
    for vm in vms {
        for &core in &vm.cores {
            if core >= socket.hierarchy.cores {
                return Err(format!(
                    "VM {} uses core {core}, socket has {}",
                    vm.name, socket.hierarchy.cores
                ));
            }
            if !seen.insert(core) {
                return Err(format!("core {core} assigned to two VMs"));
            }
        }
    }
    let total_reserved: u32 = vms.iter().map(|v| v.reserved_ways).sum();
    if total_reserved > socket.llc_ways() {
        return Err(format!(
            "reserved ways {total_reserved} exceed socket's {}",
            socket.llc_ways()
        ));
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_match_paper() {
        let e5 = SocketConfig::xeon_e5_v4();
        assert_eq!(e5.hierarchy.cores, 18);
        assert_eq!(e5.llc_ways(), 20);
        assert!((e5.freq_ghz - 2.3).abs() < 1e-9);
        // 100 cycles at 2.3 GHz ~= 43.5 ns.
        assert!((e5.cycles_to_ns(100.0) - 43.478).abs() < 0.01);
        assert_eq!(SocketConfig::xeon_d().llc_ways(), 12);
    }

    #[test]
    fn vm_spec_basics() {
        let vm = VmSpec::new("redis", vec![2, 3], 4);
        assert_eq!(vm.primary_core(), 2);
        assert_eq!(vm.reserved_ways, 4);
    }

    #[test]
    #[should_panic(expected = "at least one core")]
    fn empty_core_set_rejected() {
        let _ = VmSpec::new("bad", vec![], 1);
    }

    #[test]
    fn placement_validation() {
        let socket = SocketConfig::xeon_e5_v4();
        let ok = vec![
            VmSpec::new("a", vec![0, 1], 3),
            VmSpec::new("b", vec![2, 3], 3),
        ];
        assert!(validate_vm_placement(&socket, &ok).is_ok());

        let overlap = vec![VmSpec::new("a", vec![0], 3), VmSpec::new("b", vec![0], 3)];
        assert!(validate_vm_placement(&socket, &overlap).is_err());

        let out_of_range = vec![VmSpec::new("a", vec![99], 3)];
        assert!(validate_vm_placement(&socket, &out_of_range).is_err());

        let over_reserved = vec![VmSpec::new("a", vec![0], 12), VmSpec::new("b", vec![1], 12)];
        assert!(validate_vm_placement(&socket, &over_reserved).is_err());
    }
}
