//! Property-based tests for CBMs, layouts, and the cpus_list codec.

use std::collections::BTreeSet;

use resctrl::fs::{format_cpu_list, parse_cpu_list, parse_schemata};
use resctrl::{Cbm, LayoutPlanner};

/// from_way_range always yields contiguous masks of the right width.
#[test]
fn way_range_masks_are_contiguous() {
    prop_lite::run_cases("way_range_masks_are_contiguous", 128, |g| {
        let start = g.u32_in(0, 29);
        let count = g.u32_in(1, 7);
        if start + count > 32 {
            return;
        }
        let cbm = Cbm::from_way_range(start, count);
        assert!(cbm.is_contiguous());
        assert_eq!(cbm.ways(), count);
        assert_eq!(cbm.first_way(), Some(start));
    });
}

/// Hex formatting round-trips through the schemata parser.
#[test]
fn cbm_hex_round_trips() {
    prop_lite::run_cases("cbm_hex_round_trips", 256, |g| {
        let cbm = Cbm(g.u32_in(1, 0xf_ffff));
        assert_eq!(Cbm::parse_hex(&cbm.to_string()).unwrap(), cbm);
    });
}

/// Any feasible request yields non-overlapping contiguous masks that
/// conserve the requested way counts.
#[test]
fn layout_is_sound() {
    prop_lite::run_cases("layout_is_sound", 256, |g| {
        let counts = g.vec_of(1, 7, |g| g.u32_in(1, 4));
        let total: u32 = counts.iter().sum();
        if total > 20 {
            return;
        }
        let planner = LayoutPlanner::new(20);
        let masks = planner.layout(&counts).unwrap();
        for (i, mask) in masks.iter().enumerate() {
            assert!(mask.is_contiguous());
            assert_eq!(mask.ways(), counts[i]);
            for other in &masks[i + 1..] {
                assert!(!mask.overlaps(*other));
            }
        }
    });
}

/// Stable relayout is also sound, and unchanged prefixes keep their
/// masks exactly.
#[test]
fn stable_layout_is_sound_and_sticky() {
    prop_lite::run_cases("stable_layout_is_sound_and_sticky", 256, |g| {
        let counts = g.vec_of(2, 6, |g| g.u32_in(1, 3));
        let shrink_idx = g.usize_in(0, 5);
        let total: u32 = counts.iter().sum();
        if total > 20 || shrink_idx >= counts.len() {
            return;
        }
        let planner = LayoutPlanner::new(20);
        let first = planner.layout(&counts).unwrap();
        let mut next_counts = counts.clone();
        // Shrinking one group must never move groups to its left.
        if next_counts[shrink_idx] <= 1 {
            return;
        }
        next_counts[shrink_idx] -= 1;
        let prev: Vec<Option<Cbm>> = first.iter().copied().map(Some).collect();
        let second = planner.layout_stable(&next_counts, &prev).unwrap();
        for (i, mask) in second.iter().enumerate() {
            assert!(mask.is_contiguous());
            assert_eq!(mask.ways(), next_counts[i]);
            for other in &second[i + 1..] {
                assert!(!mask.overlaps(*other));
            }
        }
        // Groups laid out before the shrunk one are untouched.
        for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
            let before_shrunk = a.first_way().unwrap() < first[shrink_idx].first_way().unwrap();
            if i != shrink_idx && before_shrunk {
                assert_eq!(a, b, "group {i} moved unnecessarily");
            }
        }
    });
}

/// Schemata parsing round-trips any mask through adversarial but legal
/// formatting: mixed hex case, an optional `0x`/`0X` prefix, surrounding
/// whitespace, unrelated resource lines, and extra `;`-separated domains.
#[test]
fn schemata_parsing_survives_adversarial_formatting() {
    prop_lite::run_cases("schemata_adversarial_round_trip", 512, |g| {
        let cbm = Cbm(g.u32_in(1, 0xf_ffff));
        let mut hex = cbm.to_string();
        if g.bool_with(0.5) {
            hex = hex.to_uppercase();
        }
        let prefix = *g.pick(&["", "0x", "0X"]);
        let pad_l = *g.pick(&["", " ", "\t", "  "]);
        let pad_r = *g.pick(&["", " ", "\t", " \t"]);
        let mut body = String::new();
        if g.bool_with(0.4) {
            body.push_str("MB:0=100\n");
        }
        let domains = if g.bool_with(0.3) { ";1=f" } else { "" };
        body.push_str(&format!("{pad_l}L3:0={prefix}{hex}{pad_r}{domains}\n"));
        assert_eq!(
            parse_schemata(&body).unwrap(),
            cbm,
            "failed to parse {body:?}"
        );
    });
}

/// Malformed schemata bodies are rejected, never mis-parsed.
#[test]
fn schemata_parsing_rejects_garbage() {
    prop_lite::run_cases("schemata_rejects_garbage", 128, |g| {
        let body = *g.pick(&[
            "",
            "MB:0=100\n",
            "L3:0\n",
            "L3:0=\n",
            "L3:0=zz\n",
            "L3:0=0x\n",
            "l3 is not a resource\n",
        ]);
        assert!(parse_schemata(body).is_err(), "accepted {body:?}");
    });
}

/// cpus_list formatting round-trips for arbitrary core sets.
#[test]
fn cpu_list_round_trips() {
    prop_lite::run_cases("cpu_list_round_trips", 256, |g| {
        let n = g.usize_in(0, 31);
        let cores: BTreeSet<u32> = (0..n).map(|_| g.u32_in(0, 63)).collect();
        let cores: Vec<u32> = cores.into_iter().collect();
        let text = format_cpu_list(&cores);
        let parsed = parse_cpu_list(&text).unwrap();
        assert_eq!(parsed, cores);
    });
}
