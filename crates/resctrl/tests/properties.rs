//! Property-based tests for CBMs, layouts, and the cpus_list codec.

use proptest::prelude::*;
use resctrl::fs::{format_cpu_list, parse_cpu_list};
use resctrl::{Cbm, LayoutPlanner};

proptest! {
    /// from_way_range always yields contiguous masks of the right width.
    #[test]
    fn way_range_masks_are_contiguous(start in 0u32..30, count in 1u32..8) {
        prop_assume!(start + count <= 32);
        let cbm = Cbm::from_way_range(start, count);
        prop_assert!(cbm.is_contiguous());
        prop_assert_eq!(cbm.ways(), count);
        prop_assert_eq!(cbm.first_way(), Some(start));
    }

    /// Hex formatting round-trips through the schemata parser.
    #[test]
    fn cbm_hex_round_trips(bits in 1u32..=0xf_ffff) {
        let cbm = Cbm(bits);
        prop_assert_eq!(Cbm::parse_hex(&cbm.to_string()).unwrap(), cbm);
    }

    /// Any feasible request yields non-overlapping contiguous masks that
    /// conserve the requested way counts.
    #[test]
    fn layout_is_sound(counts in prop::collection::vec(1u32..5, 1..8)) {
        let total: u32 = counts.iter().sum();
        prop_assume!(total <= 20);
        let planner = LayoutPlanner::new(20);
        let masks = planner.layout(&counts).unwrap();
        for (i, mask) in masks.iter().enumerate() {
            prop_assert!(mask.is_contiguous());
            prop_assert_eq!(mask.ways(), counts[i]);
            for other in &masks[i + 1..] {
                prop_assert!(!mask.overlaps(*other));
            }
        }
    }

    /// Stable relayout is also sound, and unchanged prefixes keep their
    /// masks exactly.
    #[test]
    fn stable_layout_is_sound_and_sticky(
        counts in prop::collection::vec(1u32..4, 2..7),
        shrink_idx in 0usize..6,
    ) {
        let total: u32 = counts.iter().sum();
        prop_assume!(total <= 20);
        prop_assume!(shrink_idx < counts.len());
        let planner = LayoutPlanner::new(20);
        let first = planner.layout(&counts).unwrap();
        let mut next_counts = counts.clone();
        // Shrinking one group must never move groups to its left.
        prop_assume!(next_counts[shrink_idx] > 1);
        next_counts[shrink_idx] -= 1;
        let prev: Vec<Option<Cbm>> = first.iter().copied().map(Some).collect();
        let second = planner.layout_stable(&next_counts, &prev).unwrap();
        for (i, mask) in second.iter().enumerate() {
            prop_assert!(mask.is_contiguous());
            prop_assert_eq!(mask.ways(), next_counts[i]);
            for other in &second[i + 1..] {
                prop_assert!(!mask.overlaps(*other));
            }
        }
        // Groups laid out before the shrunk one are untouched.
        for (i, (a, b)) in first.iter().zip(second.iter()).enumerate() {
            let before_shrunk = a.first_way().unwrap() < first[shrink_idx].first_way().unwrap();
            if i != shrink_idx && before_shrunk {
                prop_assert_eq!(a, b, "group {} moved unnecessarily", i);
            }
        }
    }

    /// cpus_list formatting round-trips for arbitrary core sets.
    #[test]
    fn cpu_list_round_trips(cores in prop::collection::btree_set(0u32..64, 0..32)) {
        let cores: Vec<u32> = cores.into_iter().collect();
        let text = format_cpu_list(&cores);
        let parsed = parse_cpu_list(&text).unwrap();
        prop_assert_eq!(parsed, cores);
    }
}
