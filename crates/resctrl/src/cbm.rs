//! Capacity bitmasks (CBMs).
//!
//! A CBM is the bit pattern programmed into an `IA32_L3_QOS_MASK_n` MSR or
//! written to a resctrl `schemata` file: bit `i` set grants the class the
//! right to allocate into way `i`. Intel requires the set bits to form one
//! contiguous run and at least `min_cbm_bits` (usually 1 or 2) bits set.

use std::fmt;

/// A capacity bitmask over LLC ways.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Cbm(pub u32);

impl Cbm {
    /// A mask of `count` ways starting at way `start`.
    ///
    /// # Panics
    ///
    /// Panics if the range exceeds 32 bits.
    pub fn from_way_range(start: u32, count: u32) -> Self {
        assert!(start + count <= 32, "CBM range exceeds 32 bits");
        if count == 0 {
            return Cbm(0);
        }
        let bits = if count == 32 {
            u32::MAX
        } else {
            (1u32 << count) - 1
        };
        Cbm(bits << start)
    }

    /// The full mask of a cache with `ways` ways.
    pub fn full(ways: u32) -> Self {
        Cbm::from_way_range(0, ways)
    }

    /// Number of ways granted.
    #[inline]
    pub fn ways(self) -> u32 {
        self.0.count_ones()
    }

    /// Index of the lowest granted way; `None` for an empty mask.
    pub fn first_way(self) -> Option<u32> {
        if self.0 == 0 {
            None
        } else {
            Some(self.0.trailing_zeros())
        }
    }

    /// Whether the mask is empty (invalid for programming).
    #[inline]
    pub fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Whether the set bits form one contiguous run.
    pub fn is_contiguous(self) -> bool {
        if self.0 == 0 {
            return false;
        }
        let shifted = u64::from(self.0 >> self.0.trailing_zeros());
        (shifted & (shifted + 1)) == 0
    }

    /// Whether this mask shares any way with `other`.
    #[inline]
    pub fn overlaps(self, other: Cbm) -> bool {
        self.0 & other.0 != 0
    }

    /// Whether way `way` is granted by this mask.
    #[inline]
    pub fn contains_way(self, way: u32) -> bool {
        way < 32 && self.0 & (1u32 << way) != 0
    }

    /// Set union: ways granted by either mask.
    #[inline]
    pub fn union(self, other: Cbm) -> Cbm {
        Cbm(self.0 | other.0)
    }

    /// Set intersection: ways granted by both masks.
    #[inline]
    pub fn intersection(self, other: Cbm) -> Cbm {
        Cbm(self.0 & other.0)
    }

    /// Set difference: ways granted by `self` but not by `other`.
    #[inline]
    pub fn difference(self, other: Cbm) -> Cbm {
        Cbm(self.0 & !other.0)
    }

    /// Whether the mask is valid for a cache of `cbm_len` ways requiring at
    /// least `min_bits` bits: non-empty, contiguous, within range, and wide
    /// enough.
    pub fn is_valid_for(self, cbm_len: u32, min_bits: u32) -> bool {
        !self.is_empty()
            && self.is_contiguous()
            && self.ways() >= min_bits
            && (u64::from(self.0) < (1u64 << cbm_len))
    }

    /// Parses the hexadecimal format used by resctrl schemata files
    /// (e.g. `"fffff"`, `"3"`, with or without a `0x` prefix).
    pub fn parse_hex(s: &str) -> Result<Cbm, String> {
        let trimmed = s.trim().trim_start_matches("0x").trim_start_matches("0X");
        if trimmed.is_empty() {
            return Err("empty CBM string".to_string());
        }
        u32::from_str_radix(trimmed, 16)
            .map(Cbm)
            .map_err(|e| format!("invalid CBM {s:?}: {e}"))
    }
}

impl fmt::Display for Cbm {
    /// Formats as lowercase hex without a prefix, matching resctrl files.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:x}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_construction() {
        assert_eq!(Cbm::from_way_range(0, 4).0, 0xf);
        assert_eq!(Cbm::from_way_range(3, 2).0, 0b11000);
        assert_eq!(Cbm::full(20).0, 0xf_ffff);
        assert_eq!(Cbm::from_way_range(0, 32).0, u32::MAX);
    }

    #[test]
    fn contiguity_rules() {
        assert!(Cbm(0b111).is_contiguous());
        assert!(Cbm(0b1000).is_contiguous());
        assert!(!Cbm(0b101).is_contiguous());
        assert!(!Cbm(0).is_contiguous());
        assert!(Cbm(u32::MAX).is_contiguous());
    }

    #[test]
    fn validity_enforces_intel_rules() {
        assert!(Cbm(0b11).is_valid_for(20, 1));
        assert!(!Cbm(0).is_valid_for(20, 1), "empty mask invalid");
        assert!(!Cbm(0b101).is_valid_for(20, 1), "non-contiguous invalid");
        assert!(!Cbm(0b1).is_valid_for(20, 2), "below min_cbm_bits invalid");
        assert!(!Cbm(1 << 20).is_valid_for(20, 1), "beyond cbm_len invalid");
        assert!(Cbm::full(20).is_valid_for(20, 1));
    }

    #[test]
    fn overlap_detection() {
        assert!(Cbm(0b110).overlaps(Cbm(0b010)));
        assert!(!Cbm(0b110).overlaps(Cbm(0b001)));
    }

    #[test]
    fn set_operations() {
        assert_eq!(Cbm(0b110).union(Cbm(0b011)), Cbm(0b111));
        assert_eq!(Cbm(0b110).intersection(Cbm(0b011)), Cbm(0b010));
        assert_eq!(Cbm(0b110).difference(Cbm(0b011)), Cbm(0b100));
        assert!(Cbm(0b100).contains_way(2));
        assert!(!Cbm(0b100).contains_way(1));
        assert!(!Cbm(u32::MAX).contains_way(32));
    }

    #[test]
    fn first_way() {
        assert_eq!(Cbm(0b11000).first_way(), Some(3));
        assert_eq!(Cbm(0).first_way(), None);
    }

    #[test]
    fn hex_round_trip() {
        for cbm in [Cbm(0x3), Cbm(0xfffff), Cbm(0b1110)] {
            assert_eq!(Cbm::parse_hex(&cbm.to_string()).unwrap(), cbm);
        }
        assert_eq!(Cbm::parse_hex("0xF").unwrap(), Cbm(15));
        assert_eq!(Cbm::parse_hex(" 3f \n").unwrap(), Cbm(0x3f));
        assert!(Cbm::parse_hex("zz").is_err());
        assert!(Cbm::parse_hex("").is_err());
    }
}
