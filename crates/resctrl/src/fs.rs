//! A Linux-resctrl filesystem backend.
//!
//! Linux exposes CAT as a filesystem (usually mounted at `/sys/fs/resctrl`):
//!
//! ```text
//! <root>/
//!   info/L3/cbm_mask        # full-capacity mask, hex
//!   info/L3/min_cbm_bits    # minimum bits per mask
//!   info/L3/num_closids     # number of hardware classes
//!   schemata                # "L3:0=fffff" — the default group (COS 0)
//!   cpus_list               # cores in the default group
//!   COS<k>/                 # one directory per additional class
//!     schemata
//!     cpus_list
//! ```
//!
//! [`FsBackend`] implements [`CacheController`] over such a tree. Pointed
//! at a real mount on CAT hardware it programs the hardware; pointed at a
//! fixture directory (see [`FsBackend::create_fixture`]) it is a faithful,
//! fully-testable stand-in — which is how this repository exercises it.

use std::fs;
use std::path::{Path, PathBuf};

use crate::cbm::Cbm;
use crate::controller::{CacheController, CatCapabilities, CosId, ResctrlError};

/// Parses a `cpus_list`-style string (`"0-3,7,9-10"`) into core indices.
pub fn parse_cpu_list(s: &str) -> Result<Vec<u32>, ResctrlError> {
    let mut cores = Vec::new();
    let trimmed = s.trim();
    if trimmed.is_empty() {
        return Ok(cores);
    }
    for part in trimmed.split(',') {
        let part = part.trim();
        if part.is_empty() {
            continue;
        }
        match part.split_once('-') {
            Some((lo, hi)) => {
                let lo: u32 = lo
                    .trim()
                    .parse()
                    .map_err(|_| ResctrlError::Parse(format!("bad cpu range {part:?}")))?;
                let hi: u32 = hi
                    .trim()
                    .parse()
                    .map_err(|_| ResctrlError::Parse(format!("bad cpu range {part:?}")))?;
                if hi < lo {
                    return Err(ResctrlError::Parse(format!("inverted cpu range {part:?}")));
                }
                cores.extend(lo..=hi);
            }
            None => {
                let c: u32 = part
                    .parse()
                    .map_err(|_| ResctrlError::Parse(format!("bad cpu {part:?}")))?;
                cores.push(c);
            }
        }
    }
    Ok(cores)
}

/// Formats core indices as a compact `cpus_list` string.
pub fn format_cpu_list(cores: &[u32]) -> String {
    let mut sorted: Vec<u32> = cores.to_vec();
    sorted.sort_unstable();
    sorted.dedup();
    let mut parts: Vec<String> = Vec::new();
    let mut iter = sorted.into_iter().peekable();
    while let Some(start) = iter.next() {
        let mut end = start;
        while iter.peek() == Some(&(end + 1)) {
            end = iter.next().unwrap_or(end);
        }
        if start == end {
            parts.push(start.to_string());
        } else {
            parts.push(format!("{start}-{end}"));
        }
    }
    parts.join(",")
}

/// Extracts the L3 mask from a schemata body such as `"L3:0=fffff\n"`.
///
/// Tolerates the formatting the kernel and humans produce: surrounding
/// whitespace, upper- or lowercase hex, an optional `0x` prefix, other
/// resource lines (`MB:`), and multiple `;`-separated domains (the first
/// is taken; the model is single-socket).
pub fn parse_schemata(body: &str) -> Result<Cbm, ResctrlError> {
    for line in body.lines() {
        let line = line.trim();
        if let Some(rest) = line.strip_prefix("L3:") {
            // Possibly several `domain=mask` entries; we model one socket.
            let first = rest
                .split(';')
                .next()
                .ok_or_else(|| ResctrlError::Parse(format!("empty L3 line {line:?}")))?;
            let mask = first
                .split_once('=')
                .map(|(_, m)| m)
                .ok_or_else(|| ResctrlError::Parse(format!("no '=' in {line:?}")))?;
            return Cbm::parse_hex(mask).map_err(ResctrlError::Parse);
        }
    }
    Err(ResctrlError::Parse("no L3 line in schemata".to_string()))
}

/// A [`CacheController`] over a resctrl directory tree.
#[derive(Debug)]
pub struct FsBackend {
    root: PathBuf,
    caps: CatCapabilities,
    num_cores: u32,
    // Cached core->COS assignment; the filesystem is rewritten on change.
    assignment: Vec<CosId>,
}

impl FsBackend {
    /// Opens an existing resctrl tree, reading capabilities from `info/L3`
    /// and the current assignment from the groups' `cpus_list` files.
    pub fn open(root: impl Into<PathBuf>) -> Result<Self, ResctrlError> {
        let root = root.into();
        let info = root.join("info").join("L3");
        let cbm_mask = Cbm::parse_hex(&fs::read_to_string(info.join("cbm_mask"))?)
            .map_err(ResctrlError::Parse)?;
        let min_cbm_bits: u32 = fs::read_to_string(info.join("min_cbm_bits"))?
            .trim()
            .parse()
            .map_err(|e| ResctrlError::Parse(format!("min_cbm_bits: {e}")))?;
        let num_closids: u32 = fs::read_to_string(info.join("num_closids"))?
            .trim()
            .parse()
            .map_err(|e| ResctrlError::Parse(format!("num_closids: {e}")))?;
        let caps = CatCapabilities {
            cbm_len: cbm_mask.ways(),
            min_cbm_bits,
            num_closids,
        };

        // The default group's cpus_list enumerates every core on the socket
        // at mount time; cores later moved to other groups still count.
        let mut num_cores = 0u32;
        let mut assignment: Vec<(u32, CosId)> = Vec::new();
        for cos in 0..num_closids {
            let dir = Self::group_dir_of(&root, CosId(cos as u8));
            let cpus_path = dir.join("cpus_list");
            if !cpus_path.exists() {
                continue;
            }
            let cores = parse_cpu_list(&fs::read_to_string(cpus_path)?)?;
            for c in cores {
                num_cores = num_cores.max(c + 1);
                assignment.push((c, CosId(cos as u8)));
            }
        }
        let mut table = vec![CosId(0); num_cores as usize];
        for (core, cos) in assignment {
            // In-bounds by construction (num_cores = max(core) + 1), but
            // go through get_mut so a future refactor cannot introduce a
            // panic path here.
            if let Some(slot) = table.get_mut(core as usize) {
                *slot = cos;
            }
        }
        Ok(FsBackend {
            root,
            caps,
            num_cores,
            assignment: table,
        })
    }

    /// Creates a fixture tree mimicking a freshly mounted resctrl
    /// filesystem, then opens it.
    ///
    /// Every core starts in the default group with the full mask, and one
    /// directory per additional class is pre-created (real resctrl creates
    /// them with `mkdir`; pre-creating keeps the backend read/write-only).
    pub fn create_fixture(
        root: impl Into<PathBuf>,
        caps: CatCapabilities,
        num_cores: u32,
    ) -> Result<Self, ResctrlError> {
        let root = root.into();
        let info = root.join("info").join("L3");
        fs::create_dir_all(&info)?;
        fs::write(info.join("cbm_mask"), format!("{}\n", caps.full_mask()))?;
        fs::write(
            info.join("min_cbm_bits"),
            format!("{}\n", caps.min_cbm_bits),
        )?;
        fs::write(info.join("num_closids"), format!("{}\n", caps.num_closids))?;
        let all_cores: Vec<u32> = (0..num_cores).collect();
        fs::write(
            root.join("schemata"),
            format!("L3:0={}\n", caps.full_mask()),
        )?;
        fs::write(
            root.join("cpus_list"),
            format!("{}\n", format_cpu_list(&all_cores)),
        )?;
        for cos in 1..caps.num_closids {
            let dir = Self::group_dir_of(&root, CosId(cos as u8));
            fs::create_dir_all(&dir)?;
            fs::write(dir.join("schemata"), format!("L3:0={}\n", caps.full_mask()))?;
            fs::write(dir.join("cpus_list"), "\n")?;
        }
        Self::open(root)
    }

    /// Directory of a class: the root for COS 0, `COS<k>` otherwise.
    fn group_dir_of(root: &Path, cos: CosId) -> PathBuf {
        if cos.0 == 0 {
            root.to_path_buf()
        } else {
            root.join(format!("COS{}", cos.0))
        }
    }

    fn group_dir(&self, cos: CosId) -> PathBuf {
        Self::group_dir_of(&self.root, cos)
    }

    fn rewrite_cpus_lists(&self) -> Result<(), ResctrlError> {
        for cos in 0..self.caps.num_closids {
            let cos = CosId(cos as u8);
            let members: Vec<u32> = self
                .assignment
                .iter()
                .enumerate()
                .filter(|(_, c)| **c == cos)
                .map(|(i, _)| i as u32)
                .collect();
            let path = self.group_dir(cos).join("cpus_list");
            fs::write(path, format!("{}\n", format_cpu_list(&members)))?;
        }
        Ok(())
    }
}

impl CacheController for FsBackend {
    fn capabilities(&self) -> CatCapabilities {
        self.caps
    }

    fn num_cores(&self) -> u32 {
        self.num_cores
    }

    fn program_cos(&mut self, cos: CosId, cbm: Cbm) -> Result<(), ResctrlError> {
        self.validate_cos(cos)?;
        self.validate_cbm(cbm)?;
        let path = self.group_dir(cos).join("schemata");
        fs::write(path, format!("L3:0={cbm}\n"))?;
        Ok(())
    }

    fn assign_core(&mut self, core: u32, cos: CosId) -> Result<(), ResctrlError> {
        self.validate_cos(cos)?;
        let slot = self
            .assignment
            .get_mut(core as usize)
            .ok_or(ResctrlError::InvalidCore(core))?;
        *slot = cos;
        self.rewrite_cpus_lists()
    }

    fn cos_mask(&self, cos: CosId) -> Result<Cbm, ResctrlError> {
        self.validate_cos(cos)?;
        let body = fs::read_to_string(self.group_dir(cos).join("schemata"))?;
        parse_schemata(&body)
    }

    fn core_cos(&self, core: u32) -> Result<CosId, ResctrlError> {
        self.assignment
            .get(core as usize)
            .copied()
            .ok_or(ResctrlError::InvalidCore(core))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_root(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!(
            "resctrl-test-{tag}-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn cpu_list_round_trip() {
        assert_eq!(
            parse_cpu_list("0-3,7,9-10").unwrap(),
            vec![0, 1, 2, 3, 7, 9, 10]
        );
        assert_eq!(parse_cpu_list("").unwrap(), Vec::<u32>::new());
        assert_eq!(parse_cpu_list(" 5 \n").unwrap(), vec![5]);
        assert_eq!(format_cpu_list(&[0, 1, 2, 3, 7, 9, 10]), "0-3,7,9-10");
        assert_eq!(format_cpu_list(&[]), "");
        assert_eq!(format_cpu_list(&[4, 2, 2, 3]), "2-4");
        assert!(parse_cpu_list("3-1").is_err());
        assert!(parse_cpu_list("x").is_err());
    }

    #[test]
    fn schemata_parsing() {
        assert_eq!(parse_schemata("L3:0=fffff\n").unwrap(), Cbm(0xf_ffff));
        assert_eq!(parse_schemata("MB:0=100\nL3:0=3f\n").unwrap(), Cbm(0x3f));
        assert!(parse_schemata("MB:0=100\n").is_err());
        assert!(parse_schemata("L3:0\n").is_err());
    }

    #[test]
    fn fixture_reflects_reset_state() {
        let root = temp_root("fixture");
        let be = FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 18).unwrap();
        assert_eq!(be.capabilities().cbm_len, 20);
        assert_eq!(be.num_cores(), 18);
        assert_eq!(be.cos_mask(CosId(0)).unwrap(), Cbm(0xf_ffff));
        assert_eq!(be.core_cos(17).unwrap(), CosId(0));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn program_cos_persists_to_schemata_file() {
        let root = temp_root("program");
        let mut be = FsBackend::create_fixture(&root, CatCapabilities::with_ways(20), 4).unwrap();
        be.program_cos(CosId(2), Cbm(0b1110)).unwrap();
        let body = fs::read_to_string(root.join("COS2").join("schemata")).unwrap();
        assert_eq!(body.trim(), "L3:0=e");
        assert_eq!(be.cos_mask(CosId(2)).unwrap(), Cbm(0b1110));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn assign_core_moves_between_cpu_lists() {
        let root = temp_root("assign");
        let mut be = FsBackend::create_fixture(&root, CatCapabilities::with_ways(12), 4).unwrap();
        be.assign_core(1, CosId(3)).unwrap();
        be.assign_core(2, CosId(3)).unwrap();
        let grp = fs::read_to_string(root.join("COS3").join("cpus_list")).unwrap();
        assert_eq!(grp.trim(), "1-2");
        let def = fs::read_to_string(root.join("cpus_list")).unwrap();
        assert_eq!(def.trim(), "0,3");
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn reopen_recovers_state() {
        let root = temp_root("reopen");
        {
            let mut be =
                FsBackend::create_fixture(&root, CatCapabilities::with_ways(12), 4).unwrap();
            be.program_cos(CosId(1), Cbm(0b11)).unwrap();
            be.assign_core(0, CosId(1)).unwrap();
        }
        let be = FsBackend::open(&root).unwrap();
        assert_eq!(be.num_cores(), 4);
        assert_eq!(be.core_cos(0).unwrap(), CosId(1));
        assert_eq!(be.core_cos(1).unwrap(), CosId(0));
        assert_eq!(be.cos_mask(CosId(1)).unwrap(), Cbm(0b11));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn invalid_writes_rejected_without_touching_files() {
        let root = temp_root("invalid");
        let mut be = FsBackend::create_fixture(&root, CatCapabilities::with_ways(12), 4).unwrap();
        assert!(be.program_cos(CosId(1), Cbm(0)).is_err());
        assert!(be.program_cos(CosId(1), Cbm(0b101)).is_err());
        assert!(be.assign_core(4, CosId(1)).is_err());
        // Schemata unchanged after rejected writes.
        assert_eq!(be.cos_mask(CosId(1)).unwrap(), Cbm(0xfff));
        fs::remove_dir_all(&root).unwrap();
    }

    #[test]
    fn open_missing_tree_fails() {
        let root = temp_root("missing");
        assert!(FsBackend::open(&root).is_err());
    }
}
