//! Cache Allocation Technology control plane.
//!
//! This crate models what Intel's `pqos` library and Linux's resctrl
//! filesystem expose: **classes of service** (COS), each carrying a
//! **capacity bitmask** (CBM) over LLC ways, and an assignment from CPU
//! cores to classes. dCat manipulates partitions only through the
//! [`CacheController`] trait, so the controller logic is byte-for-byte the
//! same whether it drives:
//!
//! * the in-memory [`mock::InMemoryController`] (unit tests),
//! * the simulator adapter in the `host` crate (all experiments), or
//! * the [`fs::FsBackend`] that reads and writes a real
//!   `/sys/fs/resctrl`-layout directory tree (usable on CAT hardware, and
//!   exercised in tests against a temporary directory fixture).
//!
//! Intel constraints are enforced at this layer: masks must be contiguous
//! and non-empty (no zero-way class — the paper's footnote 4), at most
//! `num_closids` classes exist (16 on the paper's machines), and a mask may
//! not exceed the cache's way count.

//! # Examples
//!
//! Program two non-overlapping tenant partitions through the in-memory
//! backend (the same calls work on [`FsBackend`] pointed at a real
//! `/sys/fs/resctrl` mount):
//!
//! ```
//! use resctrl::{CacheController, CatCapabilities, Cbm, CosId, InMemoryController, LayoutPlanner};
//!
//! let mut cat = InMemoryController::new(CatCapabilities::with_ways(20), 4);
//! let layout = LayoutPlanner::new(20).layout(&[4, 6]).unwrap();
//! for (i, cbm) in layout.iter().enumerate() {
//!     cat.program_cos(CosId((i + 1) as u8), *cbm).unwrap();
//! }
//! cat.assign_core(0, CosId(1)).unwrap();
//! cat.assign_core(1, CosId(2)).unwrap();
//! assert!(!layout[0].overlaps(layout[1]));
//! assert_eq!(cat.cos_mask(CosId(2)).unwrap().ways(), 6);
//! ```

pub mod cbm;
pub mod controller;
pub mod fault;
pub mod fs;
pub mod invariants;
pub mod layout;
pub mod mock;
pub mod retry;

pub use cbm::Cbm;
pub use controller::{CacheController, CatCapabilities, CosId, ErrorSeverity, ResctrlError};
pub use fault::{Fault, FaultPlan, FaultingController};
pub use fs::FsBackend;
pub use layout::LayoutPlanner;
pub use mock::InMemoryController;
pub use retry::{with_retries, RetryEvent, RetryPolicy, RetryingController};
