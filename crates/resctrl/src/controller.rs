//! The [`CacheController`] trait: everything dCat may do to the hardware.

use std::fmt;

use crate::cbm::Cbm;

/// Identifier of a class of service (COS / CLOSID).
///
/// COS 0 is the default class every core starts in; the paper's machines
/// expose 16 classes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CosId(pub u8);

/// Static CAT capabilities of a socket, mirroring
/// `/sys/fs/resctrl/info/L3`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CatCapabilities {
    /// Number of ways the CBM covers (length of the full mask).
    pub cbm_len: u32,
    /// Minimum number of bits a CBM must have set.
    pub min_cbm_bits: u32,
    /// Number of classes of service, including COS 0.
    pub num_closids: u32,
}

impl CatCapabilities {
    /// The paper's machines: 16 classes, 1-bit minimum.
    pub fn with_ways(ways: u32) -> Self {
        CatCapabilities {
            cbm_len: ways,
            min_cbm_bits: 1,
            num_closids: 16,
        }
    }

    /// The full-cache mask.
    pub fn full_mask(&self) -> Cbm {
        Cbm::full(self.cbm_len)
    }
}

/// Coarse severity of a [`ResctrlError`], driving the daemon's
/// recovery policy.
///
/// The split follows what a long-running daemon can actually do about a
/// failure: transient errors come from the environment (a torn read of a
/// schemata file, an `EIO` from a flaky sysfs write, a truncated
/// telemetry sample) and are worth retrying or degrading around; fatal
/// errors mean the *controller* asked for something the hardware model
/// forbids — a logic bug that retrying would only repeat.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorSeverity {
    /// Environmental; retry with backoff, then degrade the tick.
    Transient,
    /// A controller logic bug; propagate and stop.
    Fatal,
}

/// Errors surfaced by a CAT backend.
#[derive(Debug)]
pub enum ResctrlError {
    /// The CBM violates hardware rules (empty, non-contiguous, out of
    /// range, or below `min_cbm_bits`).
    InvalidCbm {
        /// The offending mask.
        cbm: Cbm,
        /// Why it was rejected.
        reason: String,
    },
    /// The COS id is outside `0..num_closids`.
    InvalidCos(CosId),
    /// The core index is outside the socket.
    InvalidCore(u32),
    /// An I/O failure in a filesystem backend.
    Io(std::io::Error),
    /// A malformed file in a filesystem backend.
    Parse(String),
}

impl ResctrlError {
    /// Classifies this error for recovery purposes.
    ///
    /// I/O and parse failures are [`ErrorSeverity::Transient`]: on real
    /// hosts they show up under memory pressure, during concurrent
    /// resctrl writers, or when a sampler is mid-write. The validation
    /// variants are [`ErrorSeverity::Fatal`]: the masks and ids the
    /// controller computes are checked against capabilities it read at
    /// startup, so a rejection is a bug, not weather.
    pub fn severity(&self) -> ErrorSeverity {
        match self {
            ResctrlError::Io(_) | ResctrlError::Parse(_) => ErrorSeverity::Transient,
            ResctrlError::InvalidCbm { .. }
            | ResctrlError::InvalidCos(_)
            | ResctrlError::InvalidCore(_) => ErrorSeverity::Fatal,
        }
    }

    /// Whether this error is worth retrying.
    pub fn is_transient(&self) -> bool {
        self.severity() == ErrorSeverity::Transient
    }
}

impl fmt::Display for ResctrlError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResctrlError::InvalidCbm { cbm, reason } => {
                write!(f, "invalid CBM {cbm}: {reason}")
            }
            ResctrlError::InvalidCos(cos) => write!(f, "invalid COS id {}", cos.0),
            ResctrlError::InvalidCore(core) => write!(f, "invalid core index {core}"),
            ResctrlError::Io(e) => write!(f, "resctrl I/O error: {e}"),
            ResctrlError::Parse(msg) => write!(f, "resctrl parse error: {msg}"),
        }
    }
}

impl std::error::Error for ResctrlError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ResctrlError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ResctrlError {
    fn from(e: std::io::Error) -> Self {
        ResctrlError::Io(e)
    }
}

/// Abstract CAT control plane.
///
/// dCat (and the static-partition baseline) program the cache exclusively
/// through this trait. Semantics follow Intel CAT:
///
/// * every core is associated with exactly one COS at a time;
/// * a COS's CBM bounds where cores of that class may *allocate*;
/// * masks of different classes may legally overlap on hardware, but dCat
///   never programs overlapping masks (its isolation guarantee); the
///   [`crate::layout::LayoutPlanner`] produces non-overlapping layouts.
pub trait CacheController {
    /// The socket's CAT capabilities.
    fn capabilities(&self) -> CatCapabilities;

    /// Number of cores on the socket.
    fn num_cores(&self) -> u32;

    /// Programs the capacity bitmask of `cos`.
    fn program_cos(&mut self, cos: CosId, cbm: Cbm) -> Result<(), ResctrlError>;

    /// Associates `core` with `cos`.
    fn assign_core(&mut self, core: u32, cos: CosId) -> Result<(), ResctrlError>;

    /// The mask currently programmed for `cos`.
    fn cos_mask(&self, cos: CosId) -> Result<Cbm, ResctrlError>;

    /// The class `core` is currently associated with.
    fn core_cos(&self, core: u32) -> Result<CosId, ResctrlError>;

    /// Flushes the cache contents of the ways in `cbm`.
    ///
    /// Intel has no way-flush instruction; the paper's Section 6 notes a
    /// deployment must run a user-level flush pass after reassigning ways,
    /// or lines filled under the old mask keep getting hits in ways their
    /// owner can no longer fill (and nothing ever evicts them). Backends
    /// that cannot flush (the bare filesystem backend) default to a no-op;
    /// the simulator implements it faithfully.
    fn flush_cbm(&mut self, cbm: Cbm) -> Result<(), ResctrlError> {
        let _ = cbm;
        Ok(())
    }

    /// Validates a mask against this socket's capabilities.
    ///
    /// Provided for backends; the default implementation applies the Intel
    /// rules from [`Cbm::is_valid_for`].
    fn validate_cbm(&self, cbm: Cbm) -> Result<(), ResctrlError> {
        let caps = self.capabilities();
        if cbm.is_valid_for(caps.cbm_len, caps.min_cbm_bits) {
            Ok(())
        } else {
            let reason = if cbm.is_empty() {
                "mask is empty".to_string()
            } else if !cbm.is_contiguous() {
                "mask is not contiguous".to_string()
            } else if cbm.ways() < caps.min_cbm_bits {
                format!(
                    "mask has fewer than min_cbm_bits={} ways",
                    caps.min_cbm_bits
                )
            } else {
                format!("mask exceeds cbm_len={}", caps.cbm_len)
            };
            Err(ResctrlError::InvalidCbm { cbm, reason })
        }
    }

    /// Validates a COS id against `num_closids`.
    fn validate_cos(&self, cos: CosId) -> Result<(), ResctrlError> {
        if u32::from(cos.0) < self.capabilities().num_closids {
            Ok(())
        } else {
            Err(ResctrlError::InvalidCos(cos))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::InMemoryController;

    #[test]
    fn capabilities_presets() {
        let caps = CatCapabilities::with_ways(20);
        assert_eq!(caps.cbm_len, 20);
        assert_eq!(caps.num_closids, 16);
        assert_eq!(caps.full_mask(), Cbm(0xf_ffff));
    }

    #[test]
    fn default_validation_messages() {
        let ctl = InMemoryController::new(CatCapabilities::with_ways(4), 2);
        let err = ctl.validate_cbm(Cbm(0)).unwrap_err();
        assert!(err.to_string().contains("empty"));
        let err = ctl.validate_cbm(Cbm(0b101)).unwrap_err();
        assert!(err.to_string().contains("contiguous"));
        let err = ctl.validate_cbm(Cbm(0b11111)).unwrap_err();
        assert!(err.to_string().contains("cbm_len"));
        assert!(ctl.validate_cbm(Cbm(0b0110)).is_ok());
    }

    #[test]
    fn min_cbm_bits_enforced() {
        let caps = CatCapabilities {
            cbm_len: 8,
            min_cbm_bits: 2,
            num_closids: 4,
        };
        let ctl = InMemoryController::new(caps, 2);
        assert!(ctl.validate_cbm(Cbm(0b1)).is_err());
        assert!(ctl.validate_cbm(Cbm(0b11)).is_ok());
    }

    #[test]
    fn cos_id_range_enforced() {
        let ctl = InMemoryController::new(CatCapabilities::with_ways(4), 2);
        assert!(ctl.validate_cos(CosId(15)).is_ok());
        assert!(ctl.validate_cos(CosId(16)).is_err());
    }

    #[test]
    fn error_display_is_informative() {
        let e = ResctrlError::InvalidCore(99);
        assert_eq!(e.to_string(), "invalid core index 99");
        let e = ResctrlError::Parse("bad schemata".into());
        assert!(e.to_string().contains("bad schemata"));
    }

    #[test]
    fn severity_splits_environment_from_logic_bugs() {
        let io = ResctrlError::Io(std::io::Error::from(std::io::ErrorKind::Interrupted));
        let parse = ResctrlError::Parse("torn read".into());
        assert!(io.is_transient());
        assert!(parse.is_transient());
        for fatal in [
            ResctrlError::InvalidCbm {
                cbm: Cbm(0),
                reason: "empty".into(),
            },
            ResctrlError::InvalidCos(CosId(99)),
            ResctrlError::InvalidCore(99),
        ] {
            assert_eq!(fatal.severity(), ErrorSeverity::Fatal);
            assert!(!fatal.is_transient());
        }
    }
}
