//! Mask-level invariants shared by the planner, the controller, and the
//! `dcat-verify` model checker.
//!
//! These are the hardware-legality predicates every layout must satisfy
//! before it can be programmed into CAT. They are asserted (in debug
//! builds) at the end of [`crate::LayoutPlanner::layout_stable`], re-used
//! by `dcat`'s controller-level invariant hook, and checked after every
//! transition the model checker explores — one set of predicates, three
//! call sites.

use crate::cbm::Cbm;

/// Checks that `masks` form a legal CAT layout for a cache of `cbm_len`
/// ways: every mask non-empty, contiguous, within range, and pairwise
/// disjoint. Returns a description of the first violation.
pub fn check_layout(masks: &[Cbm], cbm_len: u32) -> Result<(), String> {
    let mut seen = Cbm(0);
    for (i, &mask) in masks.iter().enumerate() {
        if mask.is_empty() {
            return Err(format!("group {i}: empty mask"));
        }
        if !mask.is_contiguous() {
            return Err(format!("group {i}: non-contiguous mask {mask}"));
        }
        if !mask.is_valid_for(cbm_len, 1) {
            return Err(format!("group {i}: mask {mask} exceeds cbm_len {cbm_len}"));
        }
        if mask.overlaps(seen) {
            return Err(format!("group {i}: mask {mask} overlaps another group"));
        }
        seen = seen.union(mask);
    }
    Ok(())
}

/// Checks that `masks[i]` grants exactly `counts[i]` ways — the planner
/// must conserve the requested way counts bit-for-bit.
pub fn check_counts(masks: &[Cbm], counts: &[u32]) -> Result<(), String> {
    if masks.len() != counts.len() {
        return Err(format!(
            "layout has {} masks for {} counts",
            masks.len(),
            counts.len()
        ));
    }
    for (i, (&mask, &count)) in masks.iter().zip(counts.iter()).enumerate() {
        if mask.ways() != count {
            return Err(format!(
                "group {i}: mask {mask} grants {} ways, {count} requested",
                mask.ways()
            ));
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn legal_layout_accepted() {
        let masks = [Cbm::from_way_range(0, 3), Cbm::from_way_range(5, 2)];
        assert!(check_layout(&masks, 20).is_ok());
        assert!(check_counts(&masks, &[3, 2]).is_ok());
    }

    #[test]
    fn violations_detected() {
        assert!(check_layout(&[Cbm(0)], 20).is_err(), "empty");
        assert!(check_layout(&[Cbm(0b101)], 20).is_err(), "non-contiguous");
        assert!(
            check_layout(&[Cbm::from_way_range(19, 2)], 20).is_err(),
            "out of range"
        );
        assert!(
            check_layout(&[Cbm(0b11), Cbm(0b110)], 20).is_err(),
            "overlap"
        );
        assert!(check_counts(&[Cbm(0b11)], &[3]).is_err(), "count mismatch");
        assert!(check_counts(&[Cbm(0b11)], &[1, 1]).is_err(), "length");
    }
}
