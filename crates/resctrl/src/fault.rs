//! Deterministic fault injection for the control plane and telemetry.
//!
//! A daemon that only ever sees healthy inputs is untested where it
//! matters. This module provides the *scripted* failure side of that
//! story: a [`FaultPlan`] is a tick-keyed schedule of [`Fault`]s, built
//! either explicitly ([`FaultPlan::scripted`], for regression tests that
//! need "telemetry truncated at tick k, `program_cos` EIO at tick k+1")
//! or pseudo-randomly ([`FaultPlan::random`], seeded through
//! [`smallrng::split_seed`] so sweeps stay bit-identical at any `--jobs`
//! width).
//!
//! [`FaultingController`] consumes the control-plane half of a plan by
//! wrapping any [`CacheController`] and failing scheduled writes with
//! injected I/O errors; the telemetry half (read errors, truncation,
//! stale samples, counter wraps) is interpreted by the daemon's
//! telemetry source, which shares the same plan so one schedule drives
//! both failure surfaces.

use std::collections::BTreeMap;

use crate::cbm::Cbm;
use crate::controller::{CacheController, CatCapabilities, CosId, ResctrlError};

/// One kind of injected failure.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fault {
    /// Every `program_cos` call this tick fails with an injected EIO —
    /// retries exhaust and the tick must degrade.
    CosWrite,
    /// Only the first `program_cos` call this tick fails — one retry
    /// absorbs it and the tick completes normally.
    CosWriteOnce,
    /// Every `assign_core` call this tick fails with an injected EIO.
    CoreAssign,
    /// Every telemetry read this tick fails with an injected I/O error.
    TelemetryRead,
    /// Only the first telemetry read this tick fails.
    TelemetryReadOnce,
    /// The telemetry text is cut off mid-row (a sampler caught
    /// mid-write).
    TelemetryTruncated,
    /// The previous sample is served again (a wedged sampler).
    TelemetryStale,
    /// From this tick on, counter totals are reported modulo
    /// `2^wrap_width_bits`, as a narrow hardware counter would.
    CounterWrap,
}

impl Fault {
    /// Stable short name for logs and reports.
    pub fn name(self) -> &'static str {
        match self {
            Fault::CosWrite => "cos_write",
            Fault::CosWriteOnce => "cos_write_once",
            Fault::CoreAssign => "core_assign",
            Fault::TelemetryRead => "telemetry_read",
            Fault::TelemetryReadOnce => "telemetry_read_once",
            Fault::TelemetryTruncated => "telemetry_truncated",
            Fault::TelemetryStale => "telemetry_stale",
            Fault::CounterWrap => "counter_wrap",
        }
    }
}

/// Every injectable kind, in a stable order (used by [`FaultPlan::random`]).
const ALL_FAULTS: [Fault; 8] = [
    Fault::CosWrite,
    Fault::CosWriteOnce,
    Fault::CoreAssign,
    Fault::TelemetryRead,
    Fault::TelemetryReadOnce,
    Fault::TelemetryTruncated,
    Fault::TelemetryStale,
    Fault::CounterWrap,
];

/// A tick-keyed schedule of injected faults.
#[derive(Debug, Clone, Default)]
pub struct FaultPlan {
    schedule: BTreeMap<u64, Vec<Fault>>,
    wrap_width_bits: u32,
}

/// Counters report full 64-bit totals unless a plan narrows them.
const DEFAULT_WRAP_WIDTH_BITS: u32 = 32;

impl FaultPlan {
    /// An explicit schedule: `(tick, fault)` pairs, any order.
    pub fn scripted(faults: impl IntoIterator<Item = (u64, Fault)>) -> Self {
        let mut schedule: BTreeMap<u64, Vec<Fault>> = BTreeMap::new();
        for (tick, fault) in faults {
            schedule.entry(tick).or_default().push(fault);
        }
        FaultPlan {
            schedule,
            wrap_width_bits: DEFAULT_WRAP_WIDTH_BITS,
        }
    }

    /// A pseudo-random schedule over daemon ticks `1..=ticks` where each
    /// tick carries one fault with probability `rate`. Seed through
    /// [`smallrng::split_seed`] to keep parallel sweeps deterministic.
    pub fn random(seed: u64, ticks: u64, rate: f64) -> Self {
        let mut rng = smallrng::SmallRng::seed_from_u64(seed);
        let mut faults = Vec::new();
        for tick in 1..=ticks {
            if rng.gen_bool(rate) {
                let kind = ALL_FAULTS[rng.gen_range_usize(0..ALL_FAULTS.len())];
                faults.push((tick, kind));
            }
        }
        FaultPlan::scripted(faults)
    }

    /// Overrides the counter width (in bits) that [`Fault::CounterWrap`]
    /// narrows totals to.
    pub fn with_wrap_width(mut self, bits: u32) -> Self {
        assert!((1..=63).contains(&bits), "wrap width must be 1..=63 bits");
        self.wrap_width_bits = bits;
        self
    }

    /// The counter width [`Fault::CounterWrap`] narrows totals to.
    pub fn wrap_width_bits(&self) -> u32 {
        self.wrap_width_bits
    }

    /// The faults scheduled at `tick`.
    pub fn faults_at(&self, tick: u64) -> &[Fault] {
        self.schedule.get(&tick).map_or(&[], Vec::as_slice)
    }

    /// Whether `fault` is scheduled at `tick`.
    pub fn contains(&self, tick: u64, fault: Fault) -> bool {
        self.faults_at(tick).contains(&fault)
    }

    /// Whether counters are narrowed at `tick`: a wrapped counter stays
    /// narrow, so the first scheduled [`Fault::CounterWrap`] applies to
    /// every later tick too.
    pub fn wrap_active_at(&self, tick: u64) -> bool {
        self.schedule
            .range(..=tick)
            .any(|(_, faults)| faults.contains(&Fault::CounterWrap))
    }

    /// Total number of scheduled faults.
    pub fn total_faults(&self) -> usize {
        self.schedule.values().map(Vec::len).sum()
    }

    /// All `(tick, fault)` pairs in tick order.
    pub fn iter(&self) -> impl Iterator<Item = (u64, Fault)> + '_ {
        self.schedule
            .iter()
            .flat_map(|(t, faults)| faults.iter().map(move |f| (*t, *f)))
    }
}

/// A [`CacheController`] wrapper that fails scheduled writes.
///
/// The daemon advances the wrapper's clock with [`set_tick`] once per
/// loop iteration; within a tick the wrapper counts calls so the
/// `*Once` variants fail exactly the first attempt. Injected failures
/// are recorded so tests can assert the event log saw every one.
///
/// [`set_tick`]: FaultingController::set_tick
#[derive(Debug)]
pub struct FaultingController<C> {
    inner: C,
    plan: FaultPlan,
    tick: u64,
    cos_write_calls: u32,
    core_assign_calls: u32,
    injected: Vec<(u64, Fault)>,
}

impl<C: CacheController> FaultingController<C> {
    /// Wraps `inner` under `plan`, starting at tick 0.
    pub fn new(inner: C, plan: FaultPlan) -> Self {
        FaultingController {
            inner,
            plan,
            tick: 0,
            cos_write_calls: 0,
            core_assign_calls: 0,
            injected: Vec::new(),
        }
    }

    /// Advances the schedule clock and resets the per-tick call counts.
    pub fn set_tick(&mut self, tick: u64) {
        self.tick = tick;
        self.cos_write_calls = 0;
        self.core_assign_calls = 0;
    }

    /// The wrapped backend.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// A shared view of the wrapped backend.
    pub fn inner(&self) -> &C {
        &self.inner
    }

    /// Every fault actually injected, as `(tick, fault)` pairs.
    pub fn injected(&self) -> &[(u64, Fault)] {
        &self.injected
    }

    fn inject(&mut self, fault: Fault, op: &str) -> ResctrlError {
        self.injected.push((self.tick, fault));
        ResctrlError::Io(std::io::Error::other(format!(
            "injected {} fault in {op} at tick {}",
            fault.name(),
            self.tick
        )))
    }
}

impl<C: CacheController> CacheController for FaultingController<C> {
    fn capabilities(&self) -> CatCapabilities {
        self.inner.capabilities()
    }

    fn num_cores(&self) -> u32 {
        self.inner.num_cores()
    }

    fn program_cos(&mut self, cos: CosId, cbm: Cbm) -> Result<(), ResctrlError> {
        let first_call = self.cos_write_calls == 0;
        self.cos_write_calls += 1;
        if self.plan.contains(self.tick, Fault::CosWrite) {
            return Err(self.inject(Fault::CosWrite, "program_cos"));
        }
        if first_call && self.plan.contains(self.tick, Fault::CosWriteOnce) {
            return Err(self.inject(Fault::CosWriteOnce, "program_cos"));
        }
        self.inner.program_cos(cos, cbm)
    }

    fn assign_core(&mut self, core: u32, cos: CosId) -> Result<(), ResctrlError> {
        self.core_assign_calls += 1;
        if self.plan.contains(self.tick, Fault::CoreAssign) {
            return Err(self.inject(Fault::CoreAssign, "assign_core"));
        }
        self.inner.assign_core(core, cos)
    }

    fn cos_mask(&self, cos: CosId) -> Result<Cbm, ResctrlError> {
        self.inner.cos_mask(cos)
    }

    fn core_cos(&self, core: u32) -> Result<CosId, ResctrlError> {
        self.inner.core_cos(core)
    }

    fn flush_cbm(&mut self, cbm: Cbm) -> Result<(), ResctrlError> {
        self.inner.flush_cbm(cbm)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mock::InMemoryController;

    #[test]
    fn scripted_schedules_are_tick_keyed() {
        let plan = FaultPlan::scripted([
            (3, Fault::TelemetryTruncated),
            (1, Fault::CosWrite),
            (3, Fault::CoreAssign),
        ]);
        assert_eq!(plan.faults_at(1), &[Fault::CosWrite]);
        assert_eq!(
            plan.faults_at(3),
            &[Fault::TelemetryTruncated, Fault::CoreAssign]
        );
        assert!(plan.faults_at(0).is_empty());
        assert_eq!(plan.total_faults(), 3);
        assert_eq!(plan.iter().count(), 3);
    }

    #[test]
    fn counter_wrap_is_sticky() {
        let plan = FaultPlan::scripted([(5, Fault::CounterWrap)]);
        assert!(!plan.wrap_active_at(4));
        assert!(plan.wrap_active_at(5));
        assert!(plan.wrap_active_at(100));
    }

    #[test]
    fn random_plans_are_seed_deterministic() {
        let a = FaultPlan::random(42, 100, 0.3);
        let b = FaultPlan::random(42, 100, 0.3);
        let c = FaultPlan::random(43, 100, 0.3);
        let pairs = |p: &FaultPlan| p.iter().collect::<Vec<_>>();
        assert_eq!(pairs(&a), pairs(&b));
        assert_ne!(pairs(&a), pairs(&c), "different seeds, different plans");
        assert!(a.total_faults() > 10, "rate 0.3 over 100 ticks");
        assert!(a.total_faults() < 60);
    }

    #[test]
    fn scheduled_writes_fail_and_are_recorded() {
        let plan = FaultPlan::scripted([(2, Fault::CosWrite)]);
        let mut cat = FaultingController::new(InMemoryController::xeon_e5(4), plan);

        cat.set_tick(1);
        cat.program_cos(CosId(1), Cbm(0b11)).unwrap();
        cat.set_tick(2);
        let err = cat.program_cos(CosId(1), Cbm(0b111)).unwrap_err();
        assert!(err.is_transient());
        // Every call this tick fails, so a retry loop exhausts.
        assert!(cat.program_cos(CosId(1), Cbm(0b111)).is_err());
        cat.set_tick(3);
        cat.program_cos(CosId(1), Cbm(0b111)).unwrap();

        assert_eq!(
            cat.injected(),
            &[(2, Fault::CosWrite), (2, Fault::CosWrite)]
        );
        // The failed write never reached the backend.
        assert_eq!(cat.inner().cos_mask(CosId(1)).unwrap(), Cbm(0b111));
    }

    #[test]
    fn once_variant_fails_only_the_first_call_per_tick() {
        let plan = FaultPlan::scripted([(0, Fault::CosWriteOnce)]);
        let mut cat = FaultingController::new(InMemoryController::xeon_e5(4), plan);
        assert!(cat.program_cos(CosId(1), Cbm(0b1)).is_err());
        cat.program_cos(CosId(1), Cbm(0b1)).unwrap();
        assert_eq!(cat.injected().len(), 1);
    }
}
