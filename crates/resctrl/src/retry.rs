//! Bounded retry with backoff for transient backend failures.
//!
//! Real resctrl and MSR accesses fail transiently — torn sysfs reads,
//! `EINTR`, a sampler caught mid-write — and a daemon that `?`-propagates
//! the first such error dies for no reason. [`with_retries`] wraps one
//! fallible operation in a bounded attempt loop (transient errors retry
//! after a linearly growing backoff, fatal errors return immediately),
//! and [`RetryingController`] lifts that policy over every mutation of a
//! [`CacheController`] so the dCat tick never sees a transient blip that
//! one more attempt would have absorbed.
//!
//! Every retry and every exhaustion is recorded as a [`RetryEvent`] so
//! the daemon can surface what happened in its structured event log
//! instead of silently eating failures.

use std::time::Duration;

use crate::cbm::Cbm;
use crate::controller::{CacheController, CatCapabilities, CosId, ResctrlError};

/// How hard to try before declaring an operation failed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts, including the first (clamped to at least 1).
    pub max_attempts: u32,
    /// Backoff before attempt `n+1` is `backoff * n` (linear).
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 3,
            backoff: Duration::from_millis(10),
        }
    }
}

impl RetryPolicy {
    /// A policy that never sleeps — for tests and simulations, where the
    /// injected fault schedule is keyed by tick and waiting changes
    /// nothing.
    pub fn immediate(max_attempts: u32) -> Self {
        RetryPolicy {
            max_attempts,
            backoff: Duration::ZERO,
        }
    }
}

/// One recovery-path observation, emitted by [`with_retries`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum RetryEvent {
    /// An attempt failed transiently and another will be made.
    Retried {
        /// What was being attempted (e.g. `"program_cos"`).
        op: &'static str,
        /// The attempt that failed, 1-based.
        attempt: u32,
        /// Rendered error.
        error: String,
    },
    /// All attempts failed; the caller must degrade.
    Exhausted {
        /// What was being attempted.
        op: &'static str,
        /// How many attempts were made.
        attempts: u32,
        /// Rendered final error.
        error: String,
    },
}

/// Runs `f` up to `policy.max_attempts` times, sleeping the linear
/// backoff between attempts. Only transient errors retry; a fatal error
/// (or exhaustion) is returned to the caller. Recovery-path observations
/// are appended to `log`.
pub fn with_retries<T>(
    policy: RetryPolicy,
    op: &'static str,
    log: &mut Vec<RetryEvent>,
    mut f: impl FnMut() -> Result<T, ResctrlError>,
) -> Result<T, ResctrlError> {
    let attempts = policy.max_attempts.max(1);
    let mut attempt = 0u32;
    loop {
        attempt += 1;
        match f() {
            Ok(v) => return Ok(v),
            Err(e) if e.is_transient() && attempt < attempts => {
                log.push(RetryEvent::Retried {
                    op,
                    attempt,
                    error: e.to_string(),
                });
                let backoff = policy.backoff * attempt;
                if !backoff.is_zero() {
                    std::thread::sleep(backoff);
                }
            }
            Err(e) => {
                if e.is_transient() {
                    log.push(RetryEvent::Exhausted {
                        op,
                        attempts: attempt,
                        error: e.to_string(),
                    });
                }
                return Err(e);
            }
        }
    }
}

/// A [`CacheController`] adapter that retries transient failures of the
/// wrapped backend under one [`RetryPolicy`].
///
/// The retry sits at the *call* granularity, not the tick: the dCat
/// controller updates its recorded allocation per domain only after the
/// corresponding `program_cos` succeeds, so re-running a whole tick
/// would double-apply counter deltas, while re-running one write is
/// idempotent.
#[derive(Debug)]
pub struct RetryingController<C> {
    inner: C,
    policy: RetryPolicy,
    log: Vec<RetryEvent>,
}

impl<C: CacheController> RetryingController<C> {
    /// Wraps `inner` under `policy`.
    pub fn new(inner: C, policy: RetryPolicy) -> Self {
        RetryingController {
            inner,
            policy,
            log: Vec::new(),
        }
    }

    /// The wrapped backend.
    pub fn inner_mut(&mut self) -> &mut C {
        &mut self.inner
    }

    /// Drains the recovery-path observations accumulated so far.
    pub fn take_events(&mut self) -> Vec<RetryEvent> {
        std::mem::take(&mut self.log)
    }
}

impl<C: CacheController> CacheController for RetryingController<C> {
    fn capabilities(&self) -> CatCapabilities {
        self.inner.capabilities()
    }

    fn num_cores(&self) -> u32 {
        self.inner.num_cores()
    }

    fn program_cos(&mut self, cos: CosId, cbm: Cbm) -> Result<(), ResctrlError> {
        let (policy, inner, log) = (self.policy, &mut self.inner, &mut self.log);
        with_retries(policy, "program_cos", log, || inner.program_cos(cos, cbm))
    }

    fn assign_core(&mut self, core: u32, cos: CosId) -> Result<(), ResctrlError> {
        let (policy, inner, log) = (self.policy, &mut self.inner, &mut self.log);
        with_retries(policy, "assign_core", log, || inner.assign_core(core, cos))
    }

    fn cos_mask(&self, cos: CosId) -> Result<Cbm, ResctrlError> {
        // Reads retry too, but without logging: `cos_mask` takes `&self`,
        // and a read the controller retries successfully is invisible to
        // allocation decisions anyway.
        let attempts = self.policy.max_attempts.max(1);
        let mut last = self.inner.cos_mask(cos);
        let mut attempt = 1;
        while attempt < attempts && matches!(&last, Err(e) if e.is_transient()) {
            attempt += 1;
            last = self.inner.cos_mask(cos);
        }
        last
    }

    fn core_cos(&self, core: u32) -> Result<CosId, ResctrlError> {
        let attempts = self.policy.max_attempts.max(1);
        let mut last = self.inner.core_cos(core);
        let mut attempt = 1;
        while attempt < attempts && matches!(&last, Err(e) if e.is_transient()) {
            attempt += 1;
            last = self.inner.core_cos(core);
        }
        last
    }

    fn flush_cbm(&mut self, cbm: Cbm) -> Result<(), ResctrlError> {
        let (policy, inner, log) = (self.policy, &mut self.inner, &mut self.log);
        with_retries(policy, "flush_cbm", log, || inner.flush_cbm(cbm))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn eio() -> ResctrlError {
        ResctrlError::Io(std::io::Error::other("injected"))
    }

    #[test]
    fn transient_errors_retry_until_success() {
        let mut log = Vec::new();
        let mut failures_left = 2;
        let out = with_retries(RetryPolicy::immediate(3), "op", &mut log, || {
            if failures_left > 0 {
                failures_left -= 1;
                Err(eio())
            } else {
                Ok(42)
            }
        });
        assert_eq!(out.unwrap(), 42);
        assert_eq!(log.len(), 2);
        assert!(matches!(
            log[0],
            RetryEvent::Retried {
                op: "op",
                attempt: 1,
                ..
            }
        ));
    }

    #[test]
    fn exhaustion_is_logged_and_returned() {
        let mut log = Vec::new();
        let out: Result<(), _> =
            with_retries(RetryPolicy::immediate(3), "op", &mut log, || Err(eio()));
        assert!(out.is_err());
        assert!(matches!(
            log.last(),
            Some(RetryEvent::Exhausted { attempts: 3, .. })
        ));
    }

    #[test]
    fn fatal_errors_do_not_retry() {
        let mut log = Vec::new();
        let mut calls = 0;
        let out: Result<(), _> = with_retries(RetryPolicy::immediate(5), "op", &mut log, || {
            calls += 1;
            Err(ResctrlError::InvalidCore(9))
        });
        assert!(out.is_err());
        assert_eq!(calls, 1, "fatal errors must fail on the first attempt");
        assert!(log.is_empty(), "fatal errors are not recovery-path events");
    }

    #[test]
    fn retrying_controller_recovers_a_flaky_write() {
        use crate::fault::{Fault, FaultPlan, FaultingController};
        use crate::mock::InMemoryController;

        let plan = FaultPlan::scripted([(0, Fault::CosWriteOnce)]);
        let flaky = FaultingController::new(InMemoryController::xeon_e5(4), plan);
        let mut cat = RetryingController::new(flaky, RetryPolicy::immediate(3));
        cat.program_cos(CosId(1), Cbm(0b11)).unwrap();
        assert_eq!(cat.cos_mask(CosId(1)).unwrap(), Cbm(0b11));
        let events = cat.take_events();
        assert_eq!(events.len(), 1);
        assert!(matches!(events[0], RetryEvent::Retried { attempt: 1, .. }));
        assert!(cat.take_events().is_empty(), "take_events drains");
    }
}
