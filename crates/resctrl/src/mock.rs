//! An in-memory [`CacheController`] for unit-testing controller logic.

use crate::cbm::Cbm;
use crate::controller::{CacheController, CatCapabilities, CosId, ResctrlError};

/// A record of one mutation, for asserting on controller behavior.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MutationRecord {
    /// `program_cos(cos, cbm)` was called.
    ProgramCos(CosId, Cbm),
    /// `assign_core(core, cos)` was called.
    AssignCore(u32, CosId),
}

/// An in-memory CAT state machine with full validation and a mutation log.
#[derive(Debug, Clone)]
pub struct InMemoryController {
    caps: CatCapabilities,
    num_cores: u32,
    cos_masks: Vec<Cbm>,
    core_assignment: Vec<CosId>,
    /// Every successful mutation, in order.
    pub log: Vec<MutationRecord>,
}

impl InMemoryController {
    /// Creates a controller where every COS starts with the full mask and
    /// every core is in COS 0 — the hardware reset state.
    pub fn new(caps: CatCapabilities, num_cores: u32) -> Self {
        InMemoryController {
            caps,
            num_cores,
            cos_masks: vec![caps.full_mask(); caps.num_closids as usize],
            core_assignment: vec![CosId(0); num_cores as usize],
            log: Vec::new(),
        }
    }

    /// Convenience constructor for the paper's Xeon-E5 socket.
    pub fn xeon_e5(num_cores: u32) -> Self {
        InMemoryController::new(CatCapabilities::with_ways(20), num_cores)
    }

    /// Whether any two *in-use* classes (classes with at least one core
    /// assigned) have overlapping masks. dCat's isolation invariant is that
    /// this never holds.
    pub fn has_overlapping_active_masks(&self) -> bool {
        let mut active: Vec<CosId> = self.core_assignment.clone();
        active.sort_unstable();
        active.dedup();
        for (i, a) in active.iter().enumerate() {
            for b in &active[i + 1..] {
                if self.cos_masks[a.0 as usize].overlaps(self.cos_masks[b.0 as usize]) {
                    return true;
                }
            }
        }
        false
    }
}

impl CacheController for InMemoryController {
    fn capabilities(&self) -> CatCapabilities {
        self.caps
    }

    fn num_cores(&self) -> u32 {
        self.num_cores
    }

    fn program_cos(&mut self, cos: CosId, cbm: Cbm) -> Result<(), ResctrlError> {
        self.validate_cos(cos)?;
        self.validate_cbm(cbm)?;
        let Some(slot) = self.cos_masks.get_mut(cos.0 as usize) else {
            return Err(ResctrlError::InvalidCos(cos));
        };
        *slot = cbm;
        self.log.push(MutationRecord::ProgramCos(cos, cbm));
        Ok(())
    }

    fn assign_core(&mut self, core: u32, cos: CosId) -> Result<(), ResctrlError> {
        self.validate_cos(cos)?;
        let Some(slot) = self.core_assignment.get_mut(core as usize) else {
            return Err(ResctrlError::InvalidCore(core));
        };
        *slot = cos;
        self.log.push(MutationRecord::AssignCore(core, cos));
        Ok(())
    }

    fn cos_mask(&self, cos: CosId) -> Result<Cbm, ResctrlError> {
        self.validate_cos(cos)?;
        Ok(self.cos_masks[cos.0 as usize])
    }

    fn core_cos(&self, core: u32) -> Result<CosId, ResctrlError> {
        if core >= self.num_cores {
            return Err(ResctrlError::InvalidCore(core));
        }
        Ok(self.core_assignment[core as usize])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reset_state_matches_hardware() {
        let ctl = InMemoryController::xeon_e5(18);
        assert_eq!(ctl.cos_mask(CosId(0)).unwrap(), Cbm(0xf_ffff));
        assert_eq!(ctl.cos_mask(CosId(15)).unwrap(), Cbm(0xf_ffff));
        assert_eq!(ctl.core_cos(17).unwrap(), CosId(0));
    }

    #[test]
    fn program_and_assign_round_trip() {
        let mut ctl = InMemoryController::xeon_e5(4);
        ctl.program_cos(CosId(1), Cbm(0b11)).unwrap();
        ctl.assign_core(2, CosId(1)).unwrap();
        assert_eq!(ctl.cos_mask(CosId(1)).unwrap(), Cbm(0b11));
        assert_eq!(ctl.core_cos(2).unwrap(), CosId(1));
        assert_eq!(
            ctl.log,
            vec![
                MutationRecord::ProgramCos(CosId(1), Cbm(0b11)),
                MutationRecord::AssignCore(2, CosId(1)),
            ]
        );
    }

    #[test]
    fn rejects_invalid_operations() {
        let mut ctl = InMemoryController::xeon_e5(4);
        assert!(ctl.program_cos(CosId(16), Cbm(1)).is_err());
        assert!(ctl.program_cos(CosId(1), Cbm(0)).is_err());
        assert!(ctl.assign_core(4, CosId(0)).is_err());
        assert!(ctl.core_cos(9).is_err());
        // Failed mutations leave no log entries.
        assert!(ctl.log.is_empty());
    }

    #[test]
    fn overlap_detection_tracks_active_classes_only() {
        let mut ctl = InMemoryController::xeon_e5(4);
        ctl.program_cos(CosId(1), Cbm(0b0011)).unwrap();
        ctl.program_cos(CosId(2), Cbm(0b0110)).unwrap();
        // Nobody assigned to COS 1/2 yet; only COS 0 is active.
        assert!(!ctl.has_overlapping_active_masks());
        ctl.assign_core(0, CosId(1)).unwrap();
        ctl.assign_core(1, CosId(2)).unwrap();
        ctl.assign_core(2, CosId(1)).unwrap();
        ctl.assign_core(3, CosId(2)).unwrap();
        assert!(ctl.has_overlapping_active_masks());
        ctl.program_cos(CosId(2), Cbm(0b1100)).unwrap();
        assert!(!ctl.has_overlapping_active_masks());
    }
}
