//! Laying out way *counts* as non-overlapping contiguous CBMs.
//!
//! dCat reasons in "number of ways per workload" (the paper allocates and
//! reclaims one way at a time), but CAT is programmed with contiguous
//! bitmasks. Something must translate `[3, 7, 1, 1]` into concrete,
//! non-overlapping runs of ways — and should avoid gratuitously moving a
//! workload's ways around, because a moved partition starts cold (the
//! paper's Section 6 notes Intel has no way-flush instruction, so a moved
//! workload re-warms from DRAM).
//!
//! [`LayoutPlanner`] does this translation. Placement is left-to-right in
//! a *stable order*: groups are placed in the order of their previous
//! positions, so a group whose way count did not change — and whose
//! left-neighbors did not change — keeps its exact mask.

use crate::cbm::Cbm;
use crate::controller::ResctrlError;
use crate::invariants;

/// Translates per-group way counts into concrete non-overlapping CBMs.
#[derive(Debug, Clone, Copy)]
pub struct LayoutPlanner {
    cbm_len: u32,
}

impl LayoutPlanner {
    /// Creates a planner for a cache with `cbm_len` ways.
    pub fn new(cbm_len: u32) -> Self {
        assert!((1..=32).contains(&cbm_len), "cbm_len out of range");
        LayoutPlanner { cbm_len }
    }

    /// Number of ways the planner lays out over.
    pub fn cbm_len(&self) -> u32 {
        self.cbm_len
    }

    /// Lays out `counts[i]` ways for each group `i`, left to right.
    ///
    /// Fails when a count is zero (CAT forbids empty masks) or the counts
    /// exceed the cache. Unassigned high ways are the free pool.
    pub fn layout(&self, counts: &[u32]) -> Result<Vec<Cbm>, ResctrlError> {
        self.layout_in_order(counts, (0..counts.len()).collect())
    }

    /// Lays out `counts`, disturbing as few groups as possible.
    ///
    /// A moved partition starts cold (there is no way-flush instruction),
    /// so the cost of a relayout should fall on the group that *changed*,
    /// never on bystanders — otherwise every growth step of one tenant
    /// flushes its neighbors, whose IPC blips then confuse any
    /// feedback-driven controller. The algorithm:
    ///
    /// 1. groups whose count is unchanged keep their exact mask; a shrunk
    ///    group keeps its *top* ways, releasing from the bottom — freed
    ///    ways then sit adjacent to the left neighbor, which (with the
    ///    planner's left-to-right packing) is the likeliest grower, so a
    ///    later growth extends in place instead of relocating;
    /// 2. a grown group takes any free contiguous run that contains its
    ///    previous mask (upward first, then sliding downward) — every way
    ///    it already warmed stays warm;
    /// 3. a grower still blocked may displace *one-way* bystanders out of
    ///    such a run: a single-way group holds at most one warm way, so
    ///    moving it costs far less than relocating the multi-way grower;
    /// 4. otherwise it is first-fit placed into a free gap (as are the
    ///    displaced one-way groups);
    /// 5. only if fragmentation leaves no gap does the planner fall back
    ///    to a full left-to-right repack (ordered by previous position).
    pub fn layout_stable(
        &self,
        counts: &[u32],
        previous: &[Option<Cbm>],
    ) -> Result<Vec<Cbm>, ResctrlError> {
        assert_eq!(
            counts.len(),
            previous.len(),
            "counts/previous length mismatch"
        );
        let total: u32 = counts.iter().sum();
        if total > self.cbm_len {
            return Err(ResctrlError::InvalidCbm {
                cbm: Cbm::full(self.cbm_len),
                reason: format!("requested {total} ways exceed cbm_len={}", self.cbm_len),
            });
        }
        for (i, &c) in counts.iter().enumerate() {
            if c == 0 {
                return Err(ResctrlError::InvalidCbm {
                    cbm: Cbm(0),
                    reason: format!("group {i} requested zero ways"),
                });
            }
        }

        let mut result = vec![Cbm(0); counts.len()];
        let mut used = Cbm(0);
        let mut pending: Vec<usize> = Vec::new();

        // Pass 1: keepers hold their mask; shrinkers keep their top ways,
        // releasing from the bottom toward the left neighbor.
        // An empty previous mask cannot anchor a placement; such a group
        // (impossible while CAT rejects zero-way masks) falls to pending.
        for (i, &count) in counts.iter().enumerate() {
            match previous[i].and_then(|prev| prev.first_way().map(|f| (prev, f))) {
                Some((prev, first)) if count <= prev.ways() => {
                    let start = first + (prev.ways() - count);
                    let cbm = Cbm::from_way_range(start, count);
                    result[i] = cbm;
                    used = used.union(cbm);
                }
                _ => pending.push(i),
            }
        }

        // Pass 2: growers take a free run containing their previous mask
        // (upward first, then sliding downward), keeping every warmed way.
        pending.retain(|&i| {
            if let Some((prev, first)) =
                previous[i].and_then(|prev| prev.first_way().map(|f| (prev, f)))
            {
                let count = counts[i];
                let top = first + prev.ways();
                let lo = top.saturating_sub(count);
                let mut start = first;
                loop {
                    if start + count <= self.cbm_len {
                        let cbm = Cbm::from_way_range(start, count);
                        if !cbm.overlaps(used) {
                            result[i] = cbm;
                            used = used.union(cbm);
                            return false;
                        }
                    }
                    if start == lo {
                        break;
                    }
                    start -= 1;
                }
            }
            true
        });

        // Pass 3: a still-blocked grower may displace one-way groups out
        // of a run containing its previous mask. The displaced groups are
        // re-placed first-fit below; each loses at most one warm way,
        // which is cheaper than the grower losing its whole working set.
        let mut displaced: Vec<usize> = Vec::new();
        {
            let mut firm = Cbm(0);
            for (j, &m) in result.iter().enumerate() {
                if !m.is_empty() && counts[j] != 1 {
                    firm = firm.union(m);
                }
            }
            pending.retain(|&i| {
                let Some(prev) = previous[i] else { return true };
                let Some(first) = prev.first_way() else {
                    return true;
                };
                let count = counts[i];
                let top = first + prev.ways();
                let lo = top.saturating_sub(count);
                let mut start = first;
                loop {
                    if start + count <= self.cbm_len {
                        let cbm = Cbm::from_way_range(start, count);
                        if !cbm.overlaps(firm) {
                            for j in 0..result.len() {
                                if j != i && counts[j] == 1 && result[j].overlaps(cbm) {
                                    used = used.difference(result[j]);
                                    result[j] = Cbm(0);
                                    displaced.push(j);
                                }
                            }
                            result[i] = cbm;
                            used = used.union(cbm);
                            firm = firm.union(cbm);
                            return false;
                        }
                    }
                    if start == lo {
                        break;
                    }
                    start -= 1;
                }
                true
            });
        }
        pending.extend(displaced);

        // Pass 4: first-fit into free gaps (also handles new groups).
        let mut fragmented = false;
        for &i in &pending {
            let count = counts[i];
            let mut placed = false;
            for start in 0..=self.cbm_len.saturating_sub(count) {
                let cbm = Cbm::from_way_range(start, count);
                if !cbm.overlaps(used) {
                    result[i] = cbm;
                    used = used.union(cbm);
                    placed = true;
                    break;
                }
            }
            if !placed {
                fragmented = true;
                break;
            }
        }
        if !fragmented {
            debug_assert!(
                invariants::check_layout(&result, self.cbm_len)
                    .and_then(|()| invariants::check_counts(&result, counts))
                    .is_ok(),
                "layout_stable produced an illegal layout: {:?}",
                invariants::check_layout(&result, self.cbm_len)
                    .and_then(|()| invariants::check_counts(&result, counts))
            );
            return Ok(result);
        }

        // Pass 5: fragmentation fallback — full repack by previous start.
        let mut order: Vec<usize> = (0..counts.len()).collect();
        order.sort_by_key(|&i| match previous[i] {
            Some(cbm) => (0u8, cbm.first_way().unwrap_or(u32::MAX), i),
            None => (1u8, u32::MAX, i),
        });
        let result = self.layout_in_order(counts, order)?;
        debug_assert!(
            invariants::check_layout(&result, self.cbm_len)
                .and_then(|()| invariants::check_counts(&result, counts))
                .is_ok(),
            "layout_stable repack produced an illegal layout: {:?}",
            invariants::check_layout(&result, self.cbm_len)
                .and_then(|()| invariants::check_counts(&result, counts))
        );
        Ok(result)
    }

    fn layout_in_order(&self, counts: &[u32], order: Vec<usize>) -> Result<Vec<Cbm>, ResctrlError> {
        let total: u32 = counts.iter().sum();
        if total > self.cbm_len {
            return Err(ResctrlError::InvalidCbm {
                cbm: Cbm::full(self.cbm_len),
                reason: format!("requested {total} ways exceed cbm_len={}", self.cbm_len),
            });
        }
        let mut result = vec![Cbm(0); counts.len()];
        let mut cursor = 0u32;
        for idx in order {
            let ways = counts[idx];
            if ways == 0 {
                return Err(ResctrlError::InvalidCbm {
                    cbm: Cbm(0),
                    reason: format!("group {idx} requested zero ways"),
                });
            }
            result[idx] = Cbm::from_way_range(cursor, ways);
            cursor += ways;
        }
        Ok(result)
    }

    /// Number of groups whose mask differs between two layouts.
    pub fn churn(previous: &[Cbm], next: &[Cbm]) -> usize {
        previous
            .iter()
            .zip(next.iter())
            .filter(|(a, b)| a != b)
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sequential_layout_is_non_overlapping_and_packed() {
        let p = LayoutPlanner::new(20);
        let masks = p.layout(&[3, 7, 1, 1]).unwrap();
        assert_eq!(masks[0], Cbm::from_way_range(0, 3));
        assert_eq!(masks[1], Cbm::from_way_range(3, 7));
        assert_eq!(masks[2], Cbm::from_way_range(10, 1));
        assert_eq!(masks[3], Cbm::from_way_range(11, 1));
        for i in 0..masks.len() {
            for j in i + 1..masks.len() {
                assert!(!masks[i].overlaps(masks[j]));
            }
        }
    }

    #[test]
    fn zero_count_rejected() {
        let p = LayoutPlanner::new(8);
        assert!(p.layout(&[2, 0]).is_err());
    }

    #[test]
    fn oversubscription_rejected() {
        let p = LayoutPlanner::new(8);
        assert!(p.layout(&[5, 4]).is_err());
        assert!(p.layout(&[4, 4]).is_ok());
    }

    #[test]
    fn stable_layout_keeps_unchanged_groups_in_place() {
        let p = LayoutPlanner::new(20);
        let first = p.layout(&[3, 7, 2]).unwrap();
        // Group 1 shrinks 7 -> 5; groups 0 and 2 unchanged.
        let prev: Vec<Option<Cbm>> = first.iter().copied().map(Some).collect();
        let second = p.layout_stable(&[3, 5, 2], &prev).unwrap();
        assert_eq!(
            second[0], first[0],
            "leftmost unchanged group keeps its mask"
        );
        // The shrinker keeps its *top* ways, releasing the bottom ones
        // toward its left neighbor (the likeliest future grower).
        assert_eq!(
            second[1].first_way(),
            Some(5),
            "group 1 released its bottom ways"
        );
        assert_eq!(second[1].ways(), 5);
        // Group 2 keeps its exact mask — only the shrinker changed.
        assert_eq!(second[2], first[2]);
        assert_eq!(LayoutPlanner::churn(&first, &second), 1);
    }

    #[test]
    fn stable_layout_leaves_existing_groups_untouched_by_newcomers() {
        let p = LayoutPlanner::new(20);
        let prev = vec![Some(Cbm::from_way_range(5, 3)), None];
        let masks = p.layout_stable(&[3, 2], &prev).unwrap();
        // The existing group keeps its exact mask; the newcomer takes the
        // first free gap.
        assert_eq!(masks[0], Cbm::from_way_range(5, 3));
        assert_eq!(masks[1], Cbm::from_way_range(0, 2));
    }

    #[test]
    fn grower_extends_in_place_when_room_is_free() {
        let p = LayoutPlanner::new(20);
        let prev = vec![
            Some(Cbm::from_way_range(0, 3)),
            Some(Cbm::from_way_range(10, 3)),
        ];
        let masks = p.layout_stable(&[4, 3], &prev).unwrap();
        assert_eq!(masks[0], Cbm::from_way_range(0, 4), "extended in place");
        assert_eq!(masks[1], Cbm::from_way_range(10, 3), "bystander untouched");
    }

    #[test]
    fn blocked_grower_moves_itself_not_its_neighbor() {
        let p = LayoutPlanner::new(20);
        // Group 1 sits directly after group 0, blocking in-place growth.
        let prev = vec![
            Some(Cbm::from_way_range(0, 3)),
            Some(Cbm::from_way_range(3, 3)),
        ];
        let masks = p.layout_stable(&[4, 3], &prev).unwrap();
        assert_eq!(masks[1], Cbm::from_way_range(3, 3), "bystander untouched");
        assert_eq!(masks[0].ways(), 4);
        assert!(!masks[0].overlaps(masks[1]));
        assert_eq!(masks[0].first_way(), Some(6), "grower relocated to the gap");
    }

    #[test]
    fn blocked_grower_displaces_one_way_bystander() {
        let p = LayoutPlanner::new(20);
        // A one-way group sits directly above the grower; the free pool is
        // beyond it. The grower keeps all four warmed ways and the one-way
        // group (at most one warm way to lose) is moved aside.
        let prev = vec![
            Some(Cbm::from_way_range(0, 4)),
            Some(Cbm::from_way_range(4, 1)),
        ];
        let masks = p.layout_stable(&[5, 1], &prev).unwrap();
        assert_eq!(masks[0], Cbm::from_way_range(0, 5), "grower kept its run");
        assert_eq!(masks[1].ways(), 1);
        assert!(!masks[0].overlaps(masks[1]));
    }

    #[test]
    fn grower_fills_a_middle_gap_without_moving_others() {
        let p = LayoutPlanner::new(8);
        let prev = vec![
            Some(Cbm::from_way_range(0, 3)),
            Some(Cbm::from_way_range(6, 2)),
            Some(Cbm::from_way_range(3, 1)),
        ];
        let masks = p.layout_stable(&[3, 2, 3], &prev).unwrap();
        assert_eq!(masks[0], Cbm::from_way_range(0, 3));
        assert_eq!(masks[1], Cbm::from_way_range(6, 2));
        assert_eq!(masks[2], Cbm::from_way_range(3, 3), "grew into the gap");
    }

    #[test]
    fn fragmentation_falls_back_to_repack() {
        let p = LayoutPlanner::new(8);
        // Free ways are {2, 5}: not contiguous, so a new 2-way group can
        // only be placed by repacking everyone.
        let prev = vec![
            Some(Cbm::from_way_range(0, 2)),
            Some(Cbm::from_way_range(3, 2)),
            Some(Cbm::from_way_range(6, 2)),
            None,
        ];
        let masks = p.layout_stable(&[2, 2, 2, 2], &prev).unwrap();
        let union = masks.iter().fold(Cbm(0), |acc, m| acc.union(*m));
        assert_eq!(union.ways(), 8, "every way in use after repack");
        for i in 0..masks.len() {
            assert!(masks[i].is_contiguous());
            assert_eq!(masks[i].ways(), 2);
            for j in i + 1..masks.len() {
                assert!(!masks[i].overlaps(masks[j]));
            }
        }
    }

    #[test]
    fn full_allocation_uses_every_way() {
        let p = LayoutPlanner::new(20);
        let masks = p.layout(&[10, 10]).unwrap();
        let union = masks.iter().fold(Cbm(0), |acc, m| acc.union(*m));
        assert_eq!(union, Cbm::full(20));
    }

    #[test]
    fn churn_counts_differences() {
        let a = vec![Cbm(1), Cbm(2), Cbm(4)];
        let b = vec![Cbm(1), Cbm(6), Cbm(4)];
        assert_eq!(LayoutPlanner::churn(&a, &b), 1);
        assert_eq!(LayoutPlanner::churn(&a, &a), 0);
    }
}
