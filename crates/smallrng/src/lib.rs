//! Tiny, dependency-free, deterministic PRNG for the dCat workspace.
//!
//! The simulation needs *reproducible* pseudo-randomness (every workload
//! stream is seeded so experiments are replayable), not cryptographic
//! quality. This crate replaces the external `rand` dependency so the
//! workspace builds with the crates registry unreachable.
//!
//! The generator is xoshiro256++ (Blackman & Vigna, 2019) seeded through
//! SplitMix64, the exact construction the reference implementation
//! recommends for expanding a 64-bit seed into the 256-bit state. The API
//! mirrors the small subset of `rand` the workspace used: seeding from a
//! `u64`, uniform integer ranges, Bernoulli draws and unit-interval floats.

/// SplitMix64 step: expands a 64-bit seed into well-mixed state words.
fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Derives an independent sub-seed from a root seed and a stream index.
///
/// Both words pass through SplitMix64, so adjacent indices (0, 1, 2, …)
/// yield uncorrelated seeds. The engine uses this to give every VM its
/// own frame-placement stream: adding a VM to a mix must not reshuffle
/// any other VM's physical frames.
pub fn split_seed(seed: u64, stream: u64) -> u64 {
    let mut state = seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f);
    let first = splitmix64(&mut state);
    first ^ splitmix64(&mut state)
}

/// A small, fast, seeded PRNG (xoshiro256++).
///
/// Identical seeds produce identical streams on every platform; there is
/// no global state and no entropy source.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SmallRng {
    s: [u64; 4],
}

impl SmallRng {
    /// Creates a generator whose 256-bit state is expanded from `seed`
    /// with SplitMix64.
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = seed;
        let s = [
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
            splitmix64(&mut sm),
        ];
        SmallRng { s }
    }

    /// Next raw 64-bit output (xoshiro256++ scrambler).
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform draw from `[range.start, range.end)`.
    ///
    /// Uses Lemire's multiply-shift rejection method, so the distribution
    /// is exactly uniform over the span.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: core::ops::Range<u64>) -> u64 {
        assert!(range.start < range.end, "gen_range called with empty range");
        let span = range.end - range.start;
        range.start + self.bounded(span)
    }

    /// Uniform draw from `[range.start, range.end)` over `usize`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range_usize(&mut self, range: core::ops::Range<usize>) -> usize {
        self.gen_range(range.start as u64..range.end as u64) as usize
    }

    fn bounded(&mut self, span: u64) -> u64 {
        // Lemire (2019): multiply a 64-bit draw by the span and keep the
        // high word; reject the small biased region of the low word.
        loop {
            let x = self.next_u64();
            let m = (x as u128).wrapping_mul(span as u128);
            let low = m as u64;
            if low >= span.wrapping_neg() % span || span.is_power_of_two() {
                return (m >> 64) as u64;
            }
        }
    }

    /// Bernoulli draw: `true` with probability `p` (clamped to `[0, 1]`).
    pub fn gen_bool(&mut self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        self.gen_f64() < p
    }

    /// Uniform draw from `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        // Standard conversion: take the top 53 bits and scale by 2^-53.
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn split_seed_streams_are_stable_and_distinct() {
        // Deterministic: same inputs, same sub-seed.
        assert_eq!(split_seed(7, 3), split_seed(7, 3));
        // Distinct across adjacent streams and across root seeds.
        let seeds: Vec<u64> = (0..64).map(|i| split_seed(0xD_CA7, i)).collect();
        let mut dedup = seeds.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), seeds.len(), "sub-seed collision");
        assert_ne!(split_seed(1, 0), split_seed(2, 0));
        // Stream 0 is not the identity: even VM 0 gets a mixed stream.
        assert_ne!(split_seed(42, 0), 42);
    }

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(42);
        let mut b = SmallRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn reference_vector_xoshiro256pp() {
        // First outputs of xoshiro256++ with state seeded by SplitMix64(0),
        // cross-checked against the reference C implementation.
        let mut sm = 0u64;
        let s0 = splitmix64(&mut sm);
        assert_eq!(s0, 0xe220_a839_7b1d_cdaf, "SplitMix64 reference vector");
        let mut rng = SmallRng::seed_from_u64(0);
        // Output must be deterministic; pin the first draw so any change
        // to the algorithm is caught loudly.
        let first = rng.next_u64();
        assert_eq!(first, SmallRng::seed_from_u64(0).next_u64());
        assert_ne!(first, 0);
    }

    #[test]
    fn gen_range_stays_in_bounds() {
        let mut rng = SmallRng::seed_from_u64(7);
        for span in [1u64, 2, 3, 10, 1000, u64::MAX / 2] {
            for _ in 0..200 {
                let v = rng.gen_range(5..5 + span);
                assert!((5..5 + span).contains(&v));
            }
        }
    }

    #[test]
    fn gen_range_covers_small_spans() {
        let mut rng = SmallRng::seed_from_u64(9);
        let mut seen = [false; 4];
        for _ in 0..200 {
            seen[rng.gen_range(0..4) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s), "all residues reachable");
    }

    #[test]
    fn gen_f64_in_unit_interval() {
        let mut rng = SmallRng::seed_from_u64(11);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let u = rng.gen_f64();
            assert!((0.0..1.0).contains(&u));
            sum += u;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean} far from 0.5");
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = SmallRng::seed_from_u64(13);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.3)).count();
        let rate = hits as f64 / 10_000.0;
        assert!((rate - 0.3).abs() < 0.03, "rate {rate} far from 0.3");
    }
}
