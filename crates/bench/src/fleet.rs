//! Fleet: the cluster-level scenario layer.
//!
//! The dCat paper evaluates one socket at a time; an IaaS operator runs
//! *fleets* — hundreds of hosts, each carrying a dozen single-core
//! tenants that arrive, idle through the night, peak at noon, and
//! depart. This module models that layer so cluster-scale policies can
//! be compared under identical load:
//!
//! * **Tenant lifecycle** — [`TenantSpec::generate`] derives every
//!   tenant's service kind, arrival/departure epochs, diurnal phase, and
//!   workload seed from `split_seed(seed, tenant_id)`, so adding a
//!   tenant never reshuffles another's trace. Service models
//!   (Redis/PostgreSQL/Elasticsearch plus the paper's MLR/MLOAD
//!   microbenchmarks) are wrapped in [`workloads::DiurnalStream`] so
//!   request rates follow a day curve.
//! * **Sharded multi-host engine** — tenants pack onto hosts of
//!   [`FleetConfig::tenants_per_host`] single-core slots (kept under
//!   dCat's `num_closids - 1` domain ceiling). Each epoch fans the hosts
//!   over [`host::Pool`] with the same move-out/merge-back discipline as
//!   [`host::MultiSocketEngine`]: hosts are self-contained, results are
//!   merged in host order, so reports, metrics, and decision traces are
//!   byte-identical at any `--jobs` width.
//! * **Policy comparison** — every host runs one [`FleetPolicy`]: dCat
//!   max-fairness, dCat max-performance, LFOC-style clustering
//!   ([`dcat::LfocPolicy`]), or Memshare-style share accounting
//!   ([`dcat::MemsharePolicy`]).
//!
//! Ten-thousand-tenant runs are made tractable by sampled LLC fidelity
//! (`--sample-sets N`); the whole layer stays deterministic under it.

use std::collections::BTreeSet;
use std::fmt::Write as _;

use dcat::{
    CachePolicy, DcatConfig, DcatController, LfocConfig, LfocPolicy, MemshareConfig,
    MemsharePolicy, WorkloadClass, WorkloadHandle,
};
use host::{Engine, EngineConfig, Pool, VmSpec};
use llc_sim::CacheGeometry;
use resctrl::{CacheController, ResctrlError};
use smallrng::{split_seed, SmallRng};
use workloads::{
    AccessStream, DiurnalStream, ElasticsearchModel, Mload, Mlr, PostgresModel, RedisModel,
};

use crate::report;

/// Completed requests per diurnal curve step; small enough that a
/// tenant's load visibly moves over a run.
const CURVE_REQUESTS_PER_STEP: u64 = 64;

/// RNG stream offset separating host-engine seeds from tenant seeds
/// (tenant ids occupy the low streams).
const HOST_SEED_STREAM: u64 = 1 << 32;

/// The service a tenant runs. Mix weights live in
/// [`TenantSpec::generate`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ServiceKind {
    /// Zipfian GET/SET key-value cache.
    Redis,
    /// B-tree point queries over a heap.
    Postgres,
    /// Term-lookup + posting-scan search.
    Elasticsearch,
    /// The paper's MLR random-read microbenchmark (cache-sensitive
    /// batch analytics).
    Analytics,
    /// The paper's MLOAD cyclic scan (streaming; working set larger
    /// than the LLC).
    Streaming,
}

impl ServiceKind {
    /// Short name for traces.
    pub fn label(&self) -> &'static str {
        match self {
            ServiceKind::Redis => "redis",
            ServiceKind::Postgres => "postgres",
            ServiceKind::Elasticsearch => "elasticsearch",
            ServiceKind::Analytics => "analytics",
            ServiceKind::Streaming => "streaming",
        }
    }
}

/// One tenant's whole lifecycle, derived deterministically from the
/// fleet seed and the tenant id.
#[derive(Debug, Clone)]
pub struct TenantSpec {
    /// Fleet-wide tenant index.
    pub id: u32,
    /// Service model the tenant runs.
    pub service: ServiceKind,
    /// Epoch the workload starts (inclusive).
    pub arrival_epoch: u64,
    /// Epoch the workload stops (exclusive); may exceed the run length.
    pub departure_epoch: u64,
    /// Diurnal curve offset (tenants live in different time zones).
    pub phase: usize,
    /// Workload seed.
    pub seed: u64,
}

impl TenantSpec {
    /// Generates the whole fleet's lifecycle traces. Each tenant draws
    /// from its own `split_seed(cfg.seed, id)` stream, so traces are
    /// stable under fleet-size changes.
    pub fn generate(cfg: &FleetConfig) -> Vec<TenantSpec> {
        (0..cfg.tenants)
            .map(|id| {
                let seed = split_seed(cfg.seed, u64::from(id));
                let mut rng = SmallRng::seed_from_u64(seed);
                let service = match rng.gen_range(0..100) {
                    0..=34 => ServiceKind::Redis,
                    35..=59 => ServiceKind::Postgres,
                    60..=74 => ServiceKind::Elasticsearch,
                    75..=87 => ServiceKind::Analytics,
                    _ => ServiceKind::Streaming,
                };
                let phase = rng.gen_range_usize(0..workloads::DAY_CURVE.len());
                let e = cfg.epochs.max(2);
                let (arrival_epoch, lifetime) = if cfg.churn {
                    // Churn mode: arrivals spread over most of the run,
                    // lifetimes short enough that slots turn over.
                    let arrival = rng.gen_range(0..(3 * e).div_ceil(4));
                    let lifetime = rng.gen_range(e.div_ceil(4)..(3 * e).div_ceil(4).max(2));
                    (arrival, lifetime)
                } else {
                    // Steady mode: most tenants present from the start
                    // and stay; a minority arrives mid-run.
                    let arrival = if rng.gen_range(0..100) < 75 {
                        0
                    } else {
                        rng.gen_range(1..e.div_ceil(2).max(2))
                    };
                    let lifetime = rng.gen_range((2 * e).div_ceil(3)..2 * e);
                    (arrival, lifetime)
                };
                TenantSpec {
                    id,
                    service,
                    arrival_epoch,
                    departure_epoch: arrival_epoch + lifetime.max(1),
                    phase,
                    seed,
                }
            })
            .collect()
    }

    /// Builds the tenant's diurnally modulated access stream. Working
    /// sets are sized for the fleet host's 2 MiB / 16-way LLC: the
    /// services fit in a few ways, analytics wants many, and streaming
    /// exceeds the cache entirely (the paper's Donor/Receiver/Streaming
    /// spread).
    pub fn stream(&self) -> Box<dyn AccessStream> {
        let inner: Box<dyn AccessStream> = match self.service {
            ServiceKind::Redis => Box::new(RedisModel::new(6_000, 128, 0.99, self.seed)),
            ServiceKind::Postgres => Box::new(PostgresModel::new(8_000, self.seed)),
            ServiceKind::Elasticsearch => Box::new(ElasticsearchModel::new(1_500, 512, self.seed)),
            ServiceKind::Analytics => Box::new(Mlr::new(3 * 1024 * 1024 / 2, self.seed)),
            ServiceKind::Streaming => Box::new(Mload::new(6 * 1024 * 1024)),
        };
        Box::new(DiurnalStream::day(
            inner,
            CURVE_REQUESTS_PER_STEP,
            self.phase,
        ))
    }

    /// Whether the tenant's workload should be running at `epoch`.
    pub fn active_at(&self, epoch: u64) -> bool {
        self.arrival_epoch <= epoch && epoch < self.departure_epoch
    }
}

/// Which cluster policy governs every host of the fleet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FleetPolicy {
    /// dCat with the max-fairness allocator (the paper's default).
    DcatMaxFairness,
    /// dCat with the max-performance allocator.
    DcatMaxPerformance,
    /// LFOC-style miss-rate clustering onto few shared COS.
    Lfoc,
    /// Memshare-style share accounting with a lending ledger.
    Memshare,
}

impl FleetPolicy {
    /// Every policy the fleet experiments compare, in report order.
    pub const ALL: [FleetPolicy; 4] = [
        FleetPolicy::DcatMaxFairness,
        FleetPolicy::DcatMaxPerformance,
        FleetPolicy::Lfoc,
        FleetPolicy::Memshare,
    ];

    /// Display name used in reports, traces, and metric labels.
    pub fn label(&self) -> &'static str {
        match self {
            FleetPolicy::DcatMaxFairness => "dcat-maxfair",
            FleetPolicy::DcatMaxPerformance => "dcat-maxperf",
            FleetPolicy::Lfoc => "lfoc",
            FleetPolicy::Memshare => "memshare",
        }
    }

    fn build(
        &self,
        handles: Vec<WorkloadHandle>,
        cat: &mut dyn resctrl::CacheController,
    ) -> Result<Box<dyn CachePolicy + Send>, ResctrlError> {
        Ok(match self {
            FleetPolicy::DcatMaxFairness => {
                Box::new(DcatController::new(DcatConfig::default(), handles, cat)?)
            }
            FleetPolicy::DcatMaxPerformance => Box::new(DcatController::new(
                DcatConfig::max_performance(),
                handles,
                cat,
            )?),
            FleetPolicy::Lfoc => Box::new(LfocPolicy::new(handles, cat, LfocConfig::default())?),
            FleetPolicy::Memshare => Box::new(MemsharePolicy::new(
                handles,
                cat,
                MemshareConfig::default(),
            )?),
        })
    }
}

/// Fleet shape and budgets.
#[derive(Debug, Clone)]
pub struct FleetConfig {
    /// Total tenants across the fleet.
    pub tenants: u32,
    /// Single-core tenant slots per host. Must stay at or below 15 so a
    /// dCat controller (one COS per domain plus COS0) fits 16 closids.
    pub tenants_per_host: u32,
    /// Epochs (policy intervals) to run.
    pub epochs: u64,
    /// Cycle budget per core per epoch.
    pub cycles_per_epoch: u64,
    /// Churn mode: short lifetimes and spread arrivals instead of the
    /// steady mostly-resident population.
    pub churn: bool,
    /// Fleet seed; everything derives from it.
    pub seed: u64,
    /// LLC fidelity for every host (sampled sets make 10 k-tenant runs
    /// tractable).
    pub llc_fidelity: llc_sim::SimFidelity,
}

impl FleetConfig {
    /// Standard configuration at the given scale. `fast` shrinks epoch
    /// counts and cycle budgets for tests and CI smokes. The LLC
    /// fidelity follows the process-global `--sample-sets` flag.
    pub fn new(tenants: u32, fast: bool) -> Self {
        FleetConfig {
            tenants,
            tenants_per_host: 12,
            epochs: if fast { 8 } else { 16 },
            cycles_per_epoch: if fast { 120_000 } else { 400_000 },
            churn: false,
            seed: 0xF1EE7,
            llc_fidelity: crate::runner::llc_fidelity(),
        }
    }

    /// Hosts needed to carry the fleet.
    pub fn hosts(&self) -> u32 {
        self.tenants.div_ceil(self.tenants_per_host.max(1))
    }

    /// The per-host engine configuration: a small socket with one core
    /// per tenant slot and a 2 MiB, 16-way LLC (room for the paper's
    /// Donor/Receiver dynamics without the full Xeon's simulation cost).
    fn host_engine(&self, host: u32) -> EngineConfig {
        let mut cfg = EngineConfig::xeon_e5_v4();
        cfg.socket.hierarchy = llc_sim::HierarchyConfig {
            cores: self.tenants_per_host,
            l1: CacheGeometry::new(64, 8, 64),
            l2: CacheGeometry::new(128, 8, 64),
            llc: CacheGeometry::from_capacity(2 * 1024 * 1024, 16),
            llc_policy: Default::default(),
        };
        cfg.cycles_per_epoch = self.cycles_per_epoch;
        cfg.memory_bytes = 256 * 1024 * 1024;
        cfg.seed = split_seed(self.seed, HOST_SEED_STREAM + u64::from(host));
        cfg.llc_fidelity = self.llc_fidelity;
        cfg
    }
}

/// Index into [`FleetEpochRow::classes`] for a workload class.
fn class_idx(class: WorkloadClass) -> usize {
    match class {
        WorkloadClass::Keeper => 0,
        WorkloadClass::Donor => 1,
        WorkloadClass::Receiver => 2,
        WorkloadClass::Streaming => 3,
        WorkloadClass::Unknown => 4,
        WorkloadClass::Reclaim => 5,
    }
}

/// Label order matching [`class_idx`].
pub const CLASS_LABELS: [&str; 6] = [
    "keeper",
    "donor",
    "receiver",
    "streaming",
    "unknown",
    "reclaim",
];

/// Per-slot outcome of one host epoch.
struct SlotEpoch {
    instructions: u64,
    requests: u64,
}

/// Aggregated outcome of one host epoch.
struct HostEpoch {
    instructions: u64,
    llc_ref: u64,
    llc_miss: u64,
    requests: u64,
    active: u32,
    classes: [u64; 6],
    /// Distinct COS programmed on the host after the tick.
    cos_used: u32,
    slots: Vec<SlotEpoch>,
}

/// One host: its engine, its policy instance, and its tenant shard.
struct HostState {
    engine: Engine,
    policy: Box<dyn CachePolicy + Send>,
    label: &'static str,
    tenants: Vec<TenantSpec>,
    /// Per-host `dcat-frames/v1` segment. The writer travels with the
    /// host through the pool (move-out/merge-back), so its state is
    /// untouched by scheduling; the coordinator concatenates the
    /// segments in host order after the run.
    frames: dcat_obs::FrameWriter,
}

impl HostState {
    fn build(
        cfg: &FleetConfig,
        policy: FleetPolicy,
        host: u32,
        shard: Vec<TenantSpec>,
    ) -> Result<Self, ResctrlError> {
        let vms: Vec<VmSpec> = shard
            .iter()
            .enumerate()
            .map(|(slot, t)| VmSpec::new(format!("t{}", t.id), vec![slot as u32], 1))
            .collect();
        let handles: Vec<WorkloadHandle> = vms
            .iter()
            .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
            .collect();
        let mut engine =
            Engine::new(cfg.host_engine(host), vms).expect("fleet shard must fit the host");
        let label = policy.label();
        let policy = policy.build(handles, &mut engine.cat())?;
        Ok(HostState {
            engine,
            policy,
            label,
            tenants: shard,
            frames: dcat_obs::FrameWriter::new(&format!("fleet-host:{host}")),
        })
    }

    /// Runs one epoch: schedule arrivals/departures, simulate, tick the
    /// policy, and aggregate. Everything is local to the host, so hosts
    /// can run on any pool worker without ordering effects.
    fn step(&mut self, epoch: u64) -> Result<HostEpoch, ResctrlError> {
        for (slot, t) in self.tenants.iter().enumerate() {
            if t.arrival_epoch == epoch && t.departure_epoch > epoch {
                self.engine.start_workload(slot, t.stream());
            }
            if t.departure_epoch == epoch && self.engine.has_workload(slot) {
                self.engine.stop_workload(slot);
            }
        }
        let stats = self.engine.run_epoch();
        let snapshots = self.engine.snapshots();
        let reports = self.policy.tick(&snapshots, &mut self.engine.cat())?;
        self.frames.push(dcat::frame_from_reports(
            epoch + 1,
            self.label,
            &reports,
            self.policy.frame_ext(),
        ));

        let mut out = HostEpoch {
            instructions: 0,
            llc_ref: 0,
            llc_miss: 0,
            requests: 0,
            active: 0,
            classes: [0; 6],
            cos_used: 0,
            slots: Vec::with_capacity(self.tenants.len()),
        };
        for (slot, s) in stats.iter().enumerate() {
            out.instructions += s.instructions;
            out.llc_ref += s.llc_ref;
            out.llc_miss += s.llc_miss;
            out.requests += s.requests_completed;
            if self.engine.has_workload(slot) {
                out.active += 1;
            }
            out.slots.push(SlotEpoch {
                instructions: s.instructions,
                requests: s.requests_completed,
            });
            // Latencies are counted into requests_completed; drain them
            // so the per-VM buffers stay bounded over long runs.
            let _ = self.engine.take_request_latencies(slot);
        }
        for r in &reports {
            out.classes[class_idx(r.class)] += 1;
        }
        let cores = self.tenants.len() as u32;
        let cat = self.engine.cat();
        let cos: BTreeSet<u8> = (0..cores)
            .filter_map(|c| cat.core_cos(c).ok().map(|id| id.0))
            .collect();
        out.cos_used = cos.len() as u32;
        Ok(out)
    }
}

/// One fleet-wide epoch of aggregates.
#[derive(Debug, Clone, Copy)]
pub struct FleetEpochRow {
    /// Epoch index.
    pub epoch: u64,
    /// Tenants with a running workload.
    pub active: u32,
    /// Instructions retired fleet-wide.
    pub instructions: u64,
    /// LLC references fleet-wide.
    pub llc_ref: u64,
    /// LLC misses fleet-wide.
    pub llc_miss: u64,
    /// Requests completed fleet-wide.
    pub requests: u64,
    /// Domain-class counts in [`CLASS_LABELS`] order.
    pub classes: [u64; 6],
    /// Sum over hosts of distinct COS in use (mean = `/ hosts`).
    pub cos_used_sum: u64,
    /// Largest per-host COS count.
    pub cos_used_max: u32,
}

impl FleetEpochRow {
    /// Fleet-wide LLC miss rate this epoch.
    pub fn miss_rate(&self) -> f64 {
        if self.llc_ref == 0 {
            0.0
        } else {
            self.llc_miss as f64 / self.llc_ref as f64
        }
    }
}

/// Everything a fleet run produces.
#[derive(Debug, Clone)]
pub struct FleetResult {
    /// Policy label.
    pub policy: &'static str,
    /// Fleet size.
    pub tenants: u32,
    /// Host count.
    pub hosts: u32,
    /// Per-epoch aggregates.
    pub rows: Vec<FleetEpochRow>,
    /// Lifetime instructions per tenant (fleet order).
    pub tenant_instructions: Vec<u64>,
    /// Lifetime completed requests per tenant (fleet order).
    pub tenant_requests: Vec<u64>,
    /// Per-epoch JSONL decision trace (one line per epoch).
    pub trace: String,
    /// `dcat-frames/v1` stream: one `fleet-host:<n>` segment per host,
    /// concatenated in host order, one frame per host-epoch. Byte-identical
    /// at any `--jobs` width (the writers travel with the hosts through the
    /// pool). Excluded from [`FleetResult::serialize`], which predates it.
    pub frames: String,
}

impl FleetResult {
    /// Total instructions retired across the run.
    pub fn total_instructions(&self) -> u64 {
        self.rows.iter().map(|r| r.instructions).sum()
    }

    /// Total requests completed across the run.
    pub fn total_requests(&self) -> u64 {
        self.rows.iter().map(|r| r.requests).sum()
    }

    /// Run-wide LLC miss rate.
    pub fn miss_rate(&self) -> f64 {
        let refs: u64 = self.rows.iter().map(|r| r.llc_ref).sum();
        let miss: u64 = self.rows.iter().map(|r| r.llc_miss).sum();
        if refs == 0 {
            0.0
        } else {
            miss as f64 / refs as f64
        }
    }

    /// Jain's fairness index over per-tenant lifetime instructions,
    /// counting only tenants that ever ran. 1.0 = perfectly even.
    pub fn jain_fairness(&self) -> f64 {
        let xs: Vec<f64> = self
            .tenant_instructions
            .iter()
            .filter(|&&v| v > 0)
            .map(|&v| v as f64)
            .collect();
        if xs.is_empty() {
            return 1.0;
        }
        let sum: f64 = xs.iter().sum();
        let sq: f64 = xs.iter().map(|x| x * x).sum();
        if sq == 0.0 {
            1.0
        } else {
            (sum * sum) / (xs.len() as f64 * sq)
        }
    }

    /// Mean distinct-COS count per host-epoch (the COS-pressure figure
    /// of merit for the clustering policies).
    pub fn mean_cos_used(&self) -> f64 {
        if self.rows.is_empty() || self.hosts == 0 {
            return 0.0;
        }
        let sum: u64 = self.rows.iter().map(|r| r.cos_used_sum).sum();
        sum as f64 / (self.rows.len() as f64 * f64::from(self.hosts))
    }

    /// Canonical text form: the determinism oracle for the `--jobs`
    /// byte-identity tests and the CI smoke diff.
    pub fn serialize(&self) -> String {
        let mut out = String::new();
        let _ = writeln!(
            out,
            "fleet policy={} tenants={} hosts={} epochs={}",
            self.policy,
            self.tenants,
            self.hosts,
            self.rows.len()
        );
        for r in &self.rows {
            let _ = writeln!(
                out,
                "epoch={} active={} ins={} llc_ref={} llc_miss={} req={} \
                 classes={}/{}/{}/{}/{}/{} cos_sum={} cos_max={}",
                r.epoch,
                r.active,
                r.instructions,
                r.llc_ref,
                r.llc_miss,
                r.requests,
                r.classes[0],
                r.classes[1],
                r.classes[2],
                r.classes[3],
                r.classes[4],
                r.classes[5],
                r.cos_used_sum,
                r.cos_used_max,
            );
        }
        for (id, (ins, req)) in self
            .tenant_instructions
            .iter()
            .zip(&self.tenant_requests)
            .enumerate()
        {
            let _ = writeln!(out, "tenant={id} ins={ins} req={req}");
        }
        let _ = writeln!(
            out,
            "total ins={} req={} miss_rate={:.6} jain={:.6} mean_cos={:.3}",
            self.total_instructions(),
            self.total_requests(),
            self.miss_rate(),
            self.jain_fairness(),
            self.mean_cos_used(),
        );
        out
    }
}

/// Runs one fleet under one policy.
///
/// Hosts advance in epoch lockstep: each epoch every host is moved into
/// the worker pool (claimed in index order, merged back in index order —
/// the [`host::MultiSocketEngine`] discipline), stepped independently,
/// and its aggregates folded on the coordinator thread. Workers never
/// touch the metrics registry or the output sink, so results are
/// byte-identical at any `--jobs` width. Metrics and the decision trace
/// are recorded by the coordinator only.
///
/// # Errors
///
/// Returns the [`ResctrlError`] of the first policy build or tick that
/// fails, so callers classify it through `severity()` like every other
/// allocation-path error.
///
/// # Panics
///
/// Panics if a shard cannot fit its host (config error).
pub fn run_fleet(policy: FleetPolicy, cfg: &FleetConfig) -> Result<FleetResult, ResctrlError> {
    let tenants = TenantSpec::generate(cfg);
    let per_host = cfg.tenants_per_host.max(1) as usize;
    let label = policy.label();

    let mut hosts: Vec<HostState> = tenants
        .chunks(per_host)
        .enumerate()
        .map(|(h, shard)| HostState::build(cfg, policy, h as u32, shard.to_vec()))
        .collect::<Result<_, _>>()?;
    let num_hosts = hosts.len() as u32;
    let pool = Pool::new(crate::runner::jobs());

    let mut result = FleetResult {
        policy: label,
        tenants: cfg.tenants,
        hosts: num_hosts,
        rows: Vec::with_capacity(cfg.epochs as usize),
        tenant_instructions: vec![0; cfg.tenants as usize],
        tenant_requests: vec![0; cfg.tenants as usize],
        trace: String::new(),
        frames: String::new(),
    };

    for epoch in 0..cfg.epochs {
        let moved = std::mem::take(&mut hosts);
        let stepped = pool.map(moved, |_, mut h| {
            let he = h.step(epoch);
            (h, he)
        });

        let mut row = FleetEpochRow {
            epoch,
            active: 0,
            instructions: 0,
            llc_ref: 0,
            llc_miss: 0,
            requests: 0,
            classes: [0; 6],
            cos_used_sum: 0,
            cos_used_max: 0,
        };
        hosts = Vec::with_capacity(stepped.len());
        for (h, (host, he)) in stepped.into_iter().enumerate() {
            let he = he?;
            row.active += he.active;
            row.instructions += he.instructions;
            row.llc_ref += he.llc_ref;
            row.llc_miss += he.llc_miss;
            row.requests += he.requests;
            for (acc, c) in row.classes.iter_mut().zip(he.classes) {
                *acc += c;
            }
            row.cos_used_sum += u64::from(he.cos_used);
            row.cos_used_max = row.cos_used_max.max(he.cos_used);
            for (slot, se) in he.slots.iter().enumerate() {
                let id = h * per_host + slot;
                if let Some(t) = result.tenant_instructions.get_mut(id) {
                    *t += se.instructions;
                }
                if let Some(t) = result.tenant_requests.get_mut(id) {
                    *t += se.requests;
                }
            }
            hosts.push(host);
        }

        let _ = writeln!(
            result.trace,
            "{{\"epoch\":{},\"policy\":\"{}\",\"active\":{},\"requests\":{},\
             \"instructions\":{},\"miss_rate\":{:.6},\"classes\":[{},{},{},{},{},{}],\
             \"cos_sum\":{},\"cos_max\":{}}}",
            epoch,
            label,
            row.active,
            row.requests,
            row.instructions,
            row.miss_rate(),
            row.classes[0],
            row.classes[1],
            row.classes[2],
            row.classes[3],
            row.classes[4],
            row.classes[5],
            row.cos_used_sum,
            row.cos_used_max,
        );
        report::record(|reg| {
            reg.counter_add("fleet_epochs_total", &[("policy", label)], 1);
            reg.counter_add("fleet_requests_total", &[("policy", label)], row.requests);
            reg.counter_add(
                "fleet_instructions_total",
                &[("policy", label)],
                row.instructions,
            );
            for (i, name) in CLASS_LABELS.iter().enumerate() {
                if row.classes[i] > 0 {
                    reg.counter_add(
                        "fleet_class_ticks_total",
                        &[("policy", label), ("class", name)],
                        row.classes[i],
                    );
                }
            }
        });
        result.rows.push(row);
    }
    report::record(|reg| {
        reg.counter_add("fleet_runs_total", &[("policy", label)], 1);
        reg.gauge_set(
            "fleet_mean_cos_used",
            &[("policy", label)],
            result.mean_cos_used(),
        );
    });
    for host in hosts {
        result.frames.push_str(&host.frames.into_string());
    }
    Ok(result)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny(tenants: u32) -> FleetConfig {
        let mut cfg = FleetConfig::new(tenants, true);
        cfg.epochs = 4;
        cfg.cycles_per_epoch = 40_000;
        cfg.llc_fidelity = llc_sim::SimFidelity::Sampled { one_in: 8 };
        cfg
    }

    #[test]
    fn lifecycle_traces_are_stable_under_fleet_growth() {
        let small = TenantSpec::generate(&tiny(8));
        let large = TenantSpec::generate(&tiny(64));
        for (a, b) in small.iter().zip(&large) {
            assert_eq!(a.service, b.service);
            assert_eq!(a.arrival_epoch, b.arrival_epoch);
            assert_eq!(a.departure_epoch, b.departure_epoch);
            assert_eq!(a.seed, b.seed);
        }
    }

    #[test]
    fn lifecycles_are_plausible() {
        let cfg = tiny(100);
        let specs = TenantSpec::generate(&cfg);
        assert!(specs.iter().all(|t| t.departure_epoch > t.arrival_epoch));
        let at_start = specs.iter().filter(|t| t.active_at(0)).count();
        assert!(at_start > 50, "steady fleets start mostly populated");
        let kinds: BTreeSet<&str> = specs.iter().map(|t| t.service.label()).collect();
        assert!(kinds.len() >= 4, "the service mix should be diverse");
    }

    #[test]
    fn every_policy_runs_a_small_fleet() {
        for policy in FleetPolicy::ALL {
            let r = run_fleet(policy, &tiny(24)).expect("tiny fleet runs");
            assert_eq!(r.hosts, 2);
            assert_eq!(r.rows.len(), 4);
            assert!(r.total_instructions() > 0, "{}: fleet ran", policy.label());
            assert!(r.trace.lines().count() == 4);
            let jain = r.jain_fairness();
            assert!((0.0..=1.0).contains(&jain), "jain in range, got {jain}");
        }
    }

    #[test]
    fn fleet_runs_are_deterministic() {
        let a = run_fleet(FleetPolicy::Lfoc, &tiny(24)).expect("tiny fleet runs");
        let b = run_fleet(FleetPolicy::Lfoc, &tiny(24)).expect("tiny fleet runs");
        assert_eq!(a.serialize(), b.serialize());
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.frames, b.frames);
    }

    #[test]
    fn fleet_frame_stream_has_one_segment_per_host() {
        let r = run_fleet(FleetPolicy::Memshare, &tiny(24)).expect("tiny fleet runs");
        let segs = dcat_obs::frames::parse_stream(&r.frames).expect("fleet frames validate");
        assert_eq!(segs.len(), r.hosts as usize);
        for (h, seg) in segs.iter().enumerate() {
            assert_eq!(seg.source, format!("fleet-host:{h}"));
            assert_eq!(seg.frames.len(), r.rows.len());
            assert!(
                seg.frames.iter().all(|f| f.ext.memshare.is_some()),
                "memshare host frames carry the ledger ext"
            );
        }
    }

    #[test]
    fn clustering_policies_bound_cos_pressure() {
        let r = run_fleet(FleetPolicy::Lfoc, &tiny(24)).expect("tiny fleet runs");
        for row in &r.rows {
            assert!(
                row.cos_used_max <= LfocConfig::default().max_clusters + 1,
                "epoch {}: lfoc used {} cos",
                row.epoch,
                row.cos_used_max
            );
        }
    }
}
