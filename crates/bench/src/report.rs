//! Plain-text reporting helpers shared by the experiment binaries.
//!
//! All output funnels through [`say`], which writes either to stdout or —
//! inside a [`capture`] scope — to a thread-local buffer. Parallel sweeps
//! rely on this: each pool worker captures its task's output, and the
//! coordinator replays the buffers in task order, so the report bytes are
//! identical whatever `--jobs` width produced them.
//!
//! Metrics follow the same discipline: [`record`] writes into the
//! innermost [`capture_obs`] scope's registry (or a process-global root
//! outside any scope), the captured [`dcat_obs::Snapshot`] travels back
//! with the text, and [`emit_obs`] replays it into the enclosing scope.
//! Because snapshot merge is order-insensitive and the coordinator
//! replays in item order, the exported metrics are byte-identical for
//! any `--jobs` width too.

use std::cell::RefCell;
use std::sync::Mutex;

use dcat_obs::{Registry, Snapshot};

thread_local! {
    /// Stack of capture buffers; empty means "print to stdout".
    static SINK: RefCell<Vec<String>> = const { RefCell::new(Vec::new()) };
    /// Stack of capture registries, parallel to `SINK` for [`capture_obs`]
    /// scopes; empty means "record into the process root".
    static OBS: RefCell<Vec<Registry>> = const { RefCell::new(Vec::new()) };
}

/// Process-global fallback registry for metrics recorded outside any
/// [`capture_obs`] scope — what `--metrics-out` exports at exit.
static ROOT: Mutex<Option<Registry>> = Mutex::new(None);

/// Records metrics into the innermost [`capture_obs`] scope, or into the
/// process root when no scope is active on this thread.
pub fn record(f: impl FnOnce(&mut Registry)) {
    let mut f = Some(f);
    let handled = OBS.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(reg) => {
                if let Some(f) = f.take() {
                    f(reg);
                }
                true
            }
            None => false,
        }
    });
    if !handled {
        if let Some(f) = f.take() {
            let mut root = ROOT.lock().unwrap_or_else(|p| p.into_inner());
            f(root.get_or_insert_with(Registry::new));
        }
    }
}

/// Replays a captured snapshot into the current scope (or the root),
/// mirroring what [`emit_raw`] does for text. Nested captures compose:
/// the replay merges into the enclosing scope's registry.
pub fn emit_obs(snap: &Snapshot) {
    let handled = OBS.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(reg) => {
                reg.merge_snapshot(snap);
                true
            }
            None => false,
        }
    });
    if !handled {
        let mut root = ROOT.lock().unwrap_or_else(|p| p.into_inner());
        root.get_or_insert_with(Registry::new).merge_snapshot(snap);
    }
}

/// [`capture`] plus metrics: runs `f` with both report output and
/// [`record`]ed metrics redirected; returns the value, the text, and the
/// metrics snapshot.
pub fn capture_obs<T>(f: impl FnOnce() -> T) -> (T, String, Snapshot) {
    OBS.with(|s| s.borrow_mut().push(Registry::new()));
    let (value, text) = capture(f);
    let snap = OBS.with(|s| {
        s.borrow_mut()
            .pop()
            .map(|mut reg| reg.take())
            .unwrap_or_default()
    });
    (value, text, snap)
}

/// Drains the process-root metrics accumulated outside capture scopes.
pub fn take_root_metrics() -> Snapshot {
    let mut root = ROOT.lock().unwrap_or_else(|p| p.into_inner());
    root.take().map(|mut reg| reg.take()).unwrap_or_default()
}

/// Emits one output line (newline appended).
pub fn say(line: impl AsRef<str>) {
    let line = line.as_ref();
    let captured = SINK.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(buf) => {
                buf.push_str(line);
                buf.push('\n');
                true
            }
            None => false,
        }
    });
    if !captured {
        println!("{line}");
    }
}

/// Emits already-formatted (newline-terminated) text verbatim.
///
/// Used to replay a [`capture`]d buffer; nested captures compose because
/// the replay itself goes through the sink stack.
pub fn emit_raw(text: &str) {
    let captured = SINK.with(|s| {
        let mut stack = s.borrow_mut();
        match stack.last_mut() {
            Some(buf) => {
                buf.push_str(text);
                true
            }
            None => false,
        }
    });
    if !captured {
        print!("{text}");
    }
}

/// Runs `f` with report output redirected into a buffer; returns `f`'s
/// value and everything it said.
pub fn capture<T>(f: impl FnOnce() -> T) -> (T, String) {
    SINK.with(|s| s.borrow_mut().push(String::new()));
    let value = f();
    let out = SINK.with(|s| s.borrow_mut().pop().unwrap_or_default());
    (value, out)
}

/// Prints a titled section header.
pub fn section(title: &str) {
    say("");
    say(format!("== {title} =="));
}

/// Prints a table: a header row and aligned data rows.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    say(fmt_row(&head));
    say(widths
        .iter()
        .map(|w| "-".repeat(*w))
        .collect::<Vec<_>>()
        .join("  "));
    for row in rows {
        say(fmt_row(row));
    }
}

/// Geometric mean; 0 for an empty slice.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The `p`-th percentile (0..=100) of `values` by nearest-rank.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside 0..=100.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Formats a ratio as a signed percentage ("+25.0%" / "-3.2%").
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Compact decision trace for golden snapshot tests: one line per epoch
/// in which any domain's `(class, ways)` changed, listing every domain's
/// state at that epoch. The format is exact-compare friendly — no floats,
/// no timing, nothing machine-dependent.
pub fn decision_trace(reports: &[Vec<dcat::DomainReport>]) -> String {
    let mut out = String::new();
    let mut prev: Option<Vec<(String, u32)>> = None;
    for (epoch, rep) in reports.iter().enumerate() {
        let state: Vec<(String, u32)> = rep.iter().map(|d| (d.class.to_string(), d.ways)).collect();
        if prev.as_ref() != Some(&state) {
            let cells: Vec<String> = rep
                .iter()
                .map(|d| format!("{}={}/{}", d.name, d.class, d.ways))
                .collect();
            out.push_str(&format!("e{epoch:03} {}\n", cells.join(" ")));
            prev = Some(state);
        }
    }
    out
}

/// Renders a small ASCII time-series chart (one char per sample, scaled
/// into `height` rows). Used by the timeline figures.
pub fn ascii_series(label: &str, values: &[f64], height: usize) {
    if values.is_empty() {
        say(format!("{label}: (no data)"));
        return;
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let min = values.iter().cloned().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-12);
    say(format!("{label} (min={min:.2}, max={max:.2})"));
    for row in (0..height).rev() {
        let lo = min + span * row as f64 / height as f64;
        let line: String = values
            .iter()
            .map(|&v| if v >= lo { '#' } else { ' ' })
            .collect();
        say(format!("  |{line}"));
    }
    say(format!("  +{}", "-".repeat(values.len())));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geo_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        let single = vec![7.0];
        assert_eq!(percentile(&single, 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn mean_and_pct() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(pct(0.25), "+25.0%");
        assert_eq!(pct(-0.032), "-3.2%");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a", "b"], &[vec!["1".to_string()]]);
    }

    #[test]
    fn capture_collects_say_output() {
        let (value, out) = capture(|| {
            say("first");
            section("title");
            42
        });
        assert_eq!(value, 42);
        assert_eq!(out, "first\n\n== title ==\n");
    }

    #[test]
    fn captures_nest_and_replay_in_order() {
        let (_, outer) = capture(|| {
            say("before");
            let (_, inner) = capture(|| say("inner"));
            emit_raw(&inner);
            say("after");
        });
        assert_eq!(outer, "before\ninner\nafter\n");
    }

    #[test]
    fn capture_obs_collects_text_and_metrics() {
        let (value, text, snap) = capture_obs(|| {
            say("hello");
            record(|r| r.counter_add("runs_total", &[], 1));
            7
        });
        assert_eq!(value, 7);
        assert_eq!(text, "hello\n");
        assert_eq!(
            snap.get("runs_total", &[]),
            Some(&dcat_obs::MetricValue::Counter(1))
        );
    }

    #[test]
    fn nested_capture_obs_scopes_merge_via_emit_obs() {
        // The worker pattern: an inner scope captures a task's text and
        // metrics; the coordinator replays both into its own scope.
        let (_, outer_text, outer_snap) = capture_obs(|| {
            record(|r| r.counter_add("runs_total", &[], 1));
            say("before");
            let (_, inner_text, inner_snap) = capture_obs(|| {
                say("inner");
                record(|r| r.counter_add("runs_total", &[], 1));
                record(|r| r.gauge_set("last_ways", &[], 6.0));
            });
            emit_raw(&inner_text);
            emit_obs(&inner_snap);
            say("after");
        });
        assert_eq!(outer_text, "before\ninner\nafter\n");
        assert_eq!(
            outer_snap.get("runs_total", &[]),
            Some(&dcat_obs::MetricValue::Counter(2)),
            "inner counter merged into the outer scope"
        );
        assert_eq!(
            outer_snap.get("last_ways", &[]),
            Some(&dcat_obs::MetricValue::Gauge(6.0))
        );
    }

    #[test]
    fn metrics_outside_any_scope_land_in_the_root() {
        // Use a metric name unique to this test: the root is process
        // global and other tests run in the same process.
        record(|r| r.counter_add("report_root_test_total", &[], 3));
        let snap = take_root_metrics();
        assert_eq!(
            snap.get("report_root_test_total", &[]),
            Some(&dcat_obs::MetricValue::Counter(3))
        );
    }

    #[test]
    fn decision_trace_emits_only_transitions() {
        use dcat::{DomainReport, WorkloadClass};
        let report = |class: WorkloadClass, ways: u32| DomainReport {
            name: "vm".to_string(),
            class,
            ways,
            cbm: None,
            ipc: 1.0,
            norm_ipc: None,
            llc_miss_rate: 0.0,
            phase_changed: false,
            baseline_ipc: None,
            skipped: false,
        };
        let reports = vec![
            vec![report(WorkloadClass::Unknown, 4)],
            vec![report(WorkloadClass::Unknown, 4)],
            vec![report(WorkloadClass::Receiver, 6)],
            vec![report(WorkloadClass::Receiver, 6)],
        ];
        assert_eq!(
            decision_trace(&reports),
            "e000 vm=Unknown/4\ne002 vm=Receiver/6\n"
        );
    }
}
