//! Plain-text reporting helpers shared by the experiment binaries.

/// Prints a titled section header.
pub fn section(title: &str) {
    println!();
    println!("== {title} ==");
}

/// Prints a table: a header row and aligned data rows.
///
/// # Panics
///
/// Panics if a row's width differs from the header's.
pub fn table(header: &[&str], rows: &[Vec<String>]) {
    for row in rows {
        assert_eq!(row.len(), header.len(), "ragged table row");
    }
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let fmt_row = |cells: &[String]| {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{c:>width$}", width = widths[i]))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let head: Vec<String> = header.iter().map(|s| s.to_string()).collect();
    println!("{}", fmt_row(&head));
    println!(
        "{}",
        widths
            .iter()
            .map(|w| "-".repeat(*w))
            .collect::<Vec<_>>()
            .join("  ")
    );
    for row in rows {
        println!("{}", fmt_row(row));
    }
}

/// Geometric mean; 0 for an empty slice.
pub fn geo_mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    let log_sum: f64 = values.iter().map(|v| v.max(1e-12).ln()).sum();
    (log_sum / values.len() as f64).exp()
}

/// The `p`-th percentile (0..=100) of `values` by nearest-rank.
///
/// # Panics
///
/// Panics on an empty slice or `p` outside 0..=100.
pub fn percentile(values: &[f64], p: f64) -> f64 {
    assert!(!values.is_empty(), "percentile of empty slice");
    assert!((0.0..=100.0).contains(&p), "percentile out of range");
    let mut sorted = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("no NaN latencies"));
    let rank = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[rank]
}

/// Arithmetic mean; 0 for an empty slice.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

/// Formats a ratio as a signed percentage ("+25.0%" / "-3.2%").
pub fn pct(ratio: f64) -> String {
    format!("{:+.1}%", ratio * 100.0)
}

/// Renders a small ASCII time-series chart (one char per sample, scaled
/// into `height` rows). Used by the timeline figures.
pub fn ascii_series(label: &str, values: &[f64], height: usize) {
    if values.is_empty() {
        println!("{label}: (no data)");
        return;
    }
    let max = values.iter().cloned().fold(f64::MIN, f64::max).max(1e-12);
    let min = values.iter().cloned().fold(f64::MAX, f64::min).min(0.0);
    let span = (max - min).max(1e-12);
    println!("{label} (min={min:.2}, max={max:.2})");
    for row in (0..height).rev() {
        let lo = min + span * row as f64 / height as f64;
        let line: String = values
            .iter()
            .map(|&v| if v >= lo { '#' } else { ' ' })
            .collect();
        println!("  |{line}");
    }
    println!("  +{}", "-".repeat(values.len()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn geo_mean_basics() {
        assert_eq!(geo_mean(&[]), 0.0);
        assert!((geo_mean(&[2.0, 8.0]) - 4.0).abs() < 1e-9);
        assert!((geo_mean(&[1.0, 1.0, 1.0]) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn percentile_nearest_rank() {
        let v = vec![1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        let single = vec![7.0];
        assert_eq!(percentile(&single, 99.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_rejects_empty() {
        let _ = percentile(&[], 50.0);
    }

    #[test]
    fn mean_and_pct() {
        assert_eq!(mean(&[]), 0.0);
        assert!((mean(&[1.0, 3.0]) - 2.0).abs() < 1e-9);
        assert_eq!(pct(0.25), "+25.0%");
        assert_eq!(pct(-0.032), "-3.2%");
    }

    #[test]
    #[should_panic(expected = "ragged")]
    fn ragged_rows_rejected() {
        table(&["a", "b"], &[vec!["1".to_string()]]);
    }
}
