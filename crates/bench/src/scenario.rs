//! Declarative multi-VM scenarios run under any cache policy.

use dcat::{
    CachePolicy, DcatConfig, DcatController, DomainReport, LfocConfig, LfocPolicy, MemshareConfig,
    MemsharePolicy, SharedCachePolicy, StaticCatPolicy, WorkloadHandle,
};
use dcat_obs::{FlightRecorder, TickRecord, Tracer, DEFAULT_STEP_BUCKETS};
use host::{Engine, EngineConfig, VmEpochStats, VmSpec};
use workloads::AccessStream;

use crate::report;

/// Epochs of spans each scenario's flight recorder retains.
const FLIGHT_TICKS: usize = 32;

/// One activity window of a VM's workload, in epochs.
#[derive(Debug, Clone, Copy)]
pub struct ScheduleItem {
    /// Epoch at which the workload starts (inclusive).
    pub start: u64,
    /// Epoch at which it stops (exclusive); `None` = runs to the end.
    pub stop: Option<u64>,
}

impl ScheduleItem {
    /// A workload running for the whole experiment.
    pub fn always() -> Self {
        ScheduleItem {
            start: 0,
            stop: None,
        }
    }

    /// A workload running in `[start, stop)`.
    pub fn window(start: u64, stop: u64) -> Self {
        ScheduleItem {
            start,
            stop: Some(stop),
        }
    }
}

/// A VM and its workload plan.
pub struct VmPlan {
    /// VM name.
    pub name: String,
    /// Contracted LLC ways.
    pub reserved_ways: u32,
    /// Builds a fresh stream each time the workload (re)starts. The
    /// argument is the restart ordinal (0 for the first window), so
    /// restarts can reuse or vary seeds.
    pub factory: Box<dyn Fn(u64) -> Box<dyn AccessStream>>,
    /// Activity windows, in ascending order.
    pub schedule: Vec<ScheduleItem>,
}

impl VmPlan {
    /// A VM whose workload runs for the whole experiment.
    pub fn always(
        name: impl Into<String>,
        reserved_ways: u32,
        factory: impl Fn(u64) -> Box<dyn AccessStream> + 'static,
    ) -> Self {
        VmPlan {
            name: name.into(),
            reserved_ways,
            factory: Box::new(factory),
            schedule: vec![ScheduleItem::always()],
        }
    }

    /// A VM with an explicit activity schedule.
    pub fn scheduled(
        name: impl Into<String>,
        reserved_ways: u32,
        schedule: Vec<ScheduleItem>,
        factory: impl Fn(u64) -> Box<dyn AccessStream> + 'static,
    ) -> Self {
        VmPlan {
            name: name.into(),
            reserved_ways,
            factory: Box::new(factory),
            schedule,
        }
    }

    /// A VM that stays idle the whole time.
    pub fn idle(name: impl Into<String>, reserved_ways: u32) -> Self {
        VmPlan {
            name: name.into(),
            reserved_ways,
            factory: Box::new(|_| unreachable!("idle VM never starts a workload")),
            schedule: Vec::new(),
        }
    }
}

/// Which cache-management policy governs the socket.
#[derive(Debug, Clone)]
pub enum PolicyKind {
    /// Unmanaged shared cache.
    Shared,
    /// Static CAT partitions at the reserved sizes.
    StaticCat,
    /// The dCat controller.
    Dcat(DcatConfig),
    /// LFOC-style miss-rate clustering onto shared COS.
    Lfoc(LfocConfig),
    /// Memshare-style share accounting with a lending ledger.
    Memshare(MemshareConfig),
}

impl PolicyKind {
    /// Display name matching the paper's figure legends.
    pub fn label(&self) -> &'static str {
        match self {
            PolicyKind::Shared => "shared",
            PolicyKind::StaticCat => "static-cat",
            PolicyKind::Dcat(_) => "dcat",
            PolicyKind::Lfoc(_) => "lfoc",
            PolicyKind::Memshare(_) => "memshare",
        }
    }
}

/// Everything recorded from one scenario run.
pub struct RunResult {
    /// `epochs[e][vm]` — engine statistics per epoch per VM.
    pub epochs: Vec<Vec<VmEpochStats>>,
    /// `reports[e][vm]` — policy decisions per epoch per VM.
    pub reports: Vec<Vec<DomainReport>>,
    /// Request latencies (cycles) accumulated per VM over the whole run.
    pub request_latencies: Vec<Vec<f64>>,
    /// Flight-recorder dump (JSONL) covering the last [`FLIGHT_TICKS`]
    /// epochs' pipeline spans. Logical-clock only, so byte-identical
    /// across runs; deliberately excluded from [`RunResult::serialize`],
    /// which predates it and anchors the golden determinism oracle.
    pub flight: String,
    /// `dcat-frames/v1` segment for the run: one `frame` record per epoch
    /// under a `scenario:<policy>` header. Built entirely from per-epoch
    /// reports, so it is byte-identical whenever the run is — the frame
    /// stream's own determinism regression diffs it across `--jobs`
    /// widths. Excluded from [`RunResult::serialize`] like `flight`.
    pub frames: String,
}

impl RunResult {
    /// Mean IPC of `vm` over the last `n` epochs (steady state).
    pub fn steady_ipc(&self, vm: usize, n: usize) -> f64 {
        let take = n.min(self.epochs.len());
        let sum: f64 = self.epochs[self.epochs.len() - take..]
            .iter()
            .map(|e| e[vm].ipc)
            .sum();
        sum / take as f64
    }

    /// Mean data-access latency (cycles) of `vm` over the last `n` epochs.
    pub fn steady_latency(&self, vm: usize, n: usize) -> f64 {
        let take = n.min(self.epochs.len());
        let sum: f64 = self.epochs[self.epochs.len() - take..]
            .iter()
            .map(|e| e[vm].avg_access_latency)
            .sum();
        sum / take as f64
    }

    /// Total instructions retired by `vm` across the run (the analogue of
    /// SPEC's inverse running time: same work / more instructions per
    /// fixed wall-clock simulation = faster).
    pub fn total_instructions(&self, vm: usize) -> u64 {
        self.epochs.iter().map(|e| e[vm].instructions).sum()
    }

    /// Requests completed by `vm` across the run.
    pub fn total_requests(&self, vm: usize) -> u64 {
        self.epochs.iter().map(|e| e[vm].requests_completed).sum()
    }

    /// Way allocation of `vm` per epoch.
    pub fn ways_series(&self, vm: usize) -> Vec<u32> {
        self.epochs.iter().map(|e| e[vm].ways).collect()
    }

    /// Peak ways ever granted to `vm`.
    pub fn peak_ways(&self, vm: usize) -> u32 {
        self.ways_series(vm).into_iter().max().unwrap_or(0)
    }

    /// Full-precision textual serialization of everything the run
    /// recorded: every per-epoch engine stat, every policy decision, and
    /// every request-latency sample. Floats are rendered with `{:?}`
    /// (shortest round-trip form), so two runs serialize byte-equal iff
    /// they are bit-identical — this is the determinism regression
    /// oracle.
    pub fn serialize(&self) -> String {
        use std::fmt::Write;
        let mut out = String::new();
        for (e, stats) in self.epochs.iter().enumerate() {
            for s in stats {
                let _ = writeln!(
                    out,
                    "e{e} vm={} ins={} cyc={} ipc={:?} l1={} llc={} miss={} rate={:?} lat={:?} ways={} req={} occ={}",
                    s.name,
                    s.instructions,
                    s.cycles,
                    s.ipc,
                    s.l1_ref,
                    s.llc_ref,
                    s.llc_miss,
                    s.llc_miss_rate,
                    s.avg_access_latency,
                    s.ways,
                    s.requests_completed,
                    s.llc_occupancy_lines,
                );
            }
        }
        for (e, reports) in self.reports.iter().enumerate() {
            for d in reports {
                let _ = writeln!(
                    out,
                    "e{e} dom={} class={} ways={} ipc={:?} norm={:?} miss={:?} phase={} base={:?}",
                    d.name,
                    d.class,
                    d.ways,
                    d.ipc,
                    d.norm_ipc,
                    d.llc_miss_rate,
                    d.phase_changed,
                    d.baseline_ipc,
                );
            }
        }
        for (vm, lats) in self.request_latencies.iter().enumerate() {
            let _ = writeln!(out, "lat vm={vm} n={} samples={:?}", lats.len(), lats);
        }
        out
    }
}

/// Runs `plans` under `policy` for `total_epochs` epochs.
///
/// VM `i` owns cores `{2i, 2i+1}` (two pinned vCPUs, as in the paper's
/// testbed).
///
/// Scenario-level error boundary. A policy build or tick failing inside
/// a scenario is a scenario bug, not a runtime condition: classify the
/// error, record a structured metric event, and abort the run with the
/// severity in the message.
fn fatal_boundary<T>(stage: &'static str, r: Result<T, resctrl::ResctrlError>) -> T {
    match r {
        Ok(v) => v,
        Err(e) => {
            report::record(|reg| {
                reg.counter_add("scenario_fatal_errors_total", &[("stage", stage)], 1);
            });
            panic!("scenario {stage} failed: {e} (severity {:?})", e.severity());
        }
    }
}

/// # Panics
///
/// Panics if the socket cannot host the VMs or the policy rejects the
/// configuration — scenario bugs, not runtime conditions (routed
/// through [`fatal_boundary`], which classifies the error first).
pub fn run_scenario(
    policy: PolicyKind,
    engine_cfg: EngineConfig,
    plans: &[VmPlan],
    total_epochs: u64,
) -> RunResult {
    let vms: Vec<VmSpec> = plans
        .iter()
        .enumerate()
        .map(|(i, p)| {
            VmSpec::new(
                p.name.clone(),
                vec![(2 * i) as u32, (2 * i + 1) as u32],
                p.reserved_ways,
            )
        })
        .collect();
    let handles: Vec<WorkloadHandle> = vms
        .iter()
        .map(|v| WorkloadHandle::new(v.name.clone(), v.cores.clone(), v.reserved_ways))
        .collect();

    let policy_label = policy.label();
    let mut engine = Engine::new(engine_cfg, vms).expect("scenario must fit the socket");
    let mut policy: Box<dyn CachePolicy> = match policy {
        PolicyKind::Shared => Box::new(SharedCachePolicy::new(handles, &mut engine.cat())),
        PolicyKind::StaticCat => Box::new(fatal_boundary(
            "static-cat build",
            StaticCatPolicy::new(handles, &mut engine.cat()),
        )),
        PolicyKind::Dcat(cfg) => Box::new(fatal_boundary(
            "dcat build",
            DcatController::new(cfg, handles, &mut engine.cat()),
        )),
        PolicyKind::Lfoc(cfg) => Box::new(fatal_boundary(
            "lfoc build",
            LfocPolicy::new(handles, &mut engine.cat(), cfg),
        )),
        PolicyKind::Memshare(cfg) => Box::new(fatal_boundary(
            "memshare build",
            MemsharePolicy::new(handles, &mut engine.cat(), cfg),
        )),
    };

    let mut result = RunResult {
        epochs: Vec::with_capacity(total_epochs as usize),
        reports: Vec::with_capacity(total_epochs as usize),
        request_latencies: vec![Vec::new(); plans.len()],
        flight: String::new(),
        frames: String::new(),
    };
    let mut restart_count = vec![0u64; plans.len()];
    let mut tracer = Tracer::new();
    let mut recorder = FlightRecorder::new(FLIGHT_TICKS);
    let mut frames = dcat_obs::FrameWriter::new(&format!("scenario:{policy_label}"));

    for epoch in 0..total_epochs {
        // Schedule transitions at epoch boundaries.
        for (i, plan) in plans.iter().enumerate() {
            for item in &plan.schedule {
                if item.start == epoch {
                    engine.start_workload(i, (plan.factory)(restart_count[i]));
                    restart_count[i] += 1;
                }
                if item.stop == Some(epoch) {
                    engine.stop_workload(i);
                }
            }
        }

        tracer.set_tick(epoch + 1);
        let stats = tracer.scope("epoch", |_| engine.run_epoch());
        for (i, _) in plans.iter().enumerate() {
            result.request_latencies[i].extend(engine.take_request_latencies(i));
        }
        let snapshots = engine.snapshots();
        let reports = fatal_boundary(
            "policy tick",
            policy.tick_traced(&snapshots, &mut engine.cat(), &mut tracer),
        );
        let spans = tracer.drain();
        report::record(|reg| {
            reg.counter_add("scenario_epochs_total", &[("policy", policy_label)], 1);
            for s in &spans {
                reg.histogram_observe(
                    "scenario_span_steps",
                    &[("span", s.name)],
                    DEFAULT_STEP_BUCKETS,
                    s.steps(),
                );
            }
        });
        recorder.record(TickRecord {
            tick: epoch + 1,
            degraded: false,
            spans,
            events: Vec::new(),
        });
        frames.push(dcat::frame_from_reports(
            epoch + 1,
            policy_label,
            &reports,
            policy.frame_ext(),
        ));
        result.epochs.push(stats);
        result.reports.push(reports);
    }
    report::record(|reg| {
        reg.counter_add("scenario_runs_total", &[("policy", policy_label)], 1);
    });
    // The engine's own registry (epochs, per-VM instruction/miss totals,
    // way gauges) merges into whatever capture scope this run is in.
    report::emit_obs(&engine.metrics_snapshot());
    result.flight = recorder.dump_jsonl();
    result.frames = frames.into_string();
    result
}

#[cfg(test)]
mod tests {
    use super::*;
    use llc_sim::CacheGeometry;
    use workloads::{Lookbusy, Mlr};

    fn tiny_engine() -> EngineConfig {
        let mut cfg = EngineConfig::xeon_e5_v4();
        cfg.socket.hierarchy = llc_sim::HierarchyConfig {
            cores: 8,
            l1: CacheGeometry::new(64, 8, 64),
            l2: CacheGeometry::new(128, 8, 64),
            llc: CacheGeometry::from_capacity(2 * 1024 * 1024, 8),
            llc_policy: Default::default(),
        };
        cfg.cycles_per_epoch = 300_000;
        cfg.memory_bytes = 128 * 1024 * 1024;
        cfg
    }

    #[test]
    fn scenario_runs_under_all_policies() {
        for policy in [
            PolicyKind::Shared,
            PolicyKind::StaticCat,
            PolicyKind::Dcat(DcatConfig::default()),
        ] {
            let plans = vec![
                VmPlan::always("mlr", 2, |s| Box::new(Mlr::new(256 * 1024, s + 1))),
                VmPlan::always("lookbusy", 2, |_| Box::new(Lookbusy::new())),
            ];
            let r = run_scenario(policy, tiny_engine(), &plans, 5);
            assert_eq!(r.epochs.len(), 5);
            assert_eq!(r.reports.len(), 5);
            assert!(r.total_instructions(0) > 0);
            assert!(r.total_instructions(1) > 0);
        }
    }

    #[test]
    fn schedule_windows_start_and_stop_workloads() {
        let plans = vec![VmPlan::scheduled(
            "w",
            2,
            vec![ScheduleItem::window(2, 4)],
            |_| Box::new(Lookbusy::new()),
        )];
        let r = run_scenario(PolicyKind::Shared, tiny_engine(), &plans, 6);
        assert_eq!(r.epochs[0][0].instructions, 0, "idle before start");
        assert!(r.epochs[2][0].instructions > 0, "active in window");
        assert_eq!(r.epochs[5][0].instructions, 0, "idle after stop");
    }

    #[test]
    fn idle_plan_never_executes() {
        let plans = vec![VmPlan::idle("idle", 2)];
        let r = run_scenario(PolicyKind::Shared, tiny_engine(), &plans, 3);
        assert_eq!(r.total_instructions(0), 0);
    }

    #[test]
    fn scenario_records_spans_and_metrics_into_the_capture_scope() {
        let plans = || {
            vec![
                VmPlan::always("mlr", 2, |s| Box::new(Mlr::new(256 * 1024, s + 1))),
                VmPlan::always("lookbusy", 2, |_| Box::new(Lookbusy::new())),
            ]
        };
        let (r, _text, snap) = crate::report::capture_obs(|| {
            run_scenario(
                PolicyKind::Dcat(DcatConfig::default()),
                tiny_engine(),
                &plans(),
                5,
            )
        });
        assert_eq!(
            snap.get("scenario_epochs_total", &[("policy", "dcat")]),
            Some(&dcat_obs::MetricValue::Counter(5))
        );
        assert_eq!(
            snap.get("engine_epochs_total", &[]),
            Some(&dcat_obs::MetricValue::Counter(5)),
            "engine registry merged into the scope"
        );
        let lines = dcat_obs::check_jsonl(&r.flight).unwrap();
        assert_eq!(lines, 6, "header + 5 epochs");
        // dCat's pipeline stages show up alongside the engine epoch span.
        assert!(r.flight.contains("\"span\":\"epoch\""));
        assert!(r.flight.contains("\"span\":\"allocate\""));

        // Identical runs produce identical flight dumps and snapshots.
        let (r2, _t2, snap2) = crate::report::capture_obs(|| {
            run_scenario(
                PolicyKind::Dcat(DcatConfig::default()),
                tiny_engine(),
                &plans(),
                5,
            )
        });
        assert_eq!(r.flight, r2.flight);
        assert_eq!(snap.to_prometheus(), snap2.to_prometheus());
        assert_eq!(r.frames, r2.frames);
    }

    #[test]
    fn frame_stream_validates_under_every_policy() {
        for policy in [
            PolicyKind::Shared,
            PolicyKind::StaticCat,
            PolicyKind::Dcat(DcatConfig::default()),
            PolicyKind::Lfoc(dcat::LfocConfig::default()),
            PolicyKind::Memshare(dcat::MemshareConfig::default()),
        ] {
            let label = policy.label();
            let plans = vec![
                VmPlan::always("mlr", 2, |s| Box::new(Mlr::new(256 * 1024, s + 1))),
                VmPlan::always("lookbusy", 2, |_| Box::new(Lookbusy::new())),
            ];
            let r = run_scenario(policy, tiny_engine(), &plans, 5);
            let segs = dcat_obs::frames::parse_stream(&r.frames)
                .unwrap_or_else(|e| panic!("{label}: frame stream validates: {e}"));
            assert_eq!(segs.len(), 1);
            assert_eq!(segs[0].source, format!("scenario:{label}"));
            assert_eq!(segs[0].frames.len(), 5);
            let last = segs[0].frames.last().unwrap();
            assert_eq!(last.policy, label);
            assert_eq!(last.domains.len(), 2);
            match label {
                "lfoc" => assert!(last.ext.lfoc.is_some(), "lfoc frames carry cluster ext"),
                "memshare" => assert!(
                    last.ext.memshare.is_some(),
                    "memshare frames carry ledger ext"
                ),
                _ => assert!(last.ext.lfoc.is_none() && last.ext.memshare.is_none()),
            }
        }
    }

    #[test]
    fn run_result_accessors() {
        let plans = vec![VmPlan::always("lb", 2, |_| Box::new(Lookbusy::new()))];
        let r = run_scenario(PolicyKind::StaticCat, tiny_engine(), &plans, 4);
        assert!(r.steady_ipc(0, 2) > 0.0);
        assert!(r.steady_latency(0, 2) > 0.0);
        assert_eq!(r.ways_series(0).len(), 4);
        assert!(r.peak_ways(0) >= 2);
    }
}
