//! The `macro` suite: whole-experiment sweeps in `--fast` mode.
//!
//! Times the fig10 dynamic-allocation point (full fidelity and
//! `--sample-sets 8`), the fig15 mixed-workload scenario set — the
//! two experiments the determinism layer also anchors on — and a
//! sampled ten-host fleet smoke covering the cluster layer. The
//! `fig10_sampled_speedup` derived metric records what UMON-style set
//! sampling actually buys end to end (the sweep spends time outside the
//! LLC too, so this is smaller than the per-access win).

use dcat_obs::CycleSource;

use crate::experiments::{fig10_dynamic_alloc, fig15_mixed};
use crate::{fleet, report, runner};

use super::harness::{normalize, SuiteRunner};
use super::json::{Derived, SuiteResult};
use super::{micro, ClockKind};

const MB: u64 = 1024 * 1024;

/// Regression tolerance for this suite's normalized scores.
///
/// The macro cases run for hundreds of milliseconds to seconds, which
/// averages out short contention bursts, but sustained neighbour load
/// on shared runners still drifts them by up to ~18% run to run
/// (observed on fig15). 0.40 keeps real regressions (the packed-set
/// work was a 1.5–5x swing) visible without weekly false alarms.
const MACRO_TOLERANCE: f64 = 0.40;

/// Builds the macro suite. Experiment output is captured (and dropped)
/// so suite timing lines do not interleave with figure tables. Each
/// case pins the sampling-stride global itself (the passes interleave),
/// and the suite restores full fidelity before returning.
pub fn run(clock: &mut dyn CycleSource, kind: ClockKind, quick: bool) -> SuiteResult {
    let reps = if quick { 1 } else { 3 };
    let mut suite = SuiteRunner::new();

    // Calibration anchor, same memory-streaming spin as the micro suite
    // (the absolute iteration count differs; only the per-suite ratio
    // matters).
    micro::calibration_case(&mut suite, if quick { 64 } else { 16_384 });

    suite.case("fig10_fast_full", 1, || {
        runner::set_sample_sets(0);
        let ((_, r), _text) = report::capture(|| fig10_dynamic_alloc::run_one(4 * MB, true));
        r
    });

    suite.case("fig10_fast_sampled8", 1, || {
        runner::set_sample_sets(8);
        let ((_, r), _text) = report::capture(|| fig10_dynamic_alloc::run_one(4 * MB, true));
        runner::set_sample_sets(0);
        r
    });

    suite.case("fig15_fast_full", 1, || {
        runner::set_sample_sets(0);
        let (rs, _text) = report::capture(|| fig15_mixed::run_results(true));
        rs
    });

    suite.case("fleet_fast_sampled8", 1, || {
        runner::set_sample_sets(8);
        // Ten sampled hosts under the LFOC clustering policy — the
        // cluster layer's hot path (host fan-out + policy ticks).
        // Metrics are captured and dropped so timing runs do not
        // pollute the process-root registry.
        let cfg = fleet::FleetConfig::new(120, true);
        let (r, _text, _snap) =
            report::capture_obs(|| fleet::run_fleet(fleet::FleetPolicy::Lfoc, &cfg));
        runner::set_sample_sets(0);
        match r {
            Ok(r) => r.total_requests(),
            Err(e) => panic!(
                "fleet macrobench aborted: {e} (severity {:?})",
                e.severity()
            ),
        }
    });

    let mut cases = suite.run(clock, reps);
    runner::set_sample_sets(0);
    normalize(&mut cases, "spin_calibration");

    let ns_of = |name: &str| -> f64 {
        cases
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.ns_per_iter.max(1) as f64)
            .expect("case just measured")
    };
    let derived = vec![Derived {
        name: "fig10_sampled_speedup".into(),
        value: ns_of("fig10_fast_full") / ns_of("fig10_fast_sampled8"),
        min: None,
    }];

    SuiteResult {
        suite: "macro".into(),
        clock: kind.label().into(),
        calibration: "spin_calibration".into(),
        tolerance: MACRO_TOLERANCE,
        cases,
        derived,
    }
}
