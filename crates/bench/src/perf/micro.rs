//! The `micro` suite: set access, hierarchy access per replacement
//! policy, the engine epoch loop, and the full-workspace lint run.
//!
//! The headline pair is `set_access_churn_packed` vs
//! `set_access_churn_legacy`: a full 16-way set where every fill must
//! select a victim. The legacy (seed) implementation allocates a
//! `candidates: Vec<u32>` on every such fill and scans `Option` slots;
//! the packed implementation does two bitmask operations. Their ratio is
//! the `set_access_churn_speedup` derived metric, with a hard floor of
//! 3.0 asserted in wall-clock runs (the tracked `BENCH_micro.json`
//! records the measured value).

use dcat_obs::CycleSource;
use host::{Engine, EngineConfig, VmSpec};
use llc_sim::replacement::ReplacementPolicy;
use llc_sim::set::legacy::LegacyCacheSet;
use llc_sim::set::CacheSet;
use llc_sim::{AccessKind, CacheGeometry, Hierarchy, HierarchyConfig, LineAddr, WayMask};
use workloads::{Lookbusy, Mlr};

use super::harness::{normalize, SuiteRunner};
use super::json::{Derived, SuiteResult};
use super::ClockKind;

const WAYS: u32 = 16;

/// Regression tolerance for this suite's normalized scores.
///
/// The micro cases sit in the 5–200 ns range and the legacy churn case
/// allocates on every iteration, so they are sensitive to neighbour
/// contention on shared runners: across five back-to-back runs the
/// `set_access_churn_legacy` norm spanned 3.09–5.17 (±67% around the
/// low end) while the calibration spin held at 34–35 ns. The
/// interleaved passes and the memory-touching calibration absorb most
/// of that; the tolerance covers what remains. The hard `min` floors
/// on derived ratios are the machine-independent backstop.
const MICRO_TOLERANCE: f64 = 0.75;

/// Calibration buffer: 4 MiB of `u64`, large enough to stream from
/// memory rather than cache, so the calibration slows under the same
/// bandwidth contention the cache-touching cases feel (a pure ALU spin
/// does not, and norms diverge whenever a neighbour burst hits).
const CAL_WORDS: usize = 1 << 19;

/// Registers the shared calibration case: a fixed xorshift spin that
/// also streams one cache line of the 4 MiB buffer per round.
pub(super) fn calibration_case(suite: &mut SuiteRunner<'_>, iters: u32) {
    let mut buf = vec![0u64; CAL_WORDS];
    let mut x = 0x9E37_79B9_7F4A_7C15u64;
    let mut idx = 0usize;
    suite.case("spin_calibration", iters, move || {
        for _ in 0..16 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            idx = (idx + 8) & (CAL_WORDS - 1);
            buf[idx] = buf[idx].wrapping_add(x);
        }
        x
    });
}

/// A 16-way set with lines `0..WAYS` resident (LRU stamps `0..WAYS`).
fn full_packed() -> CacheSet {
    let mut set = CacheSet::new(WAYS);
    for i in 0..u64::from(WAYS) {
        set.fill_with(
            LineAddr(i),
            WayMask::all(WAYS),
            i,
            0,
            ReplacementPolicy::Lru,
            0,
        );
    }
    set
}

fn full_legacy() -> LegacyCacheSet {
    let mut set = LegacyCacheSet::new(WAYS);
    for i in 0..u64::from(WAYS) {
        set.fill_with(
            LineAddr(i),
            WayMask::all(WAYS),
            i,
            0,
            ReplacementPolicy::Lru,
            0,
        );
    }
    set
}

/// Builds the micro suite. `quick` shrinks iteration counts to a smoke
/// pass (used by `--check`); hard minimums on derived ratios are only
/// asserted for wall-clock runs, since a fake clock makes every rep span
/// exactly one stride and all ratios collapse to 1.
pub fn run(clock: &mut dyn CycleSource, kind: ClockKind, quick: bool) -> SuiteResult {
    let (iters, reps) = if quick { (64, 2) } else { (16_384, 9) };
    let mut suite = SuiteRunner::new();

    calibration_case(&mut suite, iters);

    // --- CacheSet access: hit path (lookup of resident lines) ---
    let full = WayMask::all(WAYS);
    {
        let mut set = full_packed();
        let mut now = u64::from(WAYS);
        suite.case("set_access_hit_packed", iters, move || {
            now += 1;
            set.lookup_with(LineAddr(now % u64::from(WAYS)), now, ReplacementPolicy::Lru)
        });
    }
    {
        let mut set = full_legacy();
        let mut now = u64::from(WAYS);
        suite.case("set_access_hit_legacy", iters, move || {
            now += 1;
            set.lookup_with(LineAddr(now % u64::from(WAYS)), now, ReplacementPolicy::Lru)
        });
    }

    // --- CacheSet access: churn path (every fill evicts) ---
    // Distinct line per fill keeps the set full and the victim scan hot;
    // this is exactly the path where the seed implementation allocated a
    // candidate Vec per access.
    {
        let mut set = full_packed();
        let mut next_line = u64::from(WAYS);
        let mut t = u64::from(WAYS);
        suite.case("set_access_churn_packed", iters, move || {
            next_line += 1;
            t += 1;
            set.fill_with(LineAddr(next_line), full, t, 0, ReplacementPolicy::Lru, 0)
        });
    }
    {
        let mut set = full_legacy();
        let mut next_line = u64::from(WAYS);
        let mut t = u64::from(WAYS);
        suite.case("set_access_churn_legacy", iters, move || {
            next_line += 1;
            t += 1;
            set.fill_with(LineAddr(next_line), full, t, 0, ReplacementPolicy::Lru, 0)
        });
    }

    // --- Hierarchy::access per LLC replacement policy ---
    for (tag, policy) in [
        ("lru", ReplacementPolicy::Lru),
        ("fifo", ReplacementPolicy::Fifo),
        ("random", ReplacementPolicy::Random),
        ("bip", ReplacementPolicy::bip()),
    ] {
        let mut h = Hierarchy::new(HierarchyConfig {
            cores: 2,
            l1: CacheGeometry::new(64, 8, 64),
            l2: CacheGeometry::new(128, 8, 64),
            llc: CacheGeometry::new(512, WAYS, 64),
            llc_policy: policy,
        });
        // A fixed LCG address stream: large enough to miss sometimes,
        // re-visiting enough to hit sometimes.
        let mut state = 1u64;
        let name = format!("hierarchy_access_{tag}");
        suite.case(&name, iters, move || {
            state = state
                .wrapping_mul(6_364_136_223_846_793_005)
                .wrapping_add(1_442_695_040_888_963_407);
            let addr = (state >> 20) % (4 << 20); // 4 MiB footprint
            h.access((state >> 8) as u32 & 1, addr & !63, AccessKind::Load)
        });
    }

    // --- host::engine epoch loop ---
    let mut cfg = EngineConfig::xeon_e5_v4();
    cfg.socket.hierarchy = HierarchyConfig {
        cores: 4,
        l1: CacheGeometry::new(64, 8, 64),
        l2: CacheGeometry::new(128, 8, 64),
        llc: CacheGeometry::from_capacity(4 << 20, WAYS),
        llc_policy: ReplacementPolicy::Lru,
    };
    cfg.cycles_per_epoch = if quick { 50_000 } else { 400_000 };
    cfg.memory_bytes = 256 << 20;
    let vms = vec![
        VmSpec::new("mlr", vec![0, 1], 5),
        VmSpec::new("lookbusy", vec![2, 3], 5),
    ];
    let mut engine = Engine::new(cfg, vms).expect("engine config is valid");
    engine.start_workload(0, Box::new(Mlr::new(2 << 20, 1)));
    engine.start_workload(1, Box::new(Lookbusy::new()));
    let e_iters = if quick { 1 } else { 8 };
    suite.case("engine_epoch", e_iters, move || engine.run_epoch());

    // --- frame-stream encoder (the dcat-top export hot path) ---
    // One call of `encode_frame` is the entire per-tick cost a daemon
    // pays for `--frames-out`, so it must stay far inside a tick budget.
    // Fully populated worst case: a 12-domain host (the fleet shape)
    // with every optional field present and both policy extensions.
    {
        let frame = dcat_obs::Frame {
            tick: 1_000_000,
            policy: "dcat-maxperf".into(),
            degraded: true,
            reason: Some("telemetry".into()),
            ways_moved: 7,
            events: 3,
            ext: dcat_obs::PolicyExt {
                cos: 12,
                lfoc: Some(dcat_obs::LfocExt {
                    clusters: 4,
                    insensitive: 3,
                }),
                memshare: Some(dcat_obs::MemshareExt {
                    lent: 5,
                    credit_min: -12,
                    credit_max: 40,
                }),
            },
            domains: (0..12)
                .map(|i| dcat_obs::DomainFrame {
                    name: format!("tenant-{i}"),
                    class: "Receiver".into(),
                    ways: 3 + (i % 5),
                    cbm: Some(0x3ffff >> i),
                    ipc: 1.234_567 + f64::from(i),
                    norm_ipc: Some(0.987_654),
                    miss_rate: 0.123_456,
                    baseline_ipc: Some(1.111_111),
                    quarantined: i == 3,
                    held: i == 4,
                })
                .collect(),
        };
        suite.case("frame_encode_tick", iters, move || {
            dcat_obs::frames::encode_frame(&frame).len()
        });
    }

    // --- full-workspace lint gate ---
    // ci.sh budgets 10 s of wall clock for `cargo xtask lint`; tracking
    // the full pipeline (read + lex + parse + call graph + passes) here
    // turns that one-off timer into a regression-gated trajectory with
    // a hard headroom floor (`lint_budget_headroom` below).
    let lint_root = dcat_lint::find_repo_root(std::path::Path::new(env!("CARGO_MANIFEST_DIR")))
        .expect("bench crate lives inside the workspace");
    suite.case("lint_full_workspace", 1, move || {
        let report = dcat_lint::check_repo(&lint_root).expect("lint pipeline runs");
        report.findings.len()
    });

    let mut cases = suite.run(clock, reps);
    normalize(&mut cases, "spin_calibration");

    let ns_of = |name: &str| -> f64 {
        cases
            .iter()
            .find(|c| c.name == name)
            .map(|c| c.ns_per_iter.max(1) as f64)
            .expect("case just measured")
    };
    let wall = kind == ClockKind::Wall;
    let derived = vec![
        Derived {
            name: "set_access_hit_speedup".into(),
            value: ns_of("set_access_hit_legacy") / ns_of("set_access_hit_packed"),
            min: None,
        },
        Derived {
            name: "set_access_churn_speedup".into(),
            value: ns_of("set_access_churn_legacy") / ns_of("set_access_churn_packed"),
            // The acceptance floor for the packed-set refactor; only
            // meaningful against a real clock.
            min: wall.then_some(3.0),
        },
        Derived {
            name: "frame_encode_budget_headroom".into(),
            // How many worst-case frame encodes fit into 1 ms — a
            // thousandth of the 1 s default daemon interval. The floor
            // keeps the export cost invisible next to a tick.
            value: 1_000_000.0 / ns_of("frame_encode_tick"),
            min: wall.then_some(10.0),
        },
        Derived {
            name: "lint_budget_headroom".into(),
            // How many times the full-workspace lint fits into ci.sh's
            // 10 s budget; dipping under 1.0 means the gate is blown.
            value: 10_000_000_000.0 / ns_of("lint_full_workspace"),
            min: wall.then_some(1.0),
        },
    ];

    SuiteResult {
        suite: "micro".into(),
        clock: kind.label().into(),
        calibration: "spin_calibration".into(),
        tolerance: MICRO_TOLERANCE,
        cases,
        derived,
    }
}
