//! The measurement core: warmup + median-of-K repetitions over a
//! [`dcat_obs::CycleSource`].
//!
//! Unlike [`crate::timing::bench`] (a smoke-level, print-only harness),
//! this one returns structured results so suites can derive ratios,
//! normalize against a calibration case, and serialize a tracked
//! `BENCH_*.json`. The clock is injected: the real suites use
//! [`crate::timing::WallClock`] (the workspace's only sanctioned
//! wall-clock), while `--check` injects a [`FakeClock`] so the whole
//! pipeline — including JSON emission and schema validation — runs
//! deterministically with no time dependence at all.
//!
//! The suites measure through [`SuiteRunner`], which interleaves the
//! repetitions: instead of timing one case's K loops back to back
//! (a ~20–50 ms contiguous window that a single neighbour-contention
//! burst poisons wholesale), it runs K round-robin passes over every
//! case and takes each case's median across passes. A burst then
//! corrupts at most a few passes of each case, which the median
//! discards.

use std::hint::black_box;

use dcat_obs::CycleSource;

/// One measured benchmark case.
#[derive(Debug, Clone, PartialEq)]
pub struct CaseResult {
    /// Case name, unique within a suite.
    pub name: String,
    /// Median-of-reps nanoseconds per iteration.
    pub ns_per_iter: u64,
    /// Iterations per repetition.
    pub iters: u32,
    /// Timed repetitions (the median is taken across these).
    pub reps: u32,
    /// `ns_per_iter` divided by the suite's calibration case — the
    /// machine-portable number the regression gate compares. Zero until
    /// [`normalize`] runs.
    pub norm: f64,
}

/// Measures `f`: one untimed warmup repetition, then `reps` timed
/// repetitions of `iters` iterations each; reports the median
/// per-iteration time. The closure's return value passes through
/// [`black_box`] so the optimizer cannot delete the work.
pub fn run_case<T>(
    clock: &mut dyn CycleSource,
    name: &str,
    iters: u32,
    reps: u32,
    mut f: impl FnMut() -> T,
) -> CaseResult {
    let iters = iters.max(1);
    let reps = reps.max(1);
    for _ in 0..iters {
        black_box(f());
    }
    let mut per_rep_ns: Vec<u64> = Vec::with_capacity(reps as usize);
    for _ in 0..reps {
        let t0 = clock.now_cycles();
        for _ in 0..iters {
            black_box(f());
        }
        let t1 = clock.now_cycles();
        per_rep_ns.push(t1.saturating_sub(t0));
    }
    per_rep_ns.sort_unstable();
    let median = per_rep_ns[per_rep_ns.len() / 2];
    CaseResult {
        name: name.to_string(),
        // Round half-up so a fast case never reports 0 ns spuriously
        // while staying an integer (stable to serialize).
        ns_per_iter: (median + u64::from(iters) / 2) / u64::from(iters),
        iters,
        reps,
        norm: 0.0,
    }
}

/// Fills in every case's `norm` as `ns_per_iter / calibration_ns`,
/// where the calibration case is named `calibration`. The calibration
/// case itself gets `norm = 1.0` by construction.
///
/// # Panics
///
/// Panics if `calibration` names no case in `cases` — a suite
/// definition bug, not a runtime condition.
pub fn normalize(cases: &mut [CaseResult], calibration: &str) {
    let cal_ns = cases
        .iter()
        .find(|c| c.name == calibration)
        .unwrap_or_else(|| panic!("calibration case '{calibration}' not in suite"))
        .ns_per_iter
        .max(1);
    for c in cases.iter_mut() {
        c.norm = c.ns_per_iter as f64 / cal_ns as f64;
    }
}

// The body takes the iteration count and loops internally: one virtual
// dispatch per timed loop, with the loop itself monomorphized around
// the user's closure — boxing per iteration would add several ns of
// dispatch to cases that themselves cost 5 ns.
struct CaseSpec<'a> {
    name: String,
    iters: u32,
    body: Box<dyn FnMut(u32) + 'a>,
}

/// An interleaved benchmark suite.
///
/// Register every case up front with [`SuiteRunner::case`] (each case
/// owns its state — use `move` closures), then call
/// [`SuiteRunner::run`] once. Measurement proceeds as `reps`
/// round-robin passes over the registered cases, so consecutive
/// samples of the same case are separated by the rest of the suite's
/// work and land in different time windows.
#[derive(Default)]
pub struct SuiteRunner<'a> {
    specs: Vec<CaseSpec<'a>>,
}

impl<'a> SuiteRunner<'a> {
    /// An empty suite.
    pub fn new() -> Self {
        SuiteRunner { specs: Vec::new() }
    }

    /// Registers a case: `iters` iterations of `f` per timed loop. The
    /// closure's return value passes through [`black_box`] so the
    /// optimizer cannot delete the work.
    pub fn case<T>(&mut self, name: &str, iters: u32, mut f: impl FnMut() -> T + 'a) {
        self.specs.push(CaseSpec {
            name: name.to_string(),
            iters: iters.max(1),
            body: Box::new(move |n: u32| {
                for _ in 0..n {
                    black_box(f());
                }
            }),
        });
    }

    /// Runs the suite: one untimed warmup loop per case, then `reps`
    /// interleaved timed passes; reports each case's median
    /// per-iteration time, in registration order.
    pub fn run(mut self, clock: &mut dyn CycleSource, reps: u32) -> Vec<CaseResult> {
        let reps = reps.max(1);
        for spec in &mut self.specs {
            (spec.body)(spec.iters);
        }
        let mut samples: Vec<Vec<u64>> = vec![Vec::with_capacity(reps as usize); self.specs.len()];
        for _ in 0..reps {
            for (slot, spec) in samples.iter_mut().zip(self.specs.iter_mut()) {
                let t0 = clock.now_cycles();
                (spec.body)(spec.iters);
                let t1 = clock.now_cycles();
                slot.push(t1.saturating_sub(t0));
            }
        }
        samples
            .iter_mut()
            .zip(self.specs.iter())
            .map(|(slot, spec)| {
                slot.sort_unstable();
                let median = slot[slot.len() / 2];
                CaseResult {
                    name: spec.name.clone(),
                    ns_per_iter: (median + u64::from(spec.iters) / 2) / u64::from(spec.iters),
                    iters: spec.iters,
                    reps,
                    norm: 0.0,
                }
            })
            .collect()
    }
}

/// A deterministic cycle source for `--check`: every read advances a
/// fixed stride, so the harness's arithmetic (including the median and
/// normalization) exercises real non-zero numbers without any
/// wall-clock dependence.
#[derive(Debug)]
pub struct FakeClock {
    now: u64,
    stride: u64,
}

impl FakeClock {
    /// A clock advancing `stride` "nanoseconds" per read.
    pub fn new(stride: u64) -> Self {
        FakeClock {
            now: 0,
            stride: stride.max(1),
        }
    }
}

impl CycleSource for FakeClock {
    fn now_cycles(&mut self) -> u64 {
        self.now += self.stride;
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fake_clock_yields_deterministic_results() {
        let mut clock = FakeClock::new(1000);
        let r1 = run_case(&mut clock, "spin", 10, 3, || 1u64 + 1);
        let mut clock = FakeClock::new(1000);
        let r2 = run_case(&mut clock, "spin", 10, 3, || 1u64 + 1);
        assert_eq!(r1, r2);
        // Each rep spans exactly one stride: 1000 ns / 10 iters.
        assert_eq!(r1.ns_per_iter, 100);
    }

    #[test]
    fn normalize_anchors_on_the_calibration_case() {
        let mut cases = vec![
            CaseResult {
                name: "cal".into(),
                ns_per_iter: 50,
                iters: 1,
                reps: 1,
                norm: 0.0,
            },
            CaseResult {
                name: "work".into(),
                ns_per_iter: 200,
                iters: 1,
                reps: 1,
                norm: 0.0,
            },
        ];
        normalize(&mut cases, "cal");
        assert_eq!(cases[0].norm, 1.0);
        assert_eq!(cases[1].norm, 4.0);
    }

    #[test]
    #[should_panic(expected = "not in suite")]
    fn normalize_rejects_unknown_calibration() {
        let mut cases = vec![CaseResult {
            name: "work".into(),
            ns_per_iter: 200,
            iters: 1,
            reps: 1,
            norm: 0.0,
        }];
        normalize(&mut cases, "cal");
    }

    #[test]
    fn interleaved_runner_is_deterministic_under_a_fake_clock() {
        let run_once = || {
            let mut clock = FakeClock::new(1000);
            let mut suite = SuiteRunner::new();
            let mut a = 0u64;
            suite.case("a", 10, move || {
                a += 1;
                a
            });
            let mut b = 0u64;
            suite.case("b", 20, move || {
                b = b.wrapping_mul(3).wrapping_add(7);
                b
            });
            suite.run(&mut clock, 3)
        };
        let r1 = run_once();
        let r2 = run_once();
        assert_eq!(r1, r2);
        assert_eq!(r1.len(), 2);
        // Registration order is preserved; each timed loop spans one
        // stride, so per-iter time is stride / iters.
        assert_eq!(r1[0].name, "a");
        assert_eq!(r1[0].ns_per_iter, 100);
        assert_eq!(r1[1].name, "b");
        assert_eq!(r1[1].ns_per_iter, 50);
        assert_eq!(r1[0].reps, 3);
    }

    #[test]
    fn wall_clock_measures_something() {
        let mut clock = crate::timing::WallClock::new();
        let r = run_case(&mut clock, "sum", 1000, 3, || {
            (0..100u64).fold(0u64, u64::wrapping_add)
        });
        assert_eq!(r.iters, 1000);
        assert_eq!(r.reps, 3);
    }
}
