//! Deterministic micro/macro benchmark layer — the `dcat-perfbench`
//! tentpole.
//!
//! Structure:
//!
//! * [`harness`] — warmup + median-of-K measurement over an injected
//!   [`dcat_obs::CycleSource`] (wall clock for real runs, a fake
//!   deterministic clock for `--check`), with the K repetitions
//!   interleaved across the suite's cases for noise robustness, plus
//!   normalization against a calibration spin.
//! * [`micro`] — `CacheSet` access paths (packed vs legacy),
//!   `Hierarchy::access` per replacement policy, the engine epoch
//!   loop, and the full-workspace `dcat-lint` run (whose
//!   `lint_budget_headroom` floor enforces ci.sh's 10 s lint budget).
//! * [`macrobench`] — fig10/fig15 `--fast` sweeps, full fidelity vs
//!   `--sample-sets 8`.
//! * [`json`] — the `dcat-perfbench/v1` schema: serialization,
//!   validation (reusing `obs::json`'s parser), and the normalized
//!   regression gate with `DCAT_BLESS=1` re-blessing.
//!
//! The tracked trajectory lives in `BENCH_micro.json` and
//! `BENCH_macro.json` at the repository root; `ci.sh` re-measures and
//! gates every fresh run against them.

pub mod harness;
pub mod json;
pub mod macrobench;
pub mod micro;

use crate::report;

/// Which clock a suite ran against (recorded in the JSON header).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ClockKind {
    /// Real time via [`crate::timing::WallClock`].
    Wall,
    /// Deterministic [`harness::FakeClock`] (schema self-test mode).
    Fake,
}

impl ClockKind {
    /// The header label (`wall` / `fake`).
    pub fn label(self) -> &'static str {
        match self {
            ClockKind::Wall => "wall",
            ClockKind::Fake => "fake",
        }
    }
}

/// Runs one suite by name against the given clock.
///
/// # Panics
///
/// Panics on an unknown suite name; the binary validates names first.
pub fn run_suite(
    name: &str,
    clock: &mut dyn dcat_obs::CycleSource,
    kind: ClockKind,
    quick: bool,
) -> json::SuiteResult {
    match name {
        "micro" => micro::run(clock, kind, quick),
        "macro" => macrobench::run(clock, kind, quick),
        other => panic!("unknown suite '{other}' (expected 'micro' or 'macro')"),
    }
}

/// All suite names, in emission order.
pub const SUITES: &[&str] = &["micro", "macro"];

/// Prints a suite as a human table via [`report::say`].
pub fn print_table(suite: &json::SuiteResult) {
    report::section(&format!(
        "perfbench suite '{}' ({} clock)",
        suite.suite, suite.clock
    ));
    let rows: Vec<Vec<String>> = suite
        .cases
        .iter()
        .map(|c| {
            vec![
                c.name.clone(),
                format!("{}", c.ns_per_iter),
                format!("{:.4}", c.norm),
                format!("{}x{}", c.iters, c.reps),
            ]
        })
        .collect();
    report::table(&["case", "ns/iter", "norm", "iters x reps"], &rows);
    for d in &suite.derived {
        match d.min {
            Some(m) => report::say(format!("{}: {:.2}x (floor {:.2}x)", d.name, d.value, m)),
            None => report::say(format!("{}: {:.2}x", d.name, d.value)),
        }
    }
}
