//! `BENCH_<suite>.json` serialization, schema validation, and the
//! regression gate.
//!
//! The document is schema-versioned (`dcat-perfbench/v1`) and rendered
//! with `obs::json`'s insertion-ordered builder; validation re-parses
//! with the same crate's parser, so producer and checker cannot drift.
//!
//! The gate compares **normalized** scores (`norm` = case ns divided by
//! the suite's spin-calibration case), not raw nanoseconds: raw timings
//! move with the host CPU, while the ratio of "work under test" to "a
//! fixed arithmetic spin" is far more portable across machines. Raw
//! ns/iter values are still recorded for trajectory reading. Derived
//! entries (speedup ratios with optional hard minimums) are fully
//! machine-independent and enforced on every run, baseline or not.

use dcat_obs::json::{self, Value};

use super::harness::CaseResult;

/// Schema identifier embedded in (and required of) every document.
pub const SCHEMA: &str = "dcat-perfbench/v1";

/// Default regression tolerance on normalized scores: a case may be up
/// to 25% slower than the blessed baseline before the gate fails.
pub const DEFAULT_TOLERANCE: f64 = 0.25;

/// A derived, machine-independent metric (typically a speedup ratio).
#[derive(Debug, Clone, PartialEq)]
pub struct Derived {
    /// Metric name, unique within the suite.
    pub name: String,
    /// Measured value.
    pub value: f64,
    /// Hard lower bound, if the suite asserts one (e.g. the packed-set
    /// speedup floor). Checked by [`validate`].
    pub min: Option<f64>,
}

/// One suite's results, ready to serialize.
#[derive(Debug, Clone)]
pub struct SuiteResult {
    /// Suite name (`micro`, `macro`).
    pub suite: String,
    /// `wall` or `fake` — which clock produced the numbers.
    pub clock: String,
    /// Name of the calibration case every `norm` is anchored on.
    pub calibration: String,
    /// Gate tolerance stored in the header so the *baseline* dictates
    /// how strictly future runs are compared against it.
    pub tolerance: f64,
    /// Measured cases.
    pub cases: Vec<CaseResult>,
    /// Derived ratios.
    pub derived: Vec<Derived>,
}

/// Renders an f64 with enough digits to be stable and readable.
fn num(v: f64) -> String {
    format!("{v:.4}")
}

impl SuiteResult {
    /// Serializes to the schema-versioned JSON document (pretty enough
    /// to diff: one case per line).
    pub fn to_json(&self) -> String {
        let cases: Vec<String> = self
            .cases
            .iter()
            .map(|c| {
                json::Obj::new()
                    .str_field("name", &c.name)
                    .u64_field("ns_per_iter", c.ns_per_iter)
                    .u64_field("iters", u64::from(c.iters))
                    .u64_field("reps", u64::from(c.reps))
                    .raw_field("norm", &num(c.norm))
                    .finish()
            })
            .collect();
        let derived: Vec<String> = self
            .derived
            .iter()
            .map(|d| {
                let obj = json::Obj::new()
                    .str_field("name", &d.name)
                    .raw_field("value", &num(d.value));
                match d.min {
                    Some(m) => obj.raw_field("min", &num(m)),
                    None => obj,
                }
                .finish()
            })
            .collect();
        // Assemble with line breaks by hand: the Obj builder emits
        // compact JSON, and a 10-line diffable file beats a 1-line blob
        // for a tracked trajectory artifact.
        let mut out = String::new();
        out.push_str("{\n");
        out.push_str(&format!("  \"schema\": {},\n", json::quote(SCHEMA)));
        out.push_str(&format!("  \"suite\": {},\n", json::quote(&self.suite)));
        out.push_str(&format!("  \"clock\": {},\n", json::quote(&self.clock)));
        out.push_str(&format!(
            "  \"calibration\": {},\n",
            json::quote(&self.calibration)
        ));
        out.push_str(&format!("  \"tolerance\": {},\n", num(self.tolerance)));
        out.push_str("  \"cases\": [\n");
        for (i, c) in cases.iter().enumerate() {
            out.push_str("    ");
            out.push_str(c);
            out.push_str(if i + 1 < cases.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ],\n");
        out.push_str("  \"derived\": [\n");
        for (i, d) in derived.iter().enumerate() {
            out.push_str("    ");
            out.push_str(d);
            out.push_str(if i + 1 < derived.len() { ",\n" } else { "\n" });
        }
        out.push_str("  ]\n}\n");
        out
    }
}

/// A parsed, schema-checked document.
#[derive(Debug, Clone)]
pub struct ParsedSuite {
    /// Suite name.
    pub suite: String,
    /// Gate tolerance from the header.
    pub tolerance: f64,
    /// Calibration case name.
    pub calibration: String,
    /// `(name, ns_per_iter, norm)` per case.
    pub cases: Vec<(String, u64, f64)>,
    /// `(name, value, min)` per derived entry.
    pub derived: Vec<(String, f64, Option<f64>)>,
}

fn field<'v>(v: &'v Value, key: &str, ctx: &str) -> Result<&'v Value, String> {
    v.get(key).ok_or_else(|| format!("{ctx}: missing '{key}'"))
}

fn str_of(v: &Value, key: &str, ctx: &str) -> Result<String, String> {
    field(v, key, ctx)?
        .as_str()
        .map(str::to_string)
        .ok_or_else(|| format!("{ctx}: '{key}' is not a string"))
}

fn num_of(v: &Value, key: &str, ctx: &str) -> Result<f64, String> {
    field(v, key, ctx)?
        .as_num()
        .ok_or_else(|| format!("{ctx}: '{key}' is not a number"))
}

/// Parses and schema-validates a `BENCH_*.json` document: schema tag,
/// required fields and types, non-empty case list, calibration case
/// present with `norm` 1.0, unique names, and every derived `min`
/// honored. Returns the parsed form for the gate.
pub fn validate(text: &str) -> Result<ParsedSuite, String> {
    let doc = json::parse(text)?;
    let schema = str_of(&doc, "schema", "header")?;
    if schema != SCHEMA {
        return Err(format!("schema '{schema}' != expected '{SCHEMA}'"));
    }
    let suite = str_of(&doc, "suite", "header")?;
    let clock = str_of(&doc, "clock", "header")?;
    if clock != "wall" && clock != "fake" {
        return Err(format!("clock '{clock}' is neither 'wall' nor 'fake'"));
    }
    let calibration = str_of(&doc, "calibration", "header")?;
    let tolerance = num_of(&doc, "tolerance", "header")?;
    if !(0.0..=10.0).contains(&tolerance) {
        return Err(format!("tolerance {tolerance} out of range"));
    }

    let Some(Value::Arr(case_vals)) = doc.get("cases") else {
        return Err("'cases' missing or not an array".to_string());
    };
    if case_vals.is_empty() {
        return Err("'cases' is empty".to_string());
    }
    let mut cases = Vec::new();
    for (i, cv) in case_vals.iter().enumerate() {
        let ctx = format!("cases[{i}]");
        let name = str_of(cv, "name", &ctx)?;
        let ns = num_of(cv, "ns_per_iter", &ctx)?;
        let norm = num_of(cv, "norm", &ctx)?;
        num_of(cv, "iters", &ctx)?;
        num_of(cv, "reps", &ctx)?;
        if ns < 0.0 || norm < 0.0 {
            return Err(format!("{ctx}: negative measurement"));
        }
        if cases.iter().any(|(n, _, _)| *n == name) {
            return Err(format!("{ctx}: duplicate case '{name}'"));
        }
        cases.push((name, ns as u64, norm));
    }
    match cases.iter().find(|(n, _, _)| *n == calibration) {
        None => return Err(format!("calibration case '{calibration}' not in cases")),
        Some((_, _, norm)) => {
            if (norm - 1.0).abs() > 1e-9 {
                return Err(format!("calibration norm {norm} != 1.0"));
            }
        }
    }

    let Some(Value::Arr(derived_vals)) = doc.get("derived") else {
        return Err("'derived' missing or not an array".to_string());
    };
    let mut derived = Vec::new();
    for (i, dv) in derived_vals.iter().enumerate() {
        let ctx = format!("derived[{i}]");
        let name = str_of(dv, "name", &ctx)?;
        let value = num_of(dv, "value", &ctx)?;
        let min = match dv.get("min") {
            Some(m) => Some(
                m.as_num()
                    .ok_or_else(|| format!("{ctx}: 'min' is not a number"))?,
            ),
            None => None,
        };
        if let Some(m) = min {
            if value < m {
                return Err(format!(
                    "{ctx}: '{name}' = {value:.4} below required minimum {m:.4}"
                ));
            }
        }
        derived.push((name, value, min));
    }

    Ok(ParsedSuite {
        suite,
        tolerance,
        calibration,
        cases,
        derived,
    })
}

/// Compares a fresh run against a blessed baseline. Fails when any case
/// present in both regressed beyond the *baseline's* tolerance on its
/// normalized score (the calibration case is exempt — it is 1.0 by
/// construction). Cases that appear or disappear are reported but do
/// not fail the gate (suites are allowed to grow). Returns
/// human-readable findings; `Err` means the gate failed.
pub fn gate(fresh: &ParsedSuite, baseline: &ParsedSuite) -> Result<Vec<String>, Vec<String>> {
    let mut notes = Vec::new();
    let mut failures = Vec::new();
    if fresh.suite != baseline.suite {
        failures.push(format!(
            "suite mismatch: fresh '{}' vs baseline '{}'",
            fresh.suite, baseline.suite
        ));
    }
    for (name, _ns, norm) in &fresh.cases {
        if *name == fresh.calibration {
            continue;
        }
        match baseline.cases.iter().find(|(n, _, _)| n == name) {
            None => notes.push(format!("new case '{name}' (no baseline)")),
            Some((_, _, base_norm)) => {
                let limit = base_norm * (1.0 + baseline.tolerance);
                if *norm > limit {
                    failures.push(format!(
                        "'{name}' regressed: norm {norm:.4} > {limit:.4} \
                         (baseline {base_norm:.4} + {:.0}% tolerance)",
                        baseline.tolerance * 100.0
                    ));
                } else {
                    notes.push(format!(
                        "'{name}' ok: norm {norm:.4} (baseline {base_norm:.4})"
                    ));
                }
            }
        }
    }
    for (name, _, _) in &baseline.cases {
        if !fresh.cases.iter().any(|(n, _, _)| n == name) {
            notes.push(format!("case '{name}' dropped since baseline"));
        }
    }
    if failures.is_empty() {
        Ok(notes)
    } else {
        Err(failures)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> SuiteResult {
        SuiteResult {
            suite: "micro".into(),
            clock: "fake".into(),
            calibration: "spin".into(),
            tolerance: DEFAULT_TOLERANCE,
            cases: vec![
                CaseResult {
                    name: "spin".into(),
                    ns_per_iter: 100,
                    iters: 10,
                    reps: 3,
                    norm: 1.0,
                },
                CaseResult {
                    name: "work".into(),
                    ns_per_iter: 400,
                    iters: 10,
                    reps: 3,
                    norm: 4.0,
                },
            ],
            derived: vec![Derived {
                name: "speedup".into(),
                value: 4.5,
                min: Some(3.0),
            }],
        }
    }

    #[test]
    fn round_trip_validates() {
        let text = sample().to_json();
        let parsed = validate(&text).expect("valid");
        assert_eq!(parsed.suite, "micro");
        assert_eq!(parsed.cases.len(), 2);
        assert_eq!(parsed.derived.len(), 1);
        assert_eq!(parsed.tolerance, DEFAULT_TOLERANCE);
    }

    #[test]
    fn wrong_schema_rejected() {
        let text = sample().to_json().replace("dcat-perfbench/v1", "v0");
        assert!(validate(&text).is_err());
    }

    #[test]
    fn derived_minimum_enforced() {
        let mut s = sample();
        s.derived[0].value = 2.0; // below the min of 3.0
        let err = validate(&s.to_json()).unwrap_err();
        assert!(err.contains("below required minimum"), "{err}");
    }

    #[test]
    fn missing_calibration_rejected() {
        let mut s = sample();
        s.calibration = "absent".into();
        assert!(validate(&s.to_json()).is_err());
    }

    #[test]
    fn duplicate_case_rejected() {
        let mut s = sample();
        let dup = s.cases[1].clone();
        s.cases.push(dup);
        assert!(validate(&s.to_json()).is_err());
    }

    #[test]
    fn gate_passes_within_tolerance_and_fails_beyond() {
        let base = validate(&sample().to_json()).unwrap();
        let mut faster = sample();
        faster.cases[1].norm = 3.5;
        let ok = validate(&faster.to_json()).unwrap();
        assert!(gate(&ok, &base).is_ok());

        let mut slower = sample();
        slower.cases[1].norm = 5.5; // > 4.0 * 1.25
        let bad = validate(&slower.to_json()).unwrap();
        let failures = gate(&bad, &base).unwrap_err();
        assert_eq!(failures.len(), 1);
        assert!(failures[0].contains("regressed"), "{}", failures[0]);
    }

    #[test]
    fn gate_tolerates_new_and_dropped_cases() {
        let base = validate(&sample().to_json()).unwrap();
        let mut grown = sample();
        grown.cases.push(CaseResult {
            name: "extra".into(),
            ns_per_iter: 1,
            iters: 1,
            reps: 1,
            norm: 0.01,
        });
        let fresh = validate(&grown.to_json()).unwrap();
        let notes = gate(&fresh, &base).expect("new cases do not fail the gate");
        assert!(notes.iter().any(|n| n.contains("new case 'extra'")));
    }
}
