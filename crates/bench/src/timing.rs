//! Minimal wall-clock micro-benchmark harness.
//!
//! Replaces criterion so the workspace builds offline. Each `[[bench]]`
//! target is a plain `fn main()` that calls [`bench`] per case; the
//! harness warms up, then runs timed batches until a time budget is
//! spent, and reports the per-iteration median over batches. This is a
//! smoke-level harness: it answers "is a tick microseconds or
//! milliseconds", not "did we regress 2%".

use std::hint::black_box;
use std::time::{Duration, Instant};

/// Target wall-clock spend per benchmark case.
const BUDGET: Duration = Duration::from_millis(200);
/// Iterations per timed batch.
const BATCH: u32 = 1_000;

/// Times `f` and prints a `name: <ns>/iter` line.
///
/// The closure's return value is passed through [`black_box`] so the
/// optimizer cannot delete the work.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) {
    // Warm-up: one batch, untimed.
    for _ in 0..BATCH {
        black_box(f());
    }
    let mut per_batch_ns: Vec<u128> = Vec::new();
    let start = Instant::now();
    while start.elapsed() < BUDGET {
        let t0 = Instant::now();
        for _ in 0..BATCH {
            black_box(f());
        }
        per_batch_ns.push(t0.elapsed().as_nanos());
    }
    per_batch_ns.sort_unstable();
    let median = per_batch_ns[per_batch_ns.len() / 2] / u128::from(BATCH);
    crate::report::say(format!(
        "{name}: {median} ns/iter ({} batches)",
        per_batch_ns.len()
    ));
}

/// Wall-clock [`dcat_obs::CycleSource`]: reports nanoseconds since
/// construction as "cycles".
///
/// This module is the workspace's only sanctioned wall-clock user, so
/// the one tracer cycle source backed by real time lives here. Attach
/// it to a [`dcat_obs::Tracer`] for local latency profiling only —
/// golden-snapshot and determinism paths leave cycles at their default
/// of zero, and zero-cycle spans render no cycle histograms.
#[derive(Debug)]
pub struct WallClock {
    origin: Instant,
}

impl WallClock {
    /// A source whose epoch is the moment of construction.
    pub fn new() -> Self {
        WallClock {
            origin: Instant::now(),
        }
    }
}

impl Default for WallClock {
    fn default() -> Self {
        Self::new()
    }
}

impl dcat_obs::CycleSource for WallClock {
    fn now_cycles(&mut self) -> u64 {
        u64::try_from(self.origin.elapsed().as_nanos()).unwrap_or(u64::MAX)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_runs_and_returns() {
        // Must terminate and not panic on a trivial closure.
        bench("noop", || 1u64 + 1);
    }
}
