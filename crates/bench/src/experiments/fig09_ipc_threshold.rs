//! Figure 9: sensitivity to the IPC-improvement threshold.
//!
//! Same setup as Figure 8, sweeping `ipc_imp_thr` from 3% to 40%. A small
//! threshold keeps the VM in Receiver longer (more ways); a large one
//! stops growth almost immediately. The paper picks 5%.

use dcat::DcatConfig;
use workloads::{Lookbusy, Mlr};

use crate::experiments::common::{paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// One sweep point.
#[derive(Debug, Clone, Copy)]
pub struct IpcThrPoint {
    /// The threshold value.
    pub threshold: f64,
    /// Ways held once the allocation stabilizes.
    pub ways: u32,
}

/// Runs the sweep.
pub fn run(fast: bool) -> Vec<IpcThrPoint> {
    report::section("Figure 9: impact of IPC improvement threshold (MLR-8MB, 2-way baseline)");
    let thresholds: &[f64] = if fast {
        &[0.03, 0.40]
    } else {
        &[0.03, 0.05, 0.10, 0.20, 0.40]
    };
    let epochs = if fast { 14 } else { 40 };
    let points = crate::Runner::from_env().map(thresholds.to_vec(), |_, thr| {
        let cfg = DcatConfig {
            ipc_imp_thr: thr,
            ..DcatConfig::default()
        };
        let mut plans = vec![VmPlan::always("mlr", 2, |s| {
            Box::new(Mlr::new(8 * MB, 60 + s))
        })];
        for i in 0..5 {
            plans.push(VmPlan::always(format!("lookbusy-{i}"), 2, |_| {
                Box::new(Lookbusy::new())
            }));
        }
        let r = run_scenario(PolicyKind::Dcat(cfg), paper_engine(fast), &plans, epochs);
        IpcThrPoint {
            threshold: thr,
            ways: *r.ways_series(0).last().expect("epochs ran"),
        }
    });
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| vec![format!("{:.0}%", p.threshold * 100.0), p.ways.to_string()])
        .collect();
    report::table(&["ipc_imp_thr", "allocated ways"], &rows);
    report::say("(smaller threshold -> the Receiver keeps growing longer)");
    points
}
