//! Figure 14: two memory-intensive VMs under the max-performance policy.
//!
//! MLR-8MB and MLR-12MB with four lookbusy neighbors (3-way baselines).
//! While the free pool lasts the two receivers grow in lockstep (the
//! fairness behavior); once tables are populated the max-performance
//! policy can shift ways toward the workload with more headroom.

use dcat::DcatConfig;
use workloads::{Lookbusy, Mlr};

use crate::experiments::common::{paper_engine, MB};
use crate::report;
use crate::scenario::{run_scenario, PolicyKind, VmPlan};

/// Result of one policy run.
#[derive(Debug, Clone)]
pub struct TwoReceivers {
    /// Ways of MLR-8MB per epoch.
    pub ways_8mb: Vec<u32>,
    /// Ways of MLR-12MB per epoch.
    pub ways_12mb: Vec<u32>,
    /// Sum of both VMs' normalized IPC at steady state.
    pub total_norm_ipc: f64,
}

/// Runs the scenario under the given dCat configuration.
///
/// A third memory-intensive VM arrives two thirds into the run and
/// reclaims its baseline (the paper's Section 3.5 worked example): under
/// max-performance dCat re-splits the two receivers' remaining budget by
/// their performance tables, under max-fairness it shaves them evenly.
pub fn run_with(cfg: DcatConfig, fast: bool) -> TwoReceivers {
    let epochs = if fast { 24 } else { 48 };
    let arrival = 2 * epochs / 3;
    let mut plans = vec![
        VmPlan::always("mlr-8mb", 3, |s| Box::new(Mlr::new(8 * MB, 200 + s))),
        VmPlan::always("mlr-12mb", 3, |s| Box::new(Mlr::new(12 * MB, 300 + s))),
        VmPlan::scheduled(
            "late-comer",
            3,
            vec![crate::scenario::ScheduleItem::window(arrival, epochs)],
            |s| Box::new(Mlr::new(6 * MB, 900 + s)),
        ),
    ];
    for i in 0..4 {
        plans.push(VmPlan::always(format!("lookbusy-{i}"), 2, |_| {
            Box::new(Lookbusy::new())
        }));
    }
    let r = run_scenario(PolicyKind::Dcat(cfg), paper_engine(fast), &plans, epochs);
    let steady = (epochs / 4) as usize;
    let take = |vm: usize| -> f64 {
        let n = r.reports.len().min(steady);
        r.reports[r.reports.len() - n..]
            .iter()
            .map(|e| e[vm].norm_ipc.unwrap_or(0.0))
            .sum::<f64>()
            / n as f64
    };
    TwoReceivers {
        ways_8mb: r.ways_series(0),
        ways_12mb: r.ways_series(1),
        total_norm_ipc: take(0) + take(1),
    }
}

/// Runs the figure's max-performance configuration and prints the series.
pub fn run(fast: bool) -> TwoReceivers {
    report::section("Figure 14: two memory-intensive VMs, max-performance policy");
    let result = run_with(DcatConfig::max_performance(), fast);
    report::say(format!(
        "MLR-8MB  ways: {}",
        result
            .ways_8mb
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "MLR-12MB ways: {}",
        result
            .ways_12mb
            .iter()
            .map(|w| w.to_string())
            .collect::<Vec<_>>()
            .join(",")
    ));
    report::say(format!(
        "steady total normalized IPC (both VMs): {:.2}",
        result.total_norm_ipc
    ));
    result
}
