//! Figure 3: cache-set conflict histograms.
//!
//! For the Figure-2 working sets, how many of the working set's lines map
//! to each LLC set. With 4 KiB pages a substantial fraction of sets
//! receives 3+ lines (guaranteed conflicts in a 2-way partition): the paper
//! reports ~32.5% on Xeon-D and ~29% on Xeon-E5. Huge pages drive Xeon-D
//! to zero conflicting sets (one page covers the working set) but leave
//! ~11.2% of sets with 3 lines on Xeon-E5 (three pages, two fit).

use llc_sim::{
    CacheGeometry, FrameAllocator, FramePolicy, PageMapper, PageSize, PhysAddr,
    SetOccupancyHistogram, VirtAddr,
};

use crate::experiments::common::MB;
use crate::report;

/// Conflict statistics for one (machine, page size) pair.
#[derive(Debug, Clone)]
pub struct HistogramRow {
    /// Label for the report.
    pub label: String,
    /// Fraction of sets with 3 or more lines mapped (conflicts in a 2-way
    /// partition).
    pub frac_3_plus: f64,
    /// The histogram itself.
    pub histogram: SetOccupancyHistogram,
}

/// Maps a working set and histograms its lines over the partition's sets.
fn map_working_set(llc: CacheGeometry, wss: u64, page: PageSize, seed: u64) -> HistogramRow {
    let mut frames = FrameAllocator::new(2 * 1024 * 1024 * 1024, FramePolicy::Randomized, seed);
    let mut mapper = PageMapper::new(page);
    let lines: Vec<PhysAddr> = (0..wss / 64)
        .map(|l| {
            mapper
                .translate(VirtAddr(l * 64), &mut frames)
                .expect("pool")
        })
        .collect();
    let histogram = SetOccupancyHistogram::from_lines(llc, lines);
    HistogramRow {
        label: String::new(),
        frac_3_plus: histogram.fraction_with_at_least(3),
        histogram,
    }
}

/// Runs all four configurations and prints the histograms.
pub fn run(_fast: bool) -> Vec<HistogramRow> {
    report::section("Figure 3: Cache set conflicts on Intel Broadwell processors");
    let configs = [
        (
            "Xeon-D 4KB (2MB WSS)",
            CacheGeometry::xeon_d_llc(),
            2 * MB,
            PageSize::Small,
        ),
        (
            "Xeon-D hugepage (2MB WSS)",
            CacheGeometry::xeon_d_llc(),
            2 * MB,
            PageSize::Huge,
        ),
        (
            "Xeon-E5 4KB (4.5MB WSS)",
            CacheGeometry::xeon_e5_llc(),
            4 * MB + MB / 2,
            PageSize::Small,
        ),
        (
            "Xeon-E5 hugepage (4.5MB WSS)",
            CacheGeometry::xeon_e5_llc(),
            4 * MB + MB / 2,
            PageSize::Huge,
        ),
    ];
    let rows: Vec<HistogramRow> =
        crate::Runner::from_env().map(configs.to_vec(), |i, (label, llc, wss, page)| {
            let mut row = map_working_set(llc, wss, page, 42 + i as u64);
            row.label = label.to_string();
            row
        });
    let mut printed = Vec::new();
    for row in &rows {
        let hist_str = row
            .histogram
            .buckets
            .iter()
            .enumerate()
            .take(8)
            .map(|(k, &sets)| {
                format!(
                    "{k}:{:.1}%",
                    100.0 * sets as f64 / row.histogram.total_sets as f64
                )
            })
            .collect::<Vec<_>>()
            .join(" ");
        printed.push(vec![
            row.label.clone(),
            format!("{:.1}%", row.frac_3_plus * 100.0),
            hist_str,
        ]);
    }
    report::table(
        &[
            "configuration",
            "sets with 3+ lines",
            "lines-per-set histogram",
        ],
        &printed,
    );
    report::say("(a 2-way partition conflicts wherever 3+ lines share a set)");
    rows
}
